//! Blocked matrix multiplication — an extension workload beyond the paper.
//!
//! `C = A × B` with the classic DSE data placement: each rank generates its
//! own row strip of `A` locally, `B` is master-held global memory every
//! rank fetches through the DSM, and each rank publishes its strip of `C`
//! to its locally-homed slice. A clean demonstration of the global-memory
//! API on a dense kernel, and a second workload (besides the lookup-table
//! ablation) where the optional GM cache pays off when the multiply is
//! iterated.

use dse_api::{Distribution, DseProgram, GmArray, NodeId, ParallelApi, RunResult, Work};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::Capture;
use crate::gauss_seidel::rows_of;

/// Problem description.
#[derive(Debug, Clone, Copy)]
pub struct MatmulParams {
    /// Matrix dimension N (square matrices).
    pub n: usize,
    /// Number of repeated multiplies (iterating re-reads `B`, which is
    /// where the GM cache shows).
    pub reps: usize,
    /// Seed for the generated matrices.
    pub seed: u64,
}

impl MatmulParams {
    /// A single multiply of dimension `n`.
    pub fn single(n: usize) -> MatmulParams {
        MatmulParams {
            n,
            reps: 1,
            seed: 0x3A7,
        }
    }
}

/// Deterministically generate row `i` of `A` (each rank builds its own
/// strip without communication).
pub fn gen_row_a(params: &MatmulParams, i: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(params.seed ^ (i as u64) << 17);
    (0..params.n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Deterministically generate all of `B` (column-major-agnostic row-major).
pub fn gen_b(params: &MatmulParams) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_mul(0x9E3779B97F4A7C15));
    (0..params.n * params.n)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect()
}

/// Sequential reference multiply (one rep; reps multiply the work, not the
/// result, since A and B are fixed).
pub fn multiply_sequential(params: &MatmulParams) -> Vec<f64> {
    let n = params.n;
    let b = gen_b(params);
    let mut c = vec![0.0f64; n * n];
    for i in 0..n {
        let a_row = gen_row_a(params, i);
        for k in 0..n {
            let aik = a_row[k];
            let brow = &b[k * n..(k + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
    c
}

/// Work charged per output row per rep: 2N² flops plus streaming B once.
fn row_work(n: usize) -> Work {
    Work::flops(2 * (n * n) as u64) + Work::mem_bytes(8 * (n * n) as u64 / 8)
}

/// The engine-independent SPMD body; rank 0 returns `C`.
pub fn body<A: ParallelApi>(ctx: &mut A, params: &MatmulParams) -> Option<Vec<f64>> {
    let n = params.n;
    let p = ctx.nprocs();
    let rank = ctx.rank() as usize;
    let (lo, hi) = rows_of(n, p, rank);
    let gb = GmArray::<f64>::alloc(ctx, n * n, Distribution::OnNode(NodeId(0)));
    let gc = GmArray::<f64>::alloc(
        ctx,
        n * n,
        Distribution::BlockedBy {
            chunk: n.div_ceil(p) * n * 8,
        },
    );
    if ctx.rank() == 0 {
        gb.write(ctx, 0, &gen_b(params));
    }
    ctx.barrier();
    let mut c_strip = vec![0.0f64; (hi - lo) * n];
    for _rep in 0..params.reps.max(1) {
        // Fetch B through the DSM once per rep (with the GM cache enabled,
        // reps after the first are served from the local block cache).
        let b = gb.read(ctx, 0, n * n);
        c_strip.iter_mut().for_each(|v| *v = 0.0);
        for i in lo..hi {
            let a_row = gen_row_a(params, i);
            for k in 0..n {
                let aik = a_row[k];
                let brow = &b[k * n..(k + 1) * n];
                let crow = &mut c_strip[(i - lo) * n..(i - lo + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += aik * bv;
                }
            }
            ctx.compute(row_work(n));
        }
    }
    if hi > lo {
        gc.write(ctx, lo * n, &c_strip);
    }
    ctx.barrier();
    if ctx.rank() == 0 {
        Some(gc.read(ctx, 0, n * n))
    } else {
        None
    }
}

/// Run the parallel multiply; returns the measured run and `C`.
pub fn multiply_parallel(
    program: &DseProgram,
    nprocs: usize,
    params: MatmulParams,
) -> (RunResult, Vec<f64>) {
    let capture: Capture<Vec<f64>> = Capture::new();
    let cap = capture.clone();
    let result = program.run(nprocs, move |ctx| {
        if let Some(c) = body(ctx, &params) {
            cap.set(c);
        }
    });
    (result, capture.take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_api::{DseConfig, Platform};

    #[test]
    fn parallel_matches_sequential() {
        let params = MatmulParams::single(24);
        let want = multiply_sequential(&params);
        let program = DseProgram::new(Platform::linux_pentium2());
        let (_, got) = multiply_parallel(&program, 3, params);
        assert_eq!(got, want, "bitwise: same order of operations");
    }

    #[test]
    fn single_rank_matches_too() {
        let params = MatmulParams::single(16);
        let want = multiply_sequential(&params);
        let program = DseProgram::new(Platform::sunos_sparc());
        let (_, got) = multiply_parallel(&program, 1, params);
        assert_eq!(got, want);
    }

    #[test]
    fn cache_accelerates_iterated_multiplies() {
        // Re-reading B each rep hits the cache; the second run must be
        // substantially faster than the uncached one.
        let params = MatmulParams {
            n: 64,
            reps: 4,
            seed: 0x3A7,
        };
        let plain = DseProgram::new(Platform::sunos_sparc());
        let cached = DseProgram::new(Platform::sunos_sparc())
            .with_config(DseConfig::paper().with_gm_cache(true));
        let (tp, cp) = multiply_parallel(&plain, 3, params);
        let (tc, cc) = multiply_parallel(&cached, 3, params);
        assert_eq!(cp, cc, "cache must not change the result");
        assert!(
            tc.elapsed.as_nanos() * 3 < tp.elapsed.as_nanos() * 2,
            "cached {} vs plain {}",
            tc.elapsed,
            tp.elapsed
        );
        assert!(tc.stats.cache_hits > 0);
    }

    #[test]
    fn result_is_numerically_sane() {
        let params = MatmulParams::single(12);
        let c = multiply_sequential(&params);
        // Entries of A×B with A,B uniform in [-1,1): |c_ij| <= n.
        assert!(c.iter().all(|v| v.abs() <= params.n as f64));
        assert!(c.iter().any(|v| v.abs() > 1e-6), "all zeros is wrong");
    }
}
