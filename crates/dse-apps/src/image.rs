//! Synthetic source images for the DCT-II experiment.
//!
//! The paper compresses a 512×512-pixel image; the original is not
//! available, so we generate a deterministic stand-in with realistic
//! spectral content: smooth gradients (low frequencies the DCT compacts
//! well), texture sinusoids, and seeded noise (high frequencies that
//! quantization discards).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A square grayscale image, row-major `u8` pixels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Side length in pixels.
    pub size: usize,
    /// Row-major pixels.
    pub pixels: Vec<u8>,
}

impl Image {
    /// Deterministically synthesize a `size`×`size` test image.
    pub fn synthetic(size: usize, seed: u64) -> Image {
        let mut rng = StdRng::seed_from_u64(seed ^ (size as u64) << 1);
        let mut pixels = Vec::with_capacity(size * size);
        let s = size as f64;
        for y in 0..size {
            for x in 0..size {
                let xf = x as f64 / s;
                let yf = y as f64 / s;
                // Gradient + two texture frequencies + mild noise.
                let v = 96.0 * (xf + yf) / 2.0
                    + 64.0 * ((xf * 19.0).sin() * (yf * 13.0).cos() * 0.5 + 0.5)
                    + 48.0 * ((xf * 3.0 + yf * 5.0) * std::f64::consts::PI).sin().abs()
                    + rng.gen_range(0.0..16.0);
                pixels.push(v.clamp(0.0, 255.0) as u8);
            }
        }
        Image { size, pixels }
    }

    /// Pixel at (x, y).
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.size + x]
    }
}

/// Peak signal-to-noise ratio between two same-size images, in dB.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.size, b.size);
    let mse: f64 = a
        .pixels
        .iter()
        .zip(&b.pixels)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / (a.pixels.len() as f64);
    if mse == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (255.0f64 * 255.0 / mse).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let a = Image::synthetic(64, 7);
        let b = Image::synthetic(64, 7);
        assert_eq!(a, b);
        let c = Image::synthetic(64, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn image_has_spread_histogram() {
        let img = Image::synthetic(128, 1);
        let lo = img.pixels.iter().filter(|&&p| p < 64).count();
        let hi = img.pixels.iter().filter(|&&p| p > 160).count();
        assert!(lo > 100, "too few dark pixels: {lo}");
        assert!(hi > 100, "too few bright pixels: {hi}");
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let img = Image::synthetic(32, 3);
        assert!(psnr(&img, &img).is_infinite());
    }

    #[test]
    fn psnr_detects_distortion() {
        let a = Image::synthetic(32, 3);
        let mut b = a.clone();
        for p in &mut b.pixels {
            *p = p.saturating_add(10);
        }
        let v = psnr(&a, &b);
        assert!(v > 20.0 && v < 40.0, "psnr {v} out of expected band");
    }
}
