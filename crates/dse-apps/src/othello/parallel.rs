//! Parallel Othello search (§4.3).
//!
//! The paper parallelizes the game at the root: subtrees are dealt to the
//! DSE processes and searched independently. We split one ply deep for
//! shallow searches and two plies deep from depth 4 (more tasks → better
//! load balance), with every task searched over a *full* alpha-beta window
//! so the assembled root scores are exactly the sequential values — and,
//! crucially for clean scaling curves, the total node count is independent
//! of the processor count.

use dse_api::{Distribution, DseProgram, GmArray, GmCounter, NodeId, ParallelApi, RunResult, Work};

use super::board::{apply, legal_moves, midgame, squares, Board};
use super::search::alphabeta;
use crate::common::Capture;

/// Charged integer operations per visited search node (move generation,
/// flips, evaluation).
const NODE_IOPS: u64 = 200;

/// Problem description.
#[derive(Debug, Clone, Copy)]
pub struct OthelloParams {
    /// Search depth (the paper sweeps 3..8).
    pub depth: u32,
    /// Plies of pseudo-random play used to reach the midgame position.
    pub plies: usize,
    /// Seed for the midgame position.
    pub seed: u64,
}

impl OthelloParams {
    /// The paper's configuration at a given search depth.
    pub fn paper(depth: u32) -> OthelloParams {
        OthelloParams {
            depth,
            plies: 12,
            seed: 0x07E110,
        }
    }

    /// The position this configuration searches.
    pub fn position(&self) -> Board {
        midgame(self.plies, self.seed)
    }
}

/// One unit of distributable search work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Search the position after `mv` to `depth - 1`.
    OnePly {
        /// Root move.
        mv: u8,
    },
    /// Search the position after `mv`,`reply` to `depth - 2`.
    TwoPly {
        /// Root move.
        mv: u8,
        /// Opponent reply.
        reply: u8,
    },
}

/// Build the task list for a position at `depth` (deterministic).
pub fn make_tasks(b: Board, depth: u32) -> Vec<Task> {
    let mut tasks = Vec::new();
    for mv in squares(legal_moves(b)) {
        let bm = apply(b, mv);
        let replies = legal_moves(bm);
        if depth >= 4 && replies != 0 {
            for reply in squares(replies) {
                tasks.push(Task::TwoPly { mv, reply });
            }
        } else {
            tasks.push(Task::OnePly { mv });
        }
    }
    tasks
}

/// Execute one task: the returned value is, for `OnePly`, the root score of
/// `mv`; for `TwoPly`, the opponent's score for `reply` at the post-`mv`
/// position (assembled by [`assemble`]). Also returns nodes visited.
pub fn run_task(b: Board, depth: u32, task: Task) -> (i32, u64) {
    let mut nodes = 0;
    let full = (i32::MIN + 1, i32::MAX - 1);
    let v = match task {
        Task::OnePly { mv } => -alphabeta(apply(b, mv), depth - 1, full.0, full.1, &mut nodes),
        Task::TwoPly { mv, reply } => {
            let bm = apply(b, mv);
            -alphabeta(apply(bm, reply), depth - 2, full.0, full.1, &mut nodes)
        }
    };
    (v, nodes)
}

/// Combine task values into `(move, root score)` pairs, one per root move.
pub fn assemble(tasks: &[Task], values: &[i32]) -> Vec<(u8, i32)> {
    assert_eq!(tasks.len(), values.len());
    let mut scores: Vec<(u8, i32)> = Vec::new();
    let mut upsert = |mv: u8, f: &mut dyn FnMut(Option<i32>) -> i32| match scores
        .iter_mut()
        .find(|(m, _)| *m == mv)
    {
        Some((_, s)) => *s = f(Some(*s)),
        None => scores.push((mv, f(None))),
    };
    for (t, &v) in tasks.iter().zip(values) {
        match *t {
            Task::OnePly { mv } => upsert(mv, &mut |_| v),
            // Opponent maximizes its own value; the root negates it.
            Task::TwoPly { mv, .. } => {
                upsert(mv, &mut |old| match old {
                    None => -v,
                    Some(s) => s.min(-v),
                });
            }
        }
    }
    scores
}

/// Pick the winning `(move, score)` (ties: lowest square, matching the
/// sequential search's first-listed preference).
pub fn pick_best(scores: &[(u8, i32)]) -> (u8, i32) {
    let mut best = scores[0];
    for &(mv, v) in &scores[1..] {
        if v > best.1 {
            best = (mv, v);
        }
    }
    best
}

/// Sequential reference: same decomposition executed in a plain loop.
pub fn search_sequential(params: &OthelloParams) -> (u8, i32, u64) {
    let b = params.position();
    let tasks = make_tasks(b, params.depth);
    let mut values = Vec::with_capacity(tasks.len());
    let mut total_nodes = 0;
    for &t in &tasks {
        let (v, n) = run_task(b, params.depth, t);
        values.push(v);
        total_nodes += n;
    }
    let (mv, v) = pick_best(&assemble(&tasks, &values));
    (mv, v, total_nodes)
}

/// The engine-independent SPMD body; rank 0 returns `(move, score)`.
pub fn body<A: ParallelApi>(ctx: &mut A, params: &OthelloParams) -> Option<(u8, i32)> {
    let b = params.position();
    let tasks = make_tasks(b, params.depth);
    let values = GmArray::<i64>::alloc(ctx, tasks.len(), Distribution::OnNode(NodeId(0)));
    let counter = GmCounter::alloc(ctx);
    ctx.barrier();
    loop {
        let t = counter.next(ctx);
        if t as usize >= tasks.len() {
            break;
        }
        let (v, nodes) = run_task(b, params.depth, tasks[t as usize]);
        ctx.compute(Work::iops(nodes * NODE_IOPS));
        values.set(ctx, t as usize, v as i64);
    }
    ctx.barrier();
    if ctx.rank() == 0 {
        let vals: Vec<i32> = values
            .read(ctx, 0, tasks.len())
            .into_iter()
            .map(|v| v as i32)
            .collect();
        Some(pick_best(&assemble(&tasks, &vals)))
    } else {
        None
    }
}

/// Run the parallel search; returns the measured run and `(move, score)`.
pub fn search_parallel(
    program: &DseProgram,
    nprocs: usize,
    params: OthelloParams,
) -> (RunResult, (u8, i32)) {
    let capture: Capture<(u8, i32)> = Capture::new();
    let cap = capture.clone();
    let result = program.run(nprocs, move |ctx| {
        if let Some(best) = body(ctx, &params) {
            cap.set(best);
        }
    });
    (result, capture.take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::othello::search::root_scores;
    use dse_api::Platform;

    #[test]
    fn task_decomposition_matches_direct_search() {
        for depth in [2, 3, 4, 5] {
            let params = OthelloParams::paper(depth);
            let b = params.position();
            let tasks = make_tasks(b, depth);
            let values: Vec<i32> = tasks.iter().map(|&t| run_task(b, depth, t).0).collect();
            let mut assembled = assemble(&tasks, &values);
            assembled.sort_unstable();
            let (mut direct, _) = root_scores(b, depth);
            direct.sort_unstable();
            assert_eq!(assembled, direct, "depth {depth}");
        }
    }

    #[test]
    fn two_ply_expansion_kicks_in_at_depth_4() {
        let b = OthelloParams::paper(5).position();
        let shallow = make_tasks(b, 3);
        let deep = make_tasks(b, 5);
        assert!(deep.len() > shallow.len());
        assert!(shallow.iter().all(|t| matches!(t, Task::OnePly { .. })));
    }

    #[test]
    fn parallel_equals_sequential() {
        let params = OthelloParams::paper(4);
        let (mv, v, _) = search_sequential(&params);
        let program = DseProgram::new(Platform::linux_pentium2());
        let (run, (pmv, pv)) = search_parallel(&program, 3, params);
        assert_eq!((pmv, pv), (mv, v));
        assert!(run.stats.fetch_adds as usize >= make_tasks(params.position(), 4).len());
    }

    #[test]
    fn node_counts_grow_with_depth() {
        let mut prev = 0;
        for depth in 3..=6 {
            let (_, _, nodes) = search_sequential(&OthelloParams::paper(depth));
            assert!(nodes > prev, "depth {depth}");
            prev = nodes;
        }
    }
}

#[cfg(test)]
mod calibration {
    use super::*;

    #[test]
    #[ignore = "calibration only"]
    fn node_counts_per_depth() {
        for depth in 3..=8 {
            let t0 = std::time::Instant::now();
            let (_, _, nodes) = search_sequential(&OthelloParams::paper(depth));
            eprintln!("depth {depth}: {nodes} nodes, {:?}", t0.elapsed());
        }
    }
}
