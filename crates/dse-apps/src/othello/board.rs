//! Othello board representation and move logic (bitboards).

/// One side's discs are `own`, the other's `opp`; `own` is always the side
/// to move. Square i = file + 8*rank, bit `1 << i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Board {
    /// Discs of the player to move.
    pub own: u64,
    /// Discs of the opponent.
    pub opp: u64,
}

/// The standard initial position (Black to move).
pub fn initial() -> Board {
    Board {
        own: (1 << 28) | (1 << 35), // d4? — Black on e4, d5 in 0-index: bits 28 (e4) and 35 (d5)
        opp: (1 << 27) | (1 << 36), // White on d4, e5
    }
}

const NOT_FILE_A: u64 = 0xfefe_fefe_fefe_fefe;
const NOT_FILE_H: u64 = 0x7f7f_7f7f_7f7f_7f7f;

#[inline]
fn shift(bb: u64, dir: i32) -> u64 {
    match dir {
        1 => (bb & NOT_FILE_H) << 1,  // east
        -1 => (bb & NOT_FILE_A) >> 1, // west
        8 => bb << 8,                 // north
        -8 => bb >> 8,                // south
        9 => (bb & NOT_FILE_H) << 9,  // north-east
        7 => (bb & NOT_FILE_A) << 7,  // north-west
        -7 => (bb & NOT_FILE_H) >> 7, // south-east
        -9 => (bb & NOT_FILE_A) >> 9, // south-west
        _ => unreachable!(),
    }
}

const DIRS: [i32; 8] = [1, -1, 8, -8, 9, 7, -7, -9];

/// Bitboard of legal moves for the side to move.
pub fn legal_moves(b: Board) -> u64 {
    let empty = !(b.own | b.opp);
    let mut moves = 0u64;
    for &d in &DIRS {
        // Chains of opponent discs adjacent to own discs in direction d.
        let mut chain = shift(b.own, d) & b.opp;
        for _ in 0..5 {
            chain |= shift(chain, d) & b.opp;
        }
        moves |= shift(chain, d) & empty;
    }
    moves
}

/// Apply the move at square `sq` (must be legal); returns the position with
/// sides swapped (opponent to move).
pub fn apply(b: Board, sq: u8) -> Board {
    let mv = 1u64 << sq;
    debug_assert!(legal_moves(b) & mv != 0, "illegal move {sq}");
    let mut flips = 0u64;
    for &d in &DIRS {
        let mut line = 0u64;
        let mut cur = shift(mv, d);
        while cur & b.opp != 0 {
            line |= cur;
            cur = shift(cur, d);
        }
        if cur & b.own != 0 {
            flips |= line;
        }
    }
    debug_assert!(flips != 0, "move {sq} flips nothing");
    Board {
        own: b.opp & !flips,
        opp: b.own | flips | mv,
    }
}

/// Swap sides without moving (a pass).
pub fn pass(b: Board) -> Board {
    Board {
        own: b.opp,
        opp: b.own,
    }
}

/// Disc difference (own - opp).
pub fn disc_diff(b: Board) -> i32 {
    b.own.count_ones() as i32 - b.opp.count_ones() as i32
}

/// True when neither side can move.
pub fn is_terminal(b: Board) -> bool {
    legal_moves(b) == 0 && legal_moves(pass(b)) == 0
}

/// Iterate over the set squares of a bitboard.
pub fn squares(mut bb: u64) -> impl Iterator<Item = u8> {
    std::iter::from_fn(move || {
        if bb == 0 {
            None
        } else {
            let sq = bb.trailing_zeros() as u8;
            bb &= bb - 1;
            Some(sq)
        }
    })
}

/// Deterministic midgame position: play `plies` pseudo-random legal moves
/// from the initial position (passing when forced).
pub fn midgame(plies: usize, seed: u64) -> Board {
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut b = initial();
    let mut done = 0;
    while done < plies && !is_terminal(b) {
        let moves: Vec<u8> = squares(legal_moves(b)).collect();
        if moves.is_empty() {
            b = pass(b);
            continue;
        }
        b = apply(b, moves[next() % moves.len()]);
        done += 1;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_position_is_sane() {
        let b = initial();
        assert_eq!((b.own | b.opp).count_ones(), 4);
        assert_eq!(b.own & b.opp, 0);
        assert_eq!(legal_moves(b).count_ones(), 4);
    }

    #[test]
    fn first_move_flips_one_disc() {
        let b = initial();
        let mv = squares(legal_moves(b)).next().unwrap();
        let after = apply(b, mv);
        // 5 discs total; mover (now opp) has 4, other side 1.
        assert_eq!((after.own | after.opp).count_ones(), 5);
        assert_eq!(after.opp.count_ones(), 4);
        assert_eq!(after.own.count_ones(), 1);
    }

    #[test]
    fn apply_preserves_disjointness() {
        let mut b = initial();
        for _ in 0..20 {
            let moves: Vec<u8> = squares(legal_moves(b)).collect();
            if moves.is_empty() {
                b = pass(b);
                if legal_moves(b) == 0 {
                    break;
                }
                continue;
            }
            b = apply(b, moves[0]);
            assert_eq!(b.own & b.opp, 0, "overlap after move");
        }
    }

    #[test]
    fn perft_initial_depth_2() {
        // All 4 first moves are symmetric; each yields 3 replies.
        let b = initial();
        let mut count = 0;
        for m in squares(legal_moves(b)) {
            let c = apply(b, m);
            count += legal_moves(c).count_ones();
        }
        assert_eq!(count, 12);
    }

    #[test]
    fn midgame_is_deterministic_and_playable() {
        let a = midgame(10, 42);
        let b = midgame(10, 42);
        assert_eq!(a, b);
        assert!((a.own | a.opp).count_ones() >= 12);
        assert!(legal_moves(a) != 0, "midgame position should have moves");
        let c = midgame(10, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn disc_diff_and_terminal() {
        let b = initial();
        assert_eq!(disc_diff(b), 0);
        assert!(!is_terminal(b));
        let full = Board {
            own: u64::MAX,
            opp: 0,
        };
        assert!(is_terminal(full));
        assert_eq!(disc_diff(full), 64);
    }

    #[test]
    fn squares_iterates_in_order() {
        let bb = (1 << 3) | (1 << 17) | (1 << 63);
        let v: Vec<u8> = squares(bb).collect();
        assert_eq!(v, vec![3, 17, 63]);
    }
}
