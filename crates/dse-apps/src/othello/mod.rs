//! Othello game-tree search (§4.3).
//!
//! A typical AI search workload: the paper verifies parallel execution of
//! an Othello player at depths 3..8, observing no speedup at shallow depths
//! (communication frequency dominates the tiny subtrees) and clear speedup
//! once the depth — and therefore the per-task computation — grows.

pub mod board;
pub mod parallel;
pub mod search;

pub use board::{initial, legal_moves, midgame, Board};
pub use parallel::{
    assemble, body, make_tasks, pick_best, run_task, search_parallel, search_sequential,
    OthelloParams, Task,
};
pub use search::{alphabeta, best_move, evaluate, minimax, root_scores};
