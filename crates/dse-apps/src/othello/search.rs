//! Game-tree search: negamax with alpha-beta pruning.

use super::board::{apply, disc_diff, is_terminal, legal_moves, pass, squares, Board};

/// Score magnitude of a finished game disc (keeps terminal scores outside
/// the heuristic range).
const DISC_SCORE: i32 = 1000;

/// Corner squares bitmask.
const CORNERS: u64 = 0x8100_0000_0000_0081;

/// Heuristic evaluation from the side to move's perspective.
pub fn evaluate(b: Board) -> i32 {
    let mobility = legal_moves(b).count_ones() as i32 - legal_moves(pass(b)).count_ones() as i32;
    let corners = (b.own & CORNERS).count_ones() as i32 - (b.opp & CORNERS).count_ones() as i32;
    disc_diff(b) + 4 * mobility + 25 * corners
}

/// Exact score of a finished game.
fn terminal_score(b: Board) -> i32 {
    disc_diff(b).signum() * DISC_SCORE + disc_diff(b)
}

/// Negamax with alpha-beta pruning. `nodes` counts visited positions (the
/// work metric charged to the simulated CPU).
pub fn alphabeta(b: Board, depth: u32, mut alpha: i32, beta: i32, nodes: &mut u64) -> i32 {
    *nodes += 1;
    if is_terminal(b) {
        return terminal_score(b);
    }
    if depth == 0 {
        return evaluate(b);
    }
    let moves = legal_moves(b);
    if moves == 0 {
        // Forced pass: same depth (a pass is not a ply of lookahead lost —
        // the double-pass case was handled as terminal above).
        return -alphabeta(pass(b), depth, -beta, -alpha, nodes);
    }
    let mut best = i32::MIN + 1;
    for sq in squares(moves) {
        let v = -alphabeta(apply(b, sq), depth - 1, -beta, -alpha, nodes);
        if v > best {
            best = v;
        }
        if best > alpha {
            alpha = best;
        }
        if alpha >= beta {
            break;
        }
    }
    best
}

/// Plain negamax without pruning (test oracle for alpha-beta).
pub fn minimax(b: Board, depth: u32, nodes: &mut u64) -> i32 {
    *nodes += 1;
    if is_terminal(b) {
        return terminal_score(b);
    }
    if depth == 0 {
        return evaluate(b);
    }
    let moves = legal_moves(b);
    if moves == 0 {
        return -minimax(pass(b), depth, nodes);
    }
    squares(moves)
        .map(|sq| -minimax(apply(b, sq), depth - 1, nodes))
        .max()
        .unwrap()
}

/// Exact root scores: `(move, value)` for every legal root move, each
/// searched with a full window (the task decomposition the parallel version
/// distributes). Also returns total nodes.
pub fn root_scores(b: Board, depth: u32) -> (Vec<(u8, i32)>, u64) {
    assert!(depth >= 1);
    let mut nodes = 0;
    let scores = squares(legal_moves(b))
        .map(|sq| {
            let v = -alphabeta(
                apply(b, sq),
                depth - 1,
                i32::MIN + 1,
                i32::MAX - 1,
                &mut nodes,
            );
            (sq, v)
        })
        .collect();
    (scores, nodes)
}

/// The best move and its score (first-listed move on ties).
pub fn best_move(b: Board, depth: u32) -> (u8, i32, u64) {
    let (scores, nodes) = root_scores(b, depth);
    let &(mv, v) = scores
        .iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .expect("no legal moves at root");
    (mv, v, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::othello::board::midgame;

    #[test]
    fn alphabeta_equals_minimax() {
        for seed in 0..4 {
            let b = midgame(8 + seed as usize, seed);
            for depth in 1..=4 {
                let mut n1 = 0;
                let mut n2 = 0;
                let ab = alphabeta(b, depth, i32::MIN + 1, i32::MAX - 1, &mut n1);
                let mm = minimax(b, depth, &mut n2);
                assert_eq!(ab, mm, "seed {seed} depth {depth}");
                assert!(n1 <= n2, "pruning should not expand more nodes");
            }
        }
    }

    #[test]
    fn pruning_actually_prunes() {
        let b = midgame(10, 1);
        let mut n1 = 0;
        let mut n2 = 0;
        let _ = alphabeta(b, 5, i32::MIN + 1, i32::MAX - 1, &mut n1);
        let _ = minimax(b, 5, &mut n2);
        assert!(n1 * 2 < n2, "alpha-beta {n1} vs minimax {n2}");
    }

    #[test]
    fn deeper_search_visits_more_nodes() {
        let b = midgame(10, 2);
        let mut prev = 0;
        for depth in 1..=5 {
            let mut n = 0;
            let _ = alphabeta(b, depth, i32::MIN + 1, i32::MAX - 1, &mut n);
            assert!(n > prev, "depth {depth}: {n} <= {prev}");
            prev = n;
        }
    }

    #[test]
    fn best_move_is_a_legal_move() {
        let b = midgame(10, 3);
        let (mv, _, _) = best_move(b, 3);
        assert!(legal_moves(b) & (1 << mv) != 0);
    }

    #[test]
    fn root_scores_cover_all_moves() {
        let b = midgame(10, 4);
        let (scores, _) = root_scores(b, 2);
        assert_eq!(scores.len(), legal_moves(b).count_ones() as usize);
    }

    #[test]
    fn terminal_position_scored_exactly() {
        let full = Board {
            own: u64::MAX ^ 1,
            opp: 1,
        };
        let mut n = 0;
        let v = alphabeta(full, 3, i32::MIN + 1, i32::MAX - 1, &mut n);
        assert_eq!(v, 1000 + 62);
    }
}
