//! Shared helpers for the paper workloads.

use std::sync::Arc;

use parking_lot::Mutex;

/// A slot application bodies use to hand a result back to the harness
/// (typically set by rank 0 after the final barrier).
#[derive(Debug)]
pub struct Capture<T>(Arc<Mutex<Option<T>>>);

impl<T> Clone for Capture<T> {
    fn clone(&self) -> Self {
        Capture(Arc::clone(&self.0))
    }
}

impl<T> Default for Capture<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Capture<T> {
    /// An empty capture slot.
    pub fn new() -> Capture<T> {
        Capture(Arc::new(Mutex::new(None)))
    }

    /// Store the result (exactly once).
    pub fn set(&self, value: T) {
        let mut slot = self.0.lock();
        assert!(slot.is_none(), "Capture set twice");
        *slot = Some(value);
    }

    /// Take the result out after the run.
    pub fn take(&self) -> T {
        self.0
            .lock()
            .take()
            .expect("Capture never set — did rank 0 finish?")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_then_take() {
        let c = Capture::new();
        c.set(42);
        assert_eq!(c.take(), 42);
    }

    #[test]
    #[should_panic(expected = "set twice")]
    fn double_set_panics() {
        let c = Capture::new();
        c.set(1);
        c.set(2);
    }

    #[test]
    #[should_panic(expected = "never set")]
    fn empty_take_panics() {
        let c: Capture<u8> = Capture::new();
        let _ = c.take();
    }
}
