//! Gauss-Seidel iterative solution of simultaneous linear equations (§4.1).
//!
//! The paper's first workload: solve `Ax = b` for an N-dimensional system,
//! N swept from 100 to 900. Parallelization follows the classic DSE shared-
//! memory scheme: the solution vector lives in global memory with a blocked
//! distribution (each rank's slice is homed on its own node); every
//! iteration a rank refreshes the full vector (remote slices become GM read
//! requests to the other nodes — the fine-grain communication the paper
//! discusses), sweeps its own rows Gauss-Seidel-style, writes its slice
//! back (own-node fast path) and synchronizes. Convergence is detected with
//! a max-norm reduction.
//!
//! With more than one rank the sweep is block-hybrid (Gauss-Seidel within a
//! rank's rows, Jacobi across ranks), the standard distributed variant; the
//! generated systems are strongly diagonally dominant so convergence is
//! fast and essentially iteration-count-identical across `p`.

use dse_api::{Distribution, DseProgram, GmArray, GmHandle, NodeId, ParallelApi, RunResult, Work};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::Capture;

/// Problem description.
#[derive(Debug, Clone, Copy)]
pub struct GaussSeidelParams {
    /// System dimension N.
    pub n: usize,
    /// Convergence threshold on the max-norm of the update.
    pub eps: f64,
    /// Iteration cap (safety net; dominant systems converge far earlier).
    pub max_iters: usize,
    /// Seed for the generated system.
    pub seed: u64,
}

impl GaussSeidelParams {
    /// The paper's sweep point for dimension `n`.
    pub fn paper(n: usize) -> GaussSeidelParams {
        GaussSeidelParams {
            n,
            eps: 1e-8,
            max_iters: 200,
            seed: 0xA11CE,
        }
    }
}

/// A generated system `Ax = b` (row-major `a`, strongly diagonally
/// dominant, entries in `[-1, 1)` off the diagonal).
pub struct System {
    /// Dimension.
    pub n: usize,
    /// Row-major coefficients.
    pub a: Vec<f64>,
    /// Right-hand side.
    pub b: Vec<f64>,
}

/// Deterministically generate the system for `params`.
pub fn generate(params: &GaussSeidelParams) -> System {
    let n = params.n;
    let mut rng = StdRng::seed_from_u64(params.seed ^ n as u64);
    let mut a = vec![0.0f64; n * n];
    let mut b = vec![0.0f64; n];
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v: f64 = rng.gen_range(-1.0..1.0);
                a[i * n + j] = v;
                row_sum += v.abs();
            }
        }
        // Strong dominance: block-hybrid sweeps converge like the pure one.
        a[i * n + i] = 2.0 * row_sum + 1.0;
        b[i] = rng.gen_range(-10.0..10.0);
    }
    System { n, a, b }
}

/// Result of a solve.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations executed.
    pub iters: usize,
    /// Final max-norm of the update.
    pub delta: f64,
}

/// Sweep rows `[lo, hi)` once in place; returns the local max update.
fn sweep_rows(sys: &System, x: &mut [f64], lo: usize, hi: usize) -> f64 {
    let n = sys.n;
    let mut delta: f64 = 0.0;
    for i in lo..hi {
        let mut sum = sys.b[i];
        let row = &sys.a[i * n..(i + 1) * n];
        for (j, (&a, &xj)) in row.iter().zip(x.iter()).enumerate() {
            if j != i {
                sum -= a * xj;
            }
        }
        let new = sum / row[i];
        delta = delta.max((new - x[i]).abs());
        x[i] = new;
    }
    delta
}

/// Reference sequential Gauss-Seidel.
pub fn solve_sequential(params: &GaussSeidelParams) -> Solution {
    let sys = generate(params);
    let mut x = vec![0.0f64; sys.n];
    let mut iters = 0;
    let mut delta = f64::INFINITY;
    while iters < params.max_iters && delta > params.eps {
        delta = sweep_rows(&sys, &mut x, 0, sys.n);
        iters += 1;
    }
    Solution { x, iters, delta }
}

/// Residual max-norm `||Ax - b||_inf` (verification helper).
pub fn residual(sys: &System, x: &[f64]) -> f64 {
    let n = sys.n;
    let mut r: f64 = 0.0;
    for i in 0..n {
        let mut s = -sys.b[i];
        let row = &sys.a[i * n..(i + 1) * n];
        for (&a, &xj) in row.iter().zip(x.iter()) {
            s += a * xj;
        }
        r = r.max(s.abs());
    }
    r
}

/// Rows owned by `rank` under the blocked distribution (matches the GM
/// blocked home mapping for an N-element f64 array).
pub fn rows_of(n: usize, nprocs: usize, rank: usize) -> (usize, usize) {
    let chunk = n.div_ceil(nprocs);
    let lo = (rank * chunk).min(n);
    let hi = ((rank + 1) * chunk).min(n);
    (lo, hi)
}

/// Work charged for sweeping one row of an N-dimensional system.
fn row_work(n: usize) -> Work {
    // One multiply-subtract per column plus the divide — and, just as
    // importantly, the row of A streams in from memory (dense sweeps are
    // memory-bandwidth-bound on every one of these machines).
    Work::flops(2 * n as u64 + 10) + Work::mem_bytes(8 * n as u64)
}

/// Convergence is tested every this many sweeps (amortizing the global
/// reduction, standard practice for stationary iterations).
pub const CHECK_EVERY: usize = 4;

/// How each rank refreshes the shared solution vector at the top of a
/// sweep. Every mode reads exactly the same values — solutions are
/// bit-identical — but the GM traffic they generate differs, which is what
/// the split-phase benchmark measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshMode {
    /// One bulk `gm_read` of the whole vector (the original body).
    Bulk,
    /// Row-at-a-time blocking reads of every remote element: the
    /// fine-grain request/response pattern the paper's plain GM semantics
    /// force (one request message per remote row).
    RowBlocking,
    /// The same row-at-a-time reads issued split-phase: all rows are
    /// requested with `gm_read_nb` before the first `gm_wait`, so the
    /// runtime coalesces adjacent rows with the same home into one
    /// batched request and pipelines the rest.
    RowPipelined,
}

/// The engine-independent SPMD body: every rank executes this; rank 0
/// returns the solution. Equivalent to [`body_with`] in [`RefreshMode::Bulk`].
pub fn body<A: ParallelApi>(ctx: &mut A, params: &GaussSeidelParams) -> Option<Solution> {
    body_with(ctx, params, RefreshMode::Bulk)
}

/// [`body`] with an explicit vector-refresh strategy.
pub fn body_with<A: ParallelApi>(
    ctx: &mut A,
    params: &GaussSeidelParams,
    mode: RefreshMode,
) -> Option<Solution> {
    let sys = generate(params);
    let n = sys.n;
    let p = ctx.nprocs();
    let rank = ctx.rank() as usize;
    let (lo, hi) = rows_of(n, p, rank);
    // The shared solution vector: blocked over nodes so each rank's slice
    // is homed locally (GmArray aligns home chunks to element boundaries
    // with the same ceil(n/p) rule as rows_of).
    let gx = GmArray::<f64>::alloc(ctx, n, Distribution::Blocked);
    // Pre-allocated reduction scratch: per-rank deltas (own slot local)
    // and the master's verdict cell.
    let gdeltas = GmArray::<f64>::alloc(ctx, p, Distribution::Blocked);
    let gverdict = GmArray::<f64>::alloc(ctx, 1, Distribution::OnNode(NodeId(0)));
    ctx.barrier();
    let mut x = vec![0.0f64; n];
    let mut iters = 0;
    let mut delta = f64::INFINITY;
    let mut local_delta: f64 = 0.0;
    while iters < params.max_iters && delta > params.eps {
        // Refresh the full vector: own slice is a local read, every other
        // slice is a request to its home node.
        match mode {
            RefreshMode::Bulk => {
                let fresh = gx.read(ctx, 0, n);
                x.copy_from_slice(&fresh);
            }
            RefreshMode::RowBlocking => {
                if hi > lo {
                    gx.read_into(ctx, lo, &mut x[lo..hi]);
                }
                for i in (0..lo).chain(hi..n) {
                    gx.read_into(ctx, i, &mut x[i..i + 1]);
                }
            }
            RefreshMode::RowPipelined => {
                if hi > lo {
                    gx.read_into(ctx, lo, &mut x[lo..hi]);
                }
                let mut pending: Vec<(usize, GmHandle)> = Vec::with_capacity(n - (hi - lo));
                for i in (0..lo).chain(hi..n) {
                    pending.push((i, ctx.gm_read_nb(gx.region(), (i * 8) as u64, 8)));
                }
                for (i, h) in pending {
                    let bytes = ctx.gm_wait(h).expect("split-phase read carries data");
                    x[i] = f64::from_le_bytes(bytes.as_slice().try_into().unwrap());
                }
            }
        }
        // Everyone must finish reading iteration k before anyone writes
        // iteration k+1 (BSP discipline: engine-independent results).
        ctx.barrier();
        // Sweep my rows (real computation + charged work).
        local_delta = local_delta.max(sweep_rows(&sys, &mut x, lo, hi));
        ctx.compute(row_work(n) * (hi - lo) as u64);
        // Publish my slice (own-node fast path).
        if hi > lo {
            gx.write(ctx, lo, &x[lo..hi]);
        }
        ctx.barrier();
        iters += 1;
        // Periodic global convergence decision (max over the interval).
        if iters.is_multiple_of(CHECK_EVERY) || iters == params.max_iters {
            gdeltas.set(ctx, rank, local_delta);
            local_delta = 0.0;
            ctx.barrier();
            if rank == 0 {
                let all = gdeltas.read(ctx, 0, p);
                let max = all.into_iter().fold(0.0f64, f64::max);
                ctx.compute(Work::flops(2 * p as u64));
                gverdict.set(ctx, 0, max);
            }
            ctx.barrier();
            delta = gverdict.get(ctx, 0);
        }
    }
    ctx.barrier();
    if ctx.rank() == 0 {
        let x = gx.read(ctx, 0, n);
        Some(Solution { x, iters, delta })
    } else {
        None
    }
}

/// Run the parallel solver on a configured program; returns the measured
/// run and the solution (captured from rank 0).
pub fn solve_parallel(
    program: &DseProgram,
    nprocs: usize,
    params: GaussSeidelParams,
) -> (RunResult, Solution) {
    solve_parallel_with(program, nprocs, params, RefreshMode::Bulk)
}

/// [`solve_parallel`] with an explicit vector-refresh strategy.
pub fn solve_parallel_with(
    program: &DseProgram,
    nprocs: usize,
    params: GaussSeidelParams,
    mode: RefreshMode,
) -> (RunResult, Solution) {
    let capture: Capture<Solution> = Capture::new();
    let cap = capture.clone();
    let result = program.run(nprocs, move |ctx| {
        if let Some(sol) = body_with(ctx, &params, mode) {
            cap.set(sol);
        }
    });
    (result, capture.take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_api::Platform;

    #[test]
    fn sequential_converges_and_solves() {
        let params = GaussSeidelParams::paper(50);
        let sol = solve_sequential(&params);
        assert!(sol.iters < params.max_iters, "did not converge");
        let sys = generate(&params);
        assert!(residual(&sys, &sol.x) < 1e-6, "residual too large");
    }

    #[test]
    fn generation_is_deterministic() {
        let p = GaussSeidelParams::paper(20);
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a.a, b.a);
        assert_eq!(a.b, b.b);
    }

    #[test]
    fn rows_partition_exactly() {
        for n in [10, 100, 97] {
            for p in 1..=12 {
                let mut covered = 0;
                for r in 0..p {
                    let (lo, hi) = rows_of(n, p, r);
                    assert!(lo <= hi);
                    covered += hi - lo;
                }
                assert_eq!(covered, n, "n={n} p={p}");
                assert_eq!(rows_of(n, p, 0).0, 0);
                assert_eq!(rows_of(n, p, p - 1).1, n);
            }
        }
    }

    #[test]
    fn parallel_matches_reference() {
        let params = GaussSeidelParams::paper(60);
        let program = DseProgram::new(Platform::linux_pentium2());
        let (run, sol) = solve_parallel(&program, 3, params);
        assert!(run.secs() > 0.0);
        assert!(sol.delta <= params.eps);
        let sys = generate(&params);
        assert!(residual(&sys, &sol.x) < 1e-6, "parallel residual too large");
    }

    #[test]
    fn refresh_modes_are_bit_identical() {
        // All three refresh strategies read the same values, so the
        // solutions must match to the last bit — only the GM traffic (and
        // hence the simulated time) may differ.
        let params = GaussSeidelParams::paper(48);
        let program = DseProgram::new(Platform::linux_pentium2());
        let (bulk_run, bulk) = solve_parallel_with(&program, 3, params, RefreshMode::Bulk);
        let (block_run, blocking) =
            solve_parallel_with(&program, 3, params, RefreshMode::RowBlocking);
        let (pipe_run, pipelined) =
            solve_parallel_with(&program, 3, params, RefreshMode::RowPipelined);
        assert_eq!(bulk.x, blocking.x);
        assert_eq!(bulk.x, pipelined.x);
        assert_eq!(bulk.iters, blocking.iters);
        assert_eq!(bulk.iters, pipelined.iters);
        // Row-wise blocking pays one request per remote row; split-phase
        // coalescing must claw most of that back.
        assert!(pipe_run.secs() < block_run.secs());
        assert!(bulk_run.secs() > 0.0);
    }

    #[test]
    fn single_rank_parallel_matches_sequential_sweeps() {
        // The parallel solver tests convergence every CHECK_EVERY sweeps,
        // so at p=1 it performs the same sweeps as the sequential solver,
        // possibly rounded up to the next check point.
        let params = GaussSeidelParams::paper(40);
        let program = DseProgram::new(Platform::sunos_sparc());
        let (_, psol) = solve_parallel(&program, 1, params);
        let ssol = solve_sequential(&params);
        assert!(psol.iters >= ssol.iters);
        // The windowed check reports the max delta over the last
        // CHECK_EVERY sweeps, so convergence can be detected up to one
        // window late (plus rounding to the window boundary).
        assert!(psol.iters <= ssol.iters + 2 * CHECK_EVERY);
        let sys = generate(&params);
        assert!(residual(&sys, &psol.x) < 1e-6);
        assert!(psol.delta <= params.eps);
    }
}
