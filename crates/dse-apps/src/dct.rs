//! Two-dimensional DCT image compression (§4.2).
//!
//! The paper's second workload: a 512×512-pixel image is divided into
//! independent B×B blocks (B ∈ {4, 8, 16, 32}), each transformed with the
//! two-dimensional DCT-II and compressed by keeping 25% of the coefficients
//! (zigzag order, quantized to 16 bits).
//!
//! Parallel organization: the master (node 0) holds the source image and
//! the coefficient output in global memory; a shared atomic counter deals
//! out *block-row* tasks; workers fetch their task's pixel rows through the
//! DSM, transform them, and write the kept coefficients back. Small blocks
//! mean many fine-grain tasks — the communication-frequency effect the
//! paper blames for 4×4's missing speedup.

use dse_api::{Distribution, DseProgram, GmArray, GmCounter, NodeId, ParallelApi, RunResult, Work};

use crate::common::Capture;
use crate::image::Image;

/// Quantization step applied to DCT coefficients before the i16 cast.
const QUANT_STEP: f64 = 8.0;

/// Problem description.
#[derive(Debug, Clone, Copy)]
pub struct DctParams {
    /// Image side length in pixels (the paper uses 512).
    pub size: usize,
    /// DCT block size B (4, 8, 16 or 32).
    pub block: usize,
    /// Fraction of coefficients kept per block (the paper uses 0.25).
    pub keep: f64,
    /// Seed for the synthetic source image.
    pub seed: u64,
}

impl DctParams {
    /// The paper's configuration for block size `block`.
    pub fn paper(block: usize) -> DctParams {
        DctParams {
            size: 512,
            block,
            keep: 0.25,
            seed: 0xD0C7,
        }
    }

    /// Coefficients kept per block.
    pub fn kept_per_block(&self) -> usize {
        ((self.block * self.block) as f64 * self.keep)
            .ceil()
            .max(1.0) as usize
    }

    /// Number of B×B blocks along one side.
    pub fn blocks_per_side(&self) -> usize {
        assert_eq!(self.size % self.block, 0, "block must divide image size");
        self.size / self.block
    }
}

/// Precomputed 1D DCT-II basis for size B: `basis[u][x] = c(u) cos(...)`.
fn dct_basis(b: usize) -> Vec<Vec<f64>> {
    let bf = b as f64;
    (0..b)
        .map(|u| {
            let cu = if u == 0 {
                (1.0 / bf).sqrt()
            } else {
                (2.0 / bf).sqrt()
            };
            (0..b)
                .map(|x| {
                    cu * (std::f64::consts::PI * (2.0 * x as f64 + 1.0) * u as f64 / (2.0 * bf))
                        .cos()
                })
                .collect()
        })
        .collect()
}

/// Zigzag scan order for a B×B block (low frequencies first).
pub fn zigzag(b: usize) -> Vec<(usize, usize)> {
    let mut order: Vec<(usize, usize)> = (0..b * b).map(|i| (i / b, i % b)).collect();
    order.sort_by_key(|&(u, v)| {
        let d = u + v;
        // Within an anti-diagonal alternate direction, as in JPEG.
        let pos = if d % 2 == 0 { b - 1 - u } else { u };
        (d, pos)
    });
    order
}

/// Forward 2D DCT-II of one B×B block of pixels (values centered on 0).
fn dct2_block(basis: &[Vec<f64>], pix: &[f64], b: usize, out: &mut [f64]) {
    // Rows then columns (separable transform).
    let mut tmp = vec![0.0f64; b * b];
    for y in 0..b {
        for u in 0..b {
            let mut s = 0.0;
            for x in 0..b {
                s += basis[u][x] * pix[y * b + x];
            }
            tmp[y * b + u] = s;
        }
    }
    for u in 0..b {
        for v in 0..b {
            let mut s = 0.0;
            for y in 0..b {
                s += basis[v][y] * tmp[y * b + u];
            }
            out[v * b + u] = s;
        }
    }
}

/// Inverse 2D DCT-II (i.e. DCT-III) of one block.
fn idct2_block(basis: &[Vec<f64>], coeff: &[f64], b: usize, out: &mut [f64]) {
    let mut tmp = vec![0.0f64; b * b];
    for u in 0..b {
        for y in 0..b {
            let mut s = 0.0;
            for v in 0..b {
                s += basis[v][y] * coeff[v * b + u];
            }
            tmp[y * b + u] = s;
        }
    }
    for y in 0..b {
        for x in 0..b {
            let mut s = 0.0;
            for u in 0..b {
                s += basis[u][x] * tmp[y * b + u];
            }
            out[y * b + x] = s;
        }
    }
}

/// Compressed output: kept, quantized coefficients for every block, in
/// task-major order (block rows top to bottom, blocks left to right).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compressed {
    /// Parameters that produced this.
    pub block: usize,
    /// Image side.
    pub size: usize,
    /// Kept coefficients per block.
    pub kept: usize,
    /// Quantized coefficients, `blocks × kept`.
    pub coeffs: Vec<i16>,
}

/// Compress `rows` (a horizontal strip of `b` pixel rows, full width) and
/// append the kept coefficients. Returns FLOP count performed.
fn compress_strip(
    params: &DctParams,
    basis: &[Vec<f64>],
    zz: &[(usize, usize)],
    rows: &[u8],
    out: &mut Vec<i16>,
) -> u64 {
    let b = params.block;
    let width = params.size;
    let kept = params.kept_per_block();
    let mut pix = vec![0.0f64; b * b];
    let mut coeff = vec![0.0f64; b * b];
    let mut flops = 0u64;
    for bx in 0..width / b {
        for y in 0..b {
            for x in 0..b {
                pix[y * b + x] = rows[y * width + bx * b + x] as f64 - 128.0;
            }
        }
        dct2_block(basis, &pix, b, &mut coeff);
        // Two passes of B 1D transforms, each B multiply-adds per output.
        flops += 4 * (b * b * b) as u64;
        for &(u, v) in zz.iter().take(kept) {
            let q = (coeff[u * b + v] / QUANT_STEP).round();
            out.push(q.clamp(i16::MIN as f64, i16::MAX as f64) as i16);
        }
    }
    flops
}

/// Sequential reference compression.
pub fn compress_sequential(params: &DctParams) -> Compressed {
    let img = Image::synthetic(params.size, params.seed);
    let b = params.block;
    let basis = dct_basis(b);
    let zz = zigzag(b);
    let strips = params.blocks_per_side();
    let mut coeffs = Vec::with_capacity(strips * strips * params.kept_per_block());
    for t in 0..strips {
        let rows = &img.pixels[t * b * params.size..(t + 1) * b * params.size];
        compress_strip(params, &basis, &zz, rows, &mut coeffs);
    }
    Compressed {
        block: b,
        size: params.size,
        kept: params.kept_per_block(),
        coeffs,
    }
}

/// Reconstruct an image from compressed coefficients (verification).
pub fn decompress(c: &Compressed) -> Image {
    let b = c.block;
    let basis = dct_basis(b);
    let zz = zigzag(b);
    let strips = c.size / b;
    let mut pixels = vec![0u8; c.size * c.size];
    let mut coeff = vec![0.0f64; b * b];
    let mut pix = vec![0.0f64; b * b];
    let mut it = c.coeffs.iter();
    for ty in 0..strips {
        for bx in 0..strips {
            coeff.iter_mut().for_each(|v| *v = 0.0);
            for &(u, v) in zz.iter().take(c.kept) {
                coeff[u * b + v] =
                    *it.next().expect("coefficient stream short") as f64 * QUANT_STEP;
            }
            idct2_block(&basis, &coeff, b, &mut pix);
            for y in 0..b {
                for x in 0..b {
                    let val = (pix[y * b + x] + 128.0).clamp(0.0, 255.0) as u8;
                    pixels[(ty * b + y) * c.size + bx * b + x] = val;
                }
            }
        }
    }
    Image {
        size: c.size,
        pixels,
    }
}

/// The engine-independent SPMD body; rank 0 returns the compressed output.
pub fn body<A: ParallelApi>(ctx: &mut A, params: &DctParams) -> Option<Compressed> {
    let b = params.block;
    let width = params.size;
    let strips = params.blocks_per_side();
    let kept = params.kept_per_block();
    let strip_coeffs = strips * kept; // blocks per strip × kept
                                      // Master-held source image and coefficient output.
    let gimg = GmArray::<u8>::alloc(ctx, width * width, Distribution::OnNode(NodeId(0)));
    let gout = GmArray::<i16>::alloc(ctx, strips * strip_coeffs, Distribution::OnNode(NodeId(0)));
    let tasks = GmCounter::alloc(ctx);
    if ctx.rank() == 0 {
        let img = Image::synthetic(width, params.seed);
        gimg.write(ctx, 0, &img.pixels);
        ctx.compute(Work::mem_bytes((width * width) as u64));
    }
    ctx.barrier();
    let basis = dct_basis(b);
    let zz = zigzag(b);
    let mut out = Vec::with_capacity(strip_coeffs);
    loop {
        let t = tasks.next(ctx);
        if t as usize >= strips {
            break;
        }
        let t = t as usize;
        // Fetch this strip's pixel rows through the DSM.
        let rows = gimg.read(ctx, t * b * width, b * width);
        out.clear();
        let flops = compress_strip(params, &basis, &zz, &rows, &mut out);
        ctx.compute(Work::flops(flops));
        // Publish the kept coefficients.
        gout.write(ctx, t * strip_coeffs, &out);
    }
    ctx.barrier();
    if ctx.rank() == 0 {
        let coeffs = gout.read(ctx, 0, strips * strip_coeffs);
        Some(Compressed {
            block: b,
            size: width,
            kept,
            coeffs,
        })
    } else {
        None
    }
}

/// Run the parallel compression; returns the measured run and the output
/// (captured from rank 0 and identical to the sequential reference).
pub fn compress_parallel(
    program: &DseProgram,
    nprocs: usize,
    params: DctParams,
) -> (RunResult, Compressed) {
    let capture: Capture<Compressed> = Capture::new();
    let cap = capture.clone();
    let result = program.run(nprocs, move |ctx| {
        if let Some(out) = body(ctx, &params) {
            cap.set(out);
        }
    });
    (result, capture.take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::psnr;
    use dse_api::Platform;

    #[test]
    fn zigzag_visits_every_cell_once() {
        for b in [2, 4, 8, 16] {
            let mut seen = vec![false; b * b];
            for (u, v) in zigzag(b) {
                assert!(!seen[u * b + v]);
                seen[u * b + v] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn zigzag_starts_at_dc_and_orders_by_frequency() {
        let zz = zigzag(8);
        assert_eq!(zz[0], (0, 0));
        // Later entries never have a smaller diagonal than earlier ones.
        for w in zz.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0 + w[1].1);
        }
    }

    #[test]
    fn dct_roundtrips_without_quantization() {
        let b = 8;
        let basis = dct_basis(b);
        let pix: Vec<f64> = (0..b * b)
            .map(|i| ((i * 37) % 251) as f64 - 128.0)
            .collect();
        let mut coeff = vec![0.0; b * b];
        let mut back = vec![0.0; b * b];
        dct2_block(&basis, &pix, b, &mut coeff);
        idct2_block(&basis, &coeff, b, &mut back);
        for (a, z) in pix.iter().zip(&back) {
            assert!((a - z).abs() < 1e-9, "{a} vs {z}");
        }
    }

    #[test]
    fn dct_energy_preserved() {
        // Orthonormal transform: Parseval's identity.
        let b = 4;
        let basis = dct_basis(b);
        let pix: Vec<f64> = (0..16).map(|i| (i as f64) - 8.0).collect();
        let mut coeff = vec![0.0; 16];
        dct2_block(&basis, &pix, b, &mut coeff);
        let ep: f64 = pix.iter().map(|v| v * v).sum();
        let ec: f64 = coeff.iter().map(|v| v * v).sum();
        assert!((ep - ec).abs() < 1e-9);
    }

    #[test]
    fn sequential_compression_reconstructs_acceptably() {
        for block in [4, 8, 16] {
            let params = DctParams {
                size: 64,
                block,
                keep: 0.25,
                seed: 5,
            };
            let c = compress_sequential(&params);
            assert_eq!(
                c.coeffs.len(),
                (64 / block) * (64 / block) * params.kept_per_block()
            );
            let rec = decompress(&c);
            let orig = Image::synthetic(64, 5);
            let q = psnr(&orig, &rec);
            assert!(q > 22.0, "block {block}: psnr {q} too low");
        }
    }

    #[test]
    fn parallel_output_equals_sequential() {
        let params = DctParams {
            size: 64,
            block: 8,
            keep: 0.25,
            seed: 5,
        };
        let seq = compress_sequential(&params);
        let program = DseProgram::new(Platform::aix_rs6000());
        let (run, par) = compress_parallel(&program, 3, params);
        assert_eq!(par, seq);
        assert!(run.stats.fetch_adds > 0, "task counter unused?");
        assert!(run.stats.gm_remote_reads > 0, "expected DSM image fetches");
    }

    #[test]
    fn kept_per_block_counts() {
        assert_eq!(DctParams::paper(4).kept_per_block(), 4);
        assert_eq!(DctParams::paper(8).kept_per_block(), 16);
        assert_eq!(DctParams::paper(16).kept_per_block(), 64);
        assert_eq!(DctParams::paper(32).kept_per_block(), 256);
    }
}
