//! # dse-apps — the paper's evaluation workloads
//!
//! Four parallel applications, each in sequential-reference and DSE-parallel
//! form, exactly as §4 of the paper evaluates them:
//!
//! * [`gauss_seidel`] — N-dimensional simultaneous linear equations (§4.1);
//! * [`dct`] — two-dimensional Discrete Cosine Transform image compression
//!   at block sizes 4/8/16/32 and 25% coefficient retention (§4.2);
//! * [`othello`] — parallel game-tree search at depths 3..8 (§4.3);
//! * [`knights`] — Knight's-Tour enumeration with configurable job
//!   granularity (§4.4).
//!
//! Every parallel implementation performs the *real* computation (results
//! are asserted against the sequential reference) while charging analytic
//! work to the simulated platform, so figure timings and answer correctness
//! come from the same execution.

#![warn(missing_docs)]

pub mod common;
pub mod dct;
pub mod gauss_seidel;
pub mod gauss_seidel_mp;
pub mod image;
pub mod knights;
pub mod matmul;
pub mod othello;

pub use common::Capture;
