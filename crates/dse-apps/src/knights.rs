//! Knight's-Tour enumeration (§4.4).
//!
//! The task is to find the routes by which a knight visits every square of
//! an N×N board exactly once. The paper uses this search to study
//! *computation granularity*: the tour search below a fixed prefix depth is
//! split into a configurable number of **jobs**, and the job count is swept
//! (too few jobs → idle processors; too many → communication frequency and
//! bus collisions dominate).
//!
//! Every job setting enumerates the same tree (prefixes are generated at a
//! fixed depth and only their *grouping* changes), so total work is
//! constant across the sweep and the curves isolate the granularity effect.

use dse_api::{Distribution, DseProgram, GmArray, GmCounter, NodeId, ParallelApi, RunResult, Work};

use crate::common::Capture;

/// Charged integer operations per visited search node (move candidate
/// checks, bookkeeping).
const NODE_IOPS: u64 = 260;

/// Knight move deltas.
const MOVES: [(i32, i32); 8] = [
    (1, 2),
    (2, 1),
    (2, -1),
    (1, -2),
    (-1, -2),
    (-2, -1),
    (-2, 1),
    (-1, 2),
];

/// Problem description.
#[derive(Debug, Clone, Copy)]
pub struct KnightsParams {
    /// Board side N (the paper's granularity study fits a 5×5 board).
    pub board: usize,
    /// Number of jobs the prefix set is grouped into (the sweep variable).
    pub jobs: usize,
    /// Depth at which prefixes are enumerated (fixed across the sweep so
    /// total work is identical for every job count).
    pub prefix_depth: usize,
}

impl KnightsParams {
    /// The paper's configuration with the given job count.
    pub fn paper(jobs: usize) -> KnightsParams {
        KnightsParams {
            board: 5,
            jobs,
            prefix_depth: 6,
        }
    }
}

/// A partial tour: current square and visited-set (bitmask over N² squares).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prefix {
    /// Knight's current square (row-major index).
    pub pos: u8,
    /// Bitmask of visited squares.
    pub visited: u32,
    /// Squares visited so far.
    pub depth: u8,
}

#[inline]
fn neighbors(board: usize, pos: usize) -> impl Iterator<Item = usize> {
    let (r, c) = ((pos / board) as i32, (pos % board) as i32);
    MOVES.iter().filter_map(move |&(dr, dc)| {
        let (nr, nc) = (r + dr, c + dc);
        if nr >= 0 && nc >= 0 && (nr as usize) < board && (nc as usize) < board {
            Some(nr as usize * board + nc as usize)
        } else {
            None
        }
    })
}

/// Depth-first count of complete tours from a partial tour; also counts
/// visited search nodes (the charged work metric).
pub fn count_from(board: usize, p: Prefix, nodes: &mut u64) -> u64 {
    *nodes += 1;
    if p.depth as usize == board * board {
        return 1;
    }
    let mut total = 0;
    for n in neighbors(board, p.pos as usize) {
        if p.visited & (1 << n) == 0 {
            total += count_from(
                board,
                Prefix {
                    pos: n as u8,
                    visited: p.visited | (1 << n),
                    depth: p.depth + 1,
                },
                nodes,
            );
        }
    }
    total
}

/// The starting prefix (corner square, as in the classic statement).
pub fn start(_board: usize) -> Prefix {
    Prefix {
        pos: 0,
        visited: 1,
        depth: 1,
    }
}

/// Enumerate all partial tours of exactly `depth` squares (breadth-first,
/// deterministic order). These are the distributable units.
pub fn prefixes(board: usize, depth: usize) -> Vec<Prefix> {
    assert!(depth >= 1 && depth <= board * board);
    let mut level = vec![start(board)];
    for _ in 1..depth {
        let mut next = Vec::with_capacity(level.len() * 4);
        for p in &level {
            for n in neighbors(board, p.pos as usize) {
                if p.visited & (1 << n) == 0 {
                    next.push(Prefix {
                        pos: n as u8,
                        visited: p.visited | (1 << n),
                        depth: p.depth + 1,
                    });
                }
            }
        }
        level = next;
    }
    level
}

/// Sequential reference count of complete tours (plus nodes visited).
pub fn count_sequential(board: usize) -> (u64, u64) {
    let mut nodes = 0;
    let tours = count_from(board, start(board), &mut nodes);
    (tours, nodes)
}

/// Prefix indices belonging to job `j` (round-robin interleave, which
/// balances the wildly varying subtree sizes across jobs).
pub fn job_members(nprefixes: usize, jobs: usize, j: usize) -> impl Iterator<Item = usize> {
    (j..nprefixes).step_by(jobs)
}

/// The engine-independent SPMD body; rank 0 returns the tour count.
pub fn body<A: ParallelApi>(ctx: &mut A, params: &KnightsParams) -> Option<u64> {
    let board = params.board;
    // Every rank enumerates the (small) prefix level deterministically;
    // the jobs and their results are coordinated through global memory.
    let pfx = prefixes(board, params.prefix_depth);
    let njobs = params.jobs;
    let results = GmArray::<i64>::alloc(ctx, njobs, Distribution::OnNode(NodeId(0)));
    let counter = GmCounter::alloc(ctx);
    ctx.barrier();
    loop {
        let j = counter.next(ctx);
        if j as usize >= njobs {
            break;
        }
        let mut tours = 0u64;
        let mut nodes = 0u64;
        for i in job_members(pfx.len(), njobs, j as usize) {
            tours += count_from(board, pfx[i], &mut nodes);
        }
        ctx.compute(Work::iops(nodes * NODE_IOPS));
        results.set(ctx, j as usize, tours as i64);
    }
    ctx.barrier();
    if ctx.rank() == 0 {
        let total: i64 = results.read(ctx, 0, njobs).iter().sum();
        Some(total as u64)
    } else {
        None
    }
}

/// Run the parallel tour count; returns the measured run and the count.
pub fn count_parallel(
    program: &DseProgram,
    nprocs: usize,
    params: KnightsParams,
) -> (RunResult, u64) {
    let capture: Capture<u64> = Capture::new();
    let cap = capture.clone();
    let result = program.run(nprocs, move |ctx| {
        if let Some(total) = body(ctx, &params) {
            cap.set(total);
        }
    });
    (result, capture.take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_api::Platform;

    #[test]
    fn five_by_five_tour_count_is_stable() {
        let (tours, nodes) = count_sequential(5);
        // Known result: 304 open tours start at a 5×5 corner.
        assert_eq!(tours, 304);
        assert!(nodes > 10_000, "search tree implausibly small: {nodes}");
    }

    #[test]
    fn prefixes_partition_the_search() {
        // Summing complete tours over any prefix level reproduces the total.
        let (total, _) = count_sequential(5);
        for depth in [2, 4, 6] {
            let sum: u64 = prefixes(5, depth)
                .iter()
                .map(|&p| {
                    let mut n = 0;
                    count_from(5, p, &mut n)
                })
                .sum();
            assert_eq!(sum, total, "prefix depth {depth}");
        }
    }

    #[test]
    fn prefix_level_large_enough_for_max_jobs() {
        let n = prefixes(5, KnightsParams::paper(256).prefix_depth).len();
        assert!(n >= 256, "only {n} prefixes at the paper prefix depth");
    }

    #[test]
    fn job_members_partition_indices() {
        let n = 103;
        for jobs in [1, 4, 16, 64] {
            let mut seen = vec![false; n];
            for j in 0..jobs {
                for i in job_members(n, jobs, j) {
                    assert!(!seen[i]);
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let (total, _) = count_sequential(5);
        let program = DseProgram::new(Platform::sunos_sparc());
        for jobs in [4, 16] {
            let (_, count) = count_parallel(&program, 3, KnightsParams::paper(jobs));
            assert_eq!(count, total, "jobs={jobs}");
        }
    }

    #[test]
    #[ignore = "calibration only"]
    fn calibration_nodes() {
        let t0 = std::time::Instant::now();
        let (tours, nodes) = count_sequential(5);
        eprintln!("5x5: {tours} tours, {nodes} nodes, {:?}", t0.elapsed());
        let pf = prefixes(5, 6);
        eprintln!("prefixes at depth 6: {}", pf.len());
    }
}
