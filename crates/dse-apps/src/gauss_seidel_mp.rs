//! Message-passing Gauss-Seidel: the PVM/MPI-style baseline.
//!
//! The paper positions DSE's shared-memory model against the portable
//! message-passing environments of the day (PVM \[5], MPI \[6]). This module
//! implements the *same* solver in explicit message-passing style — each
//! rank pushes its slice directly to every other rank instead of publishing
//! it in global memory for others to fetch — so the two programming models
//! can be compared on identical substrate (ablation A5).
//!
//! The numerical organization matches `gauss_seidel::body` exactly (refresh
//! from iteration k, sweep, publish, converge every `CHECK_EVERY` sweeps),
//! so the computed solutions are bit-identical; only the communication
//! pattern differs: one data message per (sender, receiver) pair per
//! iteration, versus the DSM's request/response pair per fetched slice.

use dse_api::{DseCtx, DseProgram, RunResult, Work};

use crate::common::Capture;
use crate::gauss_seidel::{generate, rows_of, GaussSeidelParams, Solution, CHECK_EVERY};

/// Tag space: slice exchanges use the iteration number; control messages
/// live above these bases.
const TAG_DELTA: u32 = 1 << 20;
const TAG_VERDICT: u32 = 1 << 21;
const TAG_RESULT: u32 = 1 << 22;

fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Work charged for one row sweep (identical to the DSM version's charge).
fn row_work(n: usize) -> Work {
    Work::flops(2 * n as u64 + 10) + Work::mem_bytes(8 * n as u64)
}

fn sweep_rows(sys: &crate::gauss_seidel::System, x: &mut [f64], lo: usize, hi: usize) -> f64 {
    // Same arithmetic as the DSM solver (kept in gauss_seidel; reproduced
    // here through the public data to avoid exposing internals).
    let n = sys.n;
    let mut delta: f64 = 0.0;
    for i in lo..hi {
        let mut sum = sys.b[i];
        let row = &sys.a[i * n..(i + 1) * n];
        for (j, (&a, &xj)) in row.iter().zip(x.iter()).enumerate() {
            if j != i {
                sum -= a * xj;
            }
        }
        let new = sum / row[i];
        delta = delta.max((new - x[i]).abs());
        x[i] = new;
    }
    delta
}

/// The SPMD body in message-passing style; rank 0 returns the solution.
pub fn body_mp(ctx: &mut DseCtx<'_>, params: &GaussSeidelParams) -> Option<Solution> {
    let sys = generate(params);
    let n = sys.n;
    let p = ctx.nprocs();
    let rank = ctx.rank() as usize;
    let (lo, hi) = rows_of(n, p, rank);
    // Make sure every rank is registered before the first send.
    ctx.barrier();
    let mut x = vec![0.0f64; n];
    let mut iters: usize = 0;
    let mut delta = f64::INFINITY;
    let mut local_delta: f64 = 0.0;
    while iters < params.max_iters && delta > params.eps {
        let tag = iters as u32;
        // Publish my current slice directly to every other rank.
        if hi > lo {
            let payload = encode_f64s(&x[lo..hi]);
            for r in 0..p {
                if r != rank {
                    ctx.send_to(ctx.pid_of_rank(r as u32), tag, payload.clone());
                }
            }
        }
        // Collect every other rank's slice for this iteration.
        for _ in 0..p - 1 {
            let msg = ctx.recv_user(Some(tag));
            let from_rank = msg.from.node().0 as usize;
            let (flo, fhi) = rows_of(n, p, from_rank);
            let vals = decode_f64s(&msg.data);
            assert_eq!(vals.len(), fhi - flo, "short slice from rank {from_rank}");
            x[flo..fhi].copy_from_slice(&vals);
        }
        // Sweep my rows.
        local_delta = local_delta.max(sweep_rows(&sys, &mut x, lo, hi));
        ctx.compute(row_work(n) * (hi - lo) as u64);
        iters += 1;
        // Periodic convergence: deltas to rank 0, verdict comes back.
        if iters.is_multiple_of(CHECK_EVERY) || iters == params.max_iters {
            let tag_d = TAG_DELTA + iters as u32;
            let tag_v = TAG_VERDICT + iters as u32;
            if rank == 0 {
                let mut max = local_delta;
                for _ in 0..p - 1 {
                    let m = ctx.recv_user(Some(tag_d));
                    max = max.max(f64::from_le_bytes(m.data.try_into().unwrap()));
                }
                ctx.compute(Work::flops(2 * p as u64));
                let verdict = max.to_le_bytes().to_vec();
                for r in 1..p {
                    ctx.send_to(ctx.pid_of_rank(r as u32), tag_v, verdict.clone());
                }
                delta = max;
            } else {
                ctx.send_to(
                    ctx.pid_of_rank(0),
                    tag_d,
                    local_delta.to_le_bytes().to_vec(),
                );
                let m = ctx.recv_user(Some(tag_v));
                delta = f64::from_le_bytes(m.data.try_into().unwrap());
            }
            local_delta = 0.0;
        }
    }
    // Gather the final vector at rank 0.
    if rank == 0 {
        for _ in 0..p - 1 {
            let m = ctx.recv_user(Some(TAG_RESULT));
            let from_rank = m.from.node().0 as usize;
            let (flo, fhi) = rows_of(n, p, from_rank);
            x[flo..fhi].copy_from_slice(&decode_f64s(&m.data));
        }
        Some(Solution { x, iters, delta })
    } else {
        if hi > lo {
            ctx.send_to(ctx.pid_of_rank(0), TAG_RESULT, encode_f64s(&x[lo..hi]));
        } else {
            ctx.send_to(ctx.pid_of_rank(0), TAG_RESULT, Vec::new());
        }
        None
    }
}

/// Run the message-passing solver; returns the measured run and solution.
pub fn solve_parallel_mp(
    program: &DseProgram,
    nprocs: usize,
    params: GaussSeidelParams,
) -> (RunResult, Solution) {
    let capture: Capture<Solution> = Capture::new();
    let cap = capture.clone();
    let result = program.run(nprocs, move |ctx| {
        if let Some(sol) = body_mp(ctx, &params) {
            cap.set(sol);
        }
    });
    (result, capture.take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss_seidel::{residual, solve_parallel, solve_sequential};
    use dse_api::Platform;

    #[test]
    fn mp_solver_converges_and_is_correct() {
        let params = GaussSeidelParams::paper(60);
        let program = DseProgram::new(Platform::linux_pentium2());
        let (run, sol) = solve_parallel_mp(&program, 3, params);
        assert!(sol.delta <= params.eps);
        assert!(run.secs() > 0.0);
        let sys = generate(&params);
        assert!(residual(&sys, &sol.x) < 1e-6);
        // No global-memory traffic at all in the MP version (the barrier
        // and the user messages are the only runtime services used).
        assert_eq!(run.stats.gm_remote_reads, 0);
        assert_eq!(run.stats.gm_remote_writes, 0);
    }

    #[test]
    fn mp_and_dsm_solutions_are_identical() {
        let params = GaussSeidelParams::paper(80);
        let program = DseProgram::new(Platform::sunos_sparc());
        let (_, dsm) = solve_parallel(&program, 4, params);
        let (_, mp) = solve_parallel_mp(&program, 4, params);
        assert_eq!(dsm.iters, mp.iters);
        assert_eq!(dsm.x, mp.x, "same numerical organization, same bits");
    }

    #[test]
    fn mp_single_rank_matches_sequential_sweeps() {
        let params = GaussSeidelParams::paper(40);
        let program = DseProgram::new(Platform::aix_rs6000());
        let (_, mp) = solve_parallel_mp(&program, 1, params);
        let seq = solve_sequential(&params);
        assert!(mp.iters >= seq.iters);
        assert!(mp.delta <= params.eps);
    }
}
