//! Property tests for the workload kernels: algorithmic invariants that
//! must hold for any input, independent of the cluster runtime.

use proptest::prelude::*;

use dse_apps::dct::{compress_sequential, decompress, zigzag, DctParams};
use dse_apps::gauss_seidel::{generate, residual, solve_sequential, GaussSeidelParams};
use dse_apps::image::{psnr, Image};
use dse_apps::knights::{count_from, count_sequential, job_members, prefixes};
use dse_apps::othello::{
    alphabeta, assemble, make_tasks, midgame, minimax, pick_best, root_scores, run_task,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alphabeta_equals_minimax_on_random_positions(
        plies in 4usize..20,
        seed in any::<u64>(),
        depth in 1u32..4,
    ) {
        let b = midgame(plies, seed);
        let mut n1 = 0;
        let mut n2 = 0;
        let ab = alphabeta(b, depth, i32::MIN + 1, i32::MAX - 1, &mut n1);
        let mm = minimax(b, depth, &mut n2);
        prop_assert_eq!(ab, mm);
        prop_assert!(n1 <= n2);
    }

    #[test]
    fn task_decomposition_is_exact_for_any_position(
        plies in 4usize..16,
        seed in any::<u64>(),
        depth in 2u32..5,
    ) {
        let b = midgame(plies, seed);
        if dse_apps::othello::legal_moves(b) == 0 {
            return Ok(());
        }
        let tasks = make_tasks(b, depth);
        let values: Vec<i32> = tasks.iter().map(|&t| run_task(b, depth, t).0).collect();
        let mut got = assemble(&tasks, &values);
        got.sort_unstable();
        let (mut want, _) = root_scores(b, depth);
        want.sort_unstable();
        prop_assert_eq!(&got, &want);
        // And the chosen move is one of the root moves with the max score.
        let best = pick_best(&got);
        let max = want.iter().map(|&(_, v)| v).max().unwrap();
        prop_assert_eq!(best.1, max);
    }

    #[test]
    fn dct_reconstruction_quality_bounded(seed in any::<u64>(), block_sel in 0usize..3) {
        let block = [4, 8, 16][block_sel];
        let params = DctParams { size: 32, block, keep: 0.25, seed };
        let c = compress_sequential(&params);
        let rec = decompress(&c);
        let orig = Image::synthetic(32, seed);
        // Keeping the low-frequency quarter must stay comfortably above
        // "noise" reconstruction quality.
        prop_assert!(psnr(&orig, &rec) > 18.0);
    }

    #[test]
    fn zigzag_is_a_permutation(b in 1usize..24) {
        let zz = zigzag(b);
        prop_assert_eq!(zz.len(), b * b);
        let mut seen = vec![false; b * b];
        for (u, v) in zz {
            prop_assert!(u < b && v < b);
            prop_assert!(!seen[u * b + v]);
            seen[u * b + v] = true;
        }
    }

    #[test]
    fn knights_total_invariant_under_any_job_grouping(jobs in 1usize..300) {
        let (total, _) = count_sequential(5);
        let pfx = prefixes(5, 6);
        let mut sum = 0u64;
        for j in 0..jobs {
            for i in job_members(pfx.len(), jobs, j) {
                let mut nodes = 0;
                sum += count_from(5, pfx[i], &mut nodes);
            }
        }
        prop_assert_eq!(sum, total);
    }

    #[test]
    fn gauss_converges_for_any_seed(n in 5usize..40, seed in any::<u64>()) {
        let params = GaussSeidelParams { n, eps: 1e-8, max_iters: 200, seed };
        let sol = solve_sequential(&params);
        prop_assert!(sol.iters < params.max_iters, "no convergence");
        let sys = generate(&params);
        prop_assert!(residual(&sys, &sol.x) < 1e-6);
    }
}
