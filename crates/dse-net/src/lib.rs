//! # dse-net — the cluster interconnect models
//!
//! The 1999 testbed is a 10 Mbps **bus-type Ethernet**: one shared medium,
//! CSMA/CD arbitration, and packet collisions that grow with communication
//! frequency (the paper blames exactly this for the Knight's-Tour slowdown
//! beyond four processors). This crate models that LAN and the alternatives
//! the paper's conclusion points toward:
//!
//! * [`EthernetBus`] — shared bus with truncated binary exponential backoff;
//! * [`SwitchedFabric`] — full-duplex switched "high-speed network";
//! * [`Protocol`]/[`ProtocolModel`] — TCP/IP, UDP and raw-Ethernet software
//!   stacks (the revised DSE is protocol-independent, so the stack is a
//!   parameter, not an assumption);
//! * [`Network`] — the facade that segments messages into frames
//!   ([`frame`]) and books them on the fabric.
//!
//! All models are *timing* models: they answer "when does this message
//! arrive", while the actual bytes travel through the simulation engine's
//! envelopes.

#![warn(missing_docs)]

mod ethernet;
pub mod frame;
mod model;
mod protocol;
mod switch;

pub use ethernet::{BusStats, EthernetBus, TxTiming, ETHERNET_100MBPS, ETHERNET_10MBPS};
pub use model::{MsgTiming, Network};
pub use protocol::{Protocol, ProtocolModel};
pub use switch::{SwitchStats, SwitchedFabric};
