//! Shared-bus 10BASE Ethernet with CSMA/CD contention.
//!
//! The paper's testbed LAN is a bus-type Ethernet; the Knight's-Tour
//! analysis explicitly blames growing *packet collisions* for the speed
//! decrease once communication frequency rises. This model reproduces that
//! mechanism: a single shared medium serializes all frames, and a frame that
//! arrives while the medium is busy suffers truncated-binary-exponential
//! backoff proportional to the number of frames already queued — idle bus is
//! cheap, saturated bus is disproportionately slow.

use std::collections::VecDeque;

use dse_obs::{BusInterval, BusSampler};
use dse_sim::{SimDuration, SimRng, SimTime};

/// When one transmission finishes and where another begins.
#[derive(Debug, Clone, Copy)]
pub struct TxTiming {
    /// When the frame's transmission began.
    pub start: SimTime,
    /// When the last bit left the wire (receiver has the frame).
    pub end: SimTime,
    /// Collision/backoff rounds this frame suffered.
    pub collisions: u32,
}

/// Aggregate bus statistics.
#[derive(Debug, Clone, Default)]
pub struct BusStats {
    /// Frames carried.
    pub frames: u64,
    /// Total wire bytes carried (headers included).
    pub wire_bytes: u64,
    /// Total collision/backoff rounds.
    pub collisions: u64,
    /// Time wasted in backoff.
    pub backoff: SimDuration,
    /// Time the medium spent transmitting.
    pub busy: SimDuration,
}

/// The shared bus.
#[derive(Debug)]
pub struct EthernetBus {
    bits_per_sec: f64,
    slot: SimDuration,
    ifg: SimDuration,
    busy_until: SimTime,
    /// Start times of booked-but-not-yet-started frames; its length is the
    /// contention level a new arrival sees.
    pending_starts: VecDeque<SimTime>,
    rng: SimRng,
    /// Running statistics.
    pub stats: BusStats,
    /// Per-interval activity samples (observability).
    sampler: BusSampler,
}

/// Classic 10 Mbps Ethernet parameters.
pub const ETHERNET_10MBPS: f64 = 10_000_000.0;
/// Fast-Ethernet rate, used by the "high-speed network" ablation.
pub const ETHERNET_100MBPS: f64 = 100_000_000.0;

const PREAMBLE_BITS: u64 = 64;
/// Cap on the backoff exponent. Real stations sum several exponential
/// retry rounds, but measured shared-Ethernet throughput under sustained
/// load stays near 60–90% of capacity — collisions resolve within a few
/// slot times per frame thanks to carrier sense and capture. A bounded
/// single draw reproduces that graceful degradation; an unbounded sum
/// would (incorrectly) collapse the medium under bursts.
const MAX_BACKOFF_EXP: u32 = 3;

impl EthernetBus {
    /// A bus of the given raw bit rate. `seed` drives backoff jitter.
    pub fn new(bits_per_sec: f64, seed: u64) -> EthernetBus {
        assert!(bits_per_sec > 0.0);
        // Slot time is 512 bit times; inter-frame gap is 96 bit times.
        let bit = 1.0 / bits_per_sec;
        EthernetBus {
            bits_per_sec,
            slot: SimDuration::from_secs_f64(512.0 * bit),
            ifg: SimDuration::from_secs_f64(96.0 * bit),
            busy_until: SimTime::ZERO,
            pending_starts: VecDeque::new(),
            rng: SimRng::new(seed),
            stats: BusStats::default(),
            sampler: BusSampler::default(),
        }
    }

    /// Raw wire time of a frame of `wire_bytes` (preamble included).
    pub fn frame_time(&self, wire_bytes: usize) -> SimDuration {
        let bits = wire_bytes as u64 * 8 + PREAMBLE_BITS;
        SimDuration::from_secs_f64(bits as f64 / self.bits_per_sec)
    }

    /// Book one frame arriving at the NIC at `now`; returns its timing.
    ///
    /// Calls must be made in non-decreasing `now` order (the deterministic
    /// engine guarantees this).
    pub fn transmit_frame(&mut self, now: SimTime, wire_bytes: usize) -> TxTiming {
        // Frames whose transmission already began are no longer contenders.
        while let Some(&s) = self.pending_starts.front() {
            if s <= now {
                self.pending_starts.pop_front();
            } else {
                break;
            }
        }

        let frame_time = self.frame_time(wire_bytes);
        let queue_depth = self.pending_starts.len() as u64;
        let (start, collisions, backoff) =
            if now >= self.busy_until && self.pending_starts.is_empty() {
                (now, 0, SimDuration::ZERO)
            } else {
                // Carrier busy: pay one bounded backoff draw whose exponent
                // grows with the number of stations already contending.
                let contenders = self.pending_starts.len() as u32;
                let rounds = (contenders + 1).min(6);
                let exp = (contenders + 1).min(MAX_BACKOFF_EXP);
                let slots = self.rng.gen_range(1u64 << exp);
                let backoff = self.slot * slots;
                self.stats.backoff += backoff;
                (self.busy_until.max(now) + backoff, rounds, backoff)
            };

        let end = start + frame_time;
        self.busy_until = end + self.ifg;
        self.pending_starts.push_back(start);
        self.stats.frames += 1;
        self.stats.wire_bytes += wire_bytes as u64;
        self.stats.collisions += collisions as u64;
        self.stats.busy += frame_time;
        self.sampler.record_frame(
            start.as_nanos(),
            end.as_nanos(),
            wire_bytes as u64,
            collisions as u64,
            backoff.as_nanos(),
            queue_depth,
        );
        TxTiming {
            start,
            end,
            collisions,
        }
    }

    /// Per-interval activity samples recorded so far.
    pub fn intervals(&self) -> &[BusInterval] {
        self.sampler.intervals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> EthernetBus {
        EthernetBus::new(ETHERNET_10MBPS, 1)
    }

    #[test]
    fn idle_bus_starts_immediately() {
        let mut b = bus();
        let t = b.transmit_frame(SimTime::from_nanos(1000), 64);
        assert_eq!(t.start, SimTime::from_nanos(1000));
        assert_eq!(t.collisions, 0);
        // 64B*8 + 64 preamble bits = 576 bits @10Mbps = 57.6us
        assert_eq!((t.end - t.start).as_nanos(), 57_600);
    }

    #[test]
    fn back_to_back_frames_never_overlap() {
        let mut b = bus();
        let now = SimTime::ZERO;
        let mut prev_end = SimTime::ZERO;
        for _ in 0..20 {
            let t = b.transmit_frame(now, 1518);
            assert!(t.start >= prev_end, "transmissions overlapped");
            prev_end = t.end;
        }
    }

    #[test]
    fn contention_causes_collisions_and_delay() {
        let mut idle_total = SimDuration::ZERO;
        {
            // Spread arrivals: no contention.
            let mut b = bus();
            let mut now = SimTime::ZERO;
            for _ in 0..10 {
                let t = b.transmit_frame(now, 1518);
                idle_total += t.end - now;
                now = t.end + SimDuration::from_millis(10);
            }
            assert_eq!(b.stats.collisions, 0);
        }
        // Simultaneous arrivals: collisions and extra latency.
        let mut b = bus();
        let mut last_end = SimTime::ZERO;
        for _ in 0..10 {
            let t = b.transmit_frame(SimTime::ZERO, 1518);
            last_end = last_end.max(t.end);
        }
        assert!(b.stats.collisions > 0, "expected collisions under load");
        assert!(b.stats.backoff > SimDuration::ZERO);
        let ft = b.frame_time(1518);
        assert!(
            last_end.as_nanos() > ft.as_nanos() * 10,
            "contention should cost more than serialized frames alone"
        );
    }

    #[test]
    fn faster_bus_is_faster() {
        let mut slow = EthernetBus::new(ETHERNET_10MBPS, 1);
        let mut fast = EthernetBus::new(ETHERNET_100MBPS, 1);
        let ts = slow.transmit_frame(SimTime::ZERO, 1518);
        let tf = fast.transmit_frame(SimTime::ZERO, 1518);
        assert!((tf.end - tf.start).as_nanos() < (ts.end - ts.start).as_nanos());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut b = EthernetBus::new(ETHERNET_10MBPS, 99);
            (0..50)
                .map(|i| {
                    b.transmit_frame(SimTime::from_nanos(i * 10_000), 500)
                        .end
                        .as_nanos()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_accumulate() {
        let mut b = bus();
        b.transmit_frame(SimTime::ZERO, 100);
        b.transmit_frame(SimTime::ZERO, 200);
        assert_eq!(b.stats.frames, 2);
        assert_eq!(b.stats.wire_bytes, 300);
    }
}
