//! Message segmentation into wire frames.

/// Split a message of `len` payload bytes into frame payload sizes, each at
/// most `max_payload`. A zero-length message still occupies one (minimum
/// size) frame — acknowledgements are real traffic.
pub fn segment(len: usize, max_payload: usize) -> Vec<usize> {
    assert!(max_payload > 0, "max_payload must be positive");
    if len == 0 {
        return vec![0];
    }
    let full = len / max_payload;
    let rest = len % max_payload;
    let mut frames = vec![max_payload; full];
    if rest > 0 {
        frames.push(rest);
    }
    frames
}

/// Number of frames `segment` would produce, without allocating.
pub fn frame_count(len: usize, max_payload: usize) -> usize {
    assert!(max_payload > 0, "max_payload must be positive");
    if len == 0 {
        1
    } else {
        len.div_ceil(max_payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_is_one_frame() {
        assert_eq!(segment(0, 1460), vec![0]);
        assert_eq!(frame_count(0, 1460), 1);
    }

    #[test]
    fn exact_multiple() {
        assert_eq!(segment(2920, 1460), vec![1460, 1460]);
        assert_eq!(frame_count(2920, 1460), 2);
    }

    #[test]
    fn remainder_tail() {
        assert_eq!(segment(3000, 1460), vec![1460, 1460, 80]);
        assert_eq!(frame_count(3000, 1460), 3);
    }

    #[test]
    fn small_message_single_frame() {
        assert_eq!(segment(17, 1460), vec![17]);
    }

    #[test]
    fn counts_match_segments() {
        for len in [0usize, 1, 100, 1460, 1461, 9999, 65536] {
            assert_eq!(segment(len, 1460).len(), frame_count(len, 1460));
            let total: usize = segment(len, 1460).iter().sum();
            assert_eq!(total, len);
        }
    }
}
