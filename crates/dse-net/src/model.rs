//! The network facade: protocol segmentation over a bus or switched fabric.

use dse_sim::{SimDuration, SimTime};

use crate::ethernet::{EthernetBus, TxTiming, ETHERNET_10MBPS};
use crate::frame::segment;
use crate::protocol::{Protocol, ProtocolModel};
use crate::switch::SwitchedFabric;

/// Timing of a whole (possibly multi-frame) message transfer.
#[derive(Debug, Clone, Copy)]
pub struct MsgTiming {
    /// When the last frame fully arrived at the destination NIC.
    pub delivered_at: SimTime,
    /// Total wire bytes including all per-frame headers.
    pub wire_bytes: usize,
    /// Number of frames used.
    pub frames: usize,
    /// Collision rounds suffered across all frames (bus only).
    pub collisions: u32,
}

enum Fabric {
    Bus(EthernetBus),
    Switched(SwitchedFabric),
}

/// A cluster interconnect: a protocol model on top of a physical fabric.
///
/// ```
/// use dse_net::Network;
/// use dse_sim::SimTime;
///
/// let mut lan = Network::paper_lan(1);
/// let t = lan.send_message(SimTime::ZERO, 0, 1, 4000);
/// assert_eq!(t.frames, 3); // 1460-byte MSS segmentation
/// assert!(t.delivered_at.as_secs_f64() > 0.003); // >3 ms on 10 Mbps
/// ```
pub struct Network {
    proto: ProtocolModel,
    fabric: Fabric,
}

impl Network {
    /// The paper's LAN: 10 Mbps shared-bus Ethernet carrying TCP/IP.
    pub fn paper_lan(seed: u64) -> Network {
        Network::shared_bus(ETHERNET_10MBPS, Protocol::TcpIp, seed)
    }

    /// A shared-bus Ethernet at `bits_per_sec` with the given protocol.
    pub fn shared_bus(bits_per_sec: f64, protocol: Protocol, seed: u64) -> Network {
        Network {
            proto: ProtocolModel::of(protocol),
            fabric: Fabric::Bus(EthernetBus::new(bits_per_sec, seed)),
        }
    }

    /// A switched full-duplex fabric with `ports` machine ports.
    pub fn switched(
        ports: usize,
        bits_per_sec: f64,
        latency: SimDuration,
        protocol: Protocol,
    ) -> Network {
        Network {
            proto: ProtocolModel::of(protocol),
            fabric: Fabric::Switched(SwitchedFabric::new(ports, bits_per_sec, latency)),
        }
    }

    /// The protocol model in use.
    pub fn protocol(&self) -> &ProtocolModel {
        &self.proto
    }

    /// Book a `payload_len`-byte message from machine `src` to machine `dst`
    /// entering the NIC at `now`; frames are queued back-to-back.
    pub fn send_message(
        &mut self,
        now: SimTime,
        src: usize,
        dst: usize,
        payload_len: usize,
    ) -> MsgTiming {
        let mut delivered = now;
        let mut wire_bytes = 0;
        let mut collisions = 0;
        let payloads = segment(payload_len, self.proto.max_payload);
        let frames = payloads.len();
        let mut at = now;
        for p in payloads {
            let wb = self.proto.frame_wire_bytes(p);
            let t: TxTiming = match &mut self.fabric {
                Fabric::Bus(b) => b.transmit_frame(at, wb),
                Fabric::Switched(s) => s.transmit_frame(at, src, dst, wb),
            };
            wire_bytes += wb;
            collisions += t.collisions;
            delivered = delivered.max(t.end);
            // The next frame can only be offered once this one left the NIC.
            at = t.end;
        }
        MsgTiming {
            delivered_at: delivered,
            wire_bytes,
            frames,
            collisions,
        }
    }

    /// Total collision rounds so far (0 for switched fabrics).
    pub fn total_collisions(&self) -> u64 {
        match &self.fabric {
            Fabric::Bus(b) => b.stats.collisions,
            Fabric::Switched(_) => 0,
        }
    }

    /// Total frames carried so far.
    pub fn total_frames(&self) -> u64 {
        match &self.fabric {
            Fabric::Bus(b) => b.stats.frames,
            Fabric::Switched(s) => s.stats.frames,
        }
    }

    /// Total wire bytes carried so far.
    pub fn total_wire_bytes(&self) -> u64 {
        match &self.fabric {
            Fabric::Bus(b) => b.stats.wire_bytes,
            Fabric::Switched(s) => s.stats.wire_bytes,
        }
    }

    /// Per-interval bus activity samples (utilization, collisions, backoff,
    /// queue depth). Empty for switched fabrics, whose per-port links don't
    /// contend.
    pub fn bus_intervals(&self) -> Vec<dse_obs::BusInterval> {
        match &self.fabric {
            Fabric::Bus(b) => b.intervals().to_vec(),
            Fabric::Switched(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frame_message() {
        let mut n = Network::paper_lan(1);
        let t = n.send_message(SimTime::ZERO, 0, 1, 100);
        assert_eq!(t.frames, 1);
        assert_eq!(t.wire_bytes, 158); // 100 + 58 TCP/IP headers
        assert!(t.delivered_at > SimTime::ZERO);
    }

    #[test]
    fn large_message_segments() {
        let mut n = Network::paper_lan(1);
        let t = n.send_message(SimTime::ZERO, 0, 1, 4096);
        assert_eq!(t.frames, 3); // 1460+1460+1176
        assert_eq!(t.wire_bytes, 4096 + 3 * 58);
    }

    #[test]
    fn ack_still_costs_a_min_frame() {
        let mut n = Network::paper_lan(1);
        let t = n.send_message(SimTime::ZERO, 0, 1, 0);
        assert_eq!(t.frames, 1);
        assert_eq!(t.wire_bytes, 64);
    }

    #[test]
    fn switched_beats_bus_under_cross_traffic() {
        let mut bus = Network::paper_lan(7);
        let mut sw = Network::switched(
            6,
            100_000_000.0,
            SimDuration::from_micros(5),
            Protocol::TcpIp,
        );
        // Three disjoint pairs all sending at once.
        let mut bus_end = SimTime::ZERO;
        let mut sw_end = SimTime::ZERO;
        for (s, d) in [(0, 1), (2, 3), (4, 5)] {
            bus_end = bus_end.max(bus.send_message(SimTime::ZERO, s, d, 8000).delivered_at);
            sw_end = sw_end.max(sw.send_message(SimTime::ZERO, s, d, 8000).delivered_at);
        }
        assert!(sw_end < bus_end);
        assert_eq!(sw.total_collisions(), 0);
        assert!(bus.total_collisions() > 0);
    }

    #[test]
    fn later_frames_chain_after_earlier() {
        let mut n = Network::paper_lan(3);
        let a = n.send_message(SimTime::ZERO, 0, 1, 1460);
        let b = n.send_message(SimTime::ZERO, 2, 3, 1460);
        assert!(b.delivered_at >= a.delivered_at);
    }
}
