//! Protocol software-stack models.
//!
//! One goal of the revised DSE organization was to *eliminate dependency on
//! a specific communication protocol* so that the runtime could later
//! exploit "the raw performance of high-speed networks". We therefore make
//! the protocol a pluggable parameter: each variant scales the platform's
//! per-message / per-byte software costs and sets the per-frame header tax.

/// Which protocol stack carries DSE messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// TCP/IP over Ethernet — the stack the 1999 experiments used.
    TcpIp,
    /// UDP/IP with DSE-level reliability — lighter per-message processing.
    Udp,
    /// Raw Ethernet frames — the "exploit the raw network" future direction.
    RawEthernet,
}

/// Cost-model parameters for a protocol stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolModel {
    /// Which protocol this models.
    pub protocol: Protocol,
    /// Header + trailer bytes added to every frame on the wire
    /// (Ethernet 14 + FCS 4, plus IP/TCP/UDP headers as applicable).
    pub header_bytes: usize,
    /// Largest message payload carried in one frame.
    pub max_payload: usize,
    /// Multiplier on the platform's per-message protocol processing cost.
    pub per_msg_scale: f64,
    /// Multiplier on the platform's per-byte (copy/checksum) cost.
    pub per_byte_scale: f64,
}

impl ProtocolModel {
    /// Look up the model for a protocol.
    pub fn of(protocol: Protocol) -> ProtocolModel {
        match protocol {
            // Ethernet(18) + IP(20) + TCP(20) = 58 overhead bytes, MSS 1460.
            Protocol::TcpIp => ProtocolModel {
                protocol,
                header_bytes: 58,
                max_payload: 1460,
                per_msg_scale: 1.0,
                per_byte_scale: 1.0,
            },
            // Ethernet(18) + IP(20) + UDP(8) = 46 overhead bytes.
            Protocol::Udp => ProtocolModel {
                protocol,
                header_bytes: 46,
                max_payload: 1472,
                per_msg_scale: 0.60,
                per_byte_scale: 1.0,
            },
            // Ethernet(18) only; checksum offloaded to the NIC FCS.
            Protocol::RawEthernet => ProtocolModel {
                protocol,
                header_bytes: 18,
                max_payload: 1500,
                per_msg_scale: 0.25,
                per_byte_scale: 0.65,
            },
        }
    }

    /// Wire bytes for a single frame carrying `payload` message bytes.
    pub fn frame_wire_bytes(&self, payload: usize) -> usize {
        debug_assert!(payload <= self.max_payload);
        // Ethernet enforces a 64-byte minimum frame.
        (payload + self.header_bytes).max(64)
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self.protocol {
            Protocol::TcpIp => "TCP/IP",
            Protocol::Udp => "UDP/IP",
            Protocol::RawEthernet => "raw-ethernet",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_are_ranked_by_weight() {
        let tcp = ProtocolModel::of(Protocol::TcpIp);
        let udp = ProtocolModel::of(Protocol::Udp);
        let raw = ProtocolModel::of(Protocol::RawEthernet);
        assert!(tcp.per_msg_scale > udp.per_msg_scale);
        assert!(udp.per_msg_scale > raw.per_msg_scale);
        assert!(tcp.header_bytes > udp.header_bytes);
        assert!(udp.header_bytes > raw.header_bytes);
        assert!(raw.max_payload >= udp.max_payload);
    }

    #[test]
    fn minimum_frame_enforced() {
        let raw = ProtocolModel::of(Protocol::RawEthernet);
        assert_eq!(raw.frame_wire_bytes(1), 64);
        assert_eq!(raw.frame_wire_bytes(100), 118);
    }

    #[test]
    fn mss_plus_headers_fits_mtu() {
        for p in [Protocol::TcpIp, Protocol::Udp, Protocol::RawEthernet] {
            let m = ProtocolModel::of(p);
            // IP MTU 1500 + Ethernet 18 = 1518 max frame.
            assert!(m.frame_wire_bytes(m.max_payload) <= 1518);
        }
    }
}
