//! A switched, full-duplex fabric — the "high-speed network" the paper's
//! conclusion wants DSE to exploit. No shared medium, no collisions: each
//! machine has a dedicated ingress and egress port and the store-and-forward
//! switch adds a fixed latency.

use dse_sim::{SimDuration, SimTime};

use crate::ethernet::TxTiming;

/// Aggregate fabric statistics.
#[derive(Debug, Clone, Default)]
pub struct SwitchStats {
    /// Frames carried.
    pub frames: u64,
    /// Total wire bytes carried.
    pub wire_bytes: u64,
}

/// A non-blocking store-and-forward switch with per-port serialization.
#[derive(Debug)]
pub struct SwitchedFabric {
    bits_per_sec: f64,
    latency: SimDuration,
    tx_free: Vec<SimTime>,
    rx_free: Vec<SimTime>,
    /// Running statistics.
    pub stats: SwitchStats,
}

impl SwitchedFabric {
    /// A fabric with `ports` machine ports at the given line rate and
    /// store-and-forward latency.
    pub fn new(ports: usize, bits_per_sec: f64, latency: SimDuration) -> SwitchedFabric {
        assert!(bits_per_sec > 0.0);
        SwitchedFabric {
            bits_per_sec,
            latency,
            tx_free: vec![SimTime::ZERO; ports],
            rx_free: vec![SimTime::ZERO; ports],
            stats: SwitchStats::default(),
        }
    }

    /// Wire time of one frame at the line rate (preamble included).
    pub fn frame_time(&self, wire_bytes: usize) -> SimDuration {
        let bits = wire_bytes as u64 * 8 + 64;
        SimDuration::from_secs_f64(bits as f64 / self.bits_per_sec)
    }

    /// Book one frame from machine `src` to machine `dst` at `now`.
    pub fn transmit_frame(
        &mut self,
        now: SimTime,
        src: usize,
        dst: usize,
        wire_bytes: usize,
    ) -> TxTiming {
        let ft = self.frame_time(wire_bytes);
        let start = now.max(self.tx_free[src]);
        let into_switch = start + ft;
        self.tx_free[src] = into_switch;
        let out_start = (into_switch + self.latency).max(self.rx_free[dst]);
        let end = out_start + ft;
        self.rx_free[dst] = end;
        self.stats.frames += 1;
        self.stats.wire_bytes += wire_bytes as u64;
        TxTiming {
            start,
            end,
            collisions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> SwitchedFabric {
        SwitchedFabric::new(4, 100_000_000.0, SimDuration::from_micros(5))
    }

    #[test]
    fn disjoint_pairs_do_not_interfere() {
        let mut f = fabric();
        let a = f.transmit_frame(SimTime::ZERO, 0, 1, 1518);
        let b = f.transmit_frame(SimTime::ZERO, 2, 3, 1518);
        // Both start immediately: no shared medium.
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn same_source_serializes() {
        let mut f = fabric();
        let a = f.transmit_frame(SimTime::ZERO, 0, 1, 1518);
        let b = f.transmit_frame(SimTime::ZERO, 0, 2, 1518);
        assert!(b.start >= a.start + f.frame_time(1518));
    }

    #[test]
    fn same_destination_serializes_egress() {
        let mut f = fabric();
        let a = f.transmit_frame(SimTime::ZERO, 0, 3, 1518);
        let b = f.transmit_frame(SimTime::ZERO, 1, 3, 1518);
        assert!(b.end >= a.end + f.frame_time(1518));
        assert_eq!(b.collisions, 0);
    }

    #[test]
    fn latency_added_once() {
        let mut f = fabric();
        let t = f.transmit_frame(SimTime::ZERO, 0, 1, 64);
        let ft = f.frame_time(64);
        assert_eq!(t.end.as_nanos(), ft.as_nanos() * 2 + 5_000);
    }
}
