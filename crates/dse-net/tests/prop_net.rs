//! Property tests for the network models: physical invariants that must
//! hold for any traffic pattern.

use proptest::prelude::*;

use dse_net::{EthernetBus, Network, Protocol, SwitchedFabric, ETHERNET_10MBPS};
use dse_sim::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bus_transmissions_never_overlap(
        arrivals in proptest::collection::vec((0u64..5_000_000, 64usize..1519), 1..60),
    ) {
        // Arrivals must be offered in non-decreasing time order (the
        // deterministic engine guarantees that); sizes arbitrary.
        let mut arrivals = arrivals;
        arrivals.sort_by_key(|&(t, _)| t);
        let mut bus = EthernetBus::new(ETHERNET_10MBPS, 42);
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for (t, bytes) in arrivals {
            let tx = bus.transmit_frame(SimTime::from_nanos(t), bytes);
            prop_assert!(tx.start >= SimTime::from_nanos(t), "time travel");
            prop_assert!(tx.end > tx.start);
            intervals.push((tx.start.as_nanos(), tx.end.as_nanos()));
        }
        // One shared medium: transmissions are totally ordered and disjoint.
        for w in intervals.windows(2) {
            prop_assert!(w[1].0 >= w[0].1, "overlap: {:?}", w);
        }
    }

    #[test]
    fn bus_frame_time_is_linear_in_bytes(bytes in 64usize..1519) {
        let bus = EthernetBus::new(ETHERNET_10MBPS, 1);
        let ft = bus.frame_time(bytes);
        // 8 bits/byte + 64 preamble bits at 10 Mbps = 100 ns/bit.
        prop_assert_eq!(ft.as_nanos(), (bytes as u64 * 8 + 64) * 100);
    }

    #[test]
    fn switch_ports_serialize(
        frames in proptest::collection::vec((0usize..4, 0usize..4, 64usize..1519), 1..40),
    ) {
        let mut fabric = SwitchedFabric::new(4, 100_000_000.0, SimDuration::from_micros(5));
        let mut per_src: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 4];
        let mut per_dst: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 4];
        for (src, dst, bytes) in frames {
            let tx = fabric.transmit_frame(SimTime::ZERO, src, dst, bytes);
            let ft = fabric.frame_time(bytes).as_nanos();
            per_src[src].push((tx.start.as_nanos(), tx.start.as_nanos() + ft));
            per_dst[dst].push((tx.end.as_nanos() - ft, tx.end.as_nanos()));
            prop_assert_eq!(tx.collisions, 0);
        }
        // Egress (tx) side of each source port is serialized.
        for list in &per_src {
            for w in list.windows(2) {
                prop_assert!(w[1].0 >= w[0].1, "src port overlap: {:?}", w);
            }
        }
        // Ingress (rx) side of each destination port is serialized.
        for list in &per_dst {
            for w in list.windows(2) {
                prop_assert!(w[1].0 >= w[0].1, "dst port overlap: {:?}", w);
            }
        }
    }

    #[test]
    fn message_timing_monotone_in_size(
        base in 0usize..4096,
        extra in 1usize..4096,
    ) {
        // A bigger message on a fresh network never arrives earlier.
        let t_small = Network::shared_bus(ETHERNET_10MBPS, Protocol::TcpIp, 9)
            .send_message(SimTime::ZERO, 0, 1, base)
            .delivered_at;
        let t_large = Network::shared_bus(ETHERNET_10MBPS, Protocol::TcpIp, 9)
            .send_message(SimTime::ZERO, 0, 1, base + extra)
            .delivered_at;
        prop_assert!(t_large >= t_small);
    }

    #[test]
    fn wire_bytes_account_for_headers(payload in 0usize..20_000) {
        let mut net = Network::shared_bus(ETHERNET_10MBPS, Protocol::TcpIp, 3);
        let t = net.send_message(SimTime::ZERO, 0, 1, payload);
        // TCP/IP: 58 header bytes per frame, 1460 MSS, min frame 64.
        let frames = if payload == 0 { 1 } else { payload.div_ceil(1460) };
        prop_assert_eq!(t.frames, frames);
        prop_assert!(t.wire_bytes >= payload);
        prop_assert!(t.wire_bytes <= payload + frames * 64);
    }
}
