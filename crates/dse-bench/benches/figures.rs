//! Regenerate every table and figure of the paper's evaluation (§4).
//!
//! Run with `cargo bench -p dse-bench --bench figures`. Useful arguments
//! (also honoured after cargo's own `--bench` flag):
//!
//! * `--quick`            reduced sweep (CI/smoke)
//! * `--app gauss|dct|othello|knights|ablations|tables`  restrict scope
//! * `--platform sunos|aix|linux`                        restrict platform
//! * `--verbose`          one progress line per simulated run
//! * `--metrics`          also drop metrics JSONL + Chrome trace per platform
//!
//! CSVs land in `bench_results/`.

use std::path::{Path, PathBuf};

use dse_api::Platform;
use dse_bench::checks;
use dse_bench::series::Figure;
use dse_bench::sweeps::{self, SweepCfg};
use dse_bench::{
    ablation_cache, ablation_hetero, ablation_model, ablation_org, ablation_proto,
    ablation_vcluster,
};

struct Opts {
    quick: bool,
    app: Option<String>,
    platform: Option<String>,
    verbose: bool,
    metrics: bool,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: std::env::var("DSE_BENCH_QUICK").is_ok(),
        app: None,
        platform: None,
        verbose: false,
        metrics: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--verbose" => opts.verbose = true,
            "--metrics" => opts.metrics = true,
            "--app" => opts.app = args.next(),
            "--platform" => opts.platform = args.next(),
            _ => {} // cargo bench passes --bench etc.
        }
    }
    opts
}

fn out_dir() -> PathBuf {
    // Workspace root if running under cargo, else cwd.
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../../bench_results"))
        .unwrap_or_else(|_| PathBuf::from("bench_results"))
}

fn emit(fig: &Figure, dir: &Path) {
    println!("{}", fig.render_text());
    if let Err(e) = fig.write_csv(dir) {
        eprintln!("warning: could not write CSV for {}: {e}", fig.id);
    }
}

fn main() {
    let opts = parse_opts();
    let mut cfg = if opts.quick {
        SweepCfg::quick()
    } else {
        SweepCfg::paper()
    };
    cfg.verbose = opts.verbose;
    let dir = out_dir();
    let platforms: Vec<Platform> = Platform::all()
        .into_iter()
        .filter(|p| opts.platform.as_deref().is_none_or(|want| want == p.id))
        .collect();
    let want = |app: &str| opts.app.as_deref().is_none_or(|w| w == app);
    let mut all_checks: Vec<checks::Check> = Vec::new();

    if want("tables") {
        println!("{}", sweeps::table1());
        println!("{}", sweeps::table2(12));
    }

    for platform in &platforms {
        if want("gauss") {
            eprintln!("[sweep] Gauss-Seidel on {}", platform.id);
            let (time_fig, speed_fig) = sweeps::gauss_figures(platform, &cfg);
            emit(&time_fig, &dir);
            emit(&speed_fig, &dir);
            all_checks.extend(checks::check_gauss(&speed_fig));
        }
        if want("dct") {
            eprintln!("[sweep] DCT-II on {}", platform.id);
            let (time_fig, speed_fig) = sweeps::dct_figures(platform, &cfg);
            emit(&time_fig, &dir);
            emit(&speed_fig, &dir);
            all_checks.extend(checks::check_dct(&speed_fig));
        }
        if want("othello") {
            eprintln!("[sweep] Othello on {}", platform.id);
            let (time_fig, speed_fig) = sweeps::othello_figures(platform, &cfg);
            emit(&time_fig, &dir);
            emit(&speed_fig, &dir);
            all_checks.extend(checks::check_othello(&speed_fig));
        }
        if want("knights") {
            eprintln!("[sweep] Knight's Tour on {}", platform.id);
            let (time_fig, speed_fig) = sweeps::knights_figures(platform, &cfg);
            emit(&time_fig, &dir);
            emit(&speed_fig, &dir);
            all_checks.extend(checks::check_knights(&speed_fig));
        }
    }

    if want("ablations") {
        // Ablations on the original DSE platform (SunOS/SparcStation).
        let platform = Platform::sunos_sparc();
        eprintln!("[sweep] ablations on {}", platform.id);
        let org = ablation_org(&platform, &cfg);
        emit(&org, &dir);
        all_checks.extend(checks::check_org(&org));
        let proto = ablation_proto(&platform, &cfg);
        emit(&proto, &dir);
        all_checks.extend(checks::check_proto(&proto));
        let vc = ablation_vcluster(&platform, &cfg);
        emit(&vc, &dir);
        all_checks.extend(checks::check_vcluster(&vc));
        let cache = ablation_cache(&platform, &cfg);
        emit(&cache, &dir);
        all_checks.extend(checks::check_cache(&cache));
        let model = ablation_model(&platform, &cfg);
        emit(&model, &dir);
        all_checks.extend(checks::check_model(&model));
        let hetero = ablation_hetero(&cfg);
        emit(&hetero, &dir);
        all_checks.extend(checks::check_hetero(&hetero));
    }

    if opts.metrics {
        for platform in &platforms {
            eprintln!("[probe] observability run on {}", platform.id);
            let probe = dse_bench::observability_probe(platform, 6);
            let base = dir.join(format!("obs_gauss_{}", platform.id));
            if let Err(e) = std::fs::create_dir_all(&dir)
                .and_then(|()| {
                    std::fs::write(base.with_extension("metrics.jsonl"), &probe.metrics_jsonl)
                })
                .and_then(|()| {
                    std::fs::write(base.with_extension("metrics.csv"), &probe.metrics_csv)
                })
                .and_then(|()| {
                    std::fs::write(base.with_extension("trace.json"), &probe.chrome_trace)
                })
            {
                eprintln!("warning: could not write observability exports: {e}");
            }
        }
    }

    let (text, all_pass) = checks::render_checks(&all_checks);
    println!("== Shape checks (paper-reported behaviours) ==");
    print!("{text}");
    println!(
        "== {} / {} checks passed ==",
        all_checks.iter().filter(|c| c.pass).count(),
        all_checks.len()
    );
    if !all_pass {
        // Report but do not abort: partial sweeps (--quick/--app) may not
        // exercise every shape.
        eprintln!("note: some shape checks failed (see above)");
    }
}
