//! Criterion microbenches of the runtime's building blocks: wire codec,
//! network models, simulated runtime primitives (barrier, GM access, lock),
//! and the application kernels' raw compute rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dse_api::{Distribution, DseProgram, GmArray, Platform};
use dse_apps::{dct, knights, othello};
use dse_msg::{Message, NodeId, ReqId};
use dse_net::{EthernetBus, Network, ETHERNET_10MBPS};
use dse_sim::SimTime;

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    for size in [0usize, 64, 1460, 8192] {
        let msg = Message::GmReadResp {
            req: ReqId(77),
            data: vec![0xAB; size].into(),
        };
        g.bench_with_input(BenchmarkId::new("encode", size), &msg, |b, m| {
            b.iter(|| black_box(m.encode()))
        });
        let bytes = msg.encode();
        g.bench_with_input(BenchmarkId::new("decode", size), &bytes, |b, buf| {
            b.iter(|| black_box(Message::decode(buf).unwrap()))
        });
    }
    g.finish();
}

fn bench_network_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("network-model");
    g.bench_function("ethernet-frame-idle", |b| {
        let mut bus = EthernetBus::new(ETHERNET_10MBPS, 1);
        let mut t = 0u64;
        b.iter(|| {
            t += 10_000_000;
            black_box(bus.transmit_frame(SimTime::from_nanos(t), 1518))
        })
    });
    g.bench_function("network-send-message-4k", |b| {
        let mut net = Network::paper_lan(1);
        let mut t = 0u64;
        b.iter(|| {
            t += 50_000_000;
            black_box(net.send_message(SimTime::from_nanos(t), 0, 1, 4096))
        })
    });
    g.finish();
}

/// Wall-clock cost of simulating one runtime primitive end to end (these
/// measure the *simulator's* speed, i.e. how much host time one simulated
/// operation costs — the per-op virtual costs are what the figures report).
fn bench_sim_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated-runtime");
    g.bench_function("barrier-x100-p4", |b| {
        b.iter(|| {
            DseProgram::new(Platform::linux_pentium2()).run(4, |ctx| {
                for _ in 0..100 {
                    ctx.barrier();
                }
            })
        })
    });
    g.bench_function("remote-read-x100-p2", |b| {
        b.iter(|| {
            DseProgram::new(Platform::linux_pentium2()).run(2, |ctx| {
                let arr = GmArray::<u64>::alloc(ctx, 512, Distribution::OnNode(NodeId(0)));
                ctx.barrier();
                if ctx.rank() == 1 {
                    for _ in 0..100 {
                        black_box(arr.read(ctx, 0, 64));
                    }
                }
            })
        })
    });
    g.bench_function("lock-unlock-x100-p3", |b| {
        b.iter(|| {
            DseProgram::new(Platform::linux_pentium2()).run(3, |ctx| {
                for _ in 0..100 {
                    ctx.lock(1);
                    ctx.unlock(1);
                }
            })
        })
    });
    g.finish();
}

fn bench_app_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("app-kernels");
    g.bench_function("dct-block8-strip", |b| {
        let params = dct::DctParams {
            size: 512,
            block: 8,
            keep: 0.25,
            seed: 1,
        };
        b.iter(|| black_box(dct::compress_sequential(&params)))
    });
    g.bench_function("othello-alphabeta-d5", |b| {
        let bd = othello::midgame(12, 7);
        b.iter(|| {
            let mut n = 0;
            black_box(othello::alphabeta(
                bd,
                5,
                i32::MIN + 1,
                i32::MAX - 1,
                &mut n,
            ))
        })
    });
    g.bench_function("knights-5x5-full", |b| {
        b.iter(|| black_box(knights::count_sequential(5)))
    });
    g.finish();
}

fn short_config() -> Criterion {
    // Keep `cargo bench --workspace` wall time reasonable: these are
    // smoke-grade microbenches, not regression gates.
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_codec, bench_network_models, bench_sim_primitives, bench_app_kernels
}
criterion_main!(benches);
