//! Parameter sweeps regenerating every evaluation figure of the paper.
//!
//! Figure numbering follows the paper: Gauss-Seidel (Figs. 4–9), DCT-II
//! (Figs. 10–15), Othello (Figs. 16–18), Knight's Tour (Figs. 19–21), each
//! triple/sextuple covering SunOS/SparcStation, AIX/RS6000 and
//! Linux/Pentium-II. All runs execute on the deterministic simulated
//! cluster; "execution time" is the launcher-observed virtual time and
//! "speed improvement ratio" is T(1)/T(p), as in the paper.

use dse_api::{DseProgram, Platform};
use dse_apps::{dct, gauss_seidel, knights, othello};

use crate::series::{speedup_against_base, Figure, Series};

/// Sweep sizes. `paper()` is the full evaluation; `quick()` is a reduced
/// sweep for tests and smoke runs.
#[derive(Debug, Clone)]
pub struct SweepCfg {
    /// Processor counts for the Gauss-Seidel N-sweep figures.
    pub gauss_procs: Vec<usize>,
    /// System dimensions N.
    pub gauss_dims: Vec<usize>,
    /// Processor counts for the per-processor-axis figures.
    pub procs: Vec<usize>,
    /// DCT block sizes.
    pub dct_blocks: Vec<usize>,
    /// Othello search depths.
    pub othello_depths: Vec<u32>,
    /// Knight's-Tour job counts.
    pub knights_jobs: Vec<usize>,
    /// Print one progress line per simulated run.
    pub verbose: bool,
}

impl SweepCfg {
    /// The paper's full sweep.
    pub fn paper() -> SweepCfg {
        SweepCfg {
            gauss_procs: vec![1, 2, 4, 6, 8, 12],
            gauss_dims: (1..=9).map(|k| k * 100).collect(),
            procs: (1..=12).collect(),
            dct_blocks: vec![4, 8, 16, 32],
            othello_depths: (3..=8).collect(),
            knights_jobs: vec![4, 16, 64, 256],
            verbose: false,
        }
    }

    /// A reduced sweep for fast smoke checks.
    pub fn quick() -> SweepCfg {
        SweepCfg {
            gauss_procs: vec![1, 2, 4, 8],
            gauss_dims: vec![100, 400],
            procs: vec![1, 2, 4, 8],
            dct_blocks: vec![4, 16],
            othello_depths: vec![3, 5],
            knights_jobs: vec![4, 16, 256],
            verbose: false,
        }
    }
}

fn progress(cfg: &SweepCfg, msg: &str) {
    if cfg.verbose {
        eprintln!("  [run] {msg}");
    }
}

/// Paper figure numbers for `(app, platform)`; `.0` is the execution-time
/// figure, `.1` the speed-up figure (equal when the paper shows only one).
fn fig_ids(app: &str, platform: &Platform) -> (String, String) {
    let (t, s) = match (app, platform.id) {
        ("gauss", "sunos") => (4, 5),
        ("gauss", "aix") => (6, 7),
        ("gauss", "linux") => (8, 9),
        ("dct", "sunos") => (10, 11),
        ("dct", "aix") => (12, 13),
        ("dct", "linux") => (14, 15),
        ("othello", "sunos") => (16, 16),
        ("othello", "aix") => (17, 17),
        ("othello", "linux") => (18, 18),
        ("knights", "sunos") => (19, 19),
        ("knights", "aix") => (20, 20),
        ("knights", "linux") => (21, 21),
        _ => panic!("unknown app/platform {app}/{}", platform.id),
    };
    if t == s {
        (format!("fig{t}"), format!("fig{t}-speedup"))
    } else {
        (format!("fig{t}"), format!("fig{s}"))
    }
}

/// Gauss-Seidel sweep → (Fig. 4/6/8 execution time vs N, per-processor
/// series; Fig. 5/7/9 speed-up vs processors, per-N series).
pub fn gauss_figures(platform: &Platform, cfg: &SweepCfg) -> (Figure, Figure) {
    let program = DseProgram::new(platform.clone());
    // times[p-series] over x = N
    let mut time_series = Vec::new();
    // speedup needs per-N times over p.
    let mut per_n: Vec<(usize, Vec<(f64, f64)>)> =
        cfg.gauss_dims.iter().map(|&n| (n, Vec::new())).collect();
    for &p in &cfg.gauss_procs {
        let mut pts = Vec::new();
        for (i, &n) in cfg.gauss_dims.iter().enumerate() {
            progress(cfg, &format!("gauss {} N={n} p={p}", platform.id));
            let params = gauss_seidel::GaussSeidelParams::paper(n);
            let (run, sol) = gauss_seidel::solve_parallel(&program, p, params);
            assert!(sol.delta <= params.eps, "solver did not converge");
            pts.push((n as f64, run.secs()));
            per_n[i].1.push((p as f64, run.secs()));
        }
        time_series.push(Series::new(format!("{p}"), pts));
    }
    let speedup_series: Vec<Series> = per_n
        .into_iter()
        .map(|(n, pts)| {
            let base = pts
                .iter()
                .find(|&&(p, _)| p == 1.0)
                .map(|&(_, t)| t)
                .expect("p=1 required in gauss_procs");
            Series::new(
                format!("N={n}"),
                pts.into_iter().map(|(p, t)| (p, base / t)).collect(),
            )
        })
        .collect();
    let (tid, sid) = fig_ids("gauss", platform);
    (
        Figure {
            id: tid,
            title: format!("Gauss-Seidel on {} ({})", platform.os, platform.machine),
            xlabel: "N".into(),
            ylabel: "execution time [s] (series = processors)".into(),
            series: time_series,
        },
        Figure {
            id: sid,
            title: format!("Speed-up of Gauss-Seidel on {}", platform.os),
            xlabel: "procs".into(),
            ylabel: "speed improvement ratio (series = N)".into(),
            series: speedup_series,
        },
    )
}

/// DCT-II sweep → (Fig. 10/12/14 execution time vs processors, per-block
/// series; Fig. 11/13/15 speed-up vs processors).
pub fn dct_figures(platform: &Platform, cfg: &SweepCfg) -> (Figure, Figure) {
    let program = DseProgram::new(platform.clone());
    let mut time_series = Vec::new();
    for &b in &cfg.dct_blocks {
        let params = dct::DctParams::paper(b);
        let reference = dct::compress_sequential(&params);
        let mut pts = Vec::new();
        for &p in &cfg.procs {
            progress(cfg, &format!("dct {} block={b} p={p}", platform.id));
            let (run, out) = dct::compress_parallel(&program, p, params);
            assert_eq!(out, reference, "parallel DCT output diverged");
            pts.push((p as f64, run.secs()));
        }
        time_series.push(Series::new(format!("{b}x{b}"), pts));
    }
    let speedup = speedup_against_base(&time_series, 1.0);
    let (tid, sid) = fig_ids("dct", platform);
    (
        Figure {
            id: tid,
            title: format!("DCT-II on {} ({})", platform.os, platform.machine),
            xlabel: "procs".into(),
            ylabel: "execution time [s] (series = block size)".into(),
            series: time_series,
        },
        Figure {
            id: sid,
            title: format!("Speed-up of DCT-II on {}", platform.os),
            xlabel: "procs".into(),
            ylabel: "speed improvement ratio (series = block size)".into(),
            series: speedup,
        },
    )
}

/// Othello sweep → (execution time vs processors; Fig. 16/17/18 speed-up
/// vs processors, per-depth series).
pub fn othello_figures(platform: &Platform, cfg: &SweepCfg) -> (Figure, Figure) {
    let program = DseProgram::new(platform.clone());
    let mut time_series = Vec::new();
    for &d in &cfg.othello_depths {
        let params = othello::OthelloParams::paper(d);
        let (smv, sv, _) = othello::search_sequential(&params);
        let mut pts = Vec::new();
        for &p in &cfg.procs {
            progress(cfg, &format!("othello {} depth={d} p={p}", platform.id));
            let (run, best) = othello::search_parallel(&program, p, params);
            assert_eq!(best, (smv, sv), "parallel search result diverged");
            pts.push((p as f64, run.secs()));
        }
        time_series.push(Series::new(format!("Depth{d}"), pts));
    }
    let speedup = speedup_against_base(&time_series, 1.0);
    let (tid, sid) = fig_ids("othello", platform);
    (
        Figure {
            id: format!("{tid}-time"),
            title: format!("Othello game on {} (execution time)", platform.os),
            xlabel: "procs".into(),
            ylabel: "execution time [s] (series = depth)".into(),
            series: time_series,
        },
        Figure {
            id: sid,
            title: format!("Speed-up of Othello Game on {}", platform.os),
            xlabel: "procs".into(),
            ylabel: "execution improvement ratio (series = depth)".into(),
            series: speedup,
        },
    )
}

/// Knight's-Tour sweep → (Fig. 19/20/21 execution time vs processors,
/// per-job-count series; supplementary speed-up figure).
pub fn knights_figures(platform: &Platform, cfg: &SweepCfg) -> (Figure, Figure) {
    let program = DseProgram::new(platform.clone());
    let (reference, _) = knights::count_sequential(5);
    let mut time_series = Vec::new();
    for &jobs in &cfg.knights_jobs {
        let params = knights::KnightsParams::paper(jobs);
        let mut pts = Vec::new();
        for &p in &cfg.procs {
            progress(cfg, &format!("knights {} jobs={jobs} p={p}", platform.id));
            let (run, count) = knights::count_parallel(&program, p, params);
            assert_eq!(count, reference, "parallel tour count diverged");
            pts.push((p as f64, run.secs()));
        }
        time_series.push(Series::new(format!("{jobs}_Jobs"), pts));
    }
    let speedup = speedup_against_base(&time_series, 1.0);
    let (tid, sid) = fig_ids("knights", platform);
    (
        Figure {
            id: tid,
            title: format!("Knight's Tour Problem on {}", platform.os),
            xlabel: "procs".into(),
            ylabel: "execution time [s] (series = jobs)".into(),
            series: time_series,
        },
        Figure {
            id: sid,
            title: format!("Knight's Tour speed-up on {}", platform.os),
            xlabel: "procs".into(),
            ylabel: "speed improvement ratio (series = jobs)".into(),
            series: speedup,
        },
    )
}

/// Table 1: the experiment environments.
pub fn table1() -> String {
    let mut out = String::from("== Table 1: Experiment environments ==\n");
    out.push_str(&format!(
        "{:<12} {:<45} {:<22}\n",
        "Platform", "Machine", "OS"
    ));
    for p in Platform::all() {
        out.push_str(&format!("{:<12} {:<45} {:<22}\n", p.id, p.machine, p.os));
    }
    out
}

/// Table 2: machines used vs requested processors (virtual cluster rule).
pub fn table2(max_p: usize) -> String {
    use dse_platform::ClusterSpec;
    let mut out = String::from("== Table 2: machines vs processors (virtual cluster) ==\n");
    out.push_str(&format!(
        "{:<12} {:<16} {:<22}\n",
        "processors", "machines used", "max kernels/machine"
    ));
    for (p, used, colo) in ClusterSpec::table2_rows(dse_platform::PAPER_MACHINES, max_p) {
        out.push_str(&format!("{p:<12} {used:<16} {colo:<22}\n"));
    }
    out
}
