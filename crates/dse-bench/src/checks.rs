//! Mechanical shape checks: does each reproduced figure exhibit the
//! qualitative behaviour the paper reports? These are the "reproduction
//! passed" criteria recorded in EXPERIMENTS.md.

use crate::series::Figure;

/// Outcome of one shape check.
#[derive(Debug, Clone)]
pub struct Check {
    /// What was checked.
    pub name: String,
    /// Whether the reproduced data shows the paper's shape.
    pub pass: bool,
    /// Supporting numbers.
    pub detail: String,
}

impl Check {
    fn of(name: impl Into<String>, pass: bool, detail: String) -> Check {
        Check {
            name: name.into(),
            pass,
            detail,
        }
    }
}

fn speedup_at(fig: &Figure, label: &str, p: f64) -> f64 {
    fig.series_named(label)
        .unwrap_or_else(|| panic!("missing series '{label}' in {}", fig.id))
        .y_at(p)
        .unwrap_or_else(|| panic!("missing x={p} in series '{label}' of {}", fig.id))
}

/// §4.1: small N degrades with more processors; large N speeds up to the
/// mid-range and declines past 6 processors (virtual-cluster overload).
pub fn check_gauss(speedup_fig: &Figure) -> Vec<Check> {
    let small = speedup_fig
        .series
        .iter()
        .find(|s| s.label == "N=100")
        .or_else(|| speedup_fig.series.first())
        .expect("no series");
    let large = speedup_fig
        .series
        .iter()
        .rev()
        .find(|s| ["N=900", "N=800", "N=600", "N=400"].contains(&s.label.as_str()))
        .expect("no large-N series");
    let mut checks = Vec::new();
    checks.push(Check::of(
        format!("{}: small N gains little", speedup_fig.id),
        small.y_max() < 2.0,
        format!("max speedup for {} = {:.2}", small.label, small.y_max()),
    ));
    checks.push(Check::of(
        format!("{}: large N speeds up", speedup_fig.id),
        large.y_max() > 1.6 && large.y_max() > small.y_max() + 0.4,
        format!(
            "max speedup for {} = {:.2} (vs {} = {:.2})",
            large.label,
            large.y_max(),
            small.label,
            small.y_max()
        ),
    ));
    let best_p = large.argmax_x();
    checks.push(Check::of(
        format!("{}: peak in 3..=8 processors", speedup_fig.id),
        (3.0..=8.0).contains(&best_p),
        format!("{} peaks at p={best_p}", large.label),
    ));
    let at12 = large.y_at(12.0);
    if let Some(at12) = at12 {
        checks.push(Check::of(
            format!("{}: declines past 6 (virtual cluster)", speedup_fig.id),
            at12 < large.y_max() * 0.95,
            format!(
                "{}: peak {:.2} vs p=12 {:.2}",
                large.label,
                large.y_max(),
                at12
            ),
        ));
    }
    checks
}

/// §4.2: block 4×4 shows no useful speedup; larger blocks speed up, bigger
/// is better at high processor counts.
pub fn check_dct(speedup_fig: &Figure) -> Vec<Check> {
    // Evaluate at the physical-cluster peak (the paper's headline region);
    // past 6 processors the virtual-cluster dip sets in.
    let p = max_common_x(speedup_fig).min(6.0);
    // The LAN is 10 Mbps on every platform while the CPUs differ by ~7x,
    // so the faster machines necessarily see compressed speedups (the
    // *pattern* — larger block, better scaling — is what the paper claims
    // holds everywhere).
    let (t16, t32) = match speedup_fig.id.as_str() {
        "fig11" => (1.7, 2.4), // SunOS/SparcStation: slow CPU, strong scaling
        "fig13" => (1.3, 1.8), // AIX/RS6000
        _ => (1.15, 1.4),      // Linux/Pentium-II: fastest CPU, weakest ratio
    };
    let s4 = speedup_at(speedup_fig, "4x4", p);
    let mut checks = vec![Check::of(
        format!("{}: 4x4 gains little", speedup_fig.id),
        s4 < 1.6,
        format!("speedup(4x4, p={p}) = {s4:.2}"),
    )];
    if let (Some(s16), Some(s32)) = (
        speedup_fig.series_named("16x16").and_then(|s| s.y_at(p)),
        speedup_fig.series_named("32x32").and_then(|s| s.y_at(p)),
    ) {
        checks.push(Check::of(
            format!("{}: large blocks speed up", speedup_fig.id),
            s16 > t16 && s32 > t32,
            format!("speedup(16)={s16:.2} (>{t16}) speedup(32)={s32:.2} (>{t32}) at p={p}"),
        ));
        checks.push(Check::of(
            format!("{}: bigger block >= smaller", speedup_fig.id),
            s32 >= s16 * 0.9 && s16 > s4,
            format!("s32={s32:.2} s16={s16:.2} s4={s4:.2}"),
        ));
    }
    checks
}

/// §4.3: shallow depths show no improvement; deep searches do.
pub fn check_othello(speedup_fig: &Figure) -> Vec<Check> {
    let p = max_common_x(speedup_fig).min(8.0);
    let shallow = speedup_at(speedup_fig, "Depth3", p);
    let mut checks = vec![Check::of(
        format!("{}: depth 3 flat", speedup_fig.id),
        shallow < 1.5,
        format!("speedup(Depth3, p={p}) = {shallow:.2}"),
    )];
    if let Some(deep) = speedup_fig
        .series_named("Depth8")
        .or_else(|| speedup_fig.series_named("Depth7"))
        .or_else(|| speedup_fig.series_named("Depth5"))
    {
        let d = deep.y_at(p).unwrap_or(0.0);
        checks.push(Check::of(
            format!("{}: deep search speeds up", speedup_fig.id),
            d > 1.8 && d > shallow,
            format!("speedup({}, p={p}) = {d:.2}", deep.label),
        ));
    }
    checks
}

/// §4.4: a mid job count is most efficient; very few jobs go flat once
/// processors exceed the job count; very many jobs are the least efficient
/// at scale (communication frequency + collisions).
pub fn check_knights(speedup_fig: &Figure) -> Vec<Check> {
    // Compare at the physical-cluster peak: past 6 processors co-location
    // compresses all series together.
    let p = max_common_x(speedup_fig).min(6.0);
    let mut checks = Vec::new();
    let s16 = speedup_fig.series_named("16_Jobs").and_then(|s| s.y_at(p));
    let s4 = speedup_fig.series_named("4_Jobs").and_then(|s| s.y_at(p));
    let s256 = speedup_fig.series_named("256_Jobs").and_then(|s| s.y_at(p));
    if let (Some(s16), Some(s4), Some(s256)) = (s16, s4, s256) {
        checks.push(Check::of(
            format!("{}: 16 jobs beats 4 jobs at scale", speedup_fig.id),
            s16 > s4,
            format!("s16={s16:.2} s4={s4:.2} at p={p}"),
        ));
        checks.push(Check::of(
            format!("{}: 16 jobs beats 256 jobs", speedup_fig.id),
            s16 > s256,
            format!("s16={s16:.2} s256={s256:.2} at p={p}"),
        ));
    }
    if let Some(four) = speedup_fig.series_named("4_Jobs") {
        let at4 = four.y_at(4.0).unwrap_or(f64::NAN);
        let tail_max = four
            .points
            .iter()
            .filter(|&&(x, _)| x > 4.0)
            .map(|&(_, y)| y)
            .fold(f64::MIN, f64::max);
        if tail_max > f64::MIN {
            checks.push(Check::of(
                format!("{}: 4 jobs flat past 4 procs", speedup_fig.id),
                tail_max <= at4 * 1.15,
                format!("speedup(4_Jobs, p=4)={at4:.2}, max beyond={tail_max:.2}"),
            ));
        }
    }
    checks
}

/// A1: the legacy separate-process organization must be slower everywhere.
pub fn check_org(fig: &Figure) -> Vec<Check> {
    let new = fig.series_named("linked-library").expect("series");
    let old = fig.series_named("separate-process").expect("series");
    let all_slower = new
        .points
        .iter()
        .all(|&(x, y)| old.y_at(x).map(|o| o > y).unwrap_or(false));
    vec![Check::of(
        format!("{}: legacy slower at every p", fig.id),
        all_slower,
        format!(
            "new p=1 {:.3}s vs old p=1 {:.3}s",
            new.points[0].1, old.points[0].1
        ),
    )]
}

/// A2: lighter stacks and the switched fabric must not be slower than
/// TCP/IP on the bus at scale.
pub fn check_proto(fig: &Figure) -> Vec<Check> {
    let p = max_common_x(fig).min(8.0);
    let tcp = speedup_at(fig, "tcp-bus10", p);
    let raw = speedup_at(fig, "raw-bus10", p);
    let sw = speedup_at(fig, "tcp-switched100", p);
    vec![
        Check::of(
            format!("{}: raw Ethernet faster than TCP", fig.id),
            raw < tcp,
            format!("raw={raw:.3}s tcp={tcp:.3}s at p={p}"),
        ),
        Check::of(
            format!("{}: switched 100Mb faster than bus 10Mb", fig.id),
            sw < tcp,
            format!("switched={sw:.3}s bus={tcp:.3}s at p={p}"),
        ),
    ]
}

/// A6: the mixed cluster must land between the pure clusters, closer to
/// the fast one (dynamic tasking).
pub fn check_hetero(fig: &Figure) -> Vec<Check> {
    let p = max_common_x(fig);
    let slow = speedup_at(fig, "all-sparc", p);
    let fast = speedup_at(fig, "all-pentium2", p);
    let mixed = speedup_at(fig, "mixed", p);
    vec![Check::of(
        format!("{}: mixed cluster between pure clusters", fig.id),
        fast <= mixed && mixed <= slow,
        format!("fast {fast:.3}s <= mixed {mixed:.3}s <= slow {slow:.3}s at p={p}"),
    )]
}

/// A5: explicit message passing avoids the DSM's request round trips, so
/// it must not be slower at scale — DSE trades this overhead for the
/// shared-memory programming model.
pub fn check_model(fig: &Figure) -> Vec<Check> {
    let dsm = fig.series_named("dsm").expect("series");
    let mp = fig.series_named("message-passing").expect("series");
    let p = max_common_x(fig).min(6.0);
    let td = dsm.y_at(p).unwrap();
    let tm = mp.y_at(p).unwrap();
    vec![Check::of(
        format!("{}: message passing at least as fast at scale", fig.id),
        tm <= td * 1.05,
        format!("mp {tm:.3}s vs dsm {td:.3}s at p={p}"),
    )]
}

/// A4: the cache must win clearly on the read-mostly workload at scale.
pub fn check_cache(fig: &Figure) -> Vec<Check> {
    let plain = fig.series_named("request-response").expect("series");
    let cached = fig.series_named("gm-cache").expect("series");
    let p = max_common_x(fig).min(6.0);
    let tp = plain.y_at(p).unwrap();
    let tc = cached.y_at(p).unwrap();
    vec![Check::of(
        format!("{}: cache wins on read-mostly sharing", fig.id),
        tc * 2.0 < tp,
        format!("cached {tc:.3}s vs plain {tp:.3}s at p={p}"),
    )]
}

/// A3: with 12 real machines there is no co-location penalty at p=12.
pub fn check_vcluster(fig: &Figure) -> Vec<Check> {
    let six = fig.series_named("6-machines").expect("series");
    let twelve = fig.series_named("12-machines").expect("series");
    let p = max_common_x(fig);
    if p <= 6.0 {
        return vec![Check::of(
            format!("{}: needs p>6 to bite", fig.id),
            true,
            "sweep too small to exercise co-location".into(),
        )];
    }
    let t6 = six.y_at(p).unwrap();
    let t12 = twelve.y_at(p).unwrap();
    vec![Check::of(
        format!("{}: co-location costs time at p={p}", fig.id),
        t12 < t6,
        format!("6 machines {t6:.3}s vs 12 machines {t12:.3}s"),
    )]
}

fn max_common_x(fig: &Figure) -> f64 {
    fig.series
        .iter()
        .map(|s| s.points.iter().map(|&(x, _)| x).fold(f64::MIN, f64::max))
        .fold(f64::MAX, f64::min)
}

/// Render a check list; returns `(text, all_passed)`.
pub fn render_checks(checks: &[Check]) -> (String, bool) {
    let mut out = String::new();
    let mut all = true;
    for c in checks {
        all &= c.pass;
        out.push_str(&format!(
            "  [{}] {} — {}\n",
            if c.pass { "PASS" } else { "FAIL" },
            c.name,
            c.detail
        ));
    }
    (out, all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    fn fig(id: &str, series: Vec<Series>) -> Figure {
        Figure {
            id: id.into(),
            title: "t".into(),
            xlabel: "procs".into(),
            ylabel: "y".into(),
            series,
        }
    }

    #[test]
    fn gauss_check_passes_on_paper_shape() {
        let f = fig(
            "fig5",
            vec![
                Series::new("N=100", vec![(1.0, 1.0), (4.0, 0.3), (12.0, 0.1)]),
                Series::new(
                    "N=900",
                    vec![(1.0, 1.0), (4.0, 2.7), (6.0, 2.5), (12.0, 1.4)],
                ),
            ],
        );
        let checks = check_gauss(&f);
        assert_eq!(checks.len(), 4);
        assert!(checks.iter().all(|c| c.pass), "{checks:?}");
    }

    #[test]
    fn gauss_check_fails_on_wrong_shape() {
        // Speedup that keeps growing past 6 violates the virtual-cluster claim.
        let f = fig(
            "fig5",
            vec![
                Series::new("N=100", vec![(1.0, 1.0), (4.0, 0.5), (12.0, 0.2)]),
                Series::new(
                    "N=900",
                    vec![(1.0, 1.0), (4.0, 2.0), (6.0, 3.0), (12.0, 5.0)],
                ),
            ],
        );
        let checks = check_gauss(&f);
        assert!(checks.iter().any(|c| !c.pass));
    }

    #[test]
    fn dct_check_thresholds_are_platform_aware() {
        let mk = |id: &str| {
            fig(
                id,
                vec![
                    Series::new("4x4", vec![(1.0, 1.0), (6.0, 0.9)]),
                    Series::new("16x16", vec![(1.0, 1.0), (6.0, 1.2)]),
                    Series::new("32x32", vec![(1.0, 1.0), (6.0, 1.5)]),
                ],
            )
        };
        // 1.2/1.5 passes the Linux thresholds but not the SunOS ones.
        assert!(check_dct(&mk("fig15")).iter().all(|c| c.pass));
        assert!(check_dct(&mk("fig11")).iter().any(|c| !c.pass));
    }

    #[test]
    fn knights_check_flags_flat_16_jobs() {
        let f = fig(
            "fig19-speedup",
            vec![
                Series::new("4_Jobs", vec![(1.0, 1.0), (4.0, 3.6), (6.0, 3.5)]),
                Series::new("16_Jobs", vec![(1.0, 1.0), (4.0, 2.0), (6.0, 2.0)]),
                Series::new("256_Jobs", vec![(1.0, 1.0), (4.0, 2.5), (6.0, 2.5)]),
            ],
        );
        // 16 jobs losing to 4 jobs fails the "most efficient" claim.
        assert!(check_knights(&f).iter().any(|c| !c.pass));
    }

    #[test]
    fn render_checks_reports_pass_and_fail() {
        let checks = vec![
            Check::of("a", true, "ok".into()),
            Check::of("b", false, "bad".into()),
        ];
        let (text, all) = render_checks(&checks);
        assert!(!all);
        assert!(text.contains("[PASS] a"));
        assert!(text.contains("[FAIL] b"));
    }
}
