//! Observability probe: one fully instrumented reference run, exported in
//! every supported format.
//!
//! The figure harness calls this (under `--metrics`) to drop a metrics
//! JSONL/CSV pair and a Chrome trace next to the CSV figures, so a sweep
//! leaves behind not just the curves but a drill-down artifact for one
//! representative run per platform.

use dse_api::{DseConfig, DseProgram, Platform};
use dse_apps::gauss_seidel;

/// The export bundle of one instrumented run.
pub struct ObsProbe {
    /// Metrics as JSON Lines.
    pub metrics_jsonl: String,
    /// Metrics as CSV.
    pub metrics_csv: String,
    /// Chrome trace-event JSON (load in Perfetto / chrome://tracing).
    pub chrome_trace: String,
}

/// Run the paper's Gauss-Seidel workload (N=200) on `procs` processors of
/// `platform` with tracing enabled and return all observability exports.
pub fn observability_probe(platform: &Platform, procs: usize) -> ObsProbe {
    let program =
        DseProgram::new(platform.clone()).with_config(DseConfig::paper().with_tracing(true));
    let params = gauss_seidel::GaussSeidelParams::paper(200);
    let (run, _) = gauss_seidel::solve_parallel(&program, procs, params);
    ObsProbe {
        metrics_jsonl: run.metrics_jsonl(),
        metrics_csv: run.metrics_csv(),
        chrome_trace: run.chrome_trace_json(),
    }
}
