//! # dse-bench — regenerating the paper's evaluation
//!
//! For every table and figure in §4 of the paper this crate provides a
//! sweep that reruns the workload on the simulated cluster and emits the
//! same rows/series the paper plots, plus mechanical *shape checks* that
//! assert the qualitative findings (who wins, where curves bend) hold in
//! the reproduction. The `figures` bench target drives everything and
//! writes CSVs under `bench_results/`.

#![warn(missing_docs)]

pub mod ablations;
pub mod checks;
pub mod obs;
pub mod series;
pub mod sweeps;

pub use ablations::{
    ablation_cache, ablation_hetero, ablation_model, ablation_org, ablation_proto,
    ablation_vcluster,
};
pub use checks::{render_checks, Check};
pub use obs::{observability_probe, ObsProbe};
pub use series::{speedup_against_base, transpose, Figure, Series};
pub use sweeps::{
    dct_figures, gauss_figures, knights_figures, othello_figures, table1, table2, SweepCfg,
};
