//! Figure data structures, text rendering and CSV output.

use std::fmt::Write as _;
use std::path::Path;

/// One plotted line.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. `"4x4"`, `"Depth 6"`, `"N=500"`).
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// The maximum y over all points.
    pub fn y_max(&self) -> f64 {
        self.points.iter().map(|&(_, y)| y).fold(f64::MIN, f64::max)
    }

    /// The x of the maximum y.
    pub fn argmax_x(&self) -> f64 {
        self.points
            .iter()
            .fold(
                (f64::NAN, f64::MIN),
                |acc, &(x, y)| {
                    if y > acc.1 {
                        (x, y)
                    } else {
                        acc
                    }
                },
            )
            .0
    }
}

/// One reproduced figure (or one-axis table).
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier matching the paper, e.g. `"fig5"`.
    pub id: String,
    /// Human title, e.g. `"Speed-up of Gauss-Seidel on SunOS/SparcStation"`.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// The plotted lines.
    pub series: Vec<Series>,
}

impl Figure {
    /// Find a series by label.
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as an aligned text table (x column + one column per series).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} [{}] ==", self.title, self.id);
        let _ = write!(out, "{:>12}", self.xlabel);
        for s in &self.series {
            let _ = write!(out, "{:>14}", s.label);
        }
        out.push('\n');
        // Union of x values across series, sorted.
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        for x in xs {
            let _ = write!(out, "{x:>12.6}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, "{y:>14.6}");
                    }
                    None => {
                        let _ = write!(out, "{:>14}", "-");
                    }
                }
            }
            out.push('\n');
        }
        let _ = writeln!(out, "(y = {})", self.ylabel);
        out
    }

    /// Serialize as CSV: `x,<label>,<label>,...` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.xlabel);
        for s in &self.series {
            let _ = write!(out, ",{}", s.label);
        }
        out.push('\n');
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        for x in xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, ",{y}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Write the CSV under `dir/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// Turn execution-time series into speed-up series against the y at
/// `base_x` within each series (the paper's "speed improvement ratio":
/// T(1 processor) / T(p)).
pub fn speedup_against_base(times: &[Series], base_x: f64) -> Vec<Series> {
    times
        .iter()
        .map(|s| {
            let base = s
                .y_at(base_x)
                .unwrap_or_else(|| panic!("series '{}' lacks base x {base_x}", s.label));
            Series {
                label: s.label.clone(),
                points: s.points.iter().map(|&(x, y)| (x, base / y)).collect(),
            }
        })
        .collect()
}

/// Transpose series: given per-`a` series over x=`b`, produce per-`b`
/// series over x=`a` (used to re-slice one sweep for two figures).
pub fn transpose(series: &[Series], new_labels: impl Fn(f64) -> String) -> Vec<Series> {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    xs.iter()
        .map(|&x| {
            let pts: Vec<(f64, f64)> = series
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    s.y_at(x).map(|y| {
                        let a: f64 = s.label.parse().unwrap_or(i as f64);
                        (a, y)
                    })
                })
                .collect();
            Series::new(new_labels(x), pts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        Figure {
            id: "t".into(),
            title: "test".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![
                Series::new("a", vec![(1.0, 10.0), (2.0, 5.0)]),
                Series::new("b", vec![(1.0, 8.0)]),
            ],
        }
    }

    #[test]
    fn text_rendering_includes_all_points() {
        let t = fig().render_text();
        assert!(t.contains("10.0"));
        assert!(t.contains("8.0"));
        assert!(t.contains('-'), "missing point should render as dash");
    }

    #[test]
    fn csv_shape() {
        let csv = fig().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,8");
        assert_eq!(lines[2], "2,5,");
    }

    #[test]
    fn speedup_from_base() {
        let s = vec![Series::new("n", vec![(1.0, 10.0), (2.0, 5.0), (4.0, 4.0)])];
        let sp = speedup_against_base(&s, 1.0);
        assert_eq!(sp[0].points, vec![(1.0, 1.0), (2.0, 2.0), (4.0, 2.5)]);
    }

    #[test]
    fn transpose_reslices() {
        // Per-p series over x=N  →  per-N series over x=p.
        let per_p = vec![
            Series::new("1", vec![(100.0, 10.0), (200.0, 20.0)]),
            Series::new("2", vec![(100.0, 6.0), (200.0, 11.0)]),
        ];
        let per_n = transpose(&per_p, |n| format!("N={n}"));
        assert_eq!(per_n.len(), 2);
        assert_eq!(per_n[0].label, "N=100");
        assert_eq!(per_n[0].points, vec![(1.0, 10.0), (2.0, 6.0)]);
        assert_eq!(per_n[1].points, vec![(1.0, 20.0), (2.0, 11.0)]);
    }

    #[test]
    fn series_stats() {
        let s = Series::new("s", vec![(1.0, 1.0), (2.0, 9.0), (3.0, 4.0)]);
        assert_eq!(s.y_max(), 9.0);
        assert_eq!(s.argmax_x(), 2.0);
        assert_eq!(s.y_at(3.0), Some(4.0));
        assert_eq!(s.y_at(5.0), None);
    }
}
