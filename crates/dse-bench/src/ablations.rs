//! Ablations of the design choices the paper claims or motivates:
//! the new linked-library organization (vs the legacy separate kernel
//! process), protocol independence (TCP/IP vs lighter stacks vs a switched
//! high-speed network), and the virtual-cluster machine sharing.

use dse_api::{
    Distribution, DseConfig, DseProgram, GmArray, NetworkChoice, Organization, Platform,
    SimDuration, Work,
};
use dse_apps::gauss_seidel::{self, GaussSeidelParams};
use dse_apps::gauss_seidel_mp;
use dse_apps::knights::{self, KnightsParams};
use dse_msg::NodeId;
use dse_net::Protocol;

use crate::series::{Figure, Series};
use crate::sweeps::SweepCfg;

/// Reference workload for the ablations (a mid-size solver run: enough
/// communication for organization/protocol effects to show, enough
/// computation that the result is not pure overhead).
fn workload() -> GaussSeidelParams {
    GaussSeidelParams::paper(400)
}

fn run_times(program: &DseProgram, procs: &[usize]) -> Vec<(f64, f64)> {
    procs
        .iter()
        .map(|&p| {
            let (run, sol) = gauss_seidel::solve_parallel(program, p, workload());
            assert!(sol.delta <= workload().eps);
            (p as f64, run.secs())
        })
        .collect()
}

/// A1 — software organization: the paper's new linked-library DSE against
/// the legacy separate-kernel-process DSE (refs. \[3]\[4]); same workload, same
/// network, only the organization differs.
pub fn ablation_org(platform: &Platform, cfg: &SweepCfg) -> Figure {
    let mut series = Vec::new();
    for (label, org) in [
        ("linked-library", Organization::LinkedLibrary),
        ("separate-process", Organization::SeparateProcess),
    ] {
        let config = DseConfig {
            organization: org,
            ..DseConfig::paper()
        };
        let program = DseProgram::new(platform.clone()).with_config(config);
        series.push(Series::new(label, run_times(&program, &cfg.procs)));
    }
    Figure {
        id: format!("ablation-org-{}", platform.id),
        title: format!(
            "Software organization ablation (Gauss-Seidel N=400) on {}",
            platform.os
        ),
        xlabel: "procs".into(),
        ylabel: "execution time [s]".into(),
        series,
    }
}

/// A2 — protocol/network independence: TCP/IP, UDP and raw Ethernet over
/// the 10 Mbps bus, plus TCP/IP over a switched 100 Mbps fabric (the
/// "high-speed network" the conclusion aims at).
pub fn ablation_proto(platform: &Platform, cfg: &SweepCfg) -> Figure {
    let variants: Vec<(&str, DseConfig)> = vec![
        (
            "tcp-bus10",
            DseConfig::paper().with_protocol(Protocol::TcpIp),
        ),
        ("udp-bus10", DseConfig::paper().with_protocol(Protocol::Udp)),
        (
            "raw-bus10",
            DseConfig::paper().with_protocol(Protocol::RawEthernet),
        ),
        (
            "tcp-switched100",
            DseConfig::paper()
                .with_protocol(Protocol::TcpIp)
                .with_network(NetworkChoice::Switched(
                    100_000_000.0,
                    SimDuration::from_micros(5),
                )),
        ),
    ];
    let mut series = Vec::new();
    for (label, config) in variants {
        let program = DseProgram::new(platform.clone()).with_config(config);
        series.push(Series::new(label, run_times(&program, &cfg.procs)));
    }
    Figure {
        id: format!("ablation-proto-{}", platform.id),
        title: format!(
            "Protocol/network ablation (Gauss-Seidel N=400) on {}",
            platform.os
        ),
        xlabel: "procs".into(),
        ylabel: "execution time [s]".into(),
        series,
    }
}

/// A5 — programming model: DSE's shared global memory vs an explicit
/// message-passing implementation of the same solver (the PVM/MPI-style
/// alternative the paper's related work positions DSE against). Same
/// numerical organization, identical solutions; only the communication
/// pattern differs.
pub fn ablation_model(platform: &Platform, cfg: &SweepCfg) -> Figure {
    let params = workload();
    let program = DseProgram::new(platform.clone());
    let mut series = Vec::new();
    let dsm_pts: Vec<(f64, f64)> = cfg
        .procs
        .iter()
        .map(|&p| {
            let (run, sol) = gauss_seidel::solve_parallel(&program, p, params);
            assert!(sol.delta <= params.eps);
            (p as f64, run.secs())
        })
        .collect();
    series.push(Series::new("dsm", dsm_pts));
    let mp_pts: Vec<(f64, f64)> = cfg
        .procs
        .iter()
        .map(|&p| {
            let (run, sol) = gauss_seidel_mp::solve_parallel_mp(&program, p, params);
            assert!(sol.delta <= params.eps);
            (p as f64, run.secs())
        })
        .collect();
    series.push(Series::new("message-passing", mp_pts));
    Figure {
        id: format!("ablation-model-{}", platform.id),
        title: format!(
            "Programming-model ablation (Gauss-Seidel N=400) on {}",
            platform.os
        ),
        xlabel: "procs".into(),
        ylabel: "execution time [s]".into(),
        series,
    }
}

/// A6 — heterogeneous cluster (the paper's future work): the Knight's-Tour
/// workload on all-SPARC, mixed SPARC+Pentium-II, and all-Pentium-II
/// clusters of 4 machines. Dynamic tasking lets the mixed cluster track
/// the fast machines instead of the slow ones.
pub fn ablation_hetero(cfg: &SweepCfg) -> Figure {
    let variants: Vec<(&str, Vec<Platform>)> = vec![
        ("all-sparc", vec![Platform::sunos_sparc(); 4]),
        (
            "mixed",
            vec![
                Platform::sunos_sparc(),
                Platform::linux_pentium2(),
                Platform::sunos_sparc(),
                Platform::linux_pentium2(),
            ],
        ),
        ("all-pentium2", vec![Platform::linux_pentium2(); 4]),
    ];
    let (reference, _) = knights::count_sequential(5);
    let mut series = Vec::new();
    for (label, platforms) in variants {
        let program = DseProgram::heterogeneous(platforms);
        let pts = cfg
            .procs
            .iter()
            .filter(|&&p| p <= 4)
            .map(|&p| {
                let (run, count) = knights::count_parallel(&program, p, KnightsParams::paper(64));
                assert_eq!(count, reference);
                (p as f64, run.secs())
            })
            .collect();
        series.push(Series::new(label, pts));
    }
    Figure {
        id: "ablation-hetero".into(),
        title: "Heterogeneous-cluster ablation (Knight's Tour, 64 jobs)".into(),
        xlabel: "procs".into(),
        ylabel: "execution time [s]".into(),
        series,
    }
}

/// A4 — the global-memory cache extension on a read-mostly shared-table
/// workload (all ranks repeatedly scan a table homed on node 0) vs the
/// paper's plain request/response semantics.
pub fn ablation_cache(platform: &Platform, cfg: &SweepCfg) -> Figure {
    let scan = |ctx: &mut dse_api::DseCtx<'_>| {
        let arr = GmArray::<u64>::alloc(ctx, 4096, Distribution::OnNode(NodeId(0)));
        if ctx.rank() == 0 {
            let vals: Vec<u64> = (0..4096).map(|i| i * 7).collect();
            arr.write(ctx, 0, &vals);
        }
        ctx.barrier();
        let mut acc = 0u64;
        for _ in 0..10 {
            let v = arr.read(ctx, 0, 4096);
            acc = acc.wrapping_add(v.iter().sum::<u64>());
            ctx.compute(Work::iops(4096 * 4));
        }
        ctx.barrier();
        assert!(acc > 0);
    };
    let mut series = Vec::new();
    for (label, cache) in [("request-response", false), ("gm-cache", true)] {
        let config = DseConfig::paper().with_gm_cache(cache);
        let program = DseProgram::new(platform.clone()).with_config(config);
        let pts = cfg
            .procs
            .iter()
            .map(|&p| (p as f64, program.run(p, scan).secs()))
            .collect();
        series.push(Series::new(label, pts));
    }
    Figure {
        id: format!("ablation-cache-{}", platform.id),
        title: format!(
            "GM-cache ablation (read-mostly shared table) on {}",
            platform.os
        ),
        xlabel: "procs".into(),
        ylabel: "execution time [s]".into(),
        series,
    }
}

/// A3 — virtual cluster: the same processor counts on the paper's 6
/// machines (kernels share CPUs past 6) vs 12 machines (no sharing).
/// Uses the compute-bound Knight's-Tour workload (16 jobs) so the CPU
/// sharing — not the shared bus — is the variable under test.
pub fn ablation_vcluster(platform: &Platform, cfg: &SweepCfg) -> Figure {
    let (reference, _) = knights::count_sequential(5);
    let mut series = Vec::new();
    for machines in [6usize, 12] {
        let program = DseProgram::new(platform.clone())
            .with_config(DseConfig::paper().with_machines(machines));
        let pts = cfg
            .procs
            .iter()
            .map(|&p| {
                let (run, count) = knights::count_parallel(&program, p, KnightsParams::paper(16));
                assert_eq!(count, reference);
                (p as f64, run.secs())
            })
            .collect();
        series.push(Series::new(format!("{machines}-machines"), pts));
    }
    Figure {
        id: format!("ablation-vcluster-{}", platform.id),
        title: format!(
            "Virtual-cluster ablation (Knight's Tour, 16 jobs) on {}",
            platform.os
        ),
        xlabel: "procs".into(),
        ylabel: "execution time [s]".into(),
        series,
    }
}
