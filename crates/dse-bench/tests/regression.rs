//! Golden regression pins: exact simulated timings for a handful of small
//! runs. Every run is deterministic, so these values change only when the
//! cost models or the runtime's message patterns change — if you changed
//! those *intentionally*, update the pins (and re-check EXPERIMENTS.md);
//! if you didn't, you just caught a regression.

use dse_api::{DseConfig, DseProgram, Platform};
use dse_apps::{gauss_seidel, knights, othello};

fn pin(name: &str, got_ns: u64, want_ns: u64) {
    assert_eq!(
        got_ns, want_ns,
        "{name}: simulated time drifted (got {got_ns} ns, pinned {want_ns} ns).\n\
         If a cost-model or protocol change was intentional, update this pin\n\
         and re-run `cargo bench -p dse-bench --bench figures`."
    );
}

#[test]
fn pin_gauss_sunos_p4() {
    let params = gauss_seidel::GaussSeidelParams::paper(200);
    let program = DseProgram::new(Platform::sunos_sparc());
    let (run, _) = gauss_seidel::solve_parallel(&program, 4, params);
    pin("gauss-sunos-p4-n200", run.elapsed.as_nanos(), 356_604_870);
}

#[test]
fn pin_knights_linux_p6() {
    let program = DseProgram::new(Platform::linux_pentium2());
    let (run, count) = knights::count_parallel(&program, 6, knights::KnightsParams::paper(16));
    assert_eq!(count, 304);
    pin(
        "knights-linux-p6-16jobs",
        run.elapsed.as_nanos(),
        515_336_862,
    );
}

#[test]
fn pin_othello_legacy_vs_linked_gap() {
    // The organization gap itself is a stable, meaningful quantity.
    let params = othello::OthelloParams::paper(4);
    let linked = DseProgram::new(Platform::aix_rs6000());
    let legacy = DseProgram::new(Platform::aix_rs6000()).with_config(DseConfig::legacy());
    let (tl, _) = othello::search_parallel(&linked, 3, params);
    let (tg, _) = othello::search_parallel(&legacy, 3, params);
    assert!(tg.elapsed > tl.elapsed);
    // Gap must be substantial (legacy pays IPC per interaction) and bounded
    // (it is an overhead, not a different algorithm).
    let ratio = tg.elapsed.as_nanos() as f64 / tl.elapsed.as_nanos() as f64;
    assert!(
        (1.02..3.0).contains(&ratio),
        "organization overhead ratio {ratio:.3} out of expected band"
    );
}
