//! The program harness: build a simulated cluster, invoke the parallel
//! processes, run to completion, and report.
//!
//! This is the paper's *parallel process invocation/termination* module made
//! executable: a launcher process on node 0 sends `InvokeReq` to every
//! node's kernel, the kernels fork the DSE processes, and the launcher's
//! clock from first invocation to last `ExitNotice` is the **execution
//! time** every figure plots.

use std::sync::Arc;

use dse_kernel::kernel::{kernel_main, AppFactory};
use dse_kernel::netpath::{charge_recv, send_msg};
use dse_kernel::{ClusterShared, DseConfig, KernelStats, SimMsg, StallReport, TelemetryHook};
use dse_msg::{Message, NodeId, ReqIdGen};
use dse_obs::{
    chrome_trace_json, BusInterval, ChromeTraceInput, ClusterAggregator, MetricKey,
    MetricsSnapshot, NodeStatus, SpanRecord,
};
use dse_platform::{ClusterSpec, Platform, PAPER_MACHINES};
use dse_sim::{ProcCtx, SimDuration, SimReport, Simulator};

use crate::ctx::DseCtx;

/// Telemetry-plane results of a run (present when `DseConfig::telemetry`
/// was enabled).
#[derive(Debug, Clone)]
pub struct TelemetrySummary {
    /// The cluster rollup node 0's kernel rebuilt purely from in-band
    /// `Telemetry` deltas. On a clean shutdown it matches
    /// [`RunResult::metrics`] byte-for-byte.
    pub rollup: MetricsSnapshot,
    /// Aggregator-side health of every emitting PE (sequence numbers,
    /// gaps, stale drops, last-heard time).
    pub nodes: Vec<NodeStatus>,
    /// GM requests the stall watchdog flagged (empty on a healthy run).
    pub stalls: Vec<StallReport>,
    /// Flight-recorder JSONL dump: the ring captured when the watchdog
    /// first tripped (post-mortem), or the ring at shutdown on a clean
    /// run.
    pub flight_jsonl: Option<String>,
}

/// Everything a completed run reports.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Execution time of the parallel application (launcher-observed).
    pub elapsed: SimDuration,
    /// Number of processors (DSE kernels) used.
    pub nprocs: usize,
    /// Platform id (`"sunos"`, `"aix"`, `"linux"`).
    pub platform_id: &'static str,
    /// Runtime activity counters.
    pub stats: KernelStats,
    /// Frames the interconnect carried.
    pub net_frames: u64,
    /// Wire bytes the interconnect carried (headers included).
    pub net_wire_bytes: u64,
    /// Collision/backoff rounds on the shared bus (0 for switched fabrics).
    pub net_collisions: u64,
    /// The engine's report (trace hash, resource usage, completions).
    pub report: SimReport,
    /// Runtime counters per processor element, indexed by node id.
    pub per_pe_stats: Vec<KernelStats>,
    /// Observability metrics: named counters, gauges and latency
    /// histograms (includes the per-PE kernel-stats rollup).
    pub metrics: MetricsSnapshot,
    /// Completed message-level spans (request/response exchanges).
    pub spans: Vec<SpanRecord>,
    /// Per-interval shared-bus activity (empty for switched fabrics).
    pub bus_intervals: Vec<BusInterval>,
    /// Telemetry-plane results (`None` unless `DseConfig::telemetry` was
    /// enabled).
    pub telemetry: Option<TelemetrySummary>,
}

impl RunResult {
    /// Execution time in seconds.
    pub fn secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }

    /// The metrics as JSON Lines (see DESIGN.md for the schema).
    pub fn metrics_jsonl(&self) -> String {
        self.metrics.to_jsonl()
    }

    /// The metrics as CSV.
    pub fn metrics_csv(&self) -> String {
        self.metrics.to_csv()
    }

    /// The run as a Chrome trace-event JSON document (load in Perfetto):
    /// per-process timeline tracks (when tracing was enabled), GM-op span
    /// tracks, and bus-utilization counter tracks.
    pub fn chrome_trace_json(&self) -> String {
        let resource_names: Vec<String> = self
            .report
            .resources
            .iter()
            .map(|r| r.name.clone())
            .collect();
        chrome_trace_json(&ChromeTraceInput {
            trace: self.report.trace.as_ref(),
            resource_names: &resource_names,
            spans: &self.spans,
            bus: &self.bus_intervals,
        })
    }
}

/// A configured DSE program ready to run workloads.
#[derive(Clone)]
pub struct DseProgram {
    platform: Platform,
    machines: usize,
    machine_platforms: Option<Vec<Platform>>,
    config: DseConfig,
    telemetry_hook: Option<TelemetryHook>,
}

impl std::fmt::Debug for DseProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DseProgram")
            .field("platform", &self.platform)
            .field("machines", &self.machines)
            .field("machine_platforms", &self.machine_platforms)
            .field("config", &self.config)
            .field(
                "telemetry_hook",
                &self.telemetry_hook.as_ref().map(|_| "fn"),
            )
            .finish()
    }
}

impl DseProgram {
    /// A program on the given platform with the paper's 6-machine cluster
    /// and default (paper) configuration.
    pub fn new(platform: Platform) -> DseProgram {
        DseProgram {
            platform,
            machines: PAPER_MACHINES,
            machine_platforms: None,
            config: DseConfig::default(),
            telemetry_hook: None,
        }
    }

    /// A heterogeneous cluster: machine `m` runs `platforms[m]` (the
    /// paper's future-work direction of mixing UNIX platforms). The machine
    /// count equals the platform list length.
    pub fn heterogeneous(platforms: Vec<Platform>) -> DseProgram {
        assert!(!platforms.is_empty());
        DseProgram {
            platform: platforms[0].clone(),
            machines: platforms.len(),
            machine_platforms: Some(platforms),
            config: DseConfig::default(),
            telemetry_hook: None,
        }
    }

    /// Override the runtime configuration.
    pub fn with_config(mut self, config: DseConfig) -> DseProgram {
        self.config = config;
        self
    }

    /// Install a live-view hook, invoked on node 0's kernel each time a
    /// telemetry aggregation epoch completes (node 0's own loopback delta
    /// has been applied). Only fires when `DseConfig::telemetry` is
    /// enabled. The hook receives the aggregator and the virtual clock in
    /// nanoseconds.
    pub fn with_epoch_hook<F>(mut self, hook: F) -> DseProgram
    where
        F: Fn(&ClusterAggregator, u64) + Send + Sync + 'static,
    {
        self.telemetry_hook = Some(Arc::new(hook));
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &DseConfig {
        &self.config
    }

    /// Run `body` as an SPMD program over `nprocs` parallel processes and
    /// return the measured result. `body` is invoked once per rank with
    /// that rank's [`DseCtx`].
    pub fn run<F>(&self, nprocs: usize, body: F) -> RunResult
    where
        F: Fn(&mut DseCtx<'_>) + Send + Sync + 'static,
    {
        assert!(nprocs > 0, "need at least one processor");
        assert!(nprocs <= u16::MAX as usize, "too many processors");
        // `DseConfig` is the sole builder surface; the program-level count
        // only supplies the constructor defaults (paper cluster /
        // heterogeneous platform list).
        let machines = match self.config.machines {
            Some(m) => {
                assert!(m > 0, "machine count must be positive");
                m
            }
            None => self.machines,
        };
        let mut spec = ClusterSpec::with_machines(self.platform.clone(), machines, nprocs);
        spec.machine_platforms = self.machine_platforms.clone();
        let mut sim: Simulator<SimMsg> = Simulator::new();
        if self.config.tracing {
            sim.enable_tracing();
        }
        let cpus = (0..spec.machines_used())
            .map(|m| sim.add_resource(&format!("cpu{m}")))
            .collect();
        let shared = Arc::new(ClusterShared::new(spec, self.config.clone(), cpus));
        if let Some(hook) = &self.telemetry_hook {
            shared.set_epoch_hook(Arc::clone(hook));
        }

        let body = Arc::new(body);
        let factory: AppFactory = {
            let shared = Arc::clone(&shared);
            Arc::new(move |rank, pid| {
                let shared = Arc::clone(&shared);
                let body = Arc::clone(&body);
                Box::new(move |pctx: &mut ProcCtx<SimMsg>| {
                    let mut dctx = DseCtx::new(pctx, shared, rank, pid);
                    body(&mut dctx);
                    dctx.finish();
                })
            })
        };

        let kernel_ids = (0..nprocs)
            .map(|n| {
                let shared = Arc::clone(&shared);
                let factory = Arc::clone(&factory);
                sim.spawn(&format!("kernel{n}"), move |kctx| {
                    kernel_main(kctx, NodeId(n as u16), shared, factory)
                })
            })
            .collect();
        shared.set_kernels(kernel_ids);

        let launcher_shared = Arc::clone(&shared);
        let launcher = sim.spawn("launcher", move |lctx| {
            launcher_main(lctx, launcher_shared, nprocs)
        });
        shared.set_launcher(launcher);

        let report = sim.run();
        let elapsed = shared
            .elapsed
            .lock()
            .expect("launcher did not complete — parallel program hung");
        let (net_frames, net_wire_bytes, net_collisions, bus_intervals) = {
            let net = shared.network.lock();
            (
                net.total_frames(),
                net.total_wire_bytes(),
                net.total_collisions(),
                net.bus_intervals(),
            )
        };
        let per_pe_stats = shared.stats.per_pe();
        let mut metrics = shared.metrics.snapshot();
        metrics.absorb_counters(per_pe_counter_rollup(&shared, &per_pe_stats));
        // The event-loop total lives host-side in the simulator, outside any
        // PE's delta tracker, so it is absorbed into both the direct snapshot
        // and the telemetry rollup — keeping the two byte-identical.
        let engine_counters = [(
            MetricKey::global("sim", "events_processed"),
            report.stats.events,
        )];
        metrics.absorb_counters(engine_counters.iter().cloned());
        let telemetry = shared.config.telemetry.as_ref().map(|_| {
            let agg = shared.aggregator.lock();
            let mut rollup = agg.rollup();
            rollup.absorb_counters(engine_counters.iter().cloned());
            TelemetrySummary {
                rollup,
                nodes: agg.nodes().to_vec(),
                stalls: shared.stalls.lock().clone(),
                flight_jsonl: shared
                    .flight_dump
                    .lock()
                    .clone()
                    .or_else(|| Some(shared.flight.to_jsonl())),
            }
        });
        RunResult {
            elapsed,
            nprocs,
            platform_id: shared.spec.platform.id,
            stats: shared.stats.snapshot(),
            net_frames,
            net_wire_bytes,
            net_collisions,
            report,
            per_pe_stats,
            metrics,
            spans: shared.spans.records(),
            bus_intervals,
            telemetry,
        }
    }
}

/// Flatten each PE's [`KernelStats`] into named metric counters (subsystem
/// `kernel`), tagging every series with the PE's machine. Delegates to
/// [`KernelStats::as_metric_counters`] — the same mapping the telemetry
/// plane ships in-band, which is what makes the two rollups identical.
fn per_pe_counter_rollup(shared: &ClusterShared, per_pe: &[KernelStats]) -> Vec<(MetricKey, u64)> {
    let mut out = Vec::new();
    for (pe, ks) in per_pe.iter().enumerate() {
        let machine = shared.machine_of(NodeId(pe as u16)) as u32;
        out.extend(ks.as_metric_counters(pe as u32, machine));
    }
    out
}

/// The launcher: invoke every rank, await acknowledgements and exits,
/// record the execution time, then shut the kernels down.
fn launcher_main(ctx: &mut ProcCtx<SimMsg>, shared: Arc<ClusterShared>, nprocs: usize) {
    let node0 = NodeId(0);
    let start = ctx.now();
    let mut reqs = ReqIdGen::new();
    for rank in 0..nprocs {
        let req = reqs.next();
        let msg = Message::InvokeReq {
            req,
            rank: rank as u32,
            args: Vec::new(),
        };
        let target = NodeId(rank as u16);
        let kproc = shared.kernel_of(target);
        let me = ctx.id();
        send_msg(ctx, &shared, node0, target, kproc, me, &msg);
    }
    let mut acks = 0;
    let mut exits = 0;
    while acks < nprocs || exits < nprocs {
        let env = match ctx.recv() {
            Some(e) => e,
            None => panic!(
                "simulation ended before all ranks finished: acks={acks} exits={exits} of {nprocs}"
            ),
        };
        let sm = env.msg;
        charge_recv(ctx, &shared, node0, sm.bytes.len());
        match Message::decode(&sm.bytes).expect("launcher got undecodable message") {
            Message::InvokeAck { .. } => acks += 1,
            Message::ExitNotice { status, pid } => {
                assert_eq!(status, 0, "rank {pid} exited with failure");
                exits += 1;
            }
            other => panic!("launcher got unexpected message {other:?}"),
        }
    }
    *shared.elapsed.lock() = Some(ctx.now() - start);
    // Post-measurement housekeeping: stop the kernels.
    let shutdown = Message::KernelShutdown.encode();
    for n in 0..nprocs {
        let k = shared.kernel_of(NodeId(n as u16));
        ctx.send(
            k,
            dse_sim::SimDuration::from_nanos(1),
            SimMsg {
                from_node: node0,
                reply_to: ctx.id(),
                bytes: shutdown.clone(),
            },
        );
    }
}
