//! Collective operations built from global memory + barriers.
//!
//! These are conveniences, not primitives: each is implemented with the
//! same GM reads/writes and barrier traffic an application would issue by
//! hand, so their cost in the simulator is the honest cost of the pattern.

use dse_kernel::Distribution;
use dse_msg::NodeId;

use crate::api::ParallelApi;
use crate::region::{GmArray, GmElem};

/// Broadcast `data` from rank 0 to every rank. All ranks must pass a slice
/// of the same length; only rank 0's contents are used. Returns the
/// broadcast values.
pub fn broadcast<T: GmElem>(ctx: &mut impl ParallelApi, data: &[T]) -> Vec<T> {
    let scratch = GmArray::<T>::alloc(ctx, data.len(), Distribution::OnNode(NodeId(0)));
    if ctx.rank() == 0 {
        scratch.write(ctx, 0, data);
    }
    ctx.barrier();
    // Split-phase get: issue, then redeem. On the simulated engine this
    // rides the request pipeline, so a caller interleaving other
    // non-blocking operations gets them coalesced onto the same wire trip.
    let h = ctx.gm_read_nb(scratch.region(), 0, data.len() * T::SIZE);
    let bytes = ctx.gm_wait(h).expect("broadcast read carries data");
    let out = bytes.chunks_exact(T::SIZE).map(|c| T::read_le(c)).collect();
    ctx.barrier();
    out
}

/// Gather one value from every rank; every rank receives the full vector,
/// indexed by rank.
pub fn all_gather<T: GmElem>(ctx: &mut impl ParallelApi, value: T) -> Vec<T> {
    let n = ctx.nprocs();
    let slots = GmArray::<T>::alloc(ctx, n, Distribution::OnNode(NodeId(0)));
    // The contribution is a split-phase put; the barrier below fences it,
    // so visibility for the gathering reads is unchanged.
    let mut buf = vec![0u8; T::SIZE];
    value.write_le(&mut buf);
    let h = ctx.gm_write_nb(slots.region(), (ctx.rank() as usize * T::SIZE) as u64, &buf);
    ctx.gm_wait(h);
    ctx.barrier();
    let h = ctx.gm_read_nb(slots.region(), 0, n * T::SIZE);
    let bytes = ctx.gm_wait(h).expect("all_gather read carries data");
    let out = bytes.chunks_exact(T::SIZE).map(|c| T::read_le(c)).collect();
    ctx.barrier();
    out
}

/// Reduce one `f64` per rank with `op` (associative, commutative); every
/// rank receives the result.
pub fn reduce_f64(ctx: &mut impl ParallelApi, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
    let parts = all_gather(ctx, value);
    let mut acc = parts[0];
    for &v in &parts[1..] {
        acc = op(acc, v);
    }
    acc
}

/// Sum reduction over one `f64` per rank.
///
/// ```
/// use dse_api::{collective, DseProgram, Platform};
///
/// DseProgram::new(Platform::aix_rs6000()).run(4, |ctx| {
///     let sum = collective::reduce_sum(ctx, (ctx.rank() + 1) as f64);
///     assert_eq!(sum, 1.0 + 2.0 + 3.0 + 4.0);
/// });
/// ```
pub fn reduce_sum(ctx: &mut impl ParallelApi, value: f64) -> f64 {
    reduce_f64(ctx, value, |a, b| a + b)
}

/// Max reduction over one `f64` per rank.
pub fn reduce_max(ctx: &mut impl ParallelApi, value: f64) -> f64 {
    reduce_f64(ctx, value, f64::max)
}

/// Sum reduction over one `i64` per rank.
pub fn reduce_sum_i64(ctx: &mut impl ParallelApi, value: i64) -> i64 {
    let parts = all_gather(ctx, value);
    parts.iter().sum()
}
