//! The engine-independent Parallel API surface.
//!
//! The paper's portability claim is that one parallel application runs
//! unchanged on any platform that hosts the DSE libraries. We capture that
//! as a trait: application bodies written against [`ParallelApi`] run on
//! the deterministic simulated cluster ([`crate::DseCtx`]) *and* on the
//! real-thread live engine (`dse-live`), byte-identical results either way.

use dse_kernel::Distribution;
use dse_msg::RegionId;
use dse_platform::Work;

use crate::ctx::GmHandle;

/// The operations every DSE execution engine provides to applications.
///
/// The split-phase entry points (`gm_read_nb`, `gm_write_nb`, `gm_wait`,
/// `gm_wait_all`) have defaults that degrade to the blocking operations, so
/// an engine without request pipelining (the live engine, test doubles)
/// stays correct without extra code: its handles are born complete.
pub trait ParallelApi {
    /// This process's rank in `0..nprocs`.
    fn rank(&self) -> u32;
    /// Number of parallel processes.
    fn nprocs(&self) -> usize;
    /// Account for `work` of computation (virtual time on the simulator,
    /// a no-op on the live engine where the computation really ran).
    fn compute(&mut self, work: Work);
    /// Collectively allocate a zero-initialized global-memory region.
    fn gm_alloc(&mut self, len: usize, dist: Distribution) -> RegionId;
    /// Read bytes from global memory.
    fn gm_read(&mut self, region: RegionId, offset: u64, len: usize) -> Vec<u8>;
    /// Write bytes to global memory.
    fn gm_write(&mut self, region: RegionId, offset: u64, data: &[u8]);
    /// Read bytes from global memory into a caller-provided buffer,
    /// avoiding the return-value allocation where the engine can.
    fn gm_read_into(&mut self, region: RegionId, offset: u64, out: &mut [u8]) {
        let data = self.gm_read(region, offset, out.len());
        out.copy_from_slice(&data);
    }
    /// Begin a split-phase read; redeem the handle with [`ParallelApi::gm_wait`].
    fn gm_read_nb(&mut self, region: RegionId, offset: u64, len: usize) -> GmHandle {
        GmHandle::ready(Some(self.gm_read(region, offset, len)))
    }
    /// Begin a split-phase write; the handle completes when the write is
    /// globally visible.
    fn gm_write_nb(&mut self, region: RegionId, offset: u64, data: &[u8]) -> GmHandle {
        self.gm_write(region, offset, data);
        GmHandle::ready(None)
    }
    /// Redeem a split-phase handle: `Some(bytes)` for reads, `None` for
    /// writes.
    fn gm_wait(&mut self, handle: GmHandle) -> Option<Vec<u8>> {
        match handle.0 {
            crate::ctx::HandleInner::Ready(data) => data,
            crate::ctx::HandleInner::Queued(_) => {
                unreachable!("queued handle on an engine without pipelining")
            }
        }
    }
    /// Complete every outstanding split-phase operation, discarding results
    /// not yet claimed with `gm_wait`.
    fn gm_wait_all(&mut self) {}
    /// Take the engine's reusable scratch buffer (element-wise accessors
    /// use it to avoid per-call allocations); pair with
    /// [`ParallelApi::put_scratch`].
    fn take_scratch(&mut self) -> Vec<u8> {
        Vec::new()
    }
    /// Return a buffer taken with [`ParallelApi::take_scratch`].
    fn put_scratch(&mut self, _buf: Vec<u8>) {}
    /// Atomic fetch-and-add on an aligned 8-byte cell.
    fn gm_fetch_add(&mut self, region: RegionId, offset: u64, delta: i64) -> i64;
    /// Synchronize all ranks (auto-sequenced; same order on every rank).
    fn barrier(&mut self);
    /// Acquire a cluster-wide lock.
    fn lock(&mut self, id: u32);
    /// Release a cluster-wide lock.
    fn unlock(&mut self, id: u32);
    /// Release-consistency *release*: make this rank's prior GM writes
    /// globally visible (flushes the split-phase pipeline). Barriers and
    /// `unlock` imply a release, so data-race-free programs never need to
    /// call this directly.
    fn gm_release(&mut self) {
        self.gm_wait_all();
    }
    /// Release-consistency *acquire*: ensure subsequent GM reads observe
    /// writes released before this point. Under the release-consistency
    /// cache mode this drops the rank's read replicas; elsewhere it is a
    /// fence. Barriers and `lock` imply an acquire.
    fn gm_acquire(&mut self) {
        self.gm_wait_all();
    }
}

impl ParallelApi for crate::DseCtx<'_> {
    fn rank(&self) -> u32 {
        crate::DseCtx::rank(self)
    }
    fn nprocs(&self) -> usize {
        crate::DseCtx::nprocs(self)
    }
    fn compute(&mut self, work: Work) {
        crate::DseCtx::compute(self, work)
    }
    fn gm_alloc(&mut self, len: usize, dist: Distribution) -> RegionId {
        crate::DseCtx::gm_alloc(self, len, dist)
    }
    fn gm_read(&mut self, region: RegionId, offset: u64, len: usize) -> Vec<u8> {
        crate::DseCtx::gm_read(self, region, offset, len)
    }
    fn gm_write(&mut self, region: RegionId, offset: u64, data: &[u8]) {
        crate::DseCtx::gm_write(self, region, offset, data)
    }
    fn gm_read_into(&mut self, region: RegionId, offset: u64, out: &mut [u8]) {
        crate::DseCtx::gm_read_into(self, region, offset, out)
    }
    fn gm_read_nb(&mut self, region: RegionId, offset: u64, len: usize) -> GmHandle {
        crate::DseCtx::gm_read_nb(self, region, offset, len)
    }
    fn gm_write_nb(&mut self, region: RegionId, offset: u64, data: &[u8]) -> GmHandle {
        crate::DseCtx::gm_write_nb(self, region, offset, data)
    }
    fn gm_wait(&mut self, handle: GmHandle) -> Option<Vec<u8>> {
        crate::DseCtx::gm_wait(self, handle)
    }
    fn gm_wait_all(&mut self) {
        crate::DseCtx::gm_wait_all(self)
    }
    fn take_scratch(&mut self) -> Vec<u8> {
        crate::DseCtx::take_scratch(self)
    }
    fn put_scratch(&mut self, buf: Vec<u8>) {
        crate::DseCtx::put_scratch(self, buf)
    }
    fn gm_fetch_add(&mut self, region: RegionId, offset: u64, delta: i64) -> i64 {
        crate::DseCtx::gm_fetch_add(self, region, offset, delta)
    }
    fn barrier(&mut self) {
        crate::DseCtx::barrier(self)
    }
    fn lock(&mut self, id: u32) {
        crate::DseCtx::lock(self, id)
    }
    fn unlock(&mut self, id: u32) {
        crate::DseCtx::unlock(self, id)
    }
    fn gm_release(&mut self) {
        crate::DseCtx::gm_release(self)
    }
    fn gm_acquire(&mut self) {
        crate::DseCtx::gm_acquire(self)
    }
}
