//! The engine-independent Parallel API surface.
//!
//! The paper's portability claim is that one parallel application runs
//! unchanged on any platform that hosts the DSE libraries. We capture that
//! as a trait: application bodies written against [`ParallelApi`] run on
//! the deterministic simulated cluster ([`crate::DseCtx`]) *and* on the
//! real-thread live engine (`dse-live`), byte-identical results either way.

use dse_kernel::Distribution;
use dse_msg::RegionId;
use dse_platform::Work;

/// The operations every DSE execution engine provides to applications.
pub trait ParallelApi {
    /// This process's rank in `0..nprocs`.
    fn rank(&self) -> u32;
    /// Number of parallel processes.
    fn nprocs(&self) -> usize;
    /// Account for `work` of computation (virtual time on the simulator,
    /// a no-op on the live engine where the computation really ran).
    fn compute(&mut self, work: Work);
    /// Collectively allocate a zero-initialized global-memory region.
    fn gm_alloc(&mut self, len: usize, dist: Distribution) -> RegionId;
    /// Read bytes from global memory.
    fn gm_read(&mut self, region: RegionId, offset: u64, len: usize) -> Vec<u8>;
    /// Write bytes to global memory.
    fn gm_write(&mut self, region: RegionId, offset: u64, data: &[u8]);
    /// Atomic fetch-and-add on an aligned 8-byte cell.
    fn gm_fetch_add(&mut self, region: RegionId, offset: u64, delta: i64) -> i64;
    /// Synchronize all ranks (auto-sequenced; same order on every rank).
    fn barrier(&mut self);
    /// Acquire a cluster-wide lock.
    fn lock(&mut self, id: u32);
    /// Release a cluster-wide lock.
    fn unlock(&mut self, id: u32);
}

impl ParallelApi for crate::DseCtx<'_> {
    fn rank(&self) -> u32 {
        crate::DseCtx::rank(self)
    }
    fn nprocs(&self) -> usize {
        crate::DseCtx::nprocs(self)
    }
    fn compute(&mut self, work: Work) {
        crate::DseCtx::compute(self, work)
    }
    fn gm_alloc(&mut self, len: usize, dist: Distribution) -> RegionId {
        crate::DseCtx::gm_alloc(self, len, dist)
    }
    fn gm_read(&mut self, region: RegionId, offset: u64, len: usize) -> Vec<u8> {
        crate::DseCtx::gm_read(self, region, offset, len)
    }
    fn gm_write(&mut self, region: RegionId, offset: u64, data: &[u8]) {
        crate::DseCtx::gm_write(self, region, offset, data)
    }
    fn gm_fetch_add(&mut self, region: RegionId, offset: u64, delta: i64) -> i64 {
        crate::DseCtx::gm_fetch_add(self, region, offset, delta)
    }
    fn barrier(&mut self) {
        crate::DseCtx::barrier(self)
    }
    fn lock(&mut self, id: u32) {
        crate::DseCtx::lock(self, id)
    }
    fn unlock(&mut self, id: u32) {
        crate::DseCtx::unlock(self, id)
    }
}
