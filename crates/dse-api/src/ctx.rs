//! `DseCtx` — the parallel application programming interface.
//!
//! Every DSE process body receives a `DseCtx`. Its methods are the paper's
//! Parallel API library: global-memory access (which transparently becomes
//! the own-node fast path or request/response messages to home-node
//! kernels), barriers and locks (coordinated by node 0), point-to-point
//! user messages, and computation charging.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use dse_kernel::cache::{blocks_inside, CACHE_BLOCK};
use dse_kernel::kernel::{barrier_enter, lock_acquire, lock_release};
use dse_kernel::netpath::{charge_local, charge_recv, send_msg};
use dse_kernel::{ClusterShared, Distribution, GmMode, Party, SimMsg};
use dse_msg::{GlobalPid, GmOp, Message, NodeId, RegionId, ReqId, ReqIdGen};
use dse_obs::{MetricKey, SpanKind};
use dse_platform::Work;
use dse_sim::{ProcCtx, SimDuration, SimTime};

/// Barrier ids above this are reserved for the auto-sequenced
/// [`DseCtx::barrier`]; named barriers must stay below.
pub const AUTO_BARRIER_BASE: u32 = 0x4000_0000;

/// Handle to a split-phase global-memory operation.
///
/// Returned by `gm_read_nb`/`gm_write_nb`; redeem it with `gm_wait` (which
/// consumes the handle, so a double wait is impossible at compile time).
/// Reads yield `Some(bytes)`, writes yield `None`.
#[derive(Debug)]
pub struct GmHandle(pub(crate) HandleInner);

#[derive(Debug)]
pub(crate) enum HandleInner {
    /// Queued in a `DseCtx`'s staging machinery under this id.
    Queued(u64),
    /// Completed at issue time (local fast path, cache hit, or an engine
    /// without split-phase pipelining).
    Ready(Option<Vec<u8>>),
}

impl GmHandle {
    /// A handle that is already complete (engines without real pipelining
    /// return these from the non-blocking entry points).
    pub fn ready(data: Option<Vec<u8>>) -> GmHandle {
        GmHandle(HandleInner::Ready(data))
    }

    /// A handle referring to operation `id` queued in the issuing engine.
    /// For engines (like the live message-passing engine) that implement
    /// their own split-phase staging outside `DseCtx`.
    pub fn queued(id: u64) -> GmHandle {
        GmHandle(HandleInner::Queued(id))
    }

    /// The queued operation id, or `None` if the handle was born ready.
    pub fn queued_id(&self) -> Option<u64> {
        match self.0 {
            HandleInner::Queued(id) => Some(id),
            HandleInner::Ready(_) => None,
        }
    }

    /// Consume a ready handle, yielding its data (`Some` for reads, `None`
    /// for writes). Panics on a queued handle — the owning engine must
    /// resolve those through its own wait path.
    pub fn into_ready(self) -> Option<Vec<u8>> {
        match self.0 {
            HandleInner::Ready(data) => data,
            HandleInner::Queued(id) => panic!("handle {id} is still queued, not ready"),
        }
    }
}

/// Where a completed read segment's bytes land: `len` bytes at absolute
/// region offset `abs_off` copy into `handle`'s buffer at `buf_off`.
#[derive(Clone, Copy)]
struct ReadDest {
    handle: u64,
    buf_off: usize,
    abs_off: u64,
    len: usize,
}

/// Bookkeeping for one read request on the wire (plain or inside a batch).
struct ReadCtl {
    region: RegionId,
    offset: u64,
    len: usize,
    /// Cache blocks (absolute ids) to install from the response.
    install: Vec<u64>,
    dests: Vec<ReadDest>,
}

/// Bookkeeping for one write request on the wire: the handles it completes.
struct WriteCtl {
    writers: Vec<u64>,
}

/// One staged (not yet sent) split-phase segment.
struct StagedSeg {
    home: NodeId,
    region: RegionId,
    offset: u64,
    kind: SegKind,
}

enum SegKind {
    Read {
        len: usize,
        install: Vec<u64>,
        dests: Vec<ReadDest>,
    },
    Write {
        data: Vec<u8>,
        writers: Vec<u64>,
    },
}

/// An issued request awaiting its response, keyed by correlation id.
enum InflightReq {
    Read(ReadCtl),
    Write(WriteCtl),
    Batch(Vec<InflightOp>),
}

enum InflightOp {
    Read(ReadCtl),
    Write(WriteCtl),
}

/// A split-phase handle's outstanding work.
struct HandleState {
    /// Segments (staged or in flight) still owed to this handle.
    remaining: usize,
    /// Read destination buffer (`None` for writes).
    buf: Option<Vec<u8>>,
}

/// A received user message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserMsg {
    /// Sending process.
    pub from: GlobalPid,
    /// Application tag.
    pub tag: u32,
    /// Payload.
    pub data: Vec<u8>,
}

/// The per-process API context handed to application bodies.
pub struct DseCtx<'a> {
    ctx: &'a mut ProcCtx<SimMsg>,
    shared: Arc<ClusterShared>,
    rank: u32,
    pid: GlobalPid,
    node: NodeId,
    reqs: ReqIdGen,
    barrier_seq: u32,
    alloc_seq: usize,
    /// Messages that arrived while awaiting something else (user data).
    stash: VecDeque<(NodeId, Message)>,
    /// Split-phase machinery: handle ids, outstanding handles, redeemed
    /// results, staged (coalescable) segments, and requests on the wire.
    next_handle: u64,
    handles: HashMap<u64, HandleState>,
    completed: HashMap<u64, Option<Vec<u8>>>,
    staged: Vec<StagedSeg>,
    inflight: HashMap<u64, InflightReq>,
    /// Reusable scratch for element-wise `GmArray` accessors.
    scratch: Vec<u8>,
}

impl<'a> DseCtx<'a> {
    /// Wrap a simulation process context. Called by the program harness.
    pub fn new(
        ctx: &'a mut ProcCtx<SimMsg>,
        shared: Arc<ClusterShared>,
        rank: u32,
        pid: GlobalPid,
    ) -> DseCtx<'a> {
        let node = pid.node();
        DseCtx {
            ctx,
            shared,
            rank,
            pid,
            node,
            reqs: ReqIdGen::new(),
            barrier_seq: 0,
            alloc_seq: 0,
            stash: VecDeque::new(),
            next_handle: 0,
            handles: HashMap::new(),
            completed: HashMap::new(),
            staged: Vec::new(),
            inflight: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// This process's rank in `0..nprocs`.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of parallel processes in the program.
    pub fn nprocs(&self) -> usize {
        self.shared.nnodes()
    }

    /// This process's cluster-wide pid.
    pub fn pid(&self) -> GlobalPid {
        self.pid
    }

    /// The node (processor element) this process runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The pid of another rank (node == rank, local slot 1, in the standard
    /// harness placement).
    pub fn pid_of_rank(&self, rank: u32) -> GlobalPid {
        GlobalPid::new(NodeId(rank as u16), 1)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Shared cluster state (for tooling layers such as the SSI crate).
    pub fn shared(&self) -> &Arc<ClusterShared> {
        &self.shared
    }

    /// True if someone requested this process terminate (cooperative, like
    /// a UNIX signal checked at safe points).
    pub fn termination_requested(&self) -> bool {
        self.shared.is_terminated(self.pid)
    }

    /// Charge `work` of computation to this node's CPU (FCFS with every
    /// co-resident kernel and process on the same physical machine).
    ///
    /// The charge is sliced at the async-I/O preemption quantum: a SIGIO
    /// for an arriving remote request interrupts application computation
    /// almost immediately on a real UNIX, so long compute bursts must not
    /// block the co-resident kernel's short service times in the model.
    pub fn compute(&mut self, work: Work) {
        const SLICE: SimDuration = SimDuration::from_millis(5);
        let mut remaining = self.shared.cost(self.node).compute(work);
        let cpu = self.shared.cpu_of(self.node);
        while remaining > SLICE {
            self.ctx.use_resource(cpu, SLICE);
            remaining = remaining - SLICE;
        }
        self.ctx.use_resource(cpu, remaining);
    }

    // ----- global memory ---------------------------------------------------

    /// Collectively allocate a zero-initialized global-memory region. Every
    /// rank must call with identical arguments and in the same order.
    pub fn gm_alloc(&mut self, len: usize, dist: Distribution) -> RegionId {
        self.gm_fence();
        let seq = self.alloc_seq;
        self.alloc_seq += 1;
        charge_local(self.ctx, &self.shared, self.node, 0);
        let store = &self.shared.store;
        self.shared
            .collective_alloc(seq, len, || store.alloc(len, dist))
    }

    /// Read `len` bytes at `offset` from a region. Own-node ranges take the
    /// linked-library fast path; remote ranges become pipelined
    /// request/response exchanges with the home kernels.
    ///
    /// Implemented as issue-plus-wait over the split-phase machinery (see
    /// [`DseCtx::gm_read_nb`]), so the blocking and non-blocking paths share
    /// one code path and produce identical bytes.
    pub fn gm_read(&mut self, region: RegionId, offset: u64, len: usize) -> Vec<u8> {
        let h = self.issue_read(region, offset, len, true);
        self.gm_wait(h).expect("gm_read handle carries data")
    }

    /// Read `out.len()` bytes at `offset` straight into a caller-provided
    /// buffer. An entirely own-node range copies without any intermediate
    /// allocation; anything else falls back to [`DseCtx::gm_read`].
    pub fn gm_read_into(&mut self, region: RegionId, offset: u64, out: &mut [u8]) {
        let runs = self
            .shared
            .store
            .split_by_home(region, offset, out.len())
            .unwrap_or_else(|e| panic!("rank {}: gm_read failed: {e}", self.rank));
        if runs.len() == 1 && runs[0].0 == self.node {
            charge_local(self.ctx, &self.shared, self.node, out.len());
            self.shared.store.read_into(region, offset, out).unwrap();
            self.shared.stats.update(self.node, |s| {
                s.gm_local_reads += 1;
                s.gm_bytes_read += out.len() as u64;
            });
            return;
        }
        let data = self.gm_read(region, offset, out.len());
        out.copy_from_slice(&data);
    }

    /// Begin a split-phase read: returns immediately with a [`GmHandle`];
    /// redeem it with [`DseCtx::gm_wait`]. Remote segments are *staged*, and
    /// adjacent or overlapping stages to the same home coalesce into one
    /// request; staged work reaches the wire when the pipelining window
    /// fills, a handle is waited on, or a synchronization point fences.
    pub fn gm_read_nb(&mut self, region: RegionId, offset: u64, len: usize) -> GmHandle {
        self.issue_read(region, offset, len, false)
    }

    /// Take the context's reusable scratch buffer (element accessors use
    /// this to avoid a per-call allocation). Return it with
    /// [`DseCtx::put_scratch`].
    pub fn take_scratch(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.scratch)
    }

    /// Return the scratch buffer taken with [`DseCtx::take_scratch`].
    pub fn put_scratch(&mut self, buf: Vec<u8>) {
        self.scratch = buf;
    }

    /// Issue a read. `eager` sends every staged segment as soon as it is
    /// staged — the blocking compatibility mode, which keeps the wire
    /// schedule identical to the historical blocking implementation.
    ///
    /// The handle is registered (buffer included) *before* any segment is
    /// staged, because window backpressure may drain completions for this
    /// very handle mid-issue; an issuance token in `remaining` keeps it
    /// from completing until every segment is staged.
    fn issue_read(&mut self, region: RegionId, offset: u64, len: usize, eager: bool) -> GmHandle {
        let runs = self
            .shared
            .store
            .split_by_home(region, offset, len)
            .unwrap_or_else(|e| panic!("rank {}: gm_read failed: {e}", self.rank));
        let cache_on = self.shared.config.gm_cache;
        let handle = self.new_handle();
        self.handles.insert(
            handle,
            HandleState {
                remaining: 1, // issuance token, released below
                buf: Some(vec![0u8; len]),
            },
        );
        for (home, off, rlen) in runs {
            let buf_off = (off - offset) as usize;
            if home == self.node {
                charge_local(self.ctx, &self.shared, self.node, rlen);
                {
                    let buf = self.handles.get_mut(&handle).unwrap().buf.as_mut().unwrap();
                    self.shared
                        .store
                        .read_into(region, off, &mut buf[buf_off..buf_off + rlen])
                        .unwrap();
                }
                self.shared.stats.update(self.node, |s| {
                    s.gm_local_reads += 1;
                    s.gm_bytes_read += rlen as u64;
                });
                continue;
            }
            if !cache_on {
                self.handles.get_mut(&handle).unwrap().remaining += 1;
                self.stage_read(home, region, off, rlen, Vec::new(), handle, buf_off, eager);
                continue;
            }
            // Cached remote read: serve full blocks from the local cache
            // where possible; merge the misses and the unaligned edge
            // fragments into as few fetches as possible.
            let end = off + rlen as u64;
            let full = blocks_inside(off, rlen);
            let bsz = CACHE_BLOCK as u64;
            struct Fetch {
                off: u64,
                len: usize,
                install: Vec<u64>,
            }
            let mut fetches: Vec<Fetch> = Vec::new();
            let mut cur: Option<Fetch> = None;
            let add_fetch = |cur: &mut Option<Fetch>, s: u64, e: u64, blk: Option<u64>| match cur {
                Some(f) => {
                    f.len += (e - s) as usize;
                    if let Some(b) = blk {
                        f.install.push(b);
                    }
                }
                None => {
                    *cur = Some(Fetch {
                        off: s,
                        len: (e - s) as usize,
                        install: blk.into_iter().collect(),
                    })
                }
            };
            if full.is_empty() {
                // A sub-block read (e.g. a single-element `get`) is still
                // served from a replica installed by an earlier
                // block-covering read, as long as it lies inside one block.
                let b = off / bsz;
                let served = end <= (b + 1) * bsz
                    && match self.shared.cache.get(self.node, region, b) {
                        Some(data) => {
                            charge_local(self.ctx, &self.shared, self.node, rlen);
                            self.shared.stats.update(self.node, |s| {
                                s.cache_hits += 1;
                                s.dir_hits += 1;
                            });
                            let s0 = (off - b * bsz) as usize;
                            let buf = self.handles.get_mut(&handle).unwrap().buf.as_mut().unwrap();
                            buf[buf_off..buf_off + rlen].copy_from_slice(&data[s0..s0 + rlen]);
                            true
                        }
                        None => false,
                    };
                if !served {
                    add_fetch(&mut cur, off, end, None);
                }
            } else {
                if off < full.start * bsz {
                    add_fetch(&mut cur, off, full.start * bsz, None);
                }
                for b in full.clone() {
                    if let Some(data) = self.shared.cache.get(self.node, region, b) {
                        // Hit: a library call plus a block copy, no wire.
                        charge_local(self.ctx, &self.shared, self.node, CACHE_BLOCK);
                        self.shared.stats.update(self.node, |s| {
                            s.cache_hits += 1;
                            s.dir_hits += 1;
                        });
                        let bo = (b * bsz - offset) as usize;
                        let buf = self.handles.get_mut(&handle).unwrap().buf.as_mut().unwrap();
                        buf[bo..bo + CACHE_BLOCK].copy_from_slice(&data);
                        if let Some(f) = cur.take() {
                            fetches.push(f);
                        }
                    } else {
                        self.shared.stats.update(self.node, |s| {
                            s.cache_misses += 1;
                            s.dir_misses += 1;
                        });
                        add_fetch(&mut cur, b * bsz, (b + 1) * bsz, Some(b));
                    }
                }
                if full.end * bsz < end {
                    add_fetch(&mut cur, full.end * bsz, end, None);
                }
            }
            if let Some(f) = cur.take() {
                fetches.push(f);
            }
            for f in fetches {
                self.handles.get_mut(&handle).unwrap().remaining += 1;
                let bo = (f.off - offset) as usize;
                self.stage_read(home, region, f.off, f.len, f.install, handle, bo, eager);
            }
        }
        self.release_issuance_token(handle)
    }

    /// Release the token [`DseCtx::issue_read`]/[`DseCtx::issue_write`]
    /// hold while staging: if every segment already completed (or none was
    /// needed), the handle is born ready.
    fn release_issuance_token(&mut self, handle: u64) -> GmHandle {
        let st = self.handles.get_mut(&handle).unwrap();
        st.remaining -= 1;
        if st.remaining == 0 {
            let st = self.handles.remove(&handle).unwrap();
            GmHandle(HandleInner::Ready(st.buf))
        } else {
            GmHandle(HandleInner::Queued(handle))
        }
    }

    /// Stage one remote read segment, coalescing with the most recently
    /// staged segment when both target the same home and region and their
    /// ranges touch or overlap (so a merged segment is always contiguous and
    /// program order among staged operations is preserved).
    #[allow(clippy::too_many_arguments)]
    fn stage_read(
        &mut self,
        home: NodeId,
        region: RegionId,
        off: u64,
        len: usize,
        install: Vec<u64>,
        handle: u64,
        buf_off: usize,
        eager: bool,
    ) {
        let end = off + len as u64;
        let dest = ReadDest {
            handle,
            buf_off,
            abs_off: off,
            len,
        };
        let mut merged = false;
        if let Some(seg) = self.staged.last_mut() {
            if seg.home == home && seg.region == region {
                if let SegKind::Read {
                    len: slen,
                    install: sinstall,
                    dests,
                } = &mut seg.kind
                {
                    let seg_end = seg.offset + *slen as u64;
                    if off <= seg_end && end >= seg.offset {
                        let new_start = seg.offset.min(off);
                        let new_end = seg_end.max(end);
                        seg.offset = new_start;
                        *slen = (new_end - new_start) as usize;
                        for &b in &install {
                            if !sinstall.contains(&b) {
                                sinstall.push(b);
                            }
                        }
                        dests.push(dest);
                        merged = true;
                    }
                }
            }
        }
        if merged {
            self.shared.stats.update(self.node, |s| s.gm_coalesced += 1);
        } else {
            self.staged.push(StagedSeg {
                home,
                region,
                offset: off,
                kind: SegKind::Read {
                    len,
                    install,
                    dests: vec![dest],
                },
            });
        }
        if eager {
            self.flush_staged();
        }
    }

    /// Coherence action before an own-node store mutation: write-invalidate
    /// runs the synchronous invalidation round; release consistency leaves
    /// the sharers' leases alone (they self-invalidate at their next
    /// acquire point) and only counts the deferral.
    fn coherent_local_write(&mut self, region: RegionId, offset: u64, len: usize) {
        if self.shared.config.gm_mode == GmMode::ReleaseConsistency {
            let deferred = self
                .shared
                .cache
                .peek_holders(region, offset, len, self.node);
            if !deferred.is_empty() {
                self.shared
                    .stats
                    .update(self.node, |s| s.rc_deferred_invals += 1);
            }
            return;
        }
        self.invalidate_for_local_write(region, offset, len);
    }

    /// Invalidate every other node's cached copies of a range and wait for
    /// their acknowledgements (the local-write half of the write-invalidate
    /// protocol; remote writes are handled by the home kernel).
    fn invalidate_for_local_write(&mut self, region: RegionId, offset: u64, len: usize) {
        let txn = self.reqs.next();
        let me = self.ctx.id();
        charge_local(self.ctx, &self.shared, self.node, 0);
        let holders = self
            .shared
            .cache
            .take_holders(region, offset, len, self.node);
        if !holders.is_empty() {
            // Same accounting as the home kernel's `begin_invalidation`:
            // one round per mutation that found sharers.
            self.shared
                .stats
                .update(self.node, |s| s.invalidation_rounds += 1);
        }
        let inv = Message::GmInvalidate {
            req: txn,
            region,
            offset,
            len: len as u32,
        };
        let mut awaiting = 0;
        for h in holders {
            self.shared
                .stats
                .update(self.node, |s| s.cache_invalidations += 1);
            let kproc = self.shared.kernel_of(h);
            send_msg(self.ctx, &self.shared, self.node, h, kproc, me, &inv);
            awaiting += 1;
        }
        while awaiting > 0 {
            let (from, msg) = self.recv_runtime();
            match msg {
                Message::GmInvalidateAck { req } if req == txn => awaiting -= 1,
                other => self.stash.push_back((from, other)),
            }
        }
    }

    /// Write bytes at `offset` into a region (pipelined per home node).
    ///
    /// Like [`DseCtx::gm_read`], this is issue-plus-wait over the
    /// split-phase machinery shared with [`DseCtx::gm_write_nb`].
    pub fn gm_write(&mut self, region: RegionId, offset: u64, data: &[u8]) {
        let h = self.issue_write(region, offset, data, true);
        self.gm_wait(h);
    }

    /// Begin a split-phase write: returns immediately with a [`GmHandle`].
    /// Staged writes to touching or overlapping ranges of the same home
    /// coalesce into one request (later bytes win on overlap), and staged
    /// operations bound for the same home travel as one batched message.
    pub fn gm_write_nb(&mut self, region: RegionId, offset: u64, data: &[u8]) -> GmHandle {
        self.issue_write(region, offset, data, false)
    }

    fn issue_write(&mut self, region: RegionId, offset: u64, data: &[u8], eager: bool) -> GmHandle {
        let runs = self
            .shared
            .store
            .split_by_home(region, offset, data.len())
            .unwrap_or_else(|e| panic!("rank {}: gm_write failed: {e}", self.rank));
        let cache_on = self.shared.config.gm_cache;
        if cache_on {
            // A writer's own copies of the written range go stale too.
            self.shared
                .cache
                .drop_range(self.node, region, offset, data.len());
        }
        let handle = self.new_handle();
        self.handles.insert(
            handle,
            HandleState {
                remaining: 1, // issuance token, released below
                buf: None,
            },
        );
        for (home, off, rlen) in runs {
            let buf_off = (off - offset) as usize;
            let chunk = &data[buf_off..buf_off + rlen];
            if home == self.node {
                if cache_on {
                    self.coherent_local_write(region, off, rlen);
                }
                charge_local(self.ctx, &self.shared, self.node, rlen);
                self.shared.store.write(region, off, chunk).unwrap();
                self.shared.stats.update(self.node, |s| {
                    s.gm_local_writes += 1;
                    s.gm_bytes_written += rlen as u64;
                });
            } else {
                self.handles.get_mut(&handle).unwrap().remaining += 1;
                self.stage_write(home, region, off, chunk.to_vec(), handle, eager);
            }
        }
        self.release_issuance_token(handle)
    }

    /// Stage one remote write segment; coalesces with the most recently
    /// staged segment under the same conditions as [`DseCtx::stage_read`].
    /// On overlap the later write's bytes win, preserving program order.
    fn stage_write(
        &mut self,
        home: NodeId,
        region: RegionId,
        off: u64,
        data: Vec<u8>,
        handle: u64,
        eager: bool,
    ) {
        let end = off + data.len() as u64;
        let mut merged = false;
        if let Some(seg) = self.staged.last_mut() {
            if seg.home == home && seg.region == region {
                if let SegKind::Write {
                    data: sdata,
                    writers,
                } = &mut seg.kind
                {
                    let seg_end = seg.offset + sdata.len() as u64;
                    if off <= seg_end && end >= seg.offset {
                        let new_start = seg.offset.min(off);
                        let new_end = seg_end.max(end);
                        let mut union = vec![0u8; (new_end - new_start) as usize];
                        let old_at = (seg.offset - new_start) as usize;
                        union[old_at..old_at + sdata.len()].copy_from_slice(sdata);
                        let new_at = (off - new_start) as usize;
                        union[new_at..new_at + data.len()].copy_from_slice(&data);
                        *sdata = union;
                        seg.offset = new_start;
                        writers.push(handle);
                        merged = true;
                    }
                }
            }
        }
        if merged {
            self.shared.stats.update(self.node, |s| s.gm_coalesced += 1);
        } else {
            self.staged.push(StagedSeg {
                home,
                region,
                offset: off,
                kind: SegKind::Write {
                    data,
                    writers: vec![handle],
                },
            });
        }
        if eager {
            self.flush_staged();
        }
    }

    /// Redeem a split-phase handle: flushes any staged work, then drains
    /// responses until this handle's operation completes. Reads return
    /// `Some(bytes)`, writes `None`.
    ///
    /// # Panics
    ///
    /// Panics on a handle whose result was already discarded by
    /// [`DseCtx::gm_wait_all`].
    pub fn gm_wait(&mut self, handle: GmHandle) -> Option<Vec<u8>> {
        let id = match handle.0 {
            HandleInner::Ready(data) => return data,
            HandleInner::Queued(id) => id,
        };
        if let Some(data) = self.completed.remove(&id) {
            return data;
        }
        assert!(
            self.handles.contains_key(&id),
            "rank {}: gm_wait on a stale handle (result discarded by gm_wait_all)",
            self.rank
        );
        self.flush_staged();
        while !self.completed.contains_key(&id) {
            self.drain_one();
        }
        self.completed.remove(&id).unwrap()
    }

    /// Complete every outstanding split-phase operation and *discard* any
    /// results not yet claimed with [`DseCtx::gm_wait`] (a later `gm_wait`
    /// on such a handle panics). Use it as a fence after a burst of
    /// `gm_write_nb` calls whose handles are not individually interesting.
    pub fn gm_wait_all(&mut self) {
        self.gm_fence();
        self.completed.clear();
    }

    /// Release-consistency *release*: flush and complete all split-phase GM
    /// work so this rank's prior writes are globally visible (home memory
    /// is write-through, so a fence is exactly a release). Barriers,
    /// `unlock`, atomics and sends already imply it; call it directly only
    /// around hand-rolled synchronization.
    pub fn gm_release(&mut self) {
        self.gm_fence();
    }

    /// Release-consistency *acquire*: fence, then — under the RC cache mode
    /// — drop this rank's read replicas and release their directory leases,
    /// so subsequent reads refetch anything written before the matching
    /// release. Barriers and `lock` already imply it. Under
    /// write-invalidate (or with the cache off) this is just a fence.
    pub fn gm_acquire(&mut self) {
        self.gm_fence();
        self.acquire_replicas();
    }

    /// The acquire-side self-invalidation of release consistency: purge
    /// this rank's replica cache and directory leases. No-op outside the
    /// RC cache mode.
    fn acquire_replicas(&mut self) {
        if self.shared.config.gm_cache && self.shared.config.gm_mode == GmMode::ReleaseConsistency {
            charge_local(self.ctx, &self.shared, self.node, 0);
            self.shared.cache.purge_node(self.node);
            self.shared.stats.update(self.node, |s| s.rc_acquires += 1);
        }
    }

    /// Complete all staged and in-flight split-phase work, keeping redeemed
    /// results claimable. Every blocking synchronization or communication
    /// primitive fences first, so split-phase operations are always ordered
    /// before barriers, locks, atomics and sends; with nothing outstanding
    /// this is free.
    fn gm_fence(&mut self) {
        self.flush_staged();
        while !self.inflight.is_empty() {
            self.drain_one();
        }
    }

    fn new_handle(&mut self) -> u64 {
        self.next_handle += 1;
        self.next_handle
    }

    /// Send every staged segment: one plain request per singleton home
    /// group, one batched request per multi-segment home group (preserving
    /// staging order within the batch).
    fn flush_staged(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let staged = std::mem::take(&mut self.staged);
        // Group by home node, preserving first-appearance order.
        let mut groups: Vec<(NodeId, Vec<StagedSeg>)> = Vec::new();
        for seg in staged {
            match groups.iter_mut().find(|(h, _)| *h == seg.home) {
                Some((_, v)) => v.push(seg),
                None => groups.push((seg.home, vec![seg])),
            }
        }
        for (home, mut segs) in groups {
            if segs.len() == 1 {
                self.send_plain(home, segs.pop().unwrap());
            } else {
                self.send_batch(home, segs);
            }
        }
    }

    fn send_plain(&mut self, home: NodeId, seg: StagedSeg) {
        self.window_backpressure();
        let req = self.reqs.next();
        let (msg, kind, bytes, ctl) = match seg.kind {
            SegKind::Read {
                len,
                install,
                dests,
            } => (
                Message::GmReadReq {
                    req,
                    region: seg.region,
                    offset: seg.offset,
                    len: len as u32,
                },
                SpanKind::GmRead,
                len as u64,
                InflightReq::Read(ReadCtl {
                    region: seg.region,
                    offset: seg.offset,
                    len,
                    install,
                    dests,
                }),
            ),
            SegKind::Write { data, writers } => {
                let blen = data.len() as u64;
                (
                    Message::GmWriteReq {
                        req,
                        region: seg.region,
                        offset: seg.offset,
                        data: data.into(),
                    },
                    SpanKind::GmWrite,
                    blen,
                    InflightReq::Write(WriteCtl { writers }),
                )
            }
        };
        self.dispatch(home, req, msg, kind, bytes, ctl);
    }

    fn send_batch(&mut self, home: NodeId, segs: Vec<StagedSeg>) {
        self.window_backpressure();
        let req = self.reqs.next();
        let mut ops = Vec::with_capacity(segs.len());
        let mut ctls = Vec::with_capacity(segs.len());
        let mut bytes = 0u64;
        for seg in segs {
            match seg.kind {
                SegKind::Read {
                    len,
                    install,
                    dests,
                } => {
                    bytes += len as u64;
                    ops.push(GmOp::Read {
                        region: seg.region,
                        offset: seg.offset,
                        len: len as u32,
                    });
                    ctls.push(InflightOp::Read(ReadCtl {
                        region: seg.region,
                        offset: seg.offset,
                        len,
                        install,
                        dests,
                    }));
                }
                SegKind::Write { data, writers } => {
                    bytes += data.len() as u64;
                    ctls.push(InflightOp::Write(WriteCtl { writers }));
                    ops.push(GmOp::Write {
                        region: seg.region,
                        offset: seg.offset,
                        data: data.into(),
                    });
                }
            }
        }
        let msg = Message::GmBatchReq { req, ops };
        self.dispatch(
            home,
            req,
            msg,
            SpanKind::GmBatch,
            bytes,
            InflightReq::Batch(ctls),
        );
    }

    /// Open the span, send the request, and account for it in the in-flight
    /// window (`kernel/gm_request_msgs` counter, `kernel/gm_inflight`
    /// high-water gauge).
    fn dispatch(
        &mut self,
        home: NodeId,
        req: ReqId,
        msg: Message,
        kind: SpanKind,
        bytes: u64,
        ctl: InflightReq,
    ) {
        let pe = self.node.0 as u32;
        let kproc = self.shared.kernel_of(home);
        let reply = self.ctx.id();
        self.shared
            .spans
            .open(kind, pe, req.0, self.ctx.now().as_nanos(), bytes);
        let wire = send_msg(self.ctx, &self.shared, self.node, home, kproc, reply, &msg);
        self.shared
            .spans
            .note_wire(kind, pe, req.0, wire.as_nanos());
        self.shared
            .stats
            .update(self.node, |s| s.gm_request_msgs += 1);
        self.inflight.insert(req.0, ctl);
        let machine = self.shared.machine_of(self.node) as u32;
        self.shared.metrics.gauge_max(
            MetricKey::pe("kernel", "gm_inflight", pe).on_machine(machine),
            self.inflight.len() as u64,
        );
    }

    /// Block until another request would fit in the pipelining window.
    fn window_backpressure(&mut self) {
        while self.inflight.len() >= self.shared.config.gm_window {
            self.drain_one();
        }
    }

    /// Consume exactly one GM completion — from the stash if an earlier
    /// drain parked one there, otherwise from the wire (stashing unrelated
    /// messages for their own waiters).
    fn drain_one(&mut self) {
        if let Some(idx) = self.stash.iter().position(|(_, m)| {
            matches!(
                m,
                Message::GmReadResp { .. }
                    | Message::GmWriteAck { .. }
                    | Message::GmBatchResp { .. }
            )
        }) {
            let (_, msg) = self.stash.remove(idx).unwrap();
            self.process_completion(msg);
            return;
        }
        loop {
            let (from, msg) = self.recv_runtime();
            match msg {
                Message::GmReadResp { .. }
                | Message::GmWriteAck { .. }
                | Message::GmBatchResp { .. } => {
                    self.process_completion(msg);
                    return;
                }
                other => self.stash.push_back((from, other)),
            }
        }
    }

    fn process_completion(&mut self, msg: Message) {
        let pe = self.node.0 as u32;
        let now = self.ctx.now().as_nanos();
        match msg {
            Message::GmReadResp { req, data } => {
                self.close_gm_span(SpanKind::GmRead, pe, req.0, now, "remote_read_ns");
                let ctl = match self.inflight.remove(&req.0) {
                    Some(InflightReq::Read(c)) => c,
                    _ => panic!("unmatched GmReadResp correlation id"),
                };
                self.complete_read(ctl, &data);
            }
            Message::GmWriteAck { req } => {
                self.close_gm_span(SpanKind::GmWrite, pe, req.0, now, "remote_write_ns");
                let ctl = match self.inflight.remove(&req.0) {
                    Some(InflightReq::Write(c)) => c,
                    _ => panic!("unmatched GmWriteAck correlation id"),
                };
                self.complete_write(ctl);
            }
            Message::GmBatchResp { req, reads } => {
                self.close_gm_span(SpanKind::GmBatch, pe, req.0, now, "batch_ns");
                let ops = match self.inflight.remove(&req.0) {
                    Some(InflightReq::Batch(o)) => o,
                    _ => panic!("unmatched GmBatchResp correlation id"),
                };
                let mut it = reads.into_iter();
                for op in ops {
                    match op {
                        InflightOp::Read(c) => {
                            let data = it.next().expect("missing batched read result");
                            self.complete_read(c, &data);
                        }
                        InflightOp::Write(c) => self.complete_write(c),
                    }
                }
            }
            _ => unreachable!("process_completion on a non-GM message"),
        }
    }

    fn close_gm_span(&mut self, kind: SpanKind, pe: u32, seq: u64, now: u64, metric: &'static str) {
        if let Some(rec) = self.shared.spans.close(kind, pe, seq, now) {
            self.shared
                .metrics
                .record(MetricKey::pe("gm", metric, pe), rec.total_ns());
            self.shared.flight.span(&rec);
        }
    }

    /// Distribute one completed read request's bytes to every destination
    /// handle, installing any cache blocks the request fetched.
    fn complete_read(&mut self, ctl: ReadCtl, data: &[u8]) {
        assert_eq!(data.len(), ctl.len, "short remote read");
        for &b in &ctl.install {
            let lo = (b * CACHE_BLOCK as u64 - ctl.offset) as usize;
            let chunk = data[lo..lo + CACHE_BLOCK].to_vec();
            self.shared.cache.install(self.node, ctl.region, b, chunk);
        }
        for d in ctl.dests {
            let h = self
                .handles
                .get_mut(&d.handle)
                .expect("read completion for an unknown handle");
            let buf = h.buf.as_mut().expect("read handle without a buffer");
            let src = (d.abs_off - ctl.offset) as usize;
            buf[d.buf_off..d.buf_off + d.len].copy_from_slice(&data[src..src + d.len]);
            h.remaining -= 1;
            if h.remaining == 0 {
                let st = self.handles.remove(&d.handle).unwrap();
                self.completed.insert(d.handle, st.buf);
            }
        }
    }

    fn complete_write(&mut self, ctl: WriteCtl) {
        for w in ctl.writers {
            let h = self
                .handles
                .get_mut(&w)
                .expect("write completion for an unknown handle");
            h.remaining -= 1;
            if h.remaining == 0 {
                self.handles.remove(&w);
                self.completed.insert(w, None);
            }
        }
    }

    /// Atomic fetch-and-add on an aligned 8-byte cell; returns the previous
    /// value. The cell's home kernel serializes concurrent updates.
    pub fn gm_fetch_add(&mut self, region: RegionId, offset: u64, delta: i64) -> i64 {
        self.gm_fence();
        let home = self
            .shared
            .store
            .home_of(region, offset)
            .unwrap_or_else(|e| panic!("rank {}: fetch_add failed: {e}", self.rank));
        if home == self.node {
            if self.shared.config.gm_cache {
                self.shared.cache.drop_range(self.node, region, offset, 8);
                self.coherent_local_write(region, offset, 8);
            }
            charge_local(self.ctx, &self.shared, self.node, 8);
            self.shared.stats.update(self.node, |s| s.fetch_adds += 1);
            return self.shared.store.fetch_add(region, offset, delta).unwrap();
        }
        let req = self.reqs.next();
        let msg = Message::GmFetchAddReq {
            req,
            region,
            offset,
            delta,
        };
        let kproc = self.shared.kernel_of(home);
        let me = self.ctx.id();
        let pe = self.node.0 as u32;
        self.shared.spans.open(
            SpanKind::GmFetchAdd,
            pe,
            req.0,
            self.ctx.now().as_nanos(),
            8,
        );
        let wire = send_msg(self.ctx, &self.shared, self.node, home, kproc, me, &msg);
        self.shared
            .spans
            .note_wire(SpanKind::GmFetchAdd, pe, req.0, wire.as_nanos());
        loop {
            let (from, msg) = self.recv_runtime();
            match msg {
                Message::GmFetchAddResp { req: r, prev } if r == req => {
                    if let Some(rec) = self.shared.spans.close(
                        SpanKind::GmFetchAdd,
                        pe,
                        req.0,
                        self.ctx.now().as_nanos(),
                    ) {
                        self.shared
                            .metrics
                            .record(MetricKey::pe("gm", "fetch_add_ns", pe), rec.total_ns());
                        self.shared.flight.span(&rec);
                    }
                    return prev;
                }
                other => self.stash.push_back((from, other)),
            }
        }
    }

    // ----- synchronization -------------------------------------------------

    /// Synchronize all ranks. Every rank must call `barrier` the same number
    /// of times in the same order (auto-sequenced ids).
    pub fn barrier(&mut self) {
        let id = AUTO_BARRIER_BASE + self.barrier_seq;
        self.barrier_seq += 1;
        self.barrier_at(id);
    }

    /// Synchronize on an explicitly named barrier (`id < AUTO_BARRIER_BASE`).
    pub fn barrier_named(&mut self, id: u32) {
        assert!(id < AUTO_BARRIER_BASE, "named barrier id too large");
        self.barrier_at(id);
    }

    fn barrier_at(&mut self, id: u32) {
        self.gm_fence();
        let party = Party {
            pid: self.pid,
            node: self.node,
            reply_to: self.ctx.id(),
            req: ReqId(0),
        };
        let pe = self.node.0 as u32;
        self.shared.spans.open(
            SpanKind::Barrier,
            pe,
            id as u64,
            self.ctx.now().as_nanos(),
            0,
        );
        if self.node == NodeId(0) {
            // Own-node path into the coordination state.
            charge_local(self.ctx, &self.shared, self.node, 16);
            if barrier_enter(self.ctx, &self.shared, NodeId(0), id, party).is_some() {
                self.finish_barrier_span(pe, id);
                self.acquire_replicas();
                return;
            }
        } else {
            let msg = Message::BarrierEnter {
                barrier: id,
                pid: self.pid,
            };
            let k0 = self.shared.kernel_of(NodeId(0));
            let me = self.ctx.id();
            let wire = send_msg(self.ctx, &self.shared, self.node, NodeId(0), k0, me, &msg);
            self.shared
                .spans
                .note_wire(SpanKind::Barrier, pe, id as u64, wire.as_nanos());
        }
        loop {
            let (from, msg) = self.recv_runtime();
            match msg {
                Message::BarrierRelease { barrier, .. } if barrier == id => {
                    self.finish_barrier_span(pe, id);
                    self.acquire_replicas();
                    return;
                }
                other => self.stash.push_back((from, other)),
            }
        }
    }

    /// Close this rank's span for barrier `id` and record the wait time.
    fn finish_barrier_span(&mut self, pe: u32, id: u32) {
        if let Some(rec) =
            self.shared
                .spans
                .close(SpanKind::Barrier, pe, id as u64, self.ctx.now().as_nanos())
        {
            self.shared
                .metrics
                .record(MetricKey::pe("sync", "barrier_wait_ns", pe), rec.total_ns());
            self.shared.flight.span(&rec);
        }
    }

    /// Acquire a cluster-wide lock (FIFO).
    pub fn lock(&mut self, id: u32) {
        self.gm_fence();
        let req = self.reqs.next();
        let party = Party {
            pid: self.pid,
            node: self.node,
            reply_to: self.ctx.id(),
            req,
        };
        let pe = self.node.0 as u32;
        self.shared
            .spans
            .open(SpanKind::Lock, pe, req.0, self.ctx.now().as_nanos(), 0);
        if self.node == NodeId(0) {
            charge_local(self.ctx, &self.shared, self.node, 16);
            lock_acquire(self.ctx, &self.shared, NodeId(0), id, party);
        } else {
            let msg = Message::LockReq {
                req,
                lock: id,
                pid: self.pid,
            };
            let k0 = self.shared.kernel_of(NodeId(0));
            let me = self.ctx.id();
            let wire = send_msg(self.ctx, &self.shared, self.node, NodeId(0), k0, me, &msg);
            self.shared
                .spans
                .note_wire(SpanKind::Lock, pe, req.0, wire.as_nanos());
        }
        loop {
            let (from, msg) = self.recv_runtime();
            match msg {
                Message::LockGrant { req: r, .. } if r == req => {
                    if let Some(rec) = self.shared.spans.close(
                        SpanKind::Lock,
                        pe,
                        req.0,
                        self.ctx.now().as_nanos(),
                    ) {
                        self.shared
                            .metrics
                            .record(MetricKey::pe("sync", "lock_wait_ns", pe), rec.total_ns());
                        self.shared.flight.span(&rec);
                    }
                    // A lock grant is an acquire point: the holder must see
                    // everything released by the previous holder's unlock.
                    self.acquire_replicas();
                    return;
                }
                other => self.stash.push_back((from, other)),
            }
        }
    }

    /// Release a cluster-wide lock this process holds.
    pub fn unlock(&mut self, id: u32) {
        self.gm_fence();
        if self.node == NodeId(0) {
            charge_local(self.ctx, &self.shared, self.node, 16);
            lock_release(self.ctx, &self.shared, NodeId(0), id, self.pid);
        } else {
            let msg = Message::UnlockReq {
                lock: id,
                pid: self.pid,
            };
            let k0 = self.shared.kernel_of(NodeId(0));
            let me = self.ctx.id();
            send_msg(self.ctx, &self.shared, self.node, NodeId(0), k0, me, &msg);
        }
    }

    /// Request cooperative termination of another process: its
    /// [`DseCtx::termination_requested`] flag turns on once its node's
    /// kernel processes the request (checked at the target's convenience,
    /// like a UNIX signal). Blocks until the kernel acknowledges.
    pub fn terminate(&mut self, pid: GlobalPid) {
        self.gm_fence();
        let req = self.reqs.next();
        let msg = Message::TerminateReq { req, pid };
        let target = pid.node();
        let kproc = self.shared.kernel_of(target);
        let me = self.ctx.id();
        send_msg(self.ctx, &self.shared, self.node, target, kproc, me, &msg);
        loop {
            let (from, msg) = self.recv_runtime();
            match msg {
                Message::TerminateAck { req: r } if r == req => return,
                other => self.stash.push_back((from, other)),
            }
        }
    }

    // ----- point-to-point messages ------------------------------------------

    /// Send tagged bytes to another rank's process.
    pub fn send_to(&mut self, to: GlobalPid, tag: u32, data: Vec<u8>) {
        self.gm_fence();
        let dest = self
            .shared
            .app_proc(to)
            .unwrap_or_else(|| panic!("send_to: unknown pid {to} (synchronize before sending)"));
        let msg = Message::UserData {
            from: self.pid,
            tag,
            data,
        };
        let me = self.ctx.id();
        send_msg(self.ctx, &self.shared, self.node, to.node(), dest, me, &msg);
    }

    /// Receive the next user message, optionally filtered by tag.
    pub fn recv_user(&mut self, want_tag: Option<u32>) -> UserMsg {
        // Serve from the stash first.
        if let Some(idx) = self.stash.iter().position(|(_, m)| match m {
            Message::UserData { tag, .. } => want_tag.is_none_or(|t| t == *tag),
            _ => false,
        }) {
            if let (_, Message::UserData { from, tag, data }) = self.stash.remove(idx).unwrap() {
                return UserMsg { from, tag, data };
            }
            unreachable!()
        }
        loop {
            let (from_node, msg) = self.recv_runtime();
            match msg {
                Message::UserData { from, tag, data } if want_tag.is_none_or(|t| t == tag) => {
                    return UserMsg { from, tag, data }
                }
                other => self.stash.push_back((from_node, other)),
            }
        }
    }

    // ----- internals --------------------------------------------------------

    /// Receive one runtime message, charging the receive-side software cost.
    fn recv_runtime(&mut self) -> (NodeId, Message) {
        let env = self
            .ctx
            .recv()
            .expect("simulation shut down while a process was waiting");
        let sm = env.msg;
        charge_recv(self.ctx, &self.shared, self.node, sm.bytes.len());
        let msg = Message::decode(&sm.bytes).expect("undecodable runtime message");
        (sm.from_node, msg)
    }

    /// Called by the harness after the body returns: notify the launcher.
    pub fn finish(&mut self) {
        self.gm_fence();
        self.shared.mark_exited(self.pid);
        let msg = Message::ExitNotice {
            pid: self.pid,
            status: 0,
        };
        let launcher = self.shared.launcher();
        let me = self.ctx.id();
        send_msg(
            self.ctx,
            &self.shared,
            self.node,
            NodeId(0),
            launcher,
            me,
            &msg,
        );
    }
}
