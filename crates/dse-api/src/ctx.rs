//! `DseCtx` — the parallel application programming interface.
//!
//! Every DSE process body receives a `DseCtx`. Its methods are the paper's
//! Parallel API library: global-memory access (which transparently becomes
//! the own-node fast path or request/response messages to home-node
//! kernels), barriers and locks (coordinated by node 0), point-to-point
//! user messages, and computation charging.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use dse_kernel::cache::{blocks_inside, CACHE_BLOCK};
use dse_kernel::kernel::{barrier_enter, lock_acquire, lock_release};
use dse_kernel::netpath::{charge_local, charge_recv, send_msg};
use dse_kernel::{ClusterShared, Distribution, Party, SimMsg};
use dse_msg::{GlobalPid, Message, NodeId, RegionId, ReqId, ReqIdGen};
use dse_obs::{MetricKey, SpanKind};
use dse_platform::Work;
use dse_sim::{ProcCtx, SimDuration, SimTime};

/// Barrier ids above this are reserved for the auto-sequenced
/// [`DseCtx::barrier`]; named barriers must stay below.
pub const AUTO_BARRIER_BASE: u32 = 0x4000_0000;

/// A received user message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserMsg {
    /// Sending process.
    pub from: GlobalPid,
    /// Application tag.
    pub tag: u32,
    /// Payload.
    pub data: Vec<u8>,
}

/// The per-process API context handed to application bodies.
pub struct DseCtx<'a> {
    ctx: &'a mut ProcCtx<SimMsg>,
    shared: Arc<ClusterShared>,
    rank: u32,
    pid: GlobalPid,
    node: NodeId,
    reqs: ReqIdGen,
    barrier_seq: u32,
    alloc_seq: usize,
    /// Messages that arrived while awaiting something else (user data).
    stash: VecDeque<(NodeId, Message)>,
}

impl<'a> DseCtx<'a> {
    /// Wrap a simulation process context. Called by the program harness.
    pub fn new(
        ctx: &'a mut ProcCtx<SimMsg>,
        shared: Arc<ClusterShared>,
        rank: u32,
        pid: GlobalPid,
    ) -> DseCtx<'a> {
        let node = pid.node();
        DseCtx {
            ctx,
            shared,
            rank,
            pid,
            node,
            reqs: ReqIdGen::new(),
            barrier_seq: 0,
            alloc_seq: 0,
            stash: VecDeque::new(),
        }
    }

    /// This process's rank in `0..nprocs`.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of parallel processes in the program.
    pub fn nprocs(&self) -> usize {
        self.shared.nnodes()
    }

    /// This process's cluster-wide pid.
    pub fn pid(&self) -> GlobalPid {
        self.pid
    }

    /// The node (processor element) this process runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The pid of another rank (node == rank, local slot 1, in the standard
    /// harness placement).
    pub fn pid_of_rank(&self, rank: u32) -> GlobalPid {
        GlobalPid::new(NodeId(rank as u16), 1)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Shared cluster state (for tooling layers such as the SSI crate).
    pub fn shared(&self) -> &Arc<ClusterShared> {
        &self.shared
    }

    /// True if someone requested this process terminate (cooperative, like
    /// a UNIX signal checked at safe points).
    pub fn termination_requested(&self) -> bool {
        self.shared.is_terminated(self.pid)
    }

    /// Charge `work` of computation to this node's CPU (FCFS with every
    /// co-resident kernel and process on the same physical machine).
    ///
    /// The charge is sliced at the async-I/O preemption quantum: a SIGIO
    /// for an arriving remote request interrupts application computation
    /// almost immediately on a real UNIX, so long compute bursts must not
    /// block the co-resident kernel's short service times in the model.
    pub fn compute(&mut self, work: Work) {
        const SLICE: SimDuration = SimDuration::from_millis(5);
        let mut remaining = self.shared.cost(self.node).compute(work);
        let cpu = self.shared.cpu_of(self.node);
        while remaining > SLICE {
            self.ctx.use_resource(cpu, SLICE);
            remaining = remaining - SLICE;
        }
        self.ctx.use_resource(cpu, remaining);
    }

    // ----- global memory ---------------------------------------------------

    /// Collectively allocate a zero-initialized global-memory region. Every
    /// rank must call with identical arguments and in the same order.
    pub fn gm_alloc(&mut self, len: usize, dist: Distribution) -> RegionId {
        let seq = self.alloc_seq;
        self.alloc_seq += 1;
        charge_local(self.ctx, &self.shared, self.node, 0);
        let store = &self.shared.store;
        self.shared
            .collective_alloc(seq, len, || store.alloc(len, dist))
    }

    /// Read `len` bytes at `offset` from a region. Own-node ranges take the
    /// linked-library fast path; remote ranges become pipelined
    /// request/response exchanges with the home kernels.
    pub fn gm_read(&mut self, region: RegionId, offset: u64, len: usize) -> Vec<u8> {
        let runs = self
            .shared
            .store
            .split_by_home(region, offset, len)
            .unwrap_or_else(|e| panic!("rank {}: gm_read failed: {e}", self.rank));
        let cache_on = self.shared.config.gm_cache;
        let mut result = vec![0u8; len];
        // req id -> (result offset, length, fetch offset, blocks to install)
        let mut pending: HashMap<u64, (usize, usize, u64, Vec<u64>)> = HashMap::new();
        let issue = |me: &mut Self,
                     result: &mut Vec<u8>,
                     pending: &mut HashMap<u64, (usize, usize, u64, Vec<u64>)>,
                     home: NodeId,
                     off: u64,
                     rlen: usize,
                     install: Vec<u64>| {
            let buf_off = (off - offset) as usize;
            if home == me.node {
                charge_local(me.ctx, &me.shared, me.node, rlen);
                let data = me.shared.store.read(region, off, rlen).unwrap();
                result[buf_off..buf_off + rlen].copy_from_slice(&data);
                me.shared.stats.update(me.node, |s| {
                    s.gm_local_reads += 1;
                    s.gm_bytes_read += rlen as u64;
                });
            } else {
                let req = me.reqs.next();
                pending.insert(req.0, (buf_off, rlen, off, install));
                let msg = Message::GmReadReq {
                    req,
                    region,
                    offset: off,
                    len: rlen as u32,
                };
                let kproc = me.shared.kernel_of(home);
                let reply = me.ctx.id();
                let pe = me.node.0 as u32;
                me.shared.spans.open(
                    SpanKind::GmRead,
                    pe,
                    req.0,
                    me.ctx.now().as_nanos(),
                    rlen as u64,
                );
                let wire = send_msg(me.ctx, &me.shared, me.node, home, kproc, reply, &msg);
                me.shared
                    .spans
                    .note_wire(SpanKind::GmRead, pe, req.0, wire.as_nanos());
            }
        };
        for (home, off, rlen) in runs {
            if home == self.node || !cache_on {
                issue(self, &mut result, &mut pending, home, off, rlen, Vec::new());
                continue;
            }
            // Cached remote read: serve full blocks from the local cache
            // where possible; merge the misses and the unaligned edge
            // fragments into as few fetches as possible.
            let end = off + rlen as u64;
            let full = blocks_inside(off, rlen);
            let bsz = CACHE_BLOCK as u64;
            struct Fetch {
                off: u64,
                len: usize,
                install: Vec<u64>,
            }
            let mut fetches: Vec<Fetch> = Vec::new();
            let mut cur: Option<Fetch> = None;
            let add_fetch = |cur: &mut Option<Fetch>, s: u64, e: u64, blk: Option<u64>| match cur {
                Some(f) => {
                    f.len += (e - s) as usize;
                    if let Some(b) = blk {
                        f.install.push(b);
                    }
                }
                None => {
                    *cur = Some(Fetch {
                        off: s,
                        len: (e - s) as usize,
                        install: blk.into_iter().collect(),
                    })
                }
            };
            if full.is_empty() {
                add_fetch(&mut cur, off, end, None);
            } else {
                if off < full.start * bsz {
                    add_fetch(&mut cur, off, full.start * bsz, None);
                }
                for b in full.clone() {
                    if let Some(data) = self.shared.cache.get(self.node, region, b) {
                        // Hit: a library call plus a block copy, no wire.
                        charge_local(self.ctx, &self.shared, self.node, CACHE_BLOCK);
                        self.shared.stats.update(self.node, |s| s.cache_hits += 1);
                        let bo = (b * bsz - offset) as usize;
                        result[bo..bo + CACHE_BLOCK].copy_from_slice(&data);
                        if let Some(f) = cur.take() {
                            fetches.push(f);
                        }
                    } else {
                        self.shared.stats.update(self.node, |s| s.cache_misses += 1);
                        add_fetch(&mut cur, b * bsz, (b + 1) * bsz, Some(b));
                    }
                }
                if full.end * bsz < end {
                    add_fetch(&mut cur, full.end * bsz, end, None);
                }
            }
            if let Some(f) = cur.take() {
                fetches.push(f);
            }
            for f in fetches {
                issue(
                    self,
                    &mut result,
                    &mut pending,
                    home,
                    f.off,
                    f.len,
                    f.install,
                );
            }
        }
        while !pending.is_empty() {
            let (from, msg) = self.recv_runtime();
            match msg {
                Message::GmReadResp { req, data } => {
                    let pe = self.node.0 as u32;
                    if let Some(rec) = self.shared.spans.close(
                        SpanKind::GmRead,
                        pe,
                        req.0,
                        self.ctx.now().as_nanos(),
                    ) {
                        self.shared
                            .metrics
                            .record(MetricKey::pe("gm", "remote_read_ns", pe), rec.total_ns());
                        self.shared.flight.span(&rec);
                    }
                    let (bo, rl, foff, install) = pending
                        .remove(&req.0)
                        .expect("unmatched GmReadResp correlation id");
                    assert_eq!(data.len(), rl, "short remote read");
                    result[bo..bo + rl].copy_from_slice(&data);
                    for b in install {
                        let lo = (b * CACHE_BLOCK as u64 - foff) as usize;
                        let chunk = data[lo..lo + CACHE_BLOCK].to_vec();
                        self.shared.cache.install(self.node, region, b, chunk);
                    }
                }
                other => self.stash.push_back((from, other)),
            }
        }
        result
    }

    /// Invalidate every other node's cached copies of a range and wait for
    /// their acknowledgements (the local-write half of the write-invalidate
    /// protocol; remote writes are handled by the home kernel).
    fn invalidate_for_local_write(&mut self, region: RegionId, offset: u64, len: usize) {
        let txn = self.reqs.next();
        let me = self.ctx.id();
        charge_local(self.ctx, &self.shared, self.node, 0);
        let holders = self
            .shared
            .cache
            .take_holders(region, offset, len, self.node);
        let inv = Message::GmInvalidate {
            req: txn,
            region,
            offset,
            len: len as u32,
        };
        let mut awaiting = 0;
        for h in holders {
            self.shared
                .stats
                .update(self.node, |s| s.cache_invalidations += 1);
            let kproc = self.shared.kernel_of(h);
            send_msg(self.ctx, &self.shared, self.node, h, kproc, me, &inv);
            awaiting += 1;
        }
        while awaiting > 0 {
            let (from, msg) = self.recv_runtime();
            match msg {
                Message::GmInvalidateAck { req } if req == txn => awaiting -= 1,
                other => self.stash.push_back((from, other)),
            }
        }
    }

    /// Write bytes at `offset` into a region (pipelined per home node).
    pub fn gm_write(&mut self, region: RegionId, offset: u64, data: &[u8]) {
        let runs = self
            .shared
            .store
            .split_by_home(region, offset, data.len())
            .unwrap_or_else(|e| panic!("rank {}: gm_write failed: {e}", self.rank));
        let cache_on = self.shared.config.gm_cache;
        if cache_on {
            // A writer's own copies of the written range go stale too.
            self.shared
                .cache
                .drop_range(self.node, region, offset, data.len());
        }
        let mut pending = 0usize;
        for (home, off, rlen) in runs {
            let buf_off = (off - offset) as usize;
            let chunk = &data[buf_off..buf_off + rlen];
            if home == self.node {
                if cache_on {
                    self.invalidate_for_local_write(region, off, rlen);
                }
                charge_local(self.ctx, &self.shared, self.node, rlen);
                self.shared.store.write(region, off, chunk).unwrap();
                self.shared.stats.update(self.node, |s| {
                    s.gm_local_writes += 1;
                    s.gm_bytes_written += rlen as u64;
                });
            } else {
                let req = self.reqs.next();
                pending += 1;
                let msg = Message::GmWriteReq {
                    req,
                    region,
                    offset: off,
                    data: chunk.to_vec(),
                };
                let kproc = self.shared.kernel_of(home);
                let me = self.ctx.id();
                let pe = self.node.0 as u32;
                self.shared.spans.open(
                    SpanKind::GmWrite,
                    pe,
                    req.0,
                    self.ctx.now().as_nanos(),
                    rlen as u64,
                );
                let wire = send_msg(self.ctx, &self.shared, self.node, home, kproc, me, &msg);
                self.shared
                    .spans
                    .note_wire(SpanKind::GmWrite, pe, req.0, wire.as_nanos());
            }
        }
        while pending > 0 {
            let (from, msg) = self.recv_runtime();
            match msg {
                Message::GmWriteAck { req } => {
                    let pe = self.node.0 as u32;
                    if let Some(rec) = self.shared.spans.close(
                        SpanKind::GmWrite,
                        pe,
                        req.0,
                        self.ctx.now().as_nanos(),
                    ) {
                        self.shared
                            .metrics
                            .record(MetricKey::pe("gm", "remote_write_ns", pe), rec.total_ns());
                        self.shared.flight.span(&rec);
                    }
                    pending -= 1;
                }
                other => self.stash.push_back((from, other)),
            }
        }
    }

    /// Atomic fetch-and-add on an aligned 8-byte cell; returns the previous
    /// value. The cell's home kernel serializes concurrent updates.
    pub fn gm_fetch_add(&mut self, region: RegionId, offset: u64, delta: i64) -> i64 {
        let home = self
            .shared
            .store
            .home_of(region, offset)
            .unwrap_or_else(|e| panic!("rank {}: fetch_add failed: {e}", self.rank));
        if home == self.node {
            if self.shared.config.gm_cache {
                self.shared.cache.drop_range(self.node, region, offset, 8);
                self.invalidate_for_local_write(region, offset, 8);
            }
            charge_local(self.ctx, &self.shared, self.node, 8);
            self.shared.stats.update(self.node, |s| s.fetch_adds += 1);
            return self.shared.store.fetch_add(region, offset, delta).unwrap();
        }
        let req = self.reqs.next();
        let msg = Message::GmFetchAddReq {
            req,
            region,
            offset,
            delta,
        };
        let kproc = self.shared.kernel_of(home);
        let me = self.ctx.id();
        let pe = self.node.0 as u32;
        self.shared.spans.open(
            SpanKind::GmFetchAdd,
            pe,
            req.0,
            self.ctx.now().as_nanos(),
            8,
        );
        let wire = send_msg(self.ctx, &self.shared, self.node, home, kproc, me, &msg);
        self.shared
            .spans
            .note_wire(SpanKind::GmFetchAdd, pe, req.0, wire.as_nanos());
        loop {
            let (from, msg) = self.recv_runtime();
            match msg {
                Message::GmFetchAddResp { req: r, prev } if r == req => {
                    if let Some(rec) = self.shared.spans.close(
                        SpanKind::GmFetchAdd,
                        pe,
                        req.0,
                        self.ctx.now().as_nanos(),
                    ) {
                        self.shared
                            .metrics
                            .record(MetricKey::pe("gm", "fetch_add_ns", pe), rec.total_ns());
                        self.shared.flight.span(&rec);
                    }
                    return prev;
                }
                other => self.stash.push_back((from, other)),
            }
        }
    }

    // ----- synchronization -------------------------------------------------

    /// Synchronize all ranks. Every rank must call `barrier` the same number
    /// of times in the same order (auto-sequenced ids).
    pub fn barrier(&mut self) {
        let id = AUTO_BARRIER_BASE + self.barrier_seq;
        self.barrier_seq += 1;
        self.barrier_at(id);
    }

    /// Synchronize on an explicitly named barrier (`id < AUTO_BARRIER_BASE`).
    pub fn barrier_named(&mut self, id: u32) {
        assert!(id < AUTO_BARRIER_BASE, "named barrier id too large");
        self.barrier_at(id);
    }

    fn barrier_at(&mut self, id: u32) {
        let party = Party {
            pid: self.pid,
            node: self.node,
            reply_to: self.ctx.id(),
            req: ReqId(0),
        };
        let pe = self.node.0 as u32;
        self.shared.spans.open(
            SpanKind::Barrier,
            pe,
            id as u64,
            self.ctx.now().as_nanos(),
            0,
        );
        if self.node == NodeId(0) {
            // Own-node path into the coordination state.
            charge_local(self.ctx, &self.shared, self.node, 16);
            if barrier_enter(self.ctx, &self.shared, NodeId(0), id, party).is_some() {
                self.finish_barrier_span(pe, id);
                return;
            }
        } else {
            let msg = Message::BarrierEnter {
                barrier: id,
                pid: self.pid,
            };
            let k0 = self.shared.kernel_of(NodeId(0));
            let me = self.ctx.id();
            let wire = send_msg(self.ctx, &self.shared, self.node, NodeId(0), k0, me, &msg);
            self.shared
                .spans
                .note_wire(SpanKind::Barrier, pe, id as u64, wire.as_nanos());
        }
        loop {
            let (from, msg) = self.recv_runtime();
            match msg {
                Message::BarrierRelease { barrier, .. } if barrier == id => {
                    self.finish_barrier_span(pe, id);
                    return;
                }
                other => self.stash.push_back((from, other)),
            }
        }
    }

    /// Close this rank's span for barrier `id` and record the wait time.
    fn finish_barrier_span(&mut self, pe: u32, id: u32) {
        if let Some(rec) =
            self.shared
                .spans
                .close(SpanKind::Barrier, pe, id as u64, self.ctx.now().as_nanos())
        {
            self.shared
                .metrics
                .record(MetricKey::pe("sync", "barrier_wait_ns", pe), rec.total_ns());
            self.shared.flight.span(&rec);
        }
    }

    /// Acquire a cluster-wide lock (FIFO).
    pub fn lock(&mut self, id: u32) {
        let req = self.reqs.next();
        let party = Party {
            pid: self.pid,
            node: self.node,
            reply_to: self.ctx.id(),
            req,
        };
        let pe = self.node.0 as u32;
        self.shared
            .spans
            .open(SpanKind::Lock, pe, req.0, self.ctx.now().as_nanos(), 0);
        if self.node == NodeId(0) {
            charge_local(self.ctx, &self.shared, self.node, 16);
            lock_acquire(self.ctx, &self.shared, NodeId(0), id, party);
        } else {
            let msg = Message::LockReq {
                req,
                lock: id,
                pid: self.pid,
            };
            let k0 = self.shared.kernel_of(NodeId(0));
            let me = self.ctx.id();
            let wire = send_msg(self.ctx, &self.shared, self.node, NodeId(0), k0, me, &msg);
            self.shared
                .spans
                .note_wire(SpanKind::Lock, pe, req.0, wire.as_nanos());
        }
        loop {
            let (from, msg) = self.recv_runtime();
            match msg {
                Message::LockGrant { req: r, .. } if r == req => {
                    if let Some(rec) = self.shared.spans.close(
                        SpanKind::Lock,
                        pe,
                        req.0,
                        self.ctx.now().as_nanos(),
                    ) {
                        self.shared
                            .metrics
                            .record(MetricKey::pe("sync", "lock_wait_ns", pe), rec.total_ns());
                        self.shared.flight.span(&rec);
                    }
                    return;
                }
                other => self.stash.push_back((from, other)),
            }
        }
    }

    /// Release a cluster-wide lock this process holds.
    pub fn unlock(&mut self, id: u32) {
        if self.node == NodeId(0) {
            charge_local(self.ctx, &self.shared, self.node, 16);
            lock_release(self.ctx, &self.shared, NodeId(0), id, self.pid);
        } else {
            let msg = Message::UnlockReq {
                lock: id,
                pid: self.pid,
            };
            let k0 = self.shared.kernel_of(NodeId(0));
            let me = self.ctx.id();
            send_msg(self.ctx, &self.shared, self.node, NodeId(0), k0, me, &msg);
        }
    }

    /// Request cooperative termination of another process: its
    /// [`DseCtx::termination_requested`] flag turns on once its node's
    /// kernel processes the request (checked at the target's convenience,
    /// like a UNIX signal). Blocks until the kernel acknowledges.
    pub fn terminate(&mut self, pid: GlobalPid) {
        let req = self.reqs.next();
        let msg = Message::TerminateReq { req, pid };
        let target = pid.node();
        let kproc = self.shared.kernel_of(target);
        let me = self.ctx.id();
        send_msg(self.ctx, &self.shared, self.node, target, kproc, me, &msg);
        loop {
            let (from, msg) = self.recv_runtime();
            match msg {
                Message::TerminateAck { req: r } if r == req => return,
                other => self.stash.push_back((from, other)),
            }
        }
    }

    // ----- point-to-point messages ------------------------------------------

    /// Send tagged bytes to another rank's process.
    pub fn send_to(&mut self, to: GlobalPid, tag: u32, data: Vec<u8>) {
        let dest = self
            .shared
            .app_proc(to)
            .unwrap_or_else(|| panic!("send_to: unknown pid {to} (synchronize before sending)"));
        let msg = Message::UserData {
            from: self.pid,
            tag,
            data,
        };
        let me = self.ctx.id();
        send_msg(self.ctx, &self.shared, self.node, to.node(), dest, me, &msg);
    }

    /// Receive the next user message, optionally filtered by tag.
    pub fn recv_user(&mut self, want_tag: Option<u32>) -> UserMsg {
        // Serve from the stash first.
        if let Some(idx) = self.stash.iter().position(|(_, m)| match m {
            Message::UserData { tag, .. } => want_tag.is_none_or(|t| t == *tag),
            _ => false,
        }) {
            if let (_, Message::UserData { from, tag, data }) = self.stash.remove(idx).unwrap() {
                return UserMsg { from, tag, data };
            }
            unreachable!()
        }
        loop {
            let (from_node, msg) = self.recv_runtime();
            match msg {
                Message::UserData { from, tag, data } if want_tag.is_none_or(|t| t == tag) => {
                    return UserMsg { from, tag, data }
                }
                other => self.stash.push_back((from_node, other)),
            }
        }
    }

    // ----- internals --------------------------------------------------------

    /// Receive one runtime message, charging the receive-side software cost.
    fn recv_runtime(&mut self) -> (NodeId, Message) {
        let env = self
            .ctx
            .recv()
            .expect("simulation shut down while a process was waiting");
        let sm = env.msg;
        charge_recv(self.ctx, &self.shared, self.node, sm.bytes.len());
        let msg = Message::decode(&sm.bytes).expect("undecodable runtime message");
        (sm.from_node, msg)
    }

    /// Called by the harness after the body returns: notify the launcher.
    pub fn finish(&mut self) {
        self.shared.mark_exited(self.pid);
        let msg = Message::ExitNotice {
            pid: self.pid,
            status: 0,
        };
        let launcher = self.shared.launcher();
        let me = self.ctx.id();
        send_msg(
            self.ctx,
            &self.shared,
            self.node,
            NodeId(0),
            launcher,
            me,
            &msg,
        );
    }
}
