//! Typed views over global-memory regions.

use std::marker::PhantomData;

use dse_kernel::Distribution;
use dse_msg::{NodeId, RegionId};

use crate::api::ParallelApi;

/// Element types storable in global memory (explicit little-endian layout,
/// mirroring the hand-rolled wire codec).
pub trait GmElem: Copy + Send + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Write the little-endian encoding into `out` (`out.len() == SIZE`).
    fn write_le(self, out: &mut [u8]);
    /// Read the little-endian encoding from `buf` (`buf.len() == SIZE`).
    fn read_le(buf: &[u8]) -> Self;
}

macro_rules! gm_elem_int {
    ($($t:ty),*) => {$(
        impl GmElem for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            fn write_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            fn read_le(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf.try_into().unwrap())
            }
        }
    )*};
}

gm_elem_int!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// A typed, distributed global array.
///
/// The handle is `Copy` and rank-agnostic: allocate it collectively once,
/// then any rank can read/write through its own context.
///
/// ```
/// use dse_api::{Distribution, DseProgram, GmArray, Platform};
///
/// DseProgram::new(Platform::linux_pentium2()).run(4, |ctx| {
///     let arr = GmArray::<u64>::alloc(ctx, 4, Distribution::Blocked);
///     arr.set(ctx, ctx.rank() as usize, ctx.rank() as u64 * 10);
///     ctx.barrier();
///     assert_eq!(arr.read(ctx, 0, 4), vec![0, 10, 20, 30]);
/// });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GmArray<T> {
    region: RegionId,
    len: usize,
    _elem: PhantomData<T>,
}

impl<T: GmElem> GmArray<T> {
    /// Collectively allocate an array of `len` elements (all ranks must
    /// call identically).
    ///
    /// An element-`Blocked` layout is translated to an explicit byte
    /// chunking of `ceil(len/nprocs) * size_of::<T>()` so element and home
    /// boundaries coincide: rank `r`'s elements are exactly the ones homed
    /// on node `r`, whatever `len` and `nprocs` are.
    pub fn alloc(ctx: &mut impl ParallelApi, len: usize, dist: Distribution) -> GmArray<T> {
        let dist = match dist {
            Distribution::Blocked => Distribution::BlockedBy {
                chunk: len.div_ceil(ctx.nprocs()).max(1) * T::SIZE,
            },
            other => other,
        };
        let region = ctx.gm_alloc(len * T::SIZE, dist);
        GmArray {
            region,
            len,
            _elem: PhantomData,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying region.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Read `count` elements starting at `start`.
    pub fn read(&self, ctx: &mut impl ParallelApi, start: usize, count: usize) -> Vec<T> {
        assert!(start + count <= self.len, "GmArray read out of bounds");
        let bytes = ctx.gm_read(self.region, (start * T::SIZE) as u64, count * T::SIZE);
        bytes.chunks_exact(T::SIZE).map(|c| T::read_le(c)).collect()
    }

    /// Read elements starting at `start` into a caller-provided slice,
    /// avoiding the intermediate `Vec` allocations of [`GmArray::read`].
    pub fn read_into(&self, ctx: &mut impl ParallelApi, start: usize, out: &mut [T]) {
        assert!(start + out.len() <= self.len, "GmArray read out of bounds");
        let mut buf = ctx.take_scratch();
        buf.clear();
        buf.resize(out.len() * T::SIZE, 0);
        ctx.gm_read_into(self.region, (start * T::SIZE) as u64, &mut buf);
        for (o, c) in out.iter_mut().zip(buf.chunks_exact(T::SIZE)) {
            *o = T::read_le(c);
        }
        ctx.put_scratch(buf);
    }

    /// Write elements starting at `start`.
    pub fn write(&self, ctx: &mut impl ParallelApi, start: usize, items: &[T]) {
        assert!(
            start + items.len() <= self.len,
            "GmArray write out of bounds"
        );
        let mut bytes = vec![0u8; items.len() * T::SIZE];
        for (i, &v) in items.iter().enumerate() {
            v.write_le(&mut bytes[i * T::SIZE..(i + 1) * T::SIZE]);
        }
        ctx.gm_write(self.region, (start * T::SIZE) as u64, &bytes);
    }

    /// Read one element (through the context's scratch buffer, so the hot
    /// element-wise access pattern allocates nothing after warm-up).
    pub fn get(&self, ctx: &mut impl ParallelApi, idx: usize) -> T {
        assert!(idx < self.len, "GmArray get out of bounds");
        let mut buf = ctx.take_scratch();
        buf.clear();
        buf.resize(T::SIZE, 0);
        ctx.gm_read_into(self.region, (idx * T::SIZE) as u64, &mut buf);
        let v = T::read_le(&buf[..T::SIZE]);
        ctx.put_scratch(buf);
        v
    }

    /// Write one element (scratch-buffered like [`GmArray::get`]).
    pub fn set(&self, ctx: &mut impl ParallelApi, idx: usize, value: T) {
        assert!(idx < self.len, "GmArray set out of bounds");
        let mut buf = ctx.take_scratch();
        buf.clear();
        buf.resize(T::SIZE, 0);
        value.write_le(&mut buf[..T::SIZE]);
        ctx.gm_write(self.region, (idx * T::SIZE) as u64, &buf[..T::SIZE]);
        ctx.put_scratch(buf);
    }
}

/// A shared atomic counter homed on node 0 — the DSE idiom for dynamic task
/// queues ("get me the next job index").
///
/// ```
/// use dse_api::{DseProgram, GmCounter, Platform};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let total = Arc::new(AtomicU64::new(0));
/// let t = Arc::clone(&total);
/// DseProgram::new(Platform::sunos_sparc()).run(3, move |ctx| {
///     let jobs = GmCounter::alloc(ctx);
///     ctx.barrier();
///     while jobs.next(ctx) < 10 {
///         t.fetch_add(1, Ordering::Relaxed); // each job exactly once
///     }
/// });
/// assert_eq!(total.load(Ordering::Relaxed), 10);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GmCounter {
    region: RegionId,
}

impl GmCounter {
    /// Collectively allocate a counter starting at zero.
    pub fn alloc(ctx: &mut impl ParallelApi) -> GmCounter {
        let region = ctx.gm_alloc(8, Distribution::OnNode(NodeId(0)));
        GmCounter { region }
    }

    /// Atomically add `delta`, returning the previous value.
    pub fn fetch_add(&self, ctx: &mut impl ParallelApi, delta: i64) -> i64 {
        ctx.gm_fetch_add(self.region, 0, delta)
    }

    /// Take the next value (fetch_add 1).
    pub fn next(&self, ctx: &mut impl ParallelApi) -> i64 {
        self.fetch_add(ctx, 1)
    }

    /// Read the current value without advancing it.
    pub fn load(&self, ctx: &mut impl ParallelApi) -> i64 {
        self.fetch_add(ctx, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_roundtrip_f64() {
        let mut buf = [0u8; 8];
        (1234.5678f64).write_le(&mut buf);
        assert_eq!(f64::read_le(&buf), 1234.5678);
    }

    #[test]
    fn elem_roundtrip_signed() {
        let mut buf = [0u8; 8];
        (-99i64).write_le(&mut buf);
        assert_eq!(i64::read_le(&buf), -99);
        let mut b2 = [0u8; 2];
        (-7i16).write_le(&mut b2);
        assert_eq!(i16::read_le(&b2), -7);
    }

    #[test]
    fn elem_sizes() {
        assert_eq!(<u8 as GmElem>::SIZE, 1);
        assert_eq!(<f32 as GmElem>::SIZE, 4);
        assert_eq!(<f64 as GmElem>::SIZE, 8);
    }
}
