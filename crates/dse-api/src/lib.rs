//! # dse-api — the DSE Parallel API library
//!
//! The user-facing half of the paper's software organization (Fig. 3): the
//! **parallel application programming interface library** that the parallel
//! application links together with the kernel library into one process.
//!
//! * [`DseProgram`] — configure a cluster (platform, machine count, runtime
//!   config) and [`DseProgram::run`] an SPMD body over `p` processors;
//! * [`DseCtx`] — the per-process API: global-memory access, barriers,
//!   locks, atomic counters, point-to-point messages, computation charging;
//! * [`GmArray`]/[`GmCounter`] — typed views over distributed regions;
//! * [`collective`] — broadcast/gather/reduce conveniences built from the
//!   same primitives an application would use by hand.
//!
//! ```
//! use dse_api::{collective, DseProgram};
//! use dse_platform::Platform;
//!
//! let result = DseProgram::new(Platform::linux_pentium2()).run(4, |ctx| {
//!     let rank_sum = collective::reduce_sum(ctx, ctx.rank() as f64);
//!     assert_eq!(rank_sum, 0.0 + 1.0 + 2.0 + 3.0);
//! });
//! assert!(result.secs() > 0.0);
//! ```

#![warn(missing_docs)]

mod api;
pub mod collective;
mod ctx;
mod program;
mod region;

pub use api::ParallelApi;
pub use ctx::{DseCtx, GmHandle, UserMsg, AUTO_BARRIER_BASE};
pub use program::{DseProgram, RunResult, TelemetrySummary};
pub use region::{GmArray, GmCounter, GmElem};

// Re-export the vocabulary callers need alongside the API.
pub use dse_kernel::{
    Distribution, DseConfig, KernelStats, NetworkChoice, Organization, StallReport, TelemetryConfig,
};
pub use dse_msg::{GlobalPid, NodeId, RegionId};
pub use dse_platform::{ClusterSpec, Platform, Work};
pub use dse_sim::{SimDuration, SimTime};
