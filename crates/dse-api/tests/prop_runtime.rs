//! Property tests through the full simulated runtime: arbitrary sequences
//! of global-memory operations executed by multiple ranks (phase-separated
//! by barriers) match a flat mirror — with and without the GM cache — and
//! the cache never changes any observable value.

use proptest::prelude::*;

use dse_api::{Distribution, DseConfig, DseProgram, Platform};
use dse_msg::NodeId;
use std::sync::{Arc, Mutex};

/// One scripted phase: every rank performs its op, then a barrier.
#[derive(Debug, Clone)]
enum Op {
    /// (rank that writes, offset, data byte, length)
    Write(u8, u16, u8, u8),
    /// (rank that reads, offset, length) — checked against the mirror
    Read(u8, u16, u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u16>(), any::<u8>(), 1u8..64)
                .prop_map(|(r, o, v, l)| Op::Write(r, o, v, l)),
            (any::<u8>(), any::<u16>(), 1u8..64).prop_map(|(r, o, l)| Op::Read(r, o, l)),
        ],
        1..12,
    )
}

fn arb_dist() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        Just(Distribution::Blocked),
        (64usize..700).prop_map(|c| Distribution::BlockedBy { chunk: c }),
        (32usize..300).prop_map(|b| Distribution::Cyclic { block: b }),
        Just(Distribution::OnNode(NodeId(0))),
        Just(Distribution::OnNode(NodeId(1))),
    ]
}

const LEN: usize = 1500;

fn run_script(ops: Vec<Op>, dist: Distribution, nprocs: usize, cache: bool) -> Vec<u8> {
    // Clamp a pinned home node into the cluster.
    let dist = match dist {
        Distribution::OnNode(n) => Distribution::OnNode(NodeId(n.0 % nprocs as u16)),
        other => other,
    };
    // Mirror maintained outside; reads are checked inside the program.
    let mut mirror = vec![0u8; LEN];
    let expected: Vec<(usize, usize, Vec<u8>)> = {
        // Precompute per-phase expected read results.
        let mut expected = Vec::new();
        for op in &ops {
            match *op {
                Op::Write(_, off, val, l) => {
                    let off = off as usize % LEN;
                    let l = (l as usize).min(LEN - off);
                    mirror[off..off + l].fill(val);
                }
                Op::Read(_, off, l) => {
                    let off = off as usize % LEN;
                    let l = (l as usize).min(LEN - off);
                    expected.push((off, l, mirror[off..off + l].to_vec()));
                }
            }
        }
        expected
    };
    let final_mirror = mirror;
    let observed: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let obs = Arc::clone(&observed);
    let ops = Arc::new(ops);
    let expected = Arc::new(expected);
    let config = DseConfig::paper().with_gm_cache(cache);
    DseProgram::new(Platform::linux_pentium2())
        .with_config(config)
        .run(nprocs, move |ctx| {
            let region = ctx.gm_alloc(LEN, dist);
            ctx.barrier();
            let mut read_idx = 0;
            for op in ops.iter() {
                match *op {
                    Op::Write(r, off, val, l) => {
                        if ctx.rank() == r as u32 % ctx.nprocs() as u32 {
                            let off = off as usize % LEN;
                            let l = (l as usize).min(LEN - off);
                            ctx.gm_write(region, off as u64, &vec![val; l]);
                        }
                    }
                    Op::Read(r, off, l) => {
                        let (eoff, el, ref want) = expected[read_idx];
                        read_idx += 1;
                        if ctx.rank() == r as u32 % ctx.nprocs() as u32 {
                            let off = off as usize % LEN;
                            let l = (l as usize).min(LEN - off);
                            assert_eq!((off, l), (eoff, el));
                            let got = ctx.gm_read(region, off as u64, l);
                            assert_eq!(&got, want, "phase read mismatch");
                        }
                    }
                }
                ctx.barrier();
            }
            if ctx.rank() == 0 {
                *obs.lock().unwrap() = ctx.gm_read(region, 0, LEN);
            }
        });
    let got = observed.lock().unwrap().clone();
    assert_eq!(got, final_mirror, "final region state diverged from mirror");
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn gm_semantics_match_mirror_without_cache(
        ops in arb_ops(),
        dist in arb_dist(),
        nprocs in 1usize..5,
    ) {
        run_script(ops, dist, nprocs, false);
    }

    #[test]
    fn gm_semantics_match_mirror_with_cache(
        ops in arb_ops(),
        dist in arb_dist(),
        nprocs in 1usize..5,
    ) {
        run_script(ops, dist, nprocs, true);
    }

    #[test]
    fn cache_is_observably_transparent(
        ops in arb_ops(),
        dist in arb_dist(),
        nprocs in 2usize..4,
    ) {
        let plain = run_script(ops.clone(), dist, nprocs, false);
        let cached = run_script(ops, dist, nprocs, true);
        prop_assert_eq!(plain, cached);
    }
}
