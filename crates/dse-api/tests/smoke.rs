//! End-to-end smoke tests of the simulated DSE runtime.

use dse_api::{collective, Distribution, DseProgram, GmArray, GmCounter, Platform, Work};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn single_rank_runs() {
    let r = DseProgram::new(Platform::linux_pentium2()).run(1, |ctx| {
        ctx.compute(Work::flops(1_000_000));
    });
    assert_eq!(r.nprocs, 1);
    assert!(r.secs() > 0.0);
}

#[test]
fn barrier_synchronizes_all_ranks() {
    let hits = Arc::new(AtomicU64::new(0));
    let h = hits.clone();
    let r = DseProgram::new(Platform::sunos_sparc()).run(4, move |ctx| {
        h.fetch_add(1, Ordering::SeqCst);
        ctx.barrier();
        ctx.barrier();
    });
    assert_eq!(hits.load(Ordering::SeqCst), 4);
    assert_eq!(r.stats.barrier_epochs, 2);
}

#[test]
fn gm_array_blocked_read_write() {
    let r = DseProgram::new(Platform::aix_rs6000()).run(3, |ctx| {
        let arr = GmArray::<f64>::alloc(ctx, 30, Distribution::Blocked);
        let rank = ctx.rank() as usize;
        // Each rank writes its 10-element slice.
        let vals: Vec<f64> = (0..10).map(|i| (rank * 10 + i) as f64).collect();
        arr.write(ctx, rank * 10, &vals);
        ctx.barrier();
        // Everyone reads everything and checks.
        let all = arr.read(ctx, 0, 30);
        for (i, v) in all.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    });
    assert!(r.stats.gm_remote_reads > 0, "remote traffic expected");
    assert!(r.stats.gm_local_writes > 0, "local fast path expected");
}

#[test]
fn counter_distributes_unique_jobs() {
    let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
    let s = seen.clone();
    DseProgram::new(Platform::linux_pentium2()).run(4, move |ctx| {
        let counter = GmCounter::alloc(ctx);
        ctx.barrier();
        loop {
            let job = counter.next(ctx);
            if job >= 20 {
                break;
            }
            s.lock().unwrap().push(job);
        }
    });
    let mut jobs = seen.lock().unwrap().clone();
    jobs.sort_unstable();
    assert_eq!(jobs, (0..20).collect::<Vec<i64>>());
}

#[test]
fn collectives_work() {
    DseProgram::new(Platform::sunos_sparc()).run(5, |ctx| {
        let sum = collective::reduce_sum(ctx, (ctx.rank() + 1) as f64);
        assert_eq!(sum, 15.0);
        let all = collective::all_gather(ctx, ctx.rank() as i64);
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        let data = if ctx.rank() == 0 {
            vec![7.0, 8.0]
        } else {
            vec![0.0, 0.0]
        };
        let bc = collective::broadcast(ctx, &data);
        assert_eq!(bc, vec![7.0, 8.0]);
    });
}

#[test]
fn locks_serialize_critical_sections() {
    let log = Arc::new(std::sync::Mutex::new(Vec::new()));
    let l = log.clone();
    DseProgram::new(Platform::linux_pentium2()).run(3, move |ctx| {
        ctx.barrier();
        ctx.lock(1);
        l.lock().unwrap().push((ctx.rank(), "in"));
        ctx.compute(Work::iops(100_000));
        l.lock().unwrap().push((ctx.rank(), "out"));
        ctx.unlock(1);
    });
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 6);
    for pair in log.chunks(2) {
        assert_eq!(
            pair[0].0, pair[1].0,
            "critical sections interleaved: {log:?}"
        );
        assert_eq!(pair[0].1, "in");
        assert_eq!(pair[1].1, "out");
    }
}

#[test]
fn user_messages_point_to_point() {
    DseProgram::new(Platform::aix_rs6000()).run(2, |ctx| {
        ctx.barrier(); // ensure both ranks are registered
        if ctx.rank() == 0 {
            ctx.send_to(ctx.pid_of_rank(1), 42, vec![1, 2, 3]);
        } else {
            let m = ctx.recv_user(Some(42));
            assert_eq!(m.data, vec![1, 2, 3]);
            assert_eq!(m.from, ctx.pid_of_rank(0));
        }
    });
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        DseProgram::new(Platform::sunos_sparc()).run(6, |ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 600, Distribution::Cyclic { block: 64 });
            let vals: Vec<u64> = (0..100).map(|i| (ctx.rank() as u64) * 1000 + i).collect();
            arr.write(ctx, ctx.rank() as usize * 100, &vals);
            ctx.barrier();
            let _ = arr.read(ctx, 0, 600);
            ctx.compute(Work::flops(50_000));
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.report.trace_hash, b.report.trace_hash);
    assert_eq!(a.net_frames, b.net_frames);
}

#[test]
fn virtual_cluster_shares_machines() {
    // 8 processors on 6 machines: co-located ranks share a CPU, so the same
    // total compute takes longer per rank than with 6 fully parallel ranks.
    let work = move |ctx: &mut dse_api::DseCtx<'_>| {
        ctx.compute(Work::flops(10_000_000));
    };
    let r6 = DseProgram::new(Platform::linux_pentium2()).run(6, work);
    let r8 = DseProgram::new(Platform::linux_pentium2()).run(8, work);
    assert!(
        r8.secs() > r6.secs(),
        "8 procs on 6 machines ({}) should be slower than 6 on 6 ({})",
        r8.secs(),
        r6.secs()
    );
}
