//! Deterministic pseudo-random numbers for simulation models.
//!
//! The engine must be bit-for-bit reproducible given a seed, so models that
//! need randomness (Ethernet backoff, workload generators) draw from this
//! small splitmix64/xoshiro-style generator rather than from a global,
//! platform-dependent source.

/// A small, fast, deterministic PRNG (splitmix64 core).
///
/// Not cryptographically secure; statistical quality is more than adequate
/// for backoff jitter and synthetic workloads.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from a seed. Two generators with the same seed
    /// produce identical streams.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point without changing distinct seeds.
        SimRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derive an independent child generator; useful to give each model
    /// component its own stream so adding a component does not perturb the
    /// draws of another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base.wrapping_add(stream.wrapping_mul(0xA24B_AED4_963E_E407)))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        // Lemire-style widening multiply avoids modulo bias well enough for
        // simulation purposes without a rejection loop.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SimRng::new(7);
        for _ in 0..1000 {
            assert!(r.gen_range(10) < 10);
        }
        for _ in 0..100 {
            assert!(r.gen_range(1) == 0);
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fork_is_independent_and_deterministic() {
        let mut parent1 = SimRng::new(5);
        let mut parent2 = SimRng::new(5);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::new(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        // Out-of-range probabilities clamp instead of panicking.
        assert!(r.gen_bool(7.5));
        assert!(!r.gen_bool(-3.0));
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SimRng::new(13);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.gen_range(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} out of range");
        }
    }
}
