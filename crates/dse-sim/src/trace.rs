//! Optional execution tracing: what every simulated process spent its
//! virtual time on. Consumed by the `dse-trace` analysis crate to explain
//! *why* a configuration is slow (compute vs CPU queueing vs waiting for
//! messages) — the quantities the paper reasons about qualitatively.

use crate::ids::{ProcId, ResourceId};
use crate::time::SimTime;

/// One traced occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The process's first scheduling.
    Start {
        /// When it began.
        at: SimTime,
    },
    /// Queued behind earlier holders of a resource.
    ResourceWait {
        /// Resource queued on.
        res: ResourceId,
        /// Queue entry time.
        from: SimTime,
        /// Grant time.
        until: SimTime,
    },
    /// Held a resource (computing / servicing).
    ResourceHold {
        /// Resource held.
        res: ResourceId,
        /// Grant time.
        from: SimTime,
        /// Release time.
        until: SimTime,
    },
    /// Blocked in `recv` with an empty inbox.
    RecvWait {
        /// Block time.
        from: SimTime,
        /// Wake time (message arrival or timeout).
        until: SimTime,
    },
    /// Pure delay (`sleep`).
    Sleep {
        /// Sleep start.
        from: SimTime,
        /// Wake time.
        until: SimTime,
    },
    /// Sent a message.
    Sent {
        /// Send time.
        at: SimTime,
        /// Destination process.
        to: ProcId,
    },
    /// The process function returned.
    Exit {
        /// Completion time.
        at: SimTime,
    },
}

/// One traced event, attributed to a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The process this happened to.
    pub proc: ProcId,
    /// What happened.
    pub kind: TraceKind,
}

/// A full recorded trace: events in engine order plus process names.
#[derive(Debug, Clone, Default)]
pub struct TraceRecords {
    /// Events in the order the engine handled them.
    pub events: Vec<TraceEvent>,
    /// Process names indexed by `ProcId::index()`.
    pub proc_names: Vec<String>,
}

impl TraceRecords {
    /// Events belonging to one process.
    pub fn of(&self, proc: ProcId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.proc == proc)
    }

    /// Name of a process.
    pub fn name(&self, proc: ProcId) -> &str {
        &self.proc_names[proc.index()]
    }
}
