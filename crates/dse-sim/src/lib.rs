//! # dse-sim — deterministic direct-execution discrete-event engine
//!
//! This crate is the timing substrate for the DSE reproduction. It simulates
//! a set of *processes* (each running real Rust code on its own OS thread,
//! interleaved one-at-a-time in virtual-time order), *messages* between them
//! (delivered after caller-computed latencies) and *FCFS resources* (machine
//! CPUs, shared buses) that serialize and therefore stretch contended work.
//!
//! Design rules that make runs bit-for-bit reproducible:
//!
//! * virtual time is integer nanoseconds ([`SimTime`]/[`SimDuration`]);
//! * a process's clock only advances at yield points, so the engine always
//!   services requests in global `(time, sequence)` order;
//! * all randomness flows through the seeded [`SimRng`].
//!
//! The typical setup (done by `dse-kernel`) is one simulated process per DSE
//! node kernel plus one per parallel application process, a CPU resource per
//! physical machine, and an Ethernet-bus process from `dse-net`.

#![warn(missing_docs)]

mod engine;
mod envelope;
mod ids;
mod rng;
mod stats;
mod time;
mod trace;

pub use engine::{ProcCtx, Simulator};
pub use envelope::{Envelope, RecvResult};
pub use ids::{ProcId, ResourceId};
pub use rng::SimRng;
pub use stats::{ResourceStats, SimReport, SimStats};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceKind, TraceRecords};
