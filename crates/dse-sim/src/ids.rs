//! Identifier newtypes for simulated entities.

use std::fmt;

/// Identifies a simulated process (an independently-scheduled thread of
/// control with its own inbox and virtual clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub(crate) u32);

impl ProcId {
    /// The raw index of this process within the simulator.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Only meaningful for ids previously
    /// obtained from the same simulator.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ProcId(i as u32)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies a FCFS-served resource (a CPU, a shared bus, a disk, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// The raw index of this resource within the simulator.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Only meaningful for ids previously
    /// obtained from the same simulator.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ResourceId(i as u32)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
