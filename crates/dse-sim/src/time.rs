//! Virtual time for the simulation engine.
//!
//! Time is measured in integer nanoseconds since the start of the simulation.
//! Integer time keeps the engine exactly reproducible across platforms: there
//! is no floating-point rounding anywhere in the scheduler, so the same
//! program with the same seed produces the same event order everywhere.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and non-finite inputs clamp to zero: durations produced by
    /// cost models must never drive the clock backwards.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional microseconds (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_500);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn duration_from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn saturating_behaviour() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_nanos(5), SimDuration::ZERO);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(30);
        assert_eq!(b.since(a).as_nanos(), 20);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_chooses_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_nanos(3).max(SimDuration::from_nanos(4)),
            SimDuration::from_nanos(4)
        );
    }
}
