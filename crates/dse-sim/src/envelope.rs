//! Message envelopes exchanged between simulated processes.

use crate::ids::ProcId;
use crate::time::SimTime;

/// A message in flight or in an inbox, together with its routing metadata.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// The process that sent the message.
    pub from: ProcId,
    /// Virtual time at which the sender issued the message.
    pub sent_at: SimTime,
    /// Virtual time at which the message reached the receiver's inbox.
    pub delivered_at: SimTime,
    /// The payload.
    pub msg: M,
}

/// Outcome of a `recv` with a deadline.
#[derive(Debug)]
pub enum RecvResult<M> {
    /// A message arrived (possibly already waiting in the inbox).
    Msg(Envelope<M>),
    /// The deadline passed with no message.
    Timeout,
    /// The simulation is shutting down; no further messages will arrive.
    Shutdown,
}

impl<M> RecvResult<M> {
    /// Unwrap a message, panicking on timeout/shutdown. For tests and
    /// protocols where the message is guaranteed.
    pub fn expect_msg(self, what: &str) -> Envelope<M> {
        match self {
            RecvResult::Msg(env) => env,
            RecvResult::Timeout => panic!("expected message ({what}), got timeout"),
            RecvResult::Shutdown => panic!("expected message ({what}), got shutdown"),
        }
    }

    /// True if this is a message.
    pub fn is_msg(&self) -> bool {
        matches!(self, RecvResult::Msg(_))
    }
}
