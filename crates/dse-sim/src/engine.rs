//! The direct-execution discrete-event engine.
//!
//! Each simulated process runs its *real* Rust code on a dedicated OS thread,
//! but exactly one thread executes at any instant: the engine resumes the
//! runnable entity with the lowest virtual time, waits for it to yield (every
//! blocking context-API call yields), and only then proceeds. Virtual time
//! advances solely through the context API, so event handling is totally
//! ordered by `(time, sequence)` and a run is bit-for-bit deterministic.
//!
//! This is the classic "direct execution" simulation style: application
//! results are computed for real (a solver really converges, a game tree is
//! really searched) while *timing* comes entirely from the cost model that
//! callers express through [`ProcCtx::use_resource`], [`ProcCtx::sleep`] and
//! message latencies.
//!
//! ## The shared scheduler core
//!
//! The mutable scheduler state (event heap, resource queues, statistics,
//! trace) lives in a [`Core`] shared between the engine thread and every
//! process context. Because exactly one process runs at a time and the
//! engine only acts while all processes are parked, the mutex is never
//! contended and the interleaving of core operations is deterministic.
//!
//! Sharing the core lets the hot context calls avoid the engine round-trip
//! (two context switches each) entirely:
//!
//! - [`ProcCtx::send`] appends the delivery event to the heap itself; the
//!   engine thread is not woken at all.
//! - [`ProcCtx::sleep`] and [`ProcCtx::use_resource`] complete inline when
//!   the resulting wake would be the very next event popped (no earlier
//!   event is queued, and nothing can be queued before it while the caller
//!   is the running process). Otherwise they fall back to parking on the
//!   engine, which preserves global virtual-time order — in particular FCFS
//!   resource handover between processes.
//!
//! Either way the logical event sequence — counters, virtual times, FCFS
//! grants, and the determinism hash — is identical to the fully-parked
//! schedule; only the number of OS context switches changes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::envelope::{Envelope, RecvResult};
use crate::ids::{ProcId, ResourceId};
use crate::stats::{ResourceStats, SimReport, SimStats, TraceHasher};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceKind, TraceRecords};

type ProcFn<M> = Box<dyn FnOnce(&mut ProcCtx<M>) + Send + 'static>;

/// What the engine hands a process when resuming it.
enum ResumePayload<M: Send + 'static> {
    /// Plain wakeup (wait expired, start).
    None,
    /// A received message.
    Msg(Envelope<M>),
    /// A `recv` deadline expired with no message.
    Timeout,
    /// A spawned child's id.
    Spawned(ProcId),
    /// The simulation is over; unblock and clean up.
    Shutdown,
}

struct Resume<M: Send + 'static> {
    time: SimTime,
    payload: ResumePayload<M>,
}

/// What a process asks of the engine when yielding. Sends and uncontended
/// sleeps/resource holds never yield — they go straight to the shared core.
enum YieldReason<M: Send + 'static> {
    /// Park until the given instant (sleep, or a resource hold that must
    /// respect earlier queued events). All timing bookkeeping was already
    /// done by the caller; the engine only schedules the wake.
    Wait { until: SimTime },
    /// Wait for a message (optionally until a deadline).
    Recv { deadline: Option<SimTime> },
    /// Create a new process starting now.
    Spawn { name: String, f: ProcFn<M> },
    /// The process function returned.
    Exit,
}

struct YieldMsg<M: Send + 'static> {
    time: SimTime,
    reason: YieldReason<M>,
}

/// Heap event actions.
enum Action<M: Send + 'static> {
    /// Resume process if its epoch still matches.
    Wake(ProcId, u64, ResumePayload<M>),
    /// Deposit a message at its destination.
    Deliver(ProcId, Envelope<M>),
}

/// Bits of the packed heap key reserved for the slab slot index; the rest
/// carry the global schedule sequence. 24 bits bound the number of
/// *outstanding* (scheduled, not yet fired) events at ~16.7M, leaving 40
/// bits of sequence — ~10^12 events per run before wraparound.
const SLOT_BITS: u32 = 24;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Has a pending wake event in the heap.
    Scheduled,
    /// Blocked in `recv` with no pending wake.
    Blocked,
    /// Currently executing (engine is waiting on its yield channel).
    Running,
    /// Finished.
    Done,
}

struct ProcSlot<M: Send + 'static> {
    name: String,
    state: ProcState,
    /// Guards against stale wake events; bumped whenever a wake is scheduled.
    epoch: u64,
    time: SimTime,
    /// When the process blocked in `recv` (tracing).
    blocked_since: Option<SimTime>,
    /// Whether the first scheduling was traced.
    started: bool,
    resume_tx: Sender<Resume<M>>,
    yield_rx: Receiver<YieldMsg<M>>,
    thread: Option<JoinHandle<()>>,
    inbox: VecDeque<Envelope<M>>,
}

struct ResourceState {
    name: String,
    available_at: SimTime,
    stats_busy: SimDuration,
    stats_waited: SimDuration,
    acquisitions: u64,
}

/// The mutable scheduler state shared between the engine thread and every
/// [`ProcCtx`]. See the module docs for why the mutex is uncontended and
/// the operation order deterministic.
struct Core<M: Send + 'static> {
    /// Min-heap of `(time, seq << SLOT_BITS | slot)` keys. Ordering is by
    /// `(time, seq)` — the sequence is globally unique, so the slot bits
    /// never decide a comparison — and sift operations move 16-byte keys
    /// instead of full `Action` payloads. The payload lives in `slab` at
    /// the key's slot until the key is popped.
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Indexed event storage; `free` recycles vacated slots so steady-state
    /// scheduling allocates nothing.
    slab: Vec<Option<Action<M>>>,
    free: Vec<u32>,
    seq: u64,
    now: SimTime,
    stats: SimStats,
    hasher: TraceHasher,
    tracing: Option<Vec<TraceEvent>>,
    resources: Vec<ResourceState>,
}

impl<M: Send + 'static> Core<M> {
    fn new() -> Self {
        Core {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            stats: SimStats::default(),
            hasher: TraceHasher::new(),
            tracing: None,
            resources: Vec::new(),
        }
    }

    #[inline]
    fn trace(&mut self, proc: ProcId, kind: TraceKind) {
        if let Some(t) = self.tracing.as_mut() {
            t.push(TraceEvent { proc, kind });
        }
    }

    fn push_event(&mut self, time: SimTime, action: Action<M>) {
        let seq = self.seq;
        self.seq += 1;
        debug_assert!(seq < (1 << (64 - SLOT_BITS)), "schedule sequence overflow");
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(action);
                s
            }
            None => {
                assert!(
                    self.slab.len() as u64 <= SLOT_MASK,
                    "too many outstanding events"
                );
                self.slab.push(Some(action));
                (self.slab.len() - 1) as u32
            }
        };
        self.heap
            .push(Reverse((time, (seq << SLOT_BITS) | slot as u64)));
    }

    /// Schedule a wake for `p` at `time`, invalidating older pending wakes.
    fn push_wake(
        &mut self,
        procs: &mut [ProcSlot<M>],
        time: SimTime,
        p: ProcId,
        payload: ResumePayload<M>,
    ) {
        let slot = &mut procs[p.index()];
        slot.epoch += 1;
        let epoch = slot.epoch;
        slot.state = ProcState::Scheduled;
        self.push_event(time, Action::Wake(p, epoch, payload));
    }

    /// Lookahead: would a wake at `t` for the currently running process be
    /// the very next event popped? True when every queued event is strictly
    /// later (a tie loses — the queued event has the smaller sequence).
    /// While the caller is the running process nothing else can queue an
    /// event, so a true answer stays true until the caller acts on it.
    #[inline]
    fn wake_is_next(&self, t: SimTime) -> bool {
        match self.heap.peek() {
            None => true,
            Some(Reverse((ht, _))) => *ht > t,
        }
    }

    /// Account a wake of `p` at `t` that is completing inline on the
    /// process thread: exactly the bookkeeping the pop-and-dispatch path
    /// would have done, so statistics, virtual time, and the determinism
    /// hash are identical to the parked schedule.
    #[inline]
    fn account_inline_wake(&mut self, p: ProcId, t: SimTime) {
        self.stats.events += 1;
        self.stats.inline_wakes += 1;
        self.now = t;
        self.hasher.mix(t.as_nanos());
        self.hasher.mix(p.0 as u64);
    }
}

/// The simulation engine. Type parameter `M` is the message payload type
/// exchanged between processes.
///
/// ```
/// use dse_sim::{SimDuration, Simulator};
///
/// let mut sim: Simulator<u32> = Simulator::new();
/// let echo = sim.spawn("echo", |ctx| {
///     while let Some(env) = ctx.recv() {
///         ctx.send(env.from, SimDuration::from_micros(10), env.msg + 1);
///     }
/// });
/// sim.spawn("client", move |ctx| {
///     ctx.send(echo, SimDuration::from_micros(10), 41);
///     let reply = ctx.recv().unwrap();
///     assert_eq!(reply.msg, 42);
///     assert_eq!(ctx.now().as_nanos(), 20_000); // two 10 µs hops
/// });
/// let report = sim.run();
/// assert_eq!(report.stats.sends, 2);
/// ```
pub struct Simulator<M: Send + 'static> {
    procs: Vec<ProcSlot<M>>,
    core: Arc<Mutex<Core<M>>>,
    shutting_down: bool,
}

impl<M: Send + 'static> Default for Simulator<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Send + 'static> Simulator<M> {
    /// Create an empty simulator.
    pub fn new() -> Self {
        Simulator {
            procs: Vec::new(),
            core: Arc::new(Mutex::new(Core::new())),
            shutting_down: false,
        }
    }

    /// Record an execution trace during the run (see [`TraceRecords`]);
    /// retrieve it from [`SimReport::trace`].
    pub fn enable_tracing(&mut self) {
        self.core.lock().tracing = Some(Vec::new());
    }

    /// Register a FCFS resource (e.g. a machine CPU). Must be called before
    /// [`Simulator::run`].
    pub fn add_resource(&mut self, name: &str) -> ResourceId {
        let mut core = self.core.lock();
        let id = ResourceId(core.resources.len() as u32);
        core.resources.push(ResourceState {
            name: name.to_string(),
            available_at: SimTime::ZERO,
            stats_busy: SimDuration::ZERO,
            stats_waited: SimDuration::ZERO,
            acquisitions: 0,
        });
        id
    }

    /// Register a process to start at t = 0.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&mut ProcCtx<M>) + Send + 'static,
    {
        let id = self.add_proc(name, Box::new(f));
        let mut core = self.core.lock();
        core.push_wake(&mut self.procs, SimTime::ZERO, id, ResumePayload::None);
        id
    }

    fn add_proc(&mut self, name: &str, f: ProcFn<M>) -> ProcId {
        let id = ProcId(self.procs.len() as u32);
        let (resume_tx, resume_rx) = channel::<Resume<M>>();
        let (yield_tx, yield_rx) = channel::<YieldMsg<M>>();
        let core = Arc::clone(&self.core);
        let thread_name = format!("sim-{name}");
        let thread = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let mut ctx = ProcCtx {
                    id,
                    now: SimTime::ZERO,
                    core,
                    resume_rx,
                    yield_tx,
                    dead: false,
                };
                // Wait for the engine's start signal.
                match ctx.resume_rx.recv() {
                    Ok(r) => ctx.now = r.time,
                    Err(_) => return, // engine torn down before start
                }
                f(&mut ctx);
                // Best-effort exit notification; the engine may already be gone.
                let _ = ctx.yield_tx.send(YieldMsg {
                    time: ctx.now,
                    reason: YieldReason::Exit,
                });
            })
            .expect("failed to spawn simulation thread");
        self.procs.push(ProcSlot {
            name: name.to_string(),
            state: ProcState::Scheduled,
            epoch: 0,
            time: SimTime::ZERO,
            blocked_since: None,
            started: false,
            resume_tx,
            yield_rx,
            thread: Some(thread),
            inbox: VecDeque::new(),
        });
        self.core.lock().stats.spawns += 1;
        id
    }

    /// Run the simulation to completion and return the report.
    ///
    /// The run ends when the event heap drains; any process still blocked in
    /// `recv` at that point (typically server loops) is resumed with a
    /// shutdown indication and reported in `blocked_at_end`.
    ///
    /// Panics raised inside process threads are propagated to the caller.
    pub fn run(mut self) -> SimReport {
        loop {
            // All processes are parked here, so the lock is free and the
            // heap cannot change between the pop and the dispatch.
            let (time, action) = {
                let mut core = self.core.lock();
                match core.heap.pop() {
                    Some(Reverse((time, packed))) => {
                        let slot = (packed & SLOT_MASK) as usize;
                        let action = core.slab[slot].take().expect("popped key with empty slot");
                        core.free.push(slot as u32);
                        core.stats.events += 1;
                        debug_assert!(time >= core.now, "event heap out of order");
                        core.now = time;
                        (time, action)
                    }
                    None => break,
                }
            };
            match action {
                Action::Deliver(to, env) => self.deliver(to, env, time),
                Action::Wake(p, epoch, payload) => {
                    if self.procs[p.index()].epoch != epoch {
                        continue; // stale wake (e.g. timeout raced a message)
                    }
                    {
                        let mut core = self.core.lock();
                        core.hasher.mix(time.as_nanos());
                        core.hasher.mix(p.0 as u64);
                    }
                    self.run_proc(p, time, payload);
                }
            }
        }
        self.shutdown()
    }

    fn deliver(&mut self, to: ProcId, env: Envelope<M>, now: SimTime) {
        let mut core = self.core.lock();
        core.hasher.mix(env.delivered_at.as_nanos());
        core.hasher.mix(0x00de_11fe ^ to.0 as u64);
        let slot = &mut self.procs[to.index()];
        match slot.state {
            ProcState::Done => {
                core.stats.dropped += 1;
            }
            ProcState::Blocked => {
                core.stats.delivers += 1;
                // Wake the receiver at the later of its local time and now.
                let t = slot.time.max(now);
                core.push_wake(&mut self.procs, t, to, ResumePayload::Msg(env));
            }
            _ => {
                core.stats.delivers += 1;
                slot.inbox.push_back(env);
            }
        }
    }

    /// Resume process `p` at time `t` and service its yields until it blocks.
    fn run_proc(&mut self, p: ProcId, t: SimTime, payload: ResumePayload<M>) {
        let i = p.index();
        {
            let mut core = self.core.lock();
            if core.tracing.is_some() {
                if !self.procs[i].started {
                    self.procs[i].started = true;
                    core.trace(p, TraceKind::Start { at: t });
                }
                if let Some(from) = self.procs[i].blocked_since.take() {
                    core.trace(p, TraceKind::RecvWait { from, until: t });
                }
            }
        }
        self.procs[i].state = ProcState::Running;
        self.procs[i].time = t;
        if self.procs[i]
            .resume_tx
            .send(Resume { time: t, payload })
            .is_err()
        {
            self.harvest_panic(p);
        }
        loop {
            let y = match self.procs[i].yield_rx.recv() {
                Ok(y) => y,
                Err(_) => {
                    self.harvest_panic(p);
                    return;
                }
            };
            let yt = y.time;
            self.procs[i].time = yt;
            match y.reason {
                YieldReason::Wait { until } => {
                    let mut core = self.core.lock();
                    core.push_wake(&mut self.procs, until.max(yt), p, ResumePayload::None);
                    return;
                }
                YieldReason::Recv { deadline } => {
                    if let Some(env) = self.procs[i].inbox.pop_front() {
                        let t2 = yt.max(env.delivered_at);
                        self.procs[i].time = t2;
                        if !self.resume_in_place(p, t2, ResumePayload::Msg(env)) {
                            return;
                        }
                    } else if self.shutting_down {
                        if !self.resume_in_place(p, yt, ResumePayload::Shutdown) {
                            return;
                        }
                    } else {
                        self.procs[i].state = ProcState::Blocked;
                        self.procs[i].blocked_since = Some(yt);
                        if let Some(d) = deadline {
                            // Leave state Blocked but schedule the timeout wake;
                            // push_wake flips state to Scheduled, so set it back.
                            let mut core = self.core.lock();
                            core.push_wake(&mut self.procs, d.max(yt), p, ResumePayload::Timeout);
                            self.procs[i].state = ProcState::Blocked;
                        }
                        return;
                    }
                }
                YieldReason::Spawn { name, f } => {
                    let child = self.add_proc(&name, f);
                    let mut core = self.core.lock();
                    core.push_wake(&mut self.procs, yt, child, ResumePayload::None);
                    drop(core);
                    if !self.resume_in_place(p, yt, ResumePayload::Spawned(child)) {
                        return;
                    }
                }
                YieldReason::Exit => {
                    self.core.lock().trace(p, TraceKind::Exit { at: yt });
                    self.procs[i].state = ProcState::Done;
                    if let Some(h) = self.procs[i].thread.take() {
                        let _ = h.join();
                    }
                    return;
                }
            }
        }
    }

    /// Resume a process that yielded a non-blocking request. Returns false if
    /// the process vanished (panic), which `harvest_panic` escalates anyway.
    fn resume_in_place(&mut self, p: ProcId, t: SimTime, payload: ResumePayload<M>) -> bool {
        if self.procs[p.index()]
            .resume_tx
            .send(Resume { time: t, payload })
            .is_err()
        {
            self.harvest_panic(p);
            return false;
        }
        true
    }

    /// A process's channel disconnected: join it and propagate its panic.
    fn harvest_panic(&mut self, p: ProcId) {
        let slot = &mut self.procs[p.index()];
        let name = slot.name.clone();
        if let Some(h) = slot.thread.take() {
            if let Err(payload) = h.join() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic>".into());
                panic!("simulated process '{name}' panicked: {msg}");
            }
        }
        panic!("simulated process '{name}' disconnected without exiting");
    }

    /// Drain blocked processes once the heap is empty and build the report.
    fn shutdown(mut self) -> SimReport {
        self.shutting_down = true;
        for i in 0..self.procs.len() {
            if self.procs[i].state == ProcState::Blocked {
                let p = ProcId(i as u32);
                let t = self.procs[i].time;
                // Unblock with Shutdown; the process may yield a few more
                // times while unwinding its loops. Time is frozen.
                self.procs[i].state = ProcState::Running;
                if self.procs[i]
                    .resume_tx
                    .send(Resume {
                        time: t,
                        payload: ResumePayload::Shutdown,
                    })
                    .is_err()
                {
                    self.harvest_panic(p);
                }
                self.drain_until_exit(p);
            }
        }
        let mut completed = Vec::new();
        let mut blocked = Vec::new();
        for slot in &mut self.procs {
            match slot.state {
                ProcState::Done => completed.push(slot.name.clone()),
                _ => blocked.push(slot.name.clone()),
            }
            if let Some(h) = slot.thread.take() {
                let _ = h.join();
            }
        }
        // Every process thread has been joined, so their Arc clones are
        // gone and the core can be taken apart without copying.
        let core = match Arc::try_unwrap(self.core) {
            Ok(m) => m.into_inner(),
            Err(_) => unreachable!("process thread still holds the core after join"),
        };
        let trace = core.tracing.map(|events| TraceRecords {
            events,
            proc_names: self.procs.iter().map(|s| s.name.clone()).collect(),
        });
        SimReport {
            end_time: core.now,
            stats: core.stats,
            trace,
            resources: core
                .resources
                .iter()
                .map(|r| ResourceStats {
                    name: r.name.clone(),
                    busy: r.stats_busy,
                    waited: r.stats_waited,
                    acquisitions: r.acquisitions,
                })
                .collect(),
            completed,
            blocked_at_end: blocked,
            trace_hash: core.hasher.finish(),
        }
    }

    /// During shutdown: serve a process's remaining yields with frozen time
    /// until it exits. The context API short-circuits on a dead context, so
    /// in practice only the final Exit arrives; the other arms are defensive.
    fn drain_until_exit(&mut self, p: ProcId) {
        let i = p.index();
        loop {
            let y = match self.procs[i].yield_rx.recv() {
                Ok(y) => y,
                Err(_) => {
                    self.harvest_panic(p);
                    return;
                }
            };
            let t = self.procs[i].time;
            match y.reason {
                YieldReason::Exit => {
                    self.core.lock().trace(p, TraceKind::Exit { at: t });
                    self.procs[i].state = ProcState::Done;
                    if let Some(h) = self.procs[i].thread.take() {
                        let _ = h.join();
                    }
                    return;
                }
                YieldReason::Recv { .. } => {
                    if !self.resume_in_place(p, t, ResumePayload::Shutdown) {
                        return;
                    }
                }
                YieldReason::Spawn { .. } => {
                    panic!("process '{}' spawned during shutdown", self.procs[i].name);
                }
                YieldReason::Wait { .. } => {
                    // Waits complete immediately; time stays frozen.
                    if !self.resume_in_place(p, t, ResumePayload::None) {
                        return;
                    }
                }
            }
        }
    }
}

/// The context handed to each simulated process. All virtual-time effects
/// flow through these methods.
pub struct ProcCtx<M: Send + 'static> {
    id: ProcId,
    now: SimTime,
    core: Arc<Mutex<Core<M>>>,
    resume_rx: Receiver<Resume<M>>,
    yield_tx: Sender<YieldMsg<M>>,
    dead: bool,
}

impl<M: Send + 'static> ProcCtx<M> {
    /// This process's id.
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Current local virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// True once the engine has signalled shutdown to this process.
    #[inline]
    pub fn is_shutdown(&self) -> bool {
        self.dead
    }

    fn call(&mut self, reason: YieldReason<M>) -> ResumePayload<M> {
        if self.dead {
            return ResumePayload::Shutdown;
        }
        if self
            .yield_tx
            .send(YieldMsg {
                time: self.now,
                reason,
            })
            .is_err()
        {
            self.dead = true;
            return ResumePayload::Shutdown;
        }
        match self.resume_rx.recv() {
            Ok(r) => {
                self.now = r.time;
                if matches!(r.payload, ResumePayload::Shutdown) {
                    self.dead = true;
                }
                r.payload
            }
            Err(_) => {
                self.dead = true;
                ResumePayload::Shutdown
            }
        }
    }

    /// Advance this process's clock by `d` without contending for any
    /// resource (pure delay, e.g. a propagation latency).
    pub fn sleep(&mut self, d: SimDuration) {
        let until = self.now + d;
        self.sleep_until(until);
    }

    /// Suspend until absolute time `t` (no-op if `t` is in the past).
    pub fn sleep_until(&mut self, t: SimTime) {
        if self.dead {
            return;
        }
        let until = t.max(self.now);
        let core = Arc::clone(&self.core);
        let mut core = core.lock();
        core.trace(
            self.id,
            TraceKind::Sleep {
                from: self.now,
                until,
            },
        );
        if core.wake_is_next(until) {
            core.account_inline_wake(self.id, until);
            drop(core);
            self.now = until;
        } else {
            drop(core);
            self.call(YieldReason::Wait { until });
        }
    }

    /// Queue FCFS on `res` and hold it for `dur`; returns once the hold
    /// completes. This is how CPU computation is charged.
    ///
    /// The grant order is the order in which running processes reach this
    /// call (virtual-time execution order), exactly as when the engine
    /// served the request; only the wake-up is short-circuited when no
    /// earlier event is pending.
    pub fn use_resource(&mut self, res: ResourceId, dur: SimDuration) {
        if dur.is_zero() || self.dead {
            return;
        }
        let yt = self.now;
        let core = Arc::clone(&self.core);
        let mut core = core.lock();
        let r = &mut core.resources[res.index()];
        let start = r.available_at.max(yt);
        r.stats_waited += start - yt;
        r.stats_busy += dur;
        r.acquisitions += 1;
        let done = start + dur;
        r.available_at = done;
        if core.tracing.is_some() {
            if start > yt {
                core.trace(
                    self.id,
                    TraceKind::ResourceWait {
                        res,
                        from: yt,
                        until: start,
                    },
                );
            }
            core.trace(
                self.id,
                TraceKind::ResourceHold {
                    res,
                    from: start,
                    until: done,
                },
            );
        }
        if core.wake_is_next(done) {
            core.account_inline_wake(self.id, done);
            drop(core);
            self.now = done;
        } else {
            drop(core);
            self.call(YieldReason::Wait { until: done });
        }
    }

    /// Send `msg` to `to`, arriving after `latency`. Non-blocking and
    /// engine-free: the delivery event goes straight onto the shared heap,
    /// so a send costs no context switch at all. Virtual time does not
    /// advance.
    pub fn send(&mut self, to: ProcId, latency: SimDuration, msg: M) {
        if self.dead {
            return;
        }
        let delivered_at = self.now + latency;
        let env = Envelope {
            from: self.id,
            sent_at: self.now,
            delivered_at,
            msg,
        };
        let core = Arc::clone(&self.core);
        let mut core = core.lock();
        core.stats.sends += 1;
        core.trace(self.id, TraceKind::Sent { at: self.now, to });
        core.push_event(delivered_at, Action::Deliver(to, env));
    }

    /// Block until a message arrives. Returns `None` when the simulation is
    /// shutting down and no further messages can arrive.
    pub fn recv(&mut self) -> Option<Envelope<M>> {
        match self.call(YieldReason::Recv { deadline: None }) {
            ResumePayload::Msg(env) => Some(env),
            ResumePayload::Shutdown => None,
            _ => None,
        }
    }

    /// Block until a message arrives or `deadline` passes.
    pub fn recv_deadline(&mut self, deadline: SimTime) -> RecvResult<M> {
        match self.call(YieldReason::Recv {
            deadline: Some(deadline),
        }) {
            ResumePayload::Msg(env) => RecvResult::Msg(env),
            ResumePayload::Timeout => RecvResult::Timeout,
            _ => RecvResult::Shutdown,
        }
    }

    /// Block until a message arrives or `d` elapses from now (relative form
    /// of [`ProcCtx::recv_deadline`]).
    pub fn recv_timeout(&mut self, d: SimDuration) -> RecvResult<M> {
        let deadline = self.now + d;
        self.recv_deadline(deadline)
    }

    /// Spawn a new process starting at the current time; returns its id.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&mut ProcCtx<M>) + Send + 'static,
    {
        match self.call(YieldReason::Spawn {
            name: name.to_string(),
            f: Box::new(f),
        }) {
            ResumePayload::Spawned(id) => id,
            _ => panic!("spawn failed: simulation shutting down"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_process_sleeps() {
        let mut sim: Simulator<()> = Simulator::new();
        let done = Arc::new(AtomicU64::new(0));
        let d2 = done.clone();
        sim.spawn("a", move |ctx| {
            ctx.sleep(SimDuration::from_millis(5));
            d2.store(ctx.now().as_nanos(), Ordering::SeqCst);
        });
        let report = sim.run();
        assert_eq!(done.load(Ordering::SeqCst), 5_000_000);
        assert_eq!(report.end_time.as_nanos(), 5_000_000);
        assert!(report.completed_named("a"));
    }

    #[test]
    fn ping_pong_message_latency() {
        let mut sim: Simulator<u32> = Simulator::new();
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let l1 = log.clone();
        let ponger = sim.spawn("pong", move |ctx| {
            let env = ctx.recv().expect("ping");
            l1.lock().push(("pong-got", ctx.now().as_nanos(), env.msg));
            ctx.send(env.from, SimDuration::from_micros(10), env.msg + 1);
        });
        let l2 = log.clone();
        sim.spawn("ping", move |ctx| {
            ctx.send(ponger, SimDuration::from_micros(10), 7);
            let env = ctx.recv().expect("pong");
            l2.lock().push(("ping-got", ctx.now().as_nanos(), env.msg));
        });
        sim.run();
        let log = log.lock();
        assert_eq!(log[0], ("pong-got", 10_000, 7));
        assert_eq!(log[1], ("ping-got", 20_000, 8));
    }

    #[test]
    fn resource_serializes_holders() {
        let mut sim: Simulator<()> = Simulator::new();
        let cpu = sim.add_resource("cpu");
        let ends = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..3 {
            let e = ends.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                ctx.use_resource(cpu, SimDuration::from_millis(10));
                e.lock().push((i, ctx.now().as_nanos()));
            });
        }
        let report = sim.run();
        let ends = ends.lock();
        // FCFS in spawn order; each holds 10ms exclusively.
        assert_eq!(ends[0], (0, 10_000_000));
        assert_eq!(ends[1], (1, 20_000_000));
        assert_eq!(ends[2], (2, 30_000_000));
        let rs = &report.resources[0];
        assert_eq!(rs.acquisitions, 3);
        assert_eq!(rs.busy.as_nanos(), 30_000_000);
        assert_eq!(rs.waited.as_nanos(), 10_000_000 + 20_000_000);
    }

    #[test]
    fn recv_deadline_times_out() {
        let mut sim: Simulator<()> = Simulator::new();
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        sim.spawn("t", move |ctx| {
            match ctx.recv_deadline(SimTime::from_nanos(1000)) {
                RecvResult::Timeout => o.store(ctx.now().as_nanos(), Ordering::SeqCst),
                _ => panic!("expected timeout"),
            }
        });
        sim.run();
        assert_eq!(out.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn recv_timeout_is_relative_to_now() {
        let mut sim: Simulator<()> = Simulator::new();
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        sim.spawn("t", move |ctx| {
            ctx.sleep(SimDuration::from_nanos(250));
            match ctx.recv_timeout(SimDuration::from_nanos(1000)) {
                RecvResult::Timeout => o.store(ctx.now().as_nanos(), Ordering::SeqCst),
                _ => panic!("expected timeout"),
            }
        });
        sim.run();
        assert_eq!(out.load(Ordering::SeqCst), 1250);
    }

    #[test]
    fn message_beats_deadline() {
        let mut sim: Simulator<u8> = Simulator::new();
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        let rx = sim.spawn("rx", move |ctx| {
            match ctx.recv_deadline(SimTime::from_nanos(1_000_000)) {
                RecvResult::Msg(env) => o.store(env.msg as u64, Ordering::SeqCst),
                _ => panic!("expected message"),
            }
            // Stale timeout wake must not disturb a later recv.
            assert!(ctx.recv().is_none());
        });
        sim.spawn("tx", move |ctx| {
            ctx.send(rx, SimDuration::from_nanos(500), 42);
        });
        sim.run();
        assert_eq!(out.load(Ordering::SeqCst), 42);
    }

    #[test]
    fn dynamic_spawn_runs_child() {
        let mut sim: Simulator<()> = Simulator::new();
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        sim.spawn("parent", move |ctx| {
            for i in 0..4 {
                let c2 = c.clone();
                ctx.spawn(&format!("child{i}"), move |cctx| {
                    cctx.sleep(SimDuration::from_micros(1));
                    c2.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        let report = sim.run();
        assert_eq!(count.load(Ordering::SeqCst), 4);
        assert_eq!(report.completed.len(), 5);
    }

    #[test]
    fn server_loop_reported_blocked_at_end() {
        let mut sim: Simulator<u32> = Simulator::new();
        let served = Arc::new(AtomicU64::new(0));
        let s = served.clone();
        let server = sim.spawn("server", move |ctx| {
            while let Some(env) = ctx.recv() {
                s.fetch_add(env.msg as u64, Ordering::SeqCst);
            }
        });
        sim.spawn("client", move |ctx| {
            ctx.send(server, SimDuration::from_nanos(10), 5);
            ctx.send(server, SimDuration::from_nanos(10), 6);
        });
        let report = sim.run();
        assert_eq!(served.load(Ordering::SeqCst), 11);
        assert!(report.completed_named("client"));
        assert!(report.completed_named("server")); // drained at shutdown
    }

    #[test]
    fn deterministic_trace_hash() {
        fn build() -> SimReport {
            let mut sim: Simulator<u64> = Simulator::new();
            let cpu = sim.add_resource("cpu");
            let echo = sim.spawn("echo", move |ctx| {
                while let Some(env) = ctx.recv() {
                    ctx.use_resource(cpu, SimDuration::from_nanos(env.msg));
                    ctx.send(env.from, SimDuration::from_micros(3), env.msg * 2);
                }
            });
            for i in 0..3u64 {
                sim.spawn(&format!("c{i}"), move |ctx| {
                    ctx.sleep(SimDuration::from_nanos(i * 100));
                    ctx.send(echo, SimDuration::from_micros(3), i + 1);
                    let _ = ctx.recv();
                });
            }
            sim.run()
        }
        let a = build();
        let b = build();
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    fn inline_wakes_preserve_virtual_time_and_events() {
        // A lone process's sleeps and holds complete inline (no earlier
        // event can exist), yet the event count and end time must match
        // the parked schedule's.
        let mut sim: Simulator<()> = Simulator::new();
        let cpu = sim.add_resource("cpu");
        sim.spawn("solo", move |ctx| {
            for _ in 0..100 {
                ctx.use_resource(cpu, SimDuration::from_micros(3));
                ctx.sleep(SimDuration::from_micros(2));
            }
        });
        let report = sim.run();
        // 1 start wake + 200 inline wakes.
        assert_eq!(report.stats.events, 201);
        assert_eq!(report.stats.inline_wakes, 200);
        assert_eq!(report.end_time.as_nanos(), 100 * 5_000);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn process_panic_propagates() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.spawn("bad", |_ctx| panic!("boom"));
        sim.run();
    }

    #[test]
    fn message_to_done_process_is_dropped() {
        let mut sim: Simulator<u8> = Simulator::new();
        let gone = sim.spawn("gone", |_ctx| {});
        sim.spawn("late", move |ctx| {
            ctx.sleep(SimDuration::from_millis(1));
            ctx.send(gone, SimDuration::from_nanos(1), 1);
        });
        let report = sim.run();
        assert_eq!(report.stats.dropped, 1);
    }

    #[test]
    fn messages_queue_in_inbox_while_running() {
        // A receiver that computes first, then drains: both messages must be
        // waiting in its inbox and be received in delivery order.
        let mut sim: Simulator<u32> = Simulator::new();
        let cpu = sim.add_resource("cpu");
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let o = order.clone();
        let rx = sim.spawn("rx", move |ctx| {
            ctx.use_resource(cpu, SimDuration::from_millis(10));
            o.lock().push(ctx.recv().unwrap().msg);
            o.lock().push(ctx.recv().unwrap().msg);
        });
        sim.spawn("tx", move |ctx| {
            ctx.send(rx, SimDuration::from_micros(1), 1);
            ctx.send(rx, SimDuration::from_micros(2), 2);
        });
        sim.run();
        assert_eq!(*order.lock(), vec![1, 2]);
    }
}
