//! Counters and reports produced by a simulation run.

use crate::time::{SimDuration, SimTime};
use crate::trace::TraceRecords;

/// Aggregate event-loop counters.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Events processed (wakeups + deliveries), including stale ones and
    /// wakes completed inline on the process thread.
    pub events: u64,
    /// Of `events`: wakes that completed inline on the yielding process
    /// thread because no earlier event was queued (no engine round-trip).
    pub inline_wakes: u64,
    /// Messages sent between processes.
    pub sends: u64,
    /// Messages delivered into inboxes (or directly to blocked receivers).
    pub delivers: u64,
    /// Processes spawned over the whole run (including pre-run spawns).
    pub spawns: u64,
    /// Messages dropped because the destination had already exited.
    pub dropped: u64,
}

/// Usage statistics for one FCFS resource.
#[derive(Debug, Clone, Default)]
pub struct ResourceStats {
    /// Human-readable resource name.
    pub name: String,
    /// Total time the resource was held.
    pub busy: SimDuration,
    /// Total time acquirers spent queued behind earlier holders.
    pub waited: SimDuration,
    /// Number of acquisitions.
    pub acquisitions: u64,
}

impl ResourceStats {
    /// Utilization over the run `[0, 1]`, given the run's end time.
    pub fn utilization(&self, end: SimTime) -> f64 {
        if end == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / end.as_secs_f64()
    }
}

/// Final report for a completed simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual time of the last processed event.
    pub end_time: SimTime,
    /// Event-loop counters.
    pub stats: SimStats,
    /// Per-resource usage, indexed by `ResourceId::index()`.
    pub resources: Vec<ResourceStats>,
    /// Names of processes that ran to completion.
    pub completed: Vec<String>,
    /// Names of processes still blocked in `recv` when events ran out
    /// (server loops are expected here; application processes are not).
    pub blocked_at_end: Vec<String>,
    /// Order-sensitive digest of the whole event sequence; two runs of the
    /// same program with the same seed must produce equal hashes.
    pub trace_hash: u64,
    /// The execution trace, when tracing was enabled before the run.
    pub trace: Option<TraceRecords>,
}

impl SimReport {
    /// True if a process with the given name completed.
    pub fn completed_named(&self, name: &str) -> bool {
        self.completed.iter().any(|n| n == name)
    }
}

/// Incremental FNV-1a digest used for the determinism trace hash.
#[derive(Debug, Clone)]
pub(crate) struct TraceHasher {
    state: u64,
}

impl TraceHasher {
    pub(crate) fn new() -> Self {
        TraceHasher {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    #[inline]
    pub(crate) fn mix(&mut self, value: u64) {
        for b in value.to_le_bytes() {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x1000_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_hash_is_order_sensitive() {
        let mut a = TraceHasher::new();
        a.mix(1);
        a.mix(2);
        let mut b = TraceHasher::new();
        b.mix(2);
        b.mix(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn utilization_zero_end_time() {
        let rs = ResourceStats::default();
        assert_eq!(rs.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn utilization_half() {
        let rs = ResourceStats {
            name: "cpu".into(),
            busy: SimDuration::from_secs(1),
            waited: SimDuration::ZERO,
            acquisitions: 1,
        };
        let u = rs.utilization(SimTime::from_nanos(2_000_000_000));
        assert!((u - 0.5).abs() < 1e-12);
    }
}
