//! Property tests for the simulation engine: determinism under arbitrary
//! programs, event-ordering invariants, resource accounting.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dse_sim::{SimDuration, SimReport, Simulator};

/// A small random program: `n` workers doing randomized sleep / send /
/// compute sequences against one echo server and one CPU resource.
fn run_program(steps: Vec<(u8, u16)>, workers: u8) -> SimReport {
    let workers = workers % 4 + 1;
    let mut sim: Simulator<u64> = Simulator::new();
    let cpu = sim.add_resource("cpu");
    let echo = sim.spawn("echo", move |ctx| {
        while let Some(env) = ctx.recv() {
            ctx.send(env.from, SimDuration::from_micros(7), env.msg + 1);
        }
    });
    let steps = Arc::new(steps);
    for w in 0..workers {
        let steps = Arc::clone(&steps);
        sim.spawn(&format!("w{w}"), move |ctx| {
            for (i, &(op, arg)) in steps.iter().enumerate() {
                // Each worker takes a different slice of the program.
                if i % workers as usize != w as usize {
                    continue;
                }
                match op % 3 {
                    0 => ctx.sleep(SimDuration::from_nanos(arg as u64 * 13 + 1)),
                    1 => ctx.use_resource(cpu, SimDuration::from_nanos(arg as u64 * 31 + 1)),
                    _ => {
                        ctx.send(echo, SimDuration::from_micros(3), arg as u64);
                        let reply = ctx.recv().expect("echo reply");
                        assert_eq!(reply.msg, arg as u64 + 1);
                    }
                }
            }
        });
    }
    sim.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn identical_programs_produce_identical_traces(
        steps in proptest::collection::vec((any::<u8>(), any::<u16>()), 0..40),
        workers in any::<u8>(),
    ) {
        let a = run_program(steps.clone(), workers);
        let b = run_program(steps, workers);
        prop_assert_eq!(a.trace_hash, b.trace_hash);
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(a.stats.sends, b.stats.sends);
    }

    #[test]
    fn resource_time_is_conserved(
        holds in proptest::collection::vec(1u64..1_000_000, 1..20),
    ) {
        // N processes each hold the CPU once: busy time equals the sum of
        // the holds and the end time is at least the busy time.
        let mut sim: Simulator<()> = Simulator::new();
        let cpu = sim.add_resource("cpu");
        for (i, &h) in holds.iter().enumerate() {
            sim.spawn(&format!("h{i}"), move |ctx| {
                ctx.use_resource(cpu, SimDuration::from_nanos(h));
            });
        }
        let report = sim.run();
        let total: u64 = holds.iter().sum();
        prop_assert_eq!(report.resources[0].busy.as_nanos(), total);
        prop_assert!(report.end_time.as_nanos() >= total);
        prop_assert_eq!(report.resources[0].acquisitions, holds.len() as u64);
    }

    #[test]
    fn messages_between_two_procs_arrive_in_send_order(
        payloads in proptest::collection::vec(any::<u64>(), 1..30),
    ) {
        let got = Arc::new(std::sync::Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        let n = payloads.len();
        let mut sim: Simulator<u64> = Simulator::new();
        let rx = sim.spawn("rx", move |ctx| {
            for _ in 0..n {
                g.lock().unwrap().push(ctx.recv().unwrap().msg);
            }
        });
        let ps = payloads.clone();
        sim.spawn("tx", move |ctx| {
            for p in ps {
                // Constant latency: FIFO arrival must match send order.
                ctx.send(rx, SimDuration::from_micros(5), p);
            }
        });
        sim.run();
        prop_assert_eq!(got.lock().unwrap().clone(), payloads);
    }

    #[test]
    fn sleep_accumulates_exactly(ns in proptest::collection::vec(1u64..10_000, 1..50)) {
        let end = Arc::new(AtomicU64::new(0));
        let e = Arc::clone(&end);
        let ns2 = ns.clone();
        let mut sim: Simulator<()> = Simulator::new();
        sim.spawn("s", move |ctx| {
            for &d in &ns2 {
                ctx.sleep(SimDuration::from_nanos(d));
            }
            e.store(ctx.now().as_nanos(), Ordering::SeqCst);
        });
        sim.run();
        prop_assert_eq!(end.load(Ordering::SeqCst), ns.iter().sum::<u64>());
    }
}
