//! Engine edge cases: boundary timings, zero-duration operations, message
//! storms, and scheduling order guarantees.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dse_sim::{RecvResult, SimDuration, SimTime, Simulator};

#[test]
fn zero_duration_ops_are_free_and_ordered() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let l = Arc::clone(&log);
    let mut sim: Simulator<()> = Simulator::new();
    let cpu = sim.add_resource("cpu");
    sim.spawn("p", move |ctx| {
        ctx.sleep(SimDuration::ZERO);
        l.lock().unwrap().push(ctx.now().as_nanos());
        ctx.use_resource(cpu, SimDuration::ZERO);
        l.lock().unwrap().push(ctx.now().as_nanos());
    });
    let report = sim.run();
    assert_eq!(*log.lock().unwrap(), vec![0, 0]);
    assert_eq!(report.end_time, SimTime::ZERO);
}

#[test]
fn message_arriving_exactly_at_deadline_wins() {
    // Delivery and timeout land on the same nanosecond; the delivery event
    // was scheduled first (lower sequence number), so the message wins.
    let got = Arc::new(AtomicU64::new(0));
    let g = Arc::clone(&got);
    let mut sim: Simulator<u8> = Simulator::new();
    let rx = sim.spawn("rx", move |ctx| {
        // Block first; tx sends with latency exactly 1000.
        match ctx.recv_deadline(SimTime::from_nanos(1000)) {
            RecvResult::Msg(env) => g.store(env.msg as u64 + 100, Ordering::SeqCst),
            RecvResult::Timeout => g.store(1, Ordering::SeqCst),
            RecvResult::Shutdown => g.store(2, Ordering::SeqCst),
        }
    });
    sim.spawn("tx", move |ctx| {
        ctx.send(rx, SimDuration::from_nanos(1000), 7);
    });
    sim.run();
    // Either outcome is defensible at an exact tie; what matters is that it
    // is deterministic and documented. The current engine delivers the
    // message (Deliver event scheduled before the Timeout wake at equal
    // time resolves by sequence... verify the actual choice is stable):
    let v = got.load(Ordering::SeqCst);
    assert!(v == 107 || v == 1, "unexpected outcome {v}");
    // Re-run must give the same answer.
    let got2 = Arc::new(AtomicU64::new(0));
    let g2 = Arc::clone(&got2);
    let mut sim2: Simulator<u8> = Simulator::new();
    let rx2 = sim2.spawn("rx", move |ctx| {
        match ctx.recv_deadline(SimTime::from_nanos(1000)) {
            RecvResult::Msg(env) => g2.store(env.msg as u64 + 100, Ordering::SeqCst),
            RecvResult::Timeout => g2.store(1, Ordering::SeqCst),
            RecvResult::Shutdown => g2.store(2, Ordering::SeqCst),
        }
    });
    sim2.spawn("tx", move |ctx| {
        ctx.send(rx2, SimDuration::from_nanos(1000), 7);
    });
    sim2.run();
    assert_eq!(v, got2.load(Ordering::SeqCst));
}

#[test]
fn sleep_until_the_past_is_a_noop() {
    let mut sim: Simulator<()> = Simulator::new();
    let t = Arc::new(AtomicU64::new(0));
    let t2 = Arc::clone(&t);
    sim.spawn("p", move |ctx| {
        ctx.sleep(SimDuration::from_millis(5));
        ctx.sleep_until(SimTime::from_nanos(10)); // long past
        t2.store(ctx.now().as_nanos(), Ordering::SeqCst);
    });
    sim.run();
    assert_eq!(t.load(Ordering::SeqCst), 5_000_000);
}

#[test]
fn ten_thousand_messages_drain_correctly() {
    let count = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&count);
    let mut sim: Simulator<u64> = Simulator::new();
    let rx = sim.spawn("rx", move |ctx| {
        let mut sum = 0;
        for _ in 0..10_000 {
            sum += ctx.recv().unwrap().msg;
        }
        c.store(sum, Ordering::SeqCst);
    });
    for t in 0..4 {
        sim.spawn(&format!("tx{t}"), move |ctx| {
            for i in 0..2500u64 {
                ctx.send(rx, SimDuration::from_nanos(i % 97 + 1), i);
            }
        });
    }
    let report = sim.run();
    assert_eq!(count.load(Ordering::SeqCst), 4 * (0..2500u64).sum::<u64>());
    assert_eq!(report.stats.sends, 10_000);
    assert_eq!(report.stats.delivers, 10_000);
}

#[test]
fn spawn_chain_executes_depth_first_in_time() {
    // Each process spawns the next; all run at the same virtual instant.
    let order = Arc::new(Mutex::new(Vec::new()));
    let mut sim: Simulator<()> = Simulator::new();
    fn chain(ctx: &mut dse_sim::ProcCtx<()>, depth: usize, order: Arc<Mutex<Vec<usize>>>) {
        order.lock().unwrap().push(depth);
        if depth < 5 {
            let o = Arc::clone(&order);
            ctx.spawn(&format!("d{}", depth + 1), move |c| chain(c, depth + 1, o));
        }
    }
    let o = Arc::clone(&order);
    sim.spawn("d0", move |c| chain(c, 0, o));
    let report = sim.run();
    assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4, 5]);
    assert_eq!(report.completed.len(), 6);
    assert_eq!(report.end_time, SimTime::ZERO);
}

#[test]
fn resource_fairness_is_fifo_by_request_time() {
    // Staggered requesters: grants must follow request order, not size.
    let ends = Arc::new(Mutex::new(Vec::new()));
    let mut sim: Simulator<()> = Simulator::new();
    let cpu = sim.add_resource("cpu");
    for (i, (delay, hold)) in [(0u64, 30u64), (1, 1), (2, 1)].iter().enumerate() {
        let e = Arc::clone(&ends);
        let (delay, hold) = (*delay, *hold);
        sim.spawn(&format!("p{i}"), move |ctx| {
            ctx.sleep(SimDuration::from_nanos(delay));
            ctx.use_resource(cpu, SimDuration::from_millis(hold));
            e.lock().unwrap().push(i);
        });
    }
    sim.run();
    assert_eq!(*ends.lock().unwrap(), vec![0, 1, 2], "FIFO violated");
}
