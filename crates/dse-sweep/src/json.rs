//! Minimal JSON reader/writer for sweep rows and baseline files.
//!
//! The repo has no serde; rows and `BENCH_sweep.json` use a small JSON
//! subset (objects, arrays, strings, numbers, booleans, null) that this
//! module parses with a recursive-descent reader. Numbers are kept as
//! `f64`, which is exact for every counter the sweep emits (all well
//! below 2^53).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rounded).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|n| *n >= 0.0)
            .map(|n| n.round() as u64)
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's array elements.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Escape a string into a JSON literal (without surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a float the way the sweep writes metrics: integers without a
/// fraction, everything else with enough digits to round-trip.
pub fn num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parse a JSON document.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key at byte {pos} is not a string")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Value::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = b.get(*pos + 1..*pos + 5).ok_or("bad \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return Err("bad escape".into()),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = std::str::from_utf8(&b[*pos..])
                            .map_err(|_| "invalid UTF-8 in string")?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let tok = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
            tok.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number '{tok}' at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, "x", true, null], "b": {"c": -3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(-3.0));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("x")
        );
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "line\nwith \"quotes\" and \\slashes\\";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}trailing").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn num_rendering() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(1234567.0), "1234567");
        assert_eq!(num(0.5), "0.5");
    }
}
