//! Scenario specs: the TOML sweep description, its normalized in-memory
//! form, and the expansion into a flat, deterministic run matrix.
//!
//! A spec is a `[sweep]` header plus one or more `[[scenario]]` blocks.
//! Every scenario field that names an axis (`app`, `engine`, `transport`,
//! `platform`, `procs`, `gm_window`, `cache`, `gm_mode`, `fault_plan`,
//! `scheduler`) accepts either a scalar or an array; scalars are
//! normalized to one-element arrays.
//! Expansion is the Cartesian product of the axes with the seed list,
//! ordered exactly as written — the run index is stable, which is what
//! lets a subprocess re-derive its own `RunSpec` from `(spec file, index)`.
//!
//! Engine-specific axes follow the same rules `dse-run` enforces on flags:
//! `transport`/`fault_plan`/`scheduler` only vary live runs,
//! `platform`/`gm_window` only vary simulated runs; `cache` and `gm_mode`
//! apply to both engines.
//! An axis that does not apply to the engine being expanded is pinned to
//! its neutral value rather than multiplied, so a mixed
//! `engine = ["sim", "live"]` scenario produces no meaningless duplicate
//! cells. `gm_mode` is likewise pinned to `wi` whenever the cache is off —
//! the coherence protocol only acts on cached replicas.

use crate::build::{self, AppKind, AppParams};
use crate::toml::{self, Table, Value};

/// Default per-run hard timeout.
pub const DEFAULT_TIMEOUT_MS: u64 = 60_000;

/// A parsed, normalized sweep spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Sweep name (labels output files and the aggregate table).
    pub name: String,
    /// Per-run hard timeout in milliseconds.
    pub timeout_ms: u64,
    /// Seed list applied to every scenario that has no override.
    pub seeds: Vec<u64>,
    /// Scenario blocks in file order.
    pub scenarios: Vec<Scenario>,
}

/// One `[[scenario]]` block, fully normalized (every axis an array, every
/// scalar filled with its default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Scenario name; the leading component of every cell id.
    pub name: String,
    /// Applications to run (axis).
    pub apps: Vec<String>,
    /// Engines: `sim` and/or `live` (axis).
    pub engines: Vec<String>,
    /// Live-engine wire transports (axis; ignored for sim runs).
    pub transports: Vec<String>,
    /// Live-engine kernel schedulers, `threads` | `tasks` (axis; ignored
    /// for sim runs).
    pub schedulers: Vec<String>,
    /// Simulated platform presets (axis; ignored for live runs).
    pub platforms: Vec<String>,
    /// PE counts (axis).
    pub procs: Vec<usize>,
    /// GM pipeline windows; `0` means the engine default (axis, sim only).
    pub gm_windows: Vec<usize>,
    /// GM cache on/off (axis, both engines).
    pub caches: Vec<bool>,
    /// GM coherence modes, `wi` | `rc` (axis, both engines; pinned to
    /// `wi` when the cache is off).
    pub gm_modes: Vec<String>,
    /// Fault-plan specs; `""` means a clean mesh (axis, live only).
    pub fault_plans: Vec<String>,
    /// Seed override; empty uses the sweep-level list.
    pub seeds: Vec<u64>,
    /// Simulated machine count.
    pub machines: usize,
    /// Simulated software organization (`linked` | `legacy`).
    pub organization: String,
    /// Simulated protocol stack (`tcp` | `udp` | `raw`).
    pub protocol: String,
    /// Per-run timeout override; `0` uses the sweep-level value.
    pub timeout_ms: u64,
    /// Application parameters (shared by every run of the scenario).
    pub params: AppParams,
}

impl Default for Scenario {
    fn default() -> Scenario {
        Scenario {
            name: "scenario".into(),
            apps: vec!["gauss".into()],
            engines: vec!["sim".into()],
            transports: vec!["channel".into()],
            schedulers: vec!["threads".into()],
            platforms: vec!["sunos".into()],
            procs: vec![4],
            gm_windows: vec![0],
            caches: vec![false],
            gm_modes: vec!["wi".into()],
            fault_plans: vec![String::new()],
            seeds: Vec::new(),
            machines: 6,
            organization: "linked".into(),
            protocol: "tcp".into(),
            timeout_ms: 0,
            params: AppParams::default(),
        }
    }
}

/// One fully-resolved run: a single cell instance at a single seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Index in the expanded matrix (stable across re-parses of the spec).
    pub idx: usize,
    /// Owning scenario name.
    pub scenario: String,
    /// Application name.
    pub app: String,
    /// `sim` or `live`.
    pub engine: String,
    /// Live transport (`""` on sim runs).
    pub transport: String,
    /// Live kernel scheduler, `threads` | `tasks` (`""` on sim runs).
    pub scheduler: String,
    /// Simulated platform id (`""` on live runs).
    pub platform: String,
    /// PE count.
    pub procs: usize,
    /// Simulated machine count.
    pub machines: usize,
    /// Simulated software organization.
    pub organization: String,
    /// Simulated protocol stack.
    pub protocol: String,
    /// GM pipeline window (`0` = engine default).
    pub gm_window: usize,
    /// GM cache enabled.
    pub cache: bool,
    /// GM coherence mode (`wi` | `rc`).
    pub gm_mode: String,
    /// Fault-plan spec (`""` = clean mesh; live only).
    pub fault_plan: String,
    /// Seed for this run.
    pub seed: u64,
    /// Application parameters.
    pub params: AppParams,
    /// Hard wall-clock timeout for this run.
    pub timeout_ms: u64,
}

impl RunSpec {
    /// The cell id: every axis except the seed, joined into a stable
    /// dotted key. Runs of one cell differ only by seed; aggregation and
    /// baseline diffing group by this id.
    pub fn cell_id(&self) -> String {
        let mut variant = if self.engine == "sim" {
            let mut v = format!(
                "{}.w{}.c{}",
                self.platform,
                self.gm_window,
                u8::from(self.cache)
            );
            if self.organization != "linked" {
                v.push_str(&format!(".{}", self.organization));
            }
            if self.protocol != "tcp" {
                v.push_str(&format!(".{}", self.protocol));
            }
            v
        } else {
            // Live ids carry the cache axis only when it is on, so
            // pre-cache baselines keep their cell keys.
            let mut v = if self.fault_plan.is_empty() {
                self.transport.clone()
            } else {
                format!("{}.f-{}", self.transport, sanitize(&self.fault_plan))
            };
            if self.cache {
                v.push_str(".c1");
            }
            // The task scheduler suffixes the id only when selected, so
            // pre-scheduler baselines keep their cell keys.
            if !self.scheduler.is_empty() && self.scheduler != "threads" {
                v.push_str(&format!(".{}", self.scheduler));
            }
            v
        };
        // Both engines: a non-default coherence mode suffixes the id.
        if self.gm_mode != "wi" {
            variant.push_str(&format!(".{}", self.gm_mode));
        }
        format!(
            "{}.{}.{}.{}.p{}",
            self.scenario, self.app, self.engine, variant, self.procs
        )
    }
}

/// Fold an arbitrary axis value (e.g. a fault-plan spec) into a cell-id
/// component: alphanumerics pass through, everything else becomes `-`.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

// ---------------------------------------------------------------------------
// parsing

fn want_str(t: &Table, key: &str) -> Result<Option<String>, String> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("{key}: expected a string")),
    }
}

fn want_u64(t: &Table, key: &str) -> Result<Option<u64>, String> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => match v.as_int() {
            Some(n) if n >= 0 => Ok(Some(n as u64)),
            _ => Err(format!("{key}: expected a non-negative integer")),
        },
    }
}

fn want_usize(t: &Table, key: &str) -> Result<Option<usize>, String> {
    Ok(want_u64(t, key)?.map(|n| n as usize))
}

fn str_list(t: &Table, key: &str) -> Result<Option<Vec<String>>, String> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => {
            let items: Option<Vec<String>> = v
                .as_list()
                .into_iter()
                .map(|e| e.as_str().map(str::to_string))
                .collect();
            let items = items.ok_or_else(|| format!("{key}: expected string(s)"))?;
            if items.is_empty() {
                return Err(format!("{key}: axis must not be empty"));
            }
            Ok(Some(items))
        }
    }
}

fn usize_list(t: &Table, key: &str) -> Result<Option<Vec<usize>>, String> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => {
            let items: Option<Vec<usize>> = v
                .as_list()
                .into_iter()
                .map(|e| e.as_int().filter(|n| *n >= 0).map(|n| n as usize))
                .collect();
            let items = items.ok_or_else(|| format!("{key}: expected non-negative integer(s)"))?;
            if items.is_empty() {
                return Err(format!("{key}: axis must not be empty"));
            }
            Ok(Some(items))
        }
    }
}

fn u64_list(t: &Table, key: &str) -> Result<Option<Vec<u64>>, String> {
    Ok(usize_list(t, key)?.map(|v| v.into_iter().map(|n| n as u64).collect()))
}

fn bool_list(t: &Table, key: &str) -> Result<Option<Vec<bool>>, String> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => {
            let items: Option<Vec<bool>> = v.as_list().into_iter().map(Value::as_bool).collect();
            let items = items.ok_or_else(|| format!("{key}: expected boolean(s)"))?;
            if items.is_empty() {
                return Err(format!("{key}: axis must not be empty"));
            }
            Ok(Some(items))
        }
    }
}

const SWEEP_KEYS: &[&str] = &["name", "timeout_ms", "seeds"];
const SCENARIO_KEYS: &[&str] = &[
    "name",
    "app",
    "engine",
    "transport",
    "scheduler",
    "platform",
    "procs",
    "gm_window",
    "cache",
    "gm_mode",
    "fault_plan",
    "seeds",
    "machines",
    "organization",
    "protocol",
    "timeout_ms",
    "n",
    "block",
    "size",
    "depth",
    "jobs",
];

fn reject_unknown(t: &Table, allowed: &[&str], what: &str) -> Result<(), String> {
    for key in t.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("{what}: unknown key '{key}'"));
        }
    }
    Ok(())
}

/// Parse a sweep spec from TOML source. All fields are validated here —
/// unknown keys, unknown apps/engines/transports/platforms, and empty
/// axes are errors — so expansion cannot fail later.
pub fn parse_spec(src: &str) -> Result<SweepSpec, String> {
    let doc = toml::parse(src)?;
    if let Some(root) = doc.tables.get("") {
        if !root.is_empty() {
            return Err(format!(
                "top-level keys must live under [sweep]: '{}'",
                root.keys().next().unwrap()
            ));
        }
    }
    for name in doc.tables.keys() {
        if !name.is_empty() && name != "sweep" {
            return Err(format!("unknown table [{name}]"));
        }
    }
    for name in doc.arrays.keys() {
        if name != "scenario" {
            return Err(format!("unknown table array [[{name}]]"));
        }
    }
    let sweep = doc.table("sweep");
    reject_unknown(&sweep, SWEEP_KEYS, "[sweep]")?;
    let mut spec = SweepSpec {
        name: want_str(&sweep, "name")?.unwrap_or_else(|| "sweep".into()),
        timeout_ms: want_u64(&sweep, "timeout_ms")?.unwrap_or(DEFAULT_TIMEOUT_MS),
        seeds: u64_list(&sweep, "seeds")?.unwrap_or_else(|| vec![1]),
        scenarios: Vec::new(),
    };
    if spec.timeout_ms == 0 {
        return Err("[sweep] timeout_ms: must be positive".into());
    }
    let blocks = doc
        .arrays
        .get("scenario")
        .ok_or("spec has no [[scenario]] blocks")?;
    for (i, t) in blocks.iter().enumerate() {
        let what = format!("[[scenario]] #{}", i + 1);
        reject_unknown(t, SCENARIO_KEYS, &what)?;
        let d = Scenario::default();
        let sc = Scenario {
            name: want_str(t, "name")?.unwrap_or_else(|| format!("s{}", i + 1)),
            apps: str_list(t, "app")?.unwrap_or(d.apps),
            engines: str_list(t, "engine")?.unwrap_or(d.engines),
            transports: str_list(t, "transport")?.unwrap_or(d.transports),
            schedulers: str_list(t, "scheduler")?.unwrap_or(d.schedulers),
            platforms: str_list(t, "platform")?.unwrap_or(d.platforms),
            procs: usize_list(t, "procs")?.unwrap_or(d.procs),
            gm_windows: usize_list(t, "gm_window")?.unwrap_or(d.gm_windows),
            caches: bool_list(t, "cache")?.unwrap_or(d.caches),
            gm_modes: str_list(t, "gm_mode")?.unwrap_or(d.gm_modes),
            fault_plans: str_list(t, "fault_plan")?.unwrap_or(d.fault_plans),
            seeds: u64_list(t, "seeds")?.unwrap_or_default(),
            machines: want_usize(t, "machines")?.unwrap_or(d.machines),
            organization: want_str(t, "organization")?.unwrap_or(d.organization),
            protocol: want_str(t, "protocol")?.unwrap_or(d.protocol),
            timeout_ms: want_u64(t, "timeout_ms")?.unwrap_or(0),
            params: AppParams {
                n: want_usize(t, "n")?.unwrap_or(AppParams::default().n),
                block: want_usize(t, "block")?.unwrap_or(AppParams::default().block),
                size: want_usize(t, "size")?.unwrap_or(0),
                depth: want_usize(t, "depth")?.unwrap_or(AppParams::default().depth as usize)
                    as u32,
                jobs: want_usize(t, "jobs")?.unwrap_or(AppParams::default().jobs),
            },
        };
        if sc.name.is_empty() || sc.name.contains('.') || sc.name.contains(char::is_whitespace) {
            return Err(format!("{what}: bad scenario name '{}'", sc.name));
        }
        validate_scenario(&what, &sc)?;
        spec.scenarios.push(sc);
    }
    Ok(spec)
}

fn validate_scenario(what: &str, sc: &Scenario) -> Result<(), String> {
    for app in &sc.apps {
        let kind = AppKind::parse(app).map_err(|e| format!("{what}: {e}"))?;
        if sc.engines.iter().any(|e| e == "live") && !kind.live_ok() {
            return Err(format!(
                "{what}: app '{app}' does not run on the live engine"
            ));
        }
    }
    for engine in &sc.engines {
        if engine != "sim" && engine != "live" {
            return Err(format!("{what}: engine '{engine}' is not sim or live"));
        }
    }
    for tr in &sc.transports {
        build::transport_kind(tr).map_err(|e| format!("{what}: {e}"))?;
    }
    for sched in &sc.schedulers {
        build::check_scheduler(sched).map_err(|e| format!("{what}: {e}"))?;
    }
    for p in &sc.platforms {
        build::platform_by_id(p).map_err(|e| format!("{what}: {e}"))?;
    }
    for mode in &sc.gm_modes {
        build::check_gm_mode(mode).map_err(|e| format!("{what}: {e}"))?;
    }
    for plan in &sc.fault_plans {
        if !plan.is_empty() {
            build::check_fault_plan(plan).map_err(|e| format!("{what}: fault_plan: {e}"))?;
        }
    }
    build::check_organization(&sc.organization).map_err(|e| format!("{what}: {e}"))?;
    build::check_protocol(&sc.protocol).map_err(|e| format!("{what}: {e}"))?;
    if sc.procs.contains(&0) {
        return Err(format!("{what}: procs must be positive"));
    }
    if sc.machines == 0 {
        return Err(format!("{what}: machines must be positive"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// expansion

/// Expand a spec into its flat run matrix. The order is deterministic:
/// scenarios in file order, then app, engine, the engine's variant axes,
/// procs, and seeds, each innermost-last.
pub fn expand(spec: &SweepSpec) -> Vec<RunSpec> {
    let mut runs = Vec::new();
    for sc in &spec.scenarios {
        let seeds = if sc.seeds.is_empty() {
            &spec.seeds
        } else {
            &sc.seeds
        };
        let timeout_ms = if sc.timeout_ms == 0 {
            spec.timeout_ms
        } else {
            sc.timeout_ms
        };
        #[allow(clippy::too_many_arguments)]
        let push = |app: &str,
                    engine: &str,
                    transport: &str,
                    scheduler: &str,
                    platform: &str,
                    gm_window: usize,
                    cache: bool,
                    gm_mode: &str,
                    fault_plan: &str,
                    procs: usize,
                    seed: u64,
                    runs: &mut Vec<RunSpec>| {
            runs.push(RunSpec {
                idx: runs.len(),
                scenario: sc.name.clone(),
                app: app.to_string(),
                engine: engine.to_string(),
                transport: transport.to_string(),
                scheduler: scheduler.to_string(),
                platform: platform.to_string(),
                procs,
                machines: sc.machines,
                organization: sc.organization.clone(),
                protocol: sc.protocol.clone(),
                gm_window,
                cache,
                gm_mode: gm_mode.to_string(),
                fault_plan: fault_plan.to_string(),
                seed,
                params: sc.params,
                timeout_ms,
            });
        };
        // The coherence mode only acts on cached replicas: with the cache
        // off it is pinned to `wi` instead of multiplied, so `cache =
        // [false, true]` x `gm_mode = ["wi", "rc"]` yields three cells,
        // not four.
        let modes_for = |cache: bool| -> Vec<&str> {
            if cache {
                sc.gm_modes.iter().map(String::as_str).collect()
            } else {
                vec!["wi"]
            }
        };
        for app in &sc.apps {
            for engine in &sc.engines {
                if engine == "sim" {
                    for platform in &sc.platforms {
                        for window in &sc.gm_windows {
                            for cache in &sc.caches {
                                for mode in modes_for(*cache) {
                                    for procs in &sc.procs {
                                        for seed in seeds {
                                            push(
                                                app, engine, "", "", platform, *window, *cache,
                                                mode, "", *procs, *seed, &mut runs,
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                } else {
                    for transport in &sc.transports {
                        for scheduler in &sc.schedulers {
                            for cache in &sc.caches {
                                for mode in modes_for(*cache) {
                                    for plan in &sc.fault_plans {
                                        for procs in &sc.procs {
                                            for seed in seeds {
                                                push(
                                                    app, engine, transport, scheduler, "", 0,
                                                    *cache, mode, plan, *procs, *seed, &mut runs,
                                                );
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    runs
}

// ---------------------------------------------------------------------------
// re-serialization

fn toml_str_array(items: &[String]) -> String {
    let inner: Vec<String> = items
        .iter()
        .map(|s| Value::Str(s.clone()).to_toml())
        .collect();
    format!("[{}]", inner.join(", "))
}

impl SweepSpec {
    /// Serialize back to TOML in fully-normalized form: every axis is an
    /// explicit array and every default is written out, so
    /// `parse_spec(spec.to_toml()) == *spec` exactly.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("[sweep]\n");
        out.push_str(&format!(
            "name = {}\n",
            Value::Str(self.name.clone()).to_toml()
        ));
        out.push_str(&format!("timeout_ms = {}\n", self.timeout_ms));
        let seeds: Vec<usize> = self.seeds.iter().map(|s| *s as usize).collect();
        out.push_str(&format!("seeds = {}\n", toml_usize_array(&seeds)));
        for sc in &self.scenarios {
            out.push_str("\n[[scenario]]\n");
            out.push_str(&format!(
                "name = {}\n",
                Value::Str(sc.name.clone()).to_toml()
            ));
            out.push_str(&format!("app = {}\n", toml_str_array(&sc.apps)));
            out.push_str(&format!("engine = {}\n", toml_str_array(&sc.engines)));
            out.push_str(&format!("transport = {}\n", toml_str_array(&sc.transports)));
            out.push_str(&format!("scheduler = {}\n", toml_str_array(&sc.schedulers)));
            out.push_str(&format!("platform = {}\n", toml_str_array(&sc.platforms)));
            out.push_str(&format!("procs = {}\n", toml_usize_array(&sc.procs)));
            out.push_str(&format!(
                "gm_window = {}\n",
                toml_usize_array(&sc.gm_windows)
            ));
            let caches: Vec<String> = sc.caches.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!("cache = [{}]\n", caches.join(", ")));
            out.push_str(&format!("gm_mode = {}\n", toml_str_array(&sc.gm_modes)));
            out.push_str(&format!(
                "fault_plan = {}\n",
                toml_str_array(&sc.fault_plans)
            ));
            if !sc.seeds.is_empty() {
                let seeds: Vec<usize> = sc.seeds.iter().map(|s| *s as usize).collect();
                out.push_str(&format!("seeds = {}\n", toml_usize_array(&seeds)));
            }
            out.push_str(&format!("machines = {}\n", sc.machines));
            out.push_str(&format!(
                "organization = {}\n",
                Value::Str(sc.organization.clone()).to_toml()
            ));
            out.push_str(&format!(
                "protocol = {}\n",
                Value::Str(sc.protocol.clone()).to_toml()
            ));
            if sc.timeout_ms != 0 {
                out.push_str(&format!("timeout_ms = {}\n", sc.timeout_ms));
            }
            let p = &sc.params;
            out.push_str(&format!("n = {}\n", p.n));
            out.push_str(&format!("block = {}\n", p.block));
            if p.size != 0 {
                out.push_str(&format!("size = {}\n", p.size));
            }
            out.push_str(&format!("depth = {}\n", p.depth));
            out.push_str(&format!("jobs = {}\n", p.jobs));
        }
        out
    }
}

fn toml_usize_array(items: &[usize]) -> String {
    let inner: Vec<String> = items.iter().map(|n| n.to_string()).collect();
    format!("[{}]", inner.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
[sweep]
name = "demo"
timeout_ms = 5000
seeds = [1, 2]

[[scenario]]
name = "gs"
app = "gauss"
engine = ["sim", "live"]
transport = ["channel", "tcp"]
platform = ["sunos", "linux"]
procs = [2, 4]
n = 64
"#;

    #[test]
    fn parse_fills_defaults_and_normalizes() {
        let spec = parse_spec(SPEC).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.timeout_ms, 5000);
        assert_eq!(spec.seeds, vec![1, 2]);
        let sc = &spec.scenarios[0];
        assert_eq!(sc.apps, vec!["gauss"]);
        assert_eq!(sc.engines, vec!["sim", "live"]);
        assert_eq!(sc.gm_windows, vec![0]);
        assert_eq!(sc.caches, vec![false]);
        assert_eq!(sc.params.n, 64);
        assert_eq!(sc.machines, 6);
    }

    #[test]
    fn expansion_multiplies_only_applicable_axes() {
        let spec = parse_spec(SPEC).unwrap();
        let runs = expand(&spec);
        // sim: 2 platforms x 2 procs x 2 seeds = 8; live: 2 transports x
        // 2 procs x 2 seeds = 8.
        assert_eq!(runs.len(), 16);
        let sim: Vec<_> = runs.iter().filter(|r| r.engine == "sim").collect();
        let live: Vec<_> = runs.iter().filter(|r| r.engine == "live").collect();
        assert_eq!(sim.len(), 8);
        assert_eq!(live.len(), 8);
        assert!(sim
            .iter()
            .all(|r| r.transport.is_empty() && !r.platform.is_empty()));
        assert!(live
            .iter()
            .all(|r| r.platform.is_empty() && !r.transport.is_empty()));
        // Indices are dense and ordered.
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.idx, i);
        }
    }

    #[test]
    fn cell_ids_group_seeds() {
        let spec = parse_spec(SPEC).unwrap();
        let runs = expand(&spec);
        let mut cells: Vec<String> = runs.iter().map(RunSpec::cell_id).collect();
        cells.dedup();
        // 16 runs at 2 seeds each -> 8 distinct cells, adjacent in order.
        assert_eq!(cells.len(), 8);
        assert!(cells.contains(&"gs.gauss.sim.sunos.w0.c0.p2".to_string()));
        assert!(cells.contains(&"gs.gauss.live.tcp.p4".to_string()));
    }

    #[test]
    fn roundtrip_through_toml_is_exact() {
        let spec = parse_spec(SPEC).unwrap();
        let back = parse_spec(&spec.to_toml()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn unknown_keys_and_values_rejected() {
        assert!(parse_spec("[[scenario]]\nfrobnicate = 1")
            .unwrap_err()
            .contains("unknown key"));
        assert!(parse_spec("[[scenario]]\napp = \"warp\"")
            .unwrap_err()
            .contains("warp"));
        assert!(parse_spec("[[scenario]]\nengine = \"warp\"")
            .unwrap_err()
            .contains("not sim or live"));
        assert!(parse_spec("[[scenario]]\nprocs = [0]")
            .unwrap_err()
            .contains("positive"));
        assert!(parse_spec("[sweep]\nseeds = []\n[[scenario]]\n")
            .unwrap_err()
            .contains("empty"));
        assert!(parse_spec("").unwrap_err().contains("no [[scenario]]"));
        assert!(parse_spec("[typo]\n[[scenario]]\n")
            .unwrap_err()
            .contains("unknown table"));
    }

    #[test]
    fn gm_mode_axis_validates_pins_and_suffixes() {
        // Unknown modes fail at parse time.
        let err = parse_spec("[[scenario]]\ngm_mode = \"mesi\"").unwrap_err();
        assert!(err.contains("not wi or rc"), "{err}");
        // With the cache off the mode is pinned to wi: 1 (c0, wi) +
        // 2 (c1, wi|rc) = 3 cells, and only non-defaults suffix the id.
        let spec = parse_spec(
            "[[scenario]]\nname = \"m\"\napp = \"matmul\"\nprocs = [2]\nn = 16\n\
             cache = [false, true]\ngm_mode = [\"wi\", \"rc\"]\n",
        )
        .unwrap();
        let runs = expand(&spec);
        let cells: Vec<String> = runs.iter().map(RunSpec::cell_id).collect();
        assert_eq!(
            cells,
            vec![
                "m.matmul.sim.sunos.w0.c0.p2",
                "m.matmul.sim.sunos.w0.c1.p2",
                "m.matmul.sim.sunos.w0.c1.rc.p2",
            ]
        );
        // Live runs carry the axis too, with the same suffix rules.
        let spec = parse_spec(
            "[[scenario]]\nname = \"m\"\napp = \"matmul\"\nengine = \"live\"\nprocs = [2]\n\
             n = 16\ncache = true\ngm_mode = [\"wi\", \"rc\"]\n",
        )
        .unwrap();
        let cells: Vec<String> = expand(&spec).iter().map(RunSpec::cell_id).collect();
        assert_eq!(
            cells,
            vec![
                "m.matmul.live.channel.c1.p2",
                "m.matmul.live.channel.c1.rc.p2"
            ]
        );
    }

    #[test]
    fn scheduler_axis_validates_pins_and_suffixes() {
        // Unknown schedulers fail at parse time.
        let err = parse_spec("[[scenario]]\nscheduler = \"fibers\"").unwrap_err();
        assert!(err.contains("not threads or tasks"), "{err}");
        // The axis only multiplies live runs; sim cells are unchanged and
        // only the non-default value suffixes the id, so pre-scheduler
        // baseline keys survive.
        let spec = parse_spec(
            "[[scenario]]\nname = \"s\"\napp = \"matmul\"\nengine = [\"sim\", \"live\"]\n\
             procs = [2]\nn = 16\nscheduler = [\"threads\", \"tasks\"]\n",
        )
        .unwrap();
        let runs = expand(&spec);
        let cells: Vec<String> = runs.iter().map(RunSpec::cell_id).collect();
        assert_eq!(
            cells,
            vec![
                "s.matmul.sim.sunos.w0.c0.p2",
                "s.matmul.live.channel.p2",
                "s.matmul.live.channel.tasks.p2",
            ]
        );
        assert!(runs
            .iter()
            .filter(|r| r.engine == "sim")
            .all(|r| r.scheduler.is_empty()));
    }

    #[test]
    fn gauss_mp_with_live_engine_rejected() {
        let err = parse_spec("[[scenario]]\napp = \"gauss-mp\"\nengine = [\"sim\", \"live\"]")
            .unwrap_err();
        assert!(err.contains("does not run on the live engine"), "{err}");
    }

    #[test]
    fn fault_plan_axis_validated_and_in_cell_id() {
        let err =
            parse_spec("[[scenario]]\nengine = \"live\"\nfault_plan = \"frob=1\"").unwrap_err();
        assert!(err.contains("fault_plan"), "{err}");
        let spec = parse_spec(
            "[[scenario]]\nname = \"f\"\nengine = \"live\"\nfault_plan = [\"\", \"seed=7,drop=10\"]",
        )
        .unwrap();
        let runs = expand(&spec);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].cell_id(), "f.gauss.live.channel.p4");
        assert_eq!(
            runs[1].cell_id(),
            "f.gauss.live.channel.f-seed-7-drop-10.p4"
        );
    }
}
