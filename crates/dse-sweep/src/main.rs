//! `dse-sweep` — run a scenario-spec matrix in parallel, aggregate the
//! per-run metrics, and optionally gate on a committed baseline.
//!
//! ```sh
//! dse-sweep --spec bench_results/sweep_smoke.toml --out target/sweep
//! dse-sweep --spec spec.toml --out out --jobs 4 \
//!     --baseline bench_results/BENCH_sweep.json --gate 15
//! dse-sweep --spec spec.toml --list            # print the matrix, run nothing
//! dse-sweep merge a/BENCH_sweep.json b/BENCH_sweep.json \
//!     --out bench_results/BENCH_sweep.json     # conservative gate floor
//! ```
//!
//! The hidden `run-one` mode is the child-process entry the executor
//! uses: it re-derives one `RunSpec` from `(spec file, index)`, executes
//! it in-process, and prints the row as a single JSON line.

use std::path::{Path, PathBuf};

use dse_sweep::{agg, build, exec, execute_run, expand, parse_spec, RunStatus};

fn usage() -> ! {
    eprintln!(
        "usage: dse-sweep --spec FILE --out DIR [options]
  --spec FILE       TOML scenario spec (required)
  --out DIR         output directory for rows + aggregates (required unless --list)
  --jobs N          concurrent runs                  (default: one per core)
  --baseline FILE   BENCH_sweep.json to diff against
  --gate PCT        exit 1 when a cell's throughput regresses more than
                    PCT percent below the baseline (requires --baseline)
  --list            print the expanded run matrix and exit

       dse-sweep merge FILE... [--out FILE]
  Fold several BENCH_sweep.json files into one conservative baseline:
  per cell, the minimum observed throughput and the worst failure
  counts/latencies. Prints to stdout unless --out is given."
    );
    std::process::exit(2)
}

fn fail(msg: &str) -> ! {
    eprintln!("dse-sweep: {msg}");
    std::process::exit(2)
}

struct Args {
    spec: PathBuf,
    out: Option<PathBuf>,
    jobs: usize,
    baseline: Option<PathBuf>,
    gate: Option<f64>,
    list: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        spec: PathBuf::new(),
        out: None,
        jobs: 0,
        baseline: None,
        gate: None,
        list: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = || -> Result<&String, String> {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--spec" => args.spec = PathBuf::from(val()?),
            "--out" => args.out = Some(PathBuf::from(val()?)),
            "--jobs" => {
                args.jobs = val()?
                    .parse()
                    .map_err(|_| "--jobs: not a number".to_string())?
            }
            "--baseline" => args.baseline = Some(PathBuf::from(val()?)),
            "--gate" => {
                let pct: f64 = val()?
                    .parse()
                    .map_err(|_| "--gate: not a number".to_string())?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err("--gate: percent must be in 0..=100".into());
                }
                args.gate = Some(pct);
            }
            "--list" => args.list = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.spec.as_os_str().is_empty() {
        return Err("--spec is required".into());
    }
    if args.gate.is_some() && args.baseline.is_none() {
        return Err("--gate requires --baseline".into());
    }
    if args.out.is_none() && !args.list {
        return Err("--out is required".into());
    }
    Ok(args)
}

fn load_spec(path: &Path) -> dse_sweep::SweepSpec {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    parse_spec(&src).unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())))
}

/// Hidden child mode: `dse-sweep run-one --spec FILE --index I`.
fn run_one(argv: &[String]) -> ! {
    let mut spec_path: Option<PathBuf> = None;
    let mut index: Option<usize> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--spec", Some(v)) => spec_path = Some(PathBuf::from(v)),
            ("--index", Some(v)) => index = v.parse().ok(),
            _ => fail("run-one: expected --spec FILE --index I"),
        }
    }
    let (Some(spec_path), Some(index)) = (spec_path, index) else {
        fail("run-one: expected --spec FILE --index I");
    };
    let spec = load_spec(&spec_path);
    let runs = expand(&spec);
    let Some(run_spec) = runs.get(index) else {
        fail(&format!(
            "run-one: index {index} out of range ({} runs)",
            runs.len()
        ));
    };
    let record = execute_run(run_spec);
    println!("{}", record.to_json_line());
    std::process::exit(if record.status == RunStatus::Ok { 0 } else { 1 })
}

/// `dse-sweep merge FILE... [--out FILE]` — fold several trajectory
/// files into one conservative gating baseline (see
/// [`agg::merge_floor`]).
fn merge(argv: &[String]) -> ! {
    let mut out: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => fail("merge: --out needs a value"),
            },
            flag if flag.starts_with("--") => fail(&format!("merge: unknown flag {flag}")),
            file => files.push(PathBuf::from(file)),
        }
    }
    if files.is_empty() {
        fail("merge: expected at least one BENCH_sweep.json input");
    }
    let sources: Vec<String> = files
        .iter()
        .map(|p| {
            std::fs::read_to_string(p)
                .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", p.display())))
        })
        .collect();
    let merged = agg::merge_bench_json(&sources).unwrap_or_else(|e| fail(&format!("merge: {e}")));
    match out {
        Some(path) => {
            std::fs::write(&path, &merged)
                .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
            eprintln!("merged {} file(s) -> {}", files.len(), path.display());
        }
        None => print!("{merged}"),
    }
    std::process::exit(0)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("run-one") {
        run_one(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("merge") {
        merge(&argv[1..]);
    }
    let args = parse_args(&argv).unwrap_or_else(|err| {
        if err != "help" {
            eprintln!("{err}");
        }
        usage()
    });
    let spec = load_spec(&args.spec);
    let runs = expand(&spec);
    if runs.is_empty() {
        fail("the spec expands to zero runs");
    }
    if args.list {
        for r in &runs {
            println!("{:>4}  {}  seed={}", r.idx, r.cell_id(), r.seed);
        }
        println!("{} runs", runs.len());
        return;
    }
    let out_dir = args.out.expect("validated");
    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", out_dir.display())));
    let out_path = |name: &str| out_dir.join(name);
    let outs = [
        ("runs.jsonl", "per-run rows (JSONL)"),
        ("runs.csv", "per-run rows (CSV)"),
        ("summary.txt", "aggregate table"),
        ("BENCH_sweep.json", "trajectory file"),
    ];
    let paths: Vec<(String, &str)> = outs
        .iter()
        .map(|(name, what)| (out_path(name).to_string_lossy().into_owned(), *what))
        .collect();
    build::validate_out_paths(paths.iter().map(|(p, w)| (p.as_str(), *w)))
        .unwrap_or_else(|e| fail(&e));

    let exe = std::env::current_exe()
        .unwrap_or_else(|e| fail(&format!("cannot locate own executable: {e}")));
    let total = runs.len();
    eprintln!(
        "# sweep '{}': {} runs, {} concurrent",
        spec.name,
        total,
        if args.jobs == 0 {
            exec::default_jobs()
        } else {
            args.jobs
        }
    );
    let mut done = 0usize;
    let rows = exec::run_matrix(&exe, &args.spec, &runs, args.jobs, |rec| {
        done += 1;
        eprintln!(
            "[{done}/{total}] {} seed={} {} {:.0}ms",
            rec.cell,
            rec.seed,
            rec.status.name(),
            rec.wall_ns as f64 / 1e6
        );
    });

    let jsonl: String = rows.iter().map(|r| r.to_json_line() + "\n").collect();
    let csv: String = std::iter::once(dse_sweep::run::CSV_HEADER.to_string())
        .chain(rows.iter().map(|r| r.to_csv_line()))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    let cells = agg::aggregate(&rows);
    let table = agg::render_table(&cells);
    let bench = agg::to_bench_json(&spec.name, &cells);
    let write = |name: &str, data: &str| {
        let path = out_path(name);
        std::fs::write(&path, data)
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
    };
    write("runs.jsonl", &jsonl);
    write("runs.csv", &csv);
    write("summary.txt", &table);
    write("BENCH_sweep.json", &bench);
    println!("{table}");

    let mut exit = 0;
    if let Some(baseline_path) = &args.baseline {
        let src = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", baseline_path.display())));
        let baseline = agg::parse_bench_json(&src)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", baseline_path.display())));
        let gate_pct = args.gate.unwrap_or(f64::INFINITY);
        let report = agg::diff(&cells, &baseline, gate_pct);
        print!("{}", report.render());
        if args.gate.is_some() && !report.regressions.is_empty() {
            exit = 1;
        }
    }
    println!("rows: {}  outputs: {}", rows.len(), out_dir.display());
    std::process::exit(exit);
}
