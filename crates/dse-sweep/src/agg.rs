//! Aggregation: fold per-run rows into per-cell summaries, render the
//! text table, write/read the canonical `BENCH_sweep.json` trajectory
//! file, and diff a sweep against a committed baseline for the CI gate.

use std::collections::BTreeMap;

use crate::json::{self, Value};
use crate::run::{RunRecord, RunStatus};

/// Per-cell summary across that cell's seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Cell id (all axes except the seed).
    pub cell: String,
    /// Total runs of the cell.
    pub runs: usize,
    /// Runs that completed normally.
    pub ok: usize,
    /// Live-engine aborts.
    pub aborts: usize,
    /// Runs killed at the deadline.
    pub timeouts: usize,
    /// Harness-level failures.
    pub errors: usize,
    /// GM retransmits, summed over all runs.
    pub retries: u64,
    /// Mean wall-clock nanoseconds over ok runs.
    pub wall_ns: f64,
    /// Mean virtual nanoseconds over ok sim runs (0 for live cells).
    pub virtual_ns: f64,
    /// Mean simulator events per wall-clock second (sim cells).
    pub events_per_sec: f64,
    /// Mean GM operations per wall-clock second.
    pub gm_ops_per_sec: f64,
    /// Mean merged GM latency p50 (ns).
    pub p50_ns: f64,
    /// Mean merged GM latency p99 (ns).
    pub p99_ns: f64,
    /// Mean merged GM latency p99.9 (ns) — the SLO tail.
    pub p999_ns: f64,
}

/// Group rows by cell id and fold each group into its summary, sorted by
/// cell id. Rate metrics are per-run rates averaged over the cell's ok
/// runs (not totals divided by total time), so one slow seed cannot hide
/// behind a fast one.
pub fn aggregate(rows: &[RunRecord]) -> Vec<CellSummary> {
    let mut groups: BTreeMap<&str, Vec<&RunRecord>> = BTreeMap::new();
    for row in rows {
        groups.entry(row.cell.as_str()).or_default().push(row);
    }
    groups
        .into_iter()
        .map(|(cell, rows)| {
            let ok: Vec<&&RunRecord> = rows.iter().filter(|r| r.status == RunStatus::Ok).collect();
            let mean = |f: &dyn Fn(&RunRecord) -> f64| -> f64 {
                if ok.is_empty() {
                    0.0
                } else {
                    ok.iter().map(|r| f(r)).sum::<f64>() / ok.len() as f64
                }
            };
            let rate = |count: &dyn Fn(&RunRecord) -> u64| -> f64 {
                mean(&|r| {
                    let secs = r.wall_ns as f64 / 1e9;
                    if secs > 0.0 {
                        count(r) as f64 / secs
                    } else {
                        0.0
                    }
                })
            };
            CellSummary {
                cell: cell.to_string(),
                runs: rows.len(),
                ok: ok.len(),
                aborts: rows.iter().filter(|r| r.status == RunStatus::Abort).count(),
                timeouts: rows
                    .iter()
                    .filter(|r| r.status == RunStatus::Timeout)
                    .count(),
                errors: rows.iter().filter(|r| r.status == RunStatus::Error).count(),
                retries: rows.iter().map(|r| r.retries).sum(),
                wall_ns: mean(&|r| r.wall_ns as f64),
                virtual_ns: mean(&|r| r.virtual_ns as f64),
                events_per_sec: rate(&|r| r.events),
                gm_ops_per_sec: rate(&|r| r.gm_ops),
                p50_ns: mean(&|r| r.p50_ns as f64),
                p99_ns: mean(&|r| r.p99_ns as f64),
                p999_ns: mean(&|r| r.p999_ns as f64),
            }
        })
        .collect()
}

fn human_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

fn human_ms(ns: f64) -> String {
    format!("{:.1}", ns / 1e6)
}

/// Render the aggregate table.
pub fn render_table(cells: &[CellSummary]) -> String {
    let header = [
        "cell", "runs", "ok", "ev/s", "gmop/s", "wall ms", "p50 us", "p99 us", "p999 us", "retry",
        "bad",
    ];
    let mut table: Vec<[String; 11]> = vec![header.map(String::from)];
    for c in cells {
        let bad = c.aborts + c.timeouts + c.errors;
        table.push([
            c.cell.clone(),
            c.runs.to_string(),
            c.ok.to_string(),
            human_rate(c.events_per_sec),
            human_rate(c.gm_ops_per_sec),
            human_ms(c.wall_ns),
            format!("{:.1}", c.p50_ns / 1e3),
            format!("{:.1}", c.p99_ns / 1e3),
            format!("{:.1}", c.p999_ns / 1e3),
            c.retries.to_string(),
            if bad == 0 {
                "-".into()
            } else {
                bad.to_string()
            },
        ]);
    }
    let mut widths = [0usize; 11];
    for row in &table {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, row) in table.iter().enumerate() {
        let mut line = String::new();
        for (j, (cell, w)) in row.iter().zip(widths).enumerate() {
            if j == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("  {cell:>w$}"));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if i == 0 {
            let total = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Current `BENCH_sweep.json` schema tag.
pub const BENCH_SCHEMA: &str = "dse-sweep/v1";

/// Serialize summaries into the canonical trajectory file: one cell per
/// line so baseline diffs stay reviewable.
pub fn to_bench_json(sweep: &str, cells: &[CellSummary]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", BENCH_SCHEMA));
    out.push_str(&format!("  \"sweep\": \"{}\",\n", json::escape(sweep)));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"cell\": \"{}\", \"runs\": {}, \"ok\": {}, \"aborts\": {}, \
             \"timeouts\": {}, \"errors\": {}, \"retries\": {}, \"wall_ns\": {}, \
             \"virtual_ns\": {}, \"events_per_sec\": {}, \"gm_ops_per_sec\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}{sep}\n",
            json::escape(&c.cell),
            c.runs,
            c.ok,
            c.aborts,
            c.timeouts,
            c.errors,
            c.retries,
            json::num(c.wall_ns.round()),
            json::num(c.virtual_ns.round()),
            json::num((c.events_per_sec * 10.0).round() / 10.0),
            json::num((c.gm_ops_per_sec * 10.0).round() / 10.0),
            json::num(c.p50_ns.round()),
            json::num(c.p99_ns.round()),
            json::num(c.p999_ns.round()),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Fold several trajectory files into one conservative gating baseline.
///
/// Cells on this matrix finish in single-digit milliseconds, so their
/// wall-clock throughput jitters far more run-to-run than any real
/// regression ever would. Per cell, the merged baseline keeps the
/// MINIMUM observed throughput (`events_per_sec`, `gm_ops_per_sec`) —
/// the floor `--gate` compares against — and the maximum wall/latency
/// figures, so the gate only trips when a sweep falls below every
/// healthy run that produced the baseline. Failure counts keep the
/// worst case too (`ok` is the minimum), so a cell that ever failed
/// while baselining is not treated as "was clean" by the gate.
pub fn merge_floor(inputs: &[Vec<CellSummary>]) -> Vec<CellSummary> {
    let mut merged: BTreeMap<String, CellSummary> = BTreeMap::new();
    for cells in inputs {
        for c in cells {
            match merged.get_mut(&c.cell) {
                None => {
                    merged.insert(c.cell.clone(), c.clone());
                }
                Some(m) => {
                    m.ok = m.ok.min(c.ok);
                    m.aborts = m.aborts.max(c.aborts);
                    m.timeouts = m.timeouts.max(c.timeouts);
                    m.errors = m.errors.max(c.errors);
                    m.retries = m.retries.max(c.retries);
                    m.events_per_sec = m.events_per_sec.min(c.events_per_sec);
                    m.gm_ops_per_sec = m.gm_ops_per_sec.min(c.gm_ops_per_sec);
                    m.wall_ns = m.wall_ns.max(c.wall_ns);
                    m.virtual_ns = m.virtual_ns.max(c.virtual_ns);
                    m.p50_ns = m.p50_ns.max(c.p50_ns);
                    m.p99_ns = m.p99_ns.max(c.p99_ns);
                    m.p999_ns = m.p999_ns.max(c.p999_ns);
                }
            }
        }
    }
    merged.into_values().collect()
}

/// Merge raw trajectory-file sources with [`merge_floor`] and
/// re-serialize the result. The sweep name is carried over from the
/// first input.
pub fn merge_bench_json(sources: &[String]) -> Result<String, String> {
    let first = sources.first().ok_or("merge: no input files")?;
    let name = json::parse(first)?
        .get("sweep")
        .and_then(Value::as_str)
        .unwrap_or("merged")
        .to_string();
    let inputs: Vec<Vec<CellSummary>> = sources
        .iter()
        .map(|s| parse_bench_json(s))
        .collect::<Result<_, _>>()?;
    Ok(to_bench_json(&name, &merge_floor(&inputs)))
}

/// Parse a trajectory file back into summaries.
pub fn parse_bench_json(src: &str) -> Result<Vec<CellSummary>, String> {
    let doc = json::parse(src)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("baseline missing 'schema'")?;
    if schema != BENCH_SCHEMA {
        return Err(format!("baseline schema '{schema}' is not {BENCH_SCHEMA}"));
    }
    let cells = doc
        .get("cells")
        .and_then(Value::as_array)
        .ok_or("baseline missing 'cells'")?;
    cells
        .iter()
        .map(|c| {
            let s = |key: &str| -> Result<String, String> {
                c.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline cell missing '{key}'"))
            };
            let n = |key: &str| -> Result<f64, String> {
                c.get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("baseline cell missing '{key}'"))
            };
            Ok(CellSummary {
                cell: s("cell")?,
                runs: n("runs")? as usize,
                ok: n("ok")? as usize,
                aborts: n("aborts")? as usize,
                timeouts: n("timeouts")? as usize,
                errors: n("errors")? as usize,
                retries: n("retries")? as u64,
                wall_ns: n("wall_ns")?,
                virtual_ns: n("virtual_ns")?,
                events_per_sec: n("events_per_sec")?,
                gm_ops_per_sec: n("gm_ops_per_sec")?,
                p50_ns: n("p50_ns")?,
                p99_ns: n("p99_ns")?,
                // Absent in pre-p999 baselines; tolerate so committed
                // trajectory files stay readable.
                p999_ns: c.get("p999_ns").and_then(Value::as_f64).unwrap_or(0.0),
            })
        })
        .collect()
}

/// Outcome of diffing a sweep against a baseline.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Human-readable per-cell delta lines.
    pub lines: Vec<String>,
    /// Cells that regressed past the gate threshold (empty = gate passes).
    pub regressions: Vec<String>,
    /// Cells present now but absent from the baseline (not gated).
    pub new_cells: usize,
    /// Baseline cells the sweep no longer runs (not gated).
    pub missing_cells: usize,
}

impl DiffReport {
    /// Render the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        if self.new_cells > 0 {
            out.push_str(&format!(
                "{} cell(s) have no baseline yet\n",
                self.new_cells
            ));
        }
        if self.missing_cells > 0 {
            out.push_str(&format!(
                "{} baseline cell(s) were not run this sweep\n",
                self.missing_cells
            ));
        }
        if self.regressions.is_empty() {
            out.push_str("gate: PASS\n");
        } else {
            out.push_str(&format!(
                "gate: FAIL — {} regressed cell(s)\n",
                self.regressions.len()
            ));
        }
        out
    }
}

/// Compare a sweep against a baseline. A cell regresses when a
/// throughput metric (`events_per_sec`, `gm_ops_per_sec`) falls more
/// than `gate_pct` percent below its baseline value, or when a cell that
/// was fully healthy in the baseline now has failed runs. Cells without
/// a baseline counterpart are reported but never gated.
pub fn diff(current: &[CellSummary], baseline: &[CellSummary], gate_pct: f64) -> DiffReport {
    let base: BTreeMap<&str, &CellSummary> =
        baseline.iter().map(|c| (c.cell.as_str(), c)).collect();
    let cur: BTreeMap<&str, &CellSummary> = current.iter().map(|c| (c.cell.as_str(), c)).collect();
    let mut report = DiffReport {
        missing_cells: baseline
            .iter()
            .filter(|b| !cur.contains_key(b.cell.as_str()))
            .count(),
        ..DiffReport::default()
    };
    for c in current {
        let Some(b) = base.get(c.cell.as_str()) else {
            report.new_cells += 1;
            continue;
        };
        let mut worst: Option<(String, f64)> = None;
        for (metric, now, then) in [
            ("events_per_sec", c.events_per_sec, b.events_per_sec),
            ("gm_ops_per_sec", c.gm_ops_per_sec, b.gm_ops_per_sec),
        ] {
            if then <= 0.0 {
                continue;
            }
            let delta_pct = (now - then) / then * 100.0;
            if worst.as_ref().is_none_or(|(_, w)| delta_pct < *w) {
                worst = Some((metric.to_string(), delta_pct));
            }
            if delta_pct < -gate_pct {
                report
                    .regressions
                    .push(format!("{}: {metric} {delta_pct:+.1}%", c.cell));
            }
        }
        let newly_failing = b.ok == b.runs && c.ok < c.runs;
        if newly_failing {
            report.regressions.push(format!(
                "{}: {} of {} runs failed (baseline was clean)",
                c.cell,
                c.runs - c.ok,
                c.runs
            ));
        }
        let (metric, delta) = worst.unwrap_or_else(|| ("events_per_sec".into(), 0.0));
        report.lines.push(format!(
            "{:<40} {metric} {delta:+7.1}%{}",
            c.cell,
            if newly_failing {
                "  [newly failing]"
            } else {
                ""
            }
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{expand, parse_spec};

    /// Hand-built fixture: two cells x two seeds, fully deterministic.
    fn fixture_rows() -> Vec<RunRecord> {
        let spec = parse_spec(
            "[sweep]\nseeds = [1, 2]\n[[scenario]]\nname = \"fx\"\napp = [\"gauss\", \"dct\"]\nprocs = [2]\n",
        )
        .unwrap();
        expand(&spec)
            .iter()
            .map(|rs| {
                let mut rec = RunRecord::failed(rs, RunStatus::Ok, "");
                rec.wall_ns = 2_000_000_000; // 2s
                rec.virtual_ns = 1_000_000_000;
                rec.events = 1000 * (rs.idx as u64 + 1);
                rec.gm_ops = 500;
                rec.p50_ns = 1000;
                rec.p99_ns = 9000;
                rec.p999_ns = 12000;
                rec
            })
            .collect()
    }

    #[test]
    fn aggregate_folds_seeds_per_cell() {
        let rows = fixture_rows();
        let cells = aggregate(&rows);
        assert_eq!(cells.len(), 2, "two apps -> two cells");
        let gauss = cells.iter().find(|c| c.cell.contains("gauss")).unwrap();
        assert_eq!(gauss.runs, 2);
        assert_eq!(gauss.ok, 2);
        // gauss rows are idx 0 and 1: (1000 + 2000)/2 events over 2s each.
        assert!((gauss.events_per_sec - 750.0).abs() < 1e-9);
        assert!((gauss.gm_ops_per_sec - 250.0).abs() < 1e-9);
        assert!((gauss.wall_ns - 2e9).abs() < 1e-9);
    }

    #[test]
    fn failed_runs_are_counted_not_averaged() {
        let mut rows = fixture_rows();
        rows[1].status = RunStatus::Timeout;
        rows[1].events = 0;
        rows[1].wall_ns = 0;
        let cells = aggregate(&rows);
        let gauss = cells.iter().find(|c| c.cell.contains("gauss")).unwrap();
        assert_eq!(gauss.ok, 1);
        assert_eq!(gauss.timeouts, 1);
        // The rate is the mean over ok runs only.
        assert!((gauss.events_per_sec - 500.0).abs() < 1e-9);
    }

    #[test]
    fn bench_json_roundtrips() {
        let cells = aggregate(&fixture_rows());
        let text = to_bench_json("fixture", &cells);
        let back = parse_bench_json(&text).unwrap();
        assert_eq!(back.len(), cells.len());
        for (a, b) in back.iter().zip(&cells) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.runs, b.runs);
            assert!((a.events_per_sec - b.events_per_sec).abs() < 0.1);
            assert!((a.p999_ns - b.p999_ns).abs() < 1.0);
        }
        assert!(parse_bench_json("{\"schema\": \"other/v9\", \"cells\": []}").is_err());
        // Pre-p999 baselines (no p999_ns key) still parse, defaulting to 0.
        let legacy = text.replace(", \"p999_ns\": 12000", "");
        let back = parse_bench_json(&legacy).unwrap();
        assert!(back.iter().all(|c| c.p999_ns == 0.0));
    }

    #[test]
    fn merge_floor_keeps_worst_case_per_cell() {
        let cells = aggregate(&fixture_rows());
        // Second sample: faster throughput, slower tails, one failure.
        let mut fast = cells.clone();
        for c in &mut fast {
            c.events_per_sec *= 2.0;
            c.gm_ops_per_sec *= 0.5;
            c.p99_ns *= 3.0;
        }
        fast[0].ok -= 1;
        fast[0].timeouts += 1;
        let merged = merge_floor(&[cells.clone(), fast]);
        assert_eq!(merged.len(), cells.len());
        for (m, orig) in merged.iter().zip(&cells) {
            assert_eq!(m.cell, orig.cell);
            // Throughput keeps the slower sample, tails the slower tail.
            assert!((m.events_per_sec - orig.events_per_sec).abs() < 1e-9);
            assert!((m.gm_ops_per_sec - orig.gm_ops_per_sec * 0.5).abs() < 1e-9);
            assert!((m.p99_ns - orig.p99_ns * 3.0).abs() < 1e-9);
        }
        // A cell that ever failed is not "clean" in the merged baseline.
        assert_eq!(merged[0].ok, cells[0].ok - 1);
        assert_eq!(merged[0].timeouts, 1);
        // The floor baseline passes the gate against any of its inputs.
        let report = diff(&cells, &merged, 15.0);
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
    }

    #[test]
    fn merge_bench_json_unions_cells_and_keeps_name() {
        let cells = aggregate(&fixture_rows());
        let a = to_bench_json("full", &cells);
        // Second file: one overlapping (slower) cell plus one new cell.
        let mut extra = cells.clone();
        extra[0].events_per_sec /= 4.0;
        extra[1].cell = "fx.other.p2".into();
        let b = to_bench_json("full", &extra);
        let merged = merge_bench_json(&[a, b]).unwrap();
        assert!(merged.contains("\"sweep\": \"full\""));
        let back = parse_bench_json(&merged).unwrap();
        assert_eq!(back.len(), 3, "union of both files' cells");
        let floor = back.iter().find(|c| c.cell == cells[0].cell).unwrap();
        assert!((floor.events_per_sec - cells[0].events_per_sec / 4.0).abs() < 0.1);
        assert!(merge_bench_json(&[]).is_err());
        assert!(merge_bench_json(&["not json".into()]).is_err());
    }

    #[test]
    fn gate_trips_on_throughput_regression() {
        let cells = aggregate(&fixture_rows());
        // Baseline claims 2x the throughput: a 50% regression.
        let mut baseline = cells.clone();
        for b in &mut baseline {
            b.events_per_sec *= 2.0;
        }
        let report = diff(&cells, &baseline, 15.0);
        assert_eq!(report.regressions.len(), 2, "{:?}", report.regressions);
        assert!(report.render().contains("gate: FAIL"));
        // Identical data passes any gate.
        let report = diff(&cells, &cells, 15.0);
        assert!(report.regressions.is_empty());
        assert!(report.render().contains("gate: PASS"));
        // Small noise below the threshold passes.
        let mut wobble = cells.clone();
        for c in &mut wobble {
            c.events_per_sec *= 0.95;
        }
        let report = diff(&wobble, &cells, 15.0);
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
    }

    #[test]
    fn gate_trips_on_newly_failing_cell() {
        let baseline = aggregate(&fixture_rows());
        let mut rows = fixture_rows();
        rows[0].status = RunStatus::Abort;
        let current = aggregate(&rows);
        let report = diff(&current, &baseline, 15.0);
        assert!(
            report
                .regressions
                .iter()
                .any(|r| r.contains("newly failing") || r.contains("runs failed")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn unknown_cells_are_reported_not_gated() {
        let cells = aggregate(&fixture_rows());
        let report = diff(&cells, &[], 15.0);
        assert_eq!(report.new_cells, 2);
        assert!(report.regressions.is_empty());
        let report = diff(&[], &cells, 15.0);
        assert_eq!(report.missing_cells, 2);
        assert!(report.regressions.is_empty());
    }

    #[test]
    fn table_renders_every_cell() {
        let cells = aggregate(&fixture_rows());
        let table = render_table(&cells);
        assert!(table.contains("ev/s"));
        for c in &cells {
            assert!(table.contains(&c.cell));
        }
    }
}
