//! Shared run-construction logic for `dse-run` and `dse-sweep`.
//!
//! Both binaries turn the same user-facing vocabulary (app, engine,
//! transport, platform, organization, protocol, GM options) into engine
//! configurations, and both probe output paths before spending minutes of
//! compute. Keeping the mapping here means a new axis value lands in the
//! CLI and the sweep harness at the same time — they cannot drift.

use dse_kernel::{DseConfig, GmMode, Organization, SchedulerKind, TelemetryConfig};
use dse_live::{FaultPlan, LiveRunConfig, TransportKind};
use dse_net::Protocol;
use dse_platform::Platform;
use dse_sim::SimDuration;

/// The runnable applications, by CLI/spec name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    Gauss,
    GaussMp,
    Dct,
    Othello,
    Matmul,
    Knights,
}

impl AppKind {
    /// Every app, in canonical (usage-string) order.
    pub const ALL: &'static [AppKind] = &[
        AppKind::Gauss,
        AppKind::GaussMp,
        AppKind::Dct,
        AppKind::Othello,
        AppKind::Matmul,
        AppKind::Knights,
    ];

    /// Parse a CLI/spec app name.
    pub fn parse(name: &str) -> Result<AppKind, String> {
        match name {
            "gauss" => Ok(AppKind::Gauss),
            "gauss-mp" => Ok(AppKind::GaussMp),
            "dct" => Ok(AppKind::Dct),
            "othello" => Ok(AppKind::Othello),
            "matmul" => Ok(AppKind::Matmul),
            "knights" => Ok(AppKind::Knights),
            other => Err(format!(
                "unknown app '{other}' (expected gauss, gauss-mp, dct, othello, matmul or knights)"
            )),
        }
    }

    /// The canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::Gauss => "gauss",
            AppKind::GaussMp => "gauss-mp",
            AppKind::Dct => "dct",
            AppKind::Othello => "othello",
            AppKind::Matmul => "matmul",
            AppKind::Knights => "knights",
        }
    }

    /// Whether the app runs on the live engine. `gauss-mp` is the explicit
    /// message-passing variant built on the simulator's user-message
    /// mailboxes and is sim-only.
    pub fn live_ok(&self) -> bool {
        !matches!(self, AppKind::GaussMp)
    }
}

/// Application parameters shared by both binaries. Fields that an app
/// does not use are simply ignored by its dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppParams {
    /// Gauss-Seidel system dimension / matmul matrix dimension.
    pub n: usize,
    /// DCT block size.
    pub block: usize,
    /// DCT image size override (`0` keeps the paper's 512).
    pub size: usize,
    /// Othello search depth.
    pub depth: u32,
    /// Knight's-Tour job count.
    pub jobs: usize,
}

impl Default for AppParams {
    fn default() -> AppParams {
        AppParams {
            n: 400,
            block: 8,
            size: 0,
            depth: 5,
            jobs: 16,
        }
    }
}

/// Validate an organization name.
pub fn check_organization(name: &str) -> Result<Organization, String> {
    match name {
        "linked" => Ok(Organization::LinkedLibrary),
        "legacy" => Ok(Organization::SeparateProcess),
        other => Err(format!("organization '{other}' is not linked or legacy")),
    }
}

/// Validate a protocol-stack name.
pub fn check_protocol(name: &str) -> Result<Protocol, String> {
    match name {
        "tcp" => Ok(Protocol::TcpIp),
        "udp" => Ok(Protocol::Udp),
        "raw" => Ok(Protocol::RawEthernet),
        other => Err(format!("protocol '{other}' is not tcp, udp or raw")),
    }
}

/// Validate a GM coherence-mode name.
pub fn check_gm_mode(name: &str) -> Result<GmMode, String> {
    match name {
        "wi" => Ok(GmMode::WriteInvalidate),
        "rc" => Ok(GmMode::ReleaseConsistency),
        other => Err(format!("gm_mode '{other}' is not wi or rc")),
    }
}

/// Validate a kernel-scheduler name (`threads` | `tasks`, live engine).
pub fn check_scheduler(name: &str) -> Result<SchedulerKind, String> {
    SchedulerKind::parse(name).ok_or_else(|| format!("scheduler '{name}' is not threads or tasks"))
}

/// Resolve a platform preset id.
pub fn platform_by_id(id: &str) -> Result<Platform, String> {
    Platform::by_id(id).ok_or_else(|| format!("unknown platform '{id}'"))
}

/// Map a transport name to its kind, enforcing host support.
pub fn transport_kind(name: &str) -> Result<TransportKind, String> {
    match name {
        "channel" => Ok(TransportKind::Channel),
        "tcp" => Ok(TransportKind::Tcp),
        "uds" => {
            if cfg!(unix) {
                Ok(TransportKind::Uds)
            } else {
                Err("transport uds: Unix domain sockets need a Unix platform".into())
            }
        }
        other => Err(format!("transport '{other}' is not channel, tcp or uds")),
    }
}

/// Validate a fault-plan spec without building the live config.
pub fn check_fault_plan(spec: &str) -> Result<FaultPlan, String> {
    FaultPlan::parse(spec)
}

/// Everything needed to build a simulated-run configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSettings {
    /// Platform preset id (`sunos` | `aix` | `linux`).
    pub platform: String,
    /// Software organization name.
    pub organization: String,
    /// Protocol-stack name.
    pub protocol: String,
    /// Enable the GM cache.
    pub cache: bool,
    /// GM coherence mode (`wi` | `rc`), meaningful with the cache on.
    pub gm_mode: String,
    /// Physical machine count.
    pub machines: usize,
    /// Record the execution trace.
    pub tracing: bool,
    /// Enable the in-band telemetry plane: `(interval_ms, watchdog_ms)`.
    pub telemetry_ms: Option<(u64, u64)>,
    /// Deterministic seed override.
    pub seed: Option<u64>,
    /// GM pipeline window (`0` keeps the engine default).
    pub gm_window: usize,
}

impl Default for SimSettings {
    fn default() -> SimSettings {
        SimSettings {
            platform: "sunos".into(),
            organization: "linked".into(),
            protocol: "tcp".into(),
            cache: false,
            gm_mode: "wi".into(),
            machines: 6,
            tracing: false,
            telemetry_ms: None,
            seed: None,
            gm_window: 0,
        }
    }
}

/// Build the platform and [`DseConfig`] for a simulated run.
pub fn build_sim(settings: &SimSettings) -> Result<(Platform, DseConfig), String> {
    let platform = platform_by_id(&settings.platform)?;
    let mut config = DseConfig::paper()
        .with_gm_cache(settings.cache)
        .with_gm_mode(check_gm_mode(&settings.gm_mode)?);
    config.organization = check_organization(&settings.organization)?;
    config.protocol = check_protocol(&settings.protocol)?;
    if let Some((interval_ms, watchdog_ms)) = settings.telemetry_ms {
        config.telemetry = Some(
            TelemetryConfig::default()
                .with_interval(SimDuration::from_millis(interval_ms))
                .with_watchdog_deadline(SimDuration::from_millis(watchdog_ms)),
        );
    }
    if let Some(seed) = settings.seed {
        config = config.with_seed(seed);
    }
    if settings.gm_window != 0 {
        config = config.with_gm_window(settings.gm_window);
    }
    config = config
        .with_machines(settings.machines)
        .with_tracing(settings.tracing);
    Ok((platform, config))
}

/// Build the [`LiveRunConfig`] for a live run. When `seed` is given and
/// the fault plan does not pin its own seed, the run seed becomes the
/// plan seed — that is how sweep repetitions vary a faulty mesh.
pub fn build_live(
    transport: &str,
    fault_plan: Option<&str>,
    seed: Option<u64>,
    cache: bool,
    gm_mode: &str,
    scheduler: &str,
) -> Result<LiveRunConfig, String> {
    let kind = transport_kind(transport)?;
    let gm_mode = check_gm_mode(gm_mode)?;
    let scheduler = check_scheduler(scheduler)?;
    let fault_plan = match fault_plan.filter(|s| !s.is_empty()) {
        None => None,
        Some(spec) => {
            let effective = match seed {
                Some(seed) if !spec.split(',').any(|t| t.trim_start().starts_with("seed=")) => {
                    format!("seed={seed},{spec}")
                }
                _ => spec.to_string(),
            };
            Some(FaultPlan::parse(&effective).map_err(|e| format!("fault plan: {e}"))?)
        }
    };
    Ok(LiveRunConfig {
        kind,
        fault_plan,
        gm_cache: cache,
        gm_mode,
        scheduler,
        ..LiveRunConfig::default()
    })
}

/// Probe every requested output path for writability *before* the run, so
/// a typo'd directory fails in milliseconds instead of after minutes of
/// compute. The probe opens in append mode: an existing file is left
/// intact until the real (truncating) write at the end of the run.
pub fn validate_out_paths<'a>(
    outs: impl IntoIterator<Item = (&'a str, &'a str)>,
) -> Result<(), String> {
    for (path, what) in outs {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot write {what} to {path}: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_names_roundtrip() {
        for app in AppKind::ALL {
            assert_eq!(AppKind::parse(app.name()).unwrap(), *app);
        }
        assert!(AppKind::parse("warp").is_err());
        assert!(!AppKind::GaussMp.live_ok());
        assert!(AppKind::Gauss.live_ok());
    }

    #[test]
    fn sim_settings_build_a_config() {
        let (platform, config) = build_sim(&SimSettings {
            platform: "linux".into(),
            organization: "legacy".into(),
            protocol: "udp".into(),
            cache: true,
            gm_mode: "rc".into(),
            machines: 4,
            tracing: true,
            telemetry_ms: Some((10, 100)),
            seed: Some(42),
            gm_window: 8,
        })
        .unwrap();
        assert_eq!(platform.id, "linux");
        assert_eq!(config.organization, Organization::SeparateProcess);
        assert_eq!(config.protocol, Protocol::Udp);
        assert!(config.gm_cache && config.tracing);
        assert_eq!(config.gm_mode, GmMode::ReleaseConsistency);
        assert_eq!(config.machines, Some(4));
        assert_eq!(config.seed, 42);
        assert_eq!(config.gm_window, 8);
        assert!(config.telemetry.is_some());
    }

    #[test]
    fn bad_settings_rejected() {
        let s = SimSettings {
            platform: "amiga".into(),
            ..SimSettings::default()
        };
        assert!(build_sim(&s).unwrap_err().contains("unknown platform"));
        let s = SimSettings {
            organization: "flat".into(),
            ..SimSettings::default()
        };
        assert!(build_sim(&s).unwrap_err().contains("not linked or legacy"));
        let s = SimSettings {
            protocol: "ipx".into(),
            ..SimSettings::default()
        };
        assert!(build_sim(&s).unwrap_err().contains("not tcp, udp or raw"));
        let s = SimSettings {
            gm_mode: "mesi".into(),
            ..SimSettings::default()
        };
        assert!(build_sim(&s).unwrap_err().contains("not wi or rc"));
        assert!(transport_kind("pigeon").is_err());
    }

    #[test]
    fn gm_mode_names_validate() {
        assert_eq!(check_gm_mode("wi").unwrap(), GmMode::WriteInvalidate);
        assert_eq!(check_gm_mode("rc").unwrap(), GmMode::ReleaseConsistency);
        assert!(check_gm_mode("mesi").is_err());
    }

    #[test]
    fn live_seed_injected_only_when_plan_has_none() {
        let cfg = build_live("channel", Some("drop=10"), Some(7), false, "wi", "threads").unwrap();
        let with_seed = FaultPlan::parse("seed=7,drop=10").unwrap();
        assert_eq!(cfg.fault_plan, Some(with_seed));
        let cfg = build_live(
            "channel",
            Some("seed=3,drop=10"),
            Some(7),
            false,
            "wi",
            "threads",
        )
        .unwrap();
        assert_eq!(
            cfg.fault_plan,
            Some(FaultPlan::parse("seed=3,drop=10").unwrap())
        );
        let cfg = build_live("channel", None, Some(7), false, "wi", "threads").unwrap();
        assert!(cfg.fault_plan.is_none());
        let cfg = build_live("tcp", Some(""), None, true, "rc", "threads").unwrap();
        assert!(cfg.fault_plan.is_none());
        assert_eq!(cfg.kind, TransportKind::Tcp);
        assert!(cfg.gm_cache);
        assert_eq!(cfg.gm_mode, GmMode::ReleaseConsistency);
        assert!(build_live("tcp", None, None, true, "moesi", "threads").is_err());
    }

    #[test]
    fn scheduler_names_validate_and_build() {
        assert_eq!(check_scheduler("threads").unwrap(), SchedulerKind::Threads);
        assert_eq!(check_scheduler("tasks").unwrap(), SchedulerKind::Tasks);
        assert!(check_scheduler("fibers").is_err());
        let cfg = build_live("channel", None, None, false, "wi", "tasks").unwrap();
        assert_eq!(cfg.scheduler, SchedulerKind::Tasks);
        assert!(build_live("channel", None, None, false, "wi", "fibers").is_err());
    }

    #[test]
    fn out_path_probe_is_non_clobbering() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("target")
            .join("sweep-validate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let keep = dir.join("keep.csv");
        std::fs::write(&keep, "old").unwrap();
        let keep_s = keep.to_string_lossy().into_owned();
        validate_out_paths([(keep_s.as_str(), "metrics (CSV)")]).unwrap();
        assert_eq!(std::fs::read_to_string(&keep).unwrap(), "old");
        let missing = dir.join("no-such-dir").join("f.jsonl");
        let missing_s = missing.to_string_lossy().into_owned();
        let err = validate_out_paths([(missing_s.as_str(), "flight recorder")]).unwrap_err();
        assert!(err.contains("cannot write flight recorder"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
