//! Minimal TOML subset parser for sweep scenario specs.
//!
//! The build environment has no crates.io access, so the spec format is a
//! hand-parsed subset of TOML: `[table]` and `[[array-of-tables]]`
//! headers, bare keys, and values that are quoted strings, integers,
//! booleans, or flat arrays of those. That covers everything a scenario
//! spec needs while staying loadable by any real TOML tool.

use std::collections::BTreeMap;

/// A parsed TOML value (strings, integers, booleans, flat arrays).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    Array(Vec<Value>),
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a list: an array yields its elements, a scalar yields
    /// itself (so `engine = "sim"` and `engine = ["sim"]` are equivalent
    /// axis declarations).
    pub fn as_list(&self) -> Vec<&Value> {
        match self {
            Value::Array(items) => items.iter().collect(),
            other => vec![other],
        }
    }

    /// Serialize back to TOML source form.
    pub fn to_toml(&self) -> String {
        match self {
            Value::Str(s) => format!("\"{}\"", escape(s)),
            Value::Int(v) => v.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Array(items) => {
                let inner: Vec<String> = items.iter().map(Value::to_toml).collect();
                format!("[{}]", inner.join(", "))
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// One `key = value` table.
pub type Table = BTreeMap<String, Value>;

/// A parsed document: named scalar tables (`[sweep]`) and named table
/// arrays (`[[scenario]]`), each in declaration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Document {
    /// Singleton tables, by header name. Top-level bare keys land in `""`.
    pub tables: BTreeMap<String, Table>,
    /// Array-of-tables entries, by header name, in file order.
    pub arrays: BTreeMap<String, Vec<Table>>,
}

impl Document {
    /// The named singleton table, or an empty one.
    pub fn table(&self, name: &str) -> Table {
        self.tables.get(name).cloned().unwrap_or_default()
    }
}

/// Parse a TOML-subset document. Errors carry the 1-based line number.
pub fn parse(src: &str) -> Result<Document, String> {
    let mut doc = Document::default();
    // Where the next `key = value` line lands.
    enum Target {
        Root,
        Table(String),
        ArrayEntry(String),
    }
    let mut target = Target::Root;
    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let name = name.trim().to_string();
            if name.is_empty() {
                return Err(format!("line {lineno}: empty table-array header"));
            }
            doc.arrays
                .entry(name.clone())
                .or_default()
                .push(Table::new());
            target = Target::ArrayEntry(name);
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim().to_string();
            if name.is_empty() {
                return Err(format!("line {lineno}: empty table header"));
            }
            doc.tables.entry(name.clone()).or_default();
            target = Target::Table(name);
            continue;
        }
        let (key, val) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected 'key = value'"))?;
        let key = key.trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(format!("line {lineno}: bad key '{key}'"));
        }
        let value = parse_value(val.trim()).map_err(|e| format!("line {lineno}: {e}"))?;
        let table = match &target {
            Target::Root => doc.tables.entry(String::new()).or_default(),
            Target::Table(name) => doc.tables.get_mut(name).expect("header inserted"),
            Target::ArrayEntry(name) => doc
                .arrays
                .get_mut(name)
                .and_then(|v| v.last_mut())
                .expect("header inserted"),
        };
        if table.insert(key.to_string(), value).is_some() {
            return Err(format!("line {lineno}: duplicate key '{key}'"));
        }
    }
    Ok(doc)
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(src: &str) -> Result<Value, String> {
    let (v, rest) = parse_value_prefix(src)?;
    if !rest.trim().is_empty() {
        return Err(format!("trailing garbage after value: '{}'", rest.trim()));
    }
    Ok(v)
}

/// Parse one value off the front of `src`, returning the remainder.
fn parse_value_prefix(src: &str) -> Result<(Value, &str), String> {
    let src = src.trim_start();
    if let Some(rest) = src.strip_prefix('[') {
        let mut items = Vec::new();
        let mut rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix(']') {
            return Ok((Value::Array(items), after));
        }
        loop {
            let (v, r) = parse_value_prefix(rest)?;
            items.push(v);
            rest = r.trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after.trim_start();
                // Tolerate a trailing comma before the closing bracket.
                if let Some(after) = rest.strip_prefix(']') {
                    return Ok((Value::Array(items), after));
                }
                continue;
            }
            if let Some(after) = rest.strip_prefix(']') {
                return Ok((Value::Array(items), after));
            }
            return Err("expected ',' or ']' in array".into());
        }
    }
    if let Some(rest) = src.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((Value::Str(out), &rest[i + 1..])),
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, other)) => return Err(format!("bad escape '\\{other}'")),
                    None => return Err("unterminated escape".into()),
                },
                c => out.push(c),
            }
        }
        return Err("unterminated string".into());
    }
    if let Some(rest) = src.strip_prefix("true") {
        return Ok((Value::Bool(true), rest));
    }
    if let Some(rest) = src.strip_prefix("false") {
        return Ok((Value::Bool(false), rest));
    }
    let end = src
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_digit() || *c == '-' || *c == '+' || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(src.len());
    let tok = &src[..end];
    if tok.is_empty() {
        return Err(format!("expected a value, found '{src}'"));
    }
    let cleaned: String = tok.chars().filter(|c| *c != '_').collect();
    let n: i64 = cleaned
        .parse()
        .map_err(|_| format!("'{tok}' is not a string, integer, boolean or array"))?;
    Ok((Value::Int(n), &src[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_and_arrays_parse() {
        let doc = parse(
            r#"
# a comment
top = 1
[sweep]
name = "full"   # trailing comment
seeds = [1, 2, 3]
[[scenario]]
app = "gauss"
procs = [2, 4]
cache = false
[[scenario]]
app = "dct"
"#,
        )
        .unwrap();
        assert_eq!(doc.table("").get("top"), Some(&Value::Int(1)));
        let sweep = doc.table("sweep");
        assert_eq!(sweep.get("name").unwrap().as_str(), Some("full"));
        assert_eq!(
            sweep.get("seeds"),
            Some(&Value::Array(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3)
            ]))
        );
        let scenarios = &doc.arrays["scenario"];
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].get("app").unwrap().as_str(), Some("gauss"));
        assert_eq!(scenarios[0].get("cache").unwrap().as_bool(), Some(false));
        assert_eq!(scenarios[1].get("app").unwrap().as_str(), Some("dct"));
    }

    #[test]
    fn strings_with_escapes_and_hashes_roundtrip() {
        let doc = parse(r#"plan = "seed=7,drop=10 \"x\" #not-a-comment""#).unwrap();
        let v = doc.table("").get("plan").unwrap().clone();
        assert_eq!(v.as_str(), Some(r#"seed=7,drop=10 "x" #not-a-comment"#));
        let reparsed = parse(&format!("k = {}", v.to_toml())).unwrap();
        assert_eq!(reparsed.table("").get("k"), Some(&v));
    }

    #[test]
    fn scalar_or_array_axes_are_equivalent() {
        let doc = parse("a = \"sim\"\nb = [\"sim\"]").unwrap();
        let t = doc.table("");
        assert_eq!(t["a"].as_list().len(), 1);
        assert_eq!(t["b"].as_list().len(), 1);
        assert_eq!(t["a"].as_list()[0], t["b"].as_list()[0]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert!(parse("[sweep]\nbroken").unwrap_err().contains("line 2"));
        assert!(parse("k = [1, ").unwrap_err().contains("line 1"));
        assert!(parse("k = \"open").unwrap_err().contains("unterminated"));
        assert!(parse("k = 1\nk = 2").unwrap_err().contains("duplicate"));
        assert!(parse("k = 1 2").unwrap_err().contains("trailing"));
    }

    #[test]
    fn negative_and_underscored_integers() {
        let t = parse("a = -5\nb = 1_000").unwrap().table("");
        assert_eq!(t["a"].as_int(), Some(-5));
        assert_eq!(t["b"].as_int(), Some(1000));
    }
}
