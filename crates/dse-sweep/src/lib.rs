//! `dse-sweep` — parallel scenario sweep harness for the DSE
//! reproduction.
//!
//! The paper's evaluation is a matrix of figures (apps × platforms × PE
//! counts); this crate is the machinery that reproduces such matrices at
//! will. A TOML scenario spec ([`spec`]) expands into a flat run matrix,
//! an executor ([`exec`]) fans the runs across host cores in child
//! processes with hard per-run timeouts, each run streams its `dse-obs`
//! metrics snapshot into one columnar row ([`run`]), and an aggregation
//! layer ([`agg`]) folds rows into per-cell summaries, renders the text
//! table, writes the canonical `BENCH_sweep.json` trajectory file, and
//! diffs against a committed baseline for the CI regression gate.
//!
//! The [`build`] module is shared with `dse-run`, so the CLI and the
//! sweep harness construct engine configurations identically.

pub mod agg;
pub mod build;
pub mod exec;
pub mod json;
pub mod run;
pub mod spec;
pub mod toml;

pub use agg::{aggregate, diff, parse_bench_json, render_table, to_bench_json, CellSummary};
pub use build::{AppKind, AppParams, SimSettings};
pub use run::{execute_run, RunRecord, RunStatus};
pub use spec::{expand, parse_spec, RunSpec, SweepSpec};
