//! In-process execution of one expanded [`RunSpec`], producing one
//! columnar [`RunRecord`] row from the run's metrics snapshot.

use std::time::Instant;

use dse_api::{DseProgram, RunResult};
use dse_apps::{dct, gauss_seidel, gauss_seidel_mp, knights, matmul, othello};
use dse_live::{LiveCtx, LiveRunResult, LiveRunner};
use dse_obs::{LogHistogram, MetricsSnapshot};

use crate::build::{self, AppKind, SimSettings};
use crate::json::{self, Value};
use crate::spec::RunSpec;

/// Terminal status of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Completed normally.
    Ok,
    /// The live engine aborted (structured failure report).
    Abort,
    /// The harness failed to execute the run (bad spec, crashed child).
    Error,
    /// The parent killed the run at its hard deadline.
    Timeout,
}

impl RunStatus {
    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Abort => "abort",
            RunStatus::Error => "error",
            RunStatus::Timeout => "timeout",
        }
    }

    /// Parse a canonical name.
    pub fn parse(s: &str) -> Option<RunStatus> {
        match s {
            "ok" => Some(RunStatus::Ok),
            "abort" => Some(RunStatus::Abort),
            "error" => Some(RunStatus::Error),
            "timeout" => Some(RunStatus::Timeout),
            _ => None,
        }
    }
}

/// One per-run metrics row. Serialized as a single JSONL line (and a CSV
/// line with the same columns); the aggregate layer groups rows by
/// `cell` and folds the seeds of each cell into one summary.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Matrix index.
    pub idx: usize,
    /// Cell id (all axes except the seed).
    pub cell: String,
    /// Axes, echoed for columnar analysis.
    pub scenario: String,
    pub app: String,
    pub engine: String,
    pub transport: String,
    pub scheduler: String,
    pub platform: String,
    pub procs: usize,
    pub gm_window: usize,
    pub cache: bool,
    pub gm_mode: String,
    pub fault_plan: String,
    pub seed: u64,
    /// Outcome.
    pub status: RunStatus,
    /// Failure detail (empty on success).
    pub note: String,
    /// Host wall-clock nanoseconds for the run.
    pub wall_ns: u64,
    /// Virtual nanoseconds (sim runs; 0 on live runs).
    pub virtual_ns: u64,
    /// Simulator heap events processed (sim runs; 0 on live runs).
    pub events: u64,
    /// Global-memory operations (reads + writes + fetch-adds), all PEs.
    pub gm_ops: u64,
    /// GM request messages that crossed the wire / simulated network.
    pub gm_request_msgs: u64,
    /// GM retransmits (live runs under fault plans).
    pub retries: u64,
    /// Merged GM latency p50 across PEs (ns; virtual on sim runs).
    pub p50_ns: u64,
    /// Merged GM latency p99 across PEs (ns; virtual on sim runs).
    pub p99_ns: u64,
    /// Merged GM latency p99.9 across PEs (ns; virtual on sim runs).
    pub p999_ns: u64,
    /// Causal-blame decomposition of the run's wall clock, summed over
    /// PEs (live runs only; 0 on sim rows). The six columns partition
    /// each PE's app-span wall time, so
    /// `compute + serve + net + retry + barrier + lock` equals the sum
    /// of per-PE app-span durations.
    pub blame_compute_ns: u64,
    pub blame_serve_ns: u64,
    pub blame_net_ns: u64,
    pub blame_retry_ns: u64,
    pub blame_barrier_ns: u64,
    pub blame_lock_ns: u64,
}

/// CSV header matching [`RunRecord::to_csv_line`].
pub const CSV_HEADER: &str = "idx,cell,scenario,app,engine,transport,scheduler,platform,procs,\
gm_window,cache,gm_mode,fault_plan,seed,status,note,wall_ns,virtual_ns,events,gm_ops,\
gm_request_msgs,retries,p50_ns,p99_ns,p999_ns,blame_compute_ns,blame_serve_ns,blame_net_ns,\
blame_retry_ns,blame_barrier_ns,blame_lock_ns";

impl RunRecord {
    /// A failure row for a run that produced no metrics.
    pub fn failed(spec: &RunSpec, status: RunStatus, note: impl Into<String>) -> RunRecord {
        RunRecord {
            idx: spec.idx,
            cell: spec.cell_id(),
            scenario: spec.scenario.clone(),
            app: spec.app.clone(),
            engine: spec.engine.clone(),
            transport: spec.transport.clone(),
            scheduler: spec.scheduler.clone(),
            platform: spec.platform.clone(),
            procs: spec.procs,
            gm_window: spec.gm_window,
            cache: spec.cache,
            gm_mode: spec.gm_mode.clone(),
            fault_plan: spec.fault_plan.clone(),
            seed: spec.seed,
            status,
            note: note.into(),
            wall_ns: 0,
            virtual_ns: 0,
            events: 0,
            gm_ops: 0,
            gm_request_msgs: 0,
            retries: 0,
            p50_ns: 0,
            p99_ns: 0,
            p999_ns: 0,
            blame_compute_ns: 0,
            blame_serve_ns: 0,
            blame_net_ns: 0,
            blame_retry_ns: 0,
            blame_barrier_ns: 0,
            blame_lock_ns: 0,
        }
    }

    /// Serialize as one JSON line.
    pub fn to_json_line(&self) -> String {
        format!(
            concat!(
                "{{\"idx\":{},\"cell\":\"{}\",\"scenario\":\"{}\",\"app\":\"{}\",",
                "\"engine\":\"{}\",\"transport\":\"{}\",\"scheduler\":\"{}\",",
                "\"platform\":\"{}\",\"procs\":{},",
                "\"gm_window\":{},\"cache\":{},\"gm_mode\":\"{}\",\"fault_plan\":\"{}\",\"seed\":{},",
                "\"status\":\"{}\",\"note\":\"{}\",\"wall_ns\":{},\"virtual_ns\":{},",
                "\"events\":{},\"gm_ops\":{},\"gm_request_msgs\":{},\"retries\":{},",
                "\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},",
                "\"blame_compute_ns\":{},\"blame_serve_ns\":{},\"blame_net_ns\":{},",
                "\"blame_retry_ns\":{},\"blame_barrier_ns\":{},\"blame_lock_ns\":{}}}"
            ),
            self.idx,
            json::escape(&self.cell),
            json::escape(&self.scenario),
            json::escape(&self.app),
            json::escape(&self.engine),
            json::escape(&self.transport),
            json::escape(&self.scheduler),
            json::escape(&self.platform),
            self.procs,
            self.gm_window,
            self.cache,
            json::escape(&self.gm_mode),
            json::escape(&self.fault_plan),
            self.seed,
            self.status.name(),
            json::escape(&self.note),
            self.wall_ns,
            self.virtual_ns,
            self.events,
            self.gm_ops,
            self.gm_request_msgs,
            self.retries,
            self.p50_ns,
            self.p99_ns,
            self.p999_ns,
            self.blame_compute_ns,
            self.blame_serve_ns,
            self.blame_net_ns,
            self.blame_retry_ns,
            self.blame_barrier_ns,
            self.blame_lock_ns,
        )
    }

    /// The canonical form of the row: every wall-clock-derived field
    /// zeroed. Two runs of the same sim spec and seed must produce
    /// byte-identical canonical lines (the determinism test relies on
    /// this); live rows additionally zero their wall-clock latency
    /// quantiles and blame columns.
    pub fn canonical_line(&self) -> String {
        let mut c = self.clone();
        c.wall_ns = 0;
        if c.engine == "live" {
            c.p50_ns = 0;
            c.p99_ns = 0;
            c.p999_ns = 0;
            c.blame_compute_ns = 0;
            c.blame_serve_ns = 0;
            c.blame_net_ns = 0;
            c.blame_retry_ns = 0;
            c.blame_barrier_ns = 0;
            c.blame_lock_ns = 0;
        }
        c.to_json_line()
    }

    /// Serialize as one CSV line (columns per [`CSV_HEADER`]).
    pub fn to_csv_line(&self) -> String {
        let csv = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.idx,
            csv(&self.cell),
            csv(&self.scenario),
            csv(&self.app),
            self.engine,
            self.transport,
            self.scheduler,
            self.platform,
            self.procs,
            self.gm_window,
            self.cache,
            self.gm_mode,
            csv(&self.fault_plan),
            self.seed,
            self.status.name(),
            csv(&self.note),
            self.wall_ns,
            self.virtual_ns,
            self.events,
            self.gm_ops,
            self.gm_request_msgs,
            self.retries,
            self.p50_ns,
            self.p99_ns,
            self.p999_ns,
            self.blame_compute_ns,
            self.blame_serve_ns,
            self.blame_net_ns,
            self.blame_retry_ns,
            self.blame_barrier_ns,
            self.blame_lock_ns,
        )
    }

    /// Parse a row back from its JSON line.
    pub fn from_json_line(line: &str) -> Result<RunRecord, String> {
        let v = json::parse(line)?;
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("row missing string field '{key}'"))
        };
        let n = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("row missing numeric field '{key}'"))
        };
        let status_name = s("status")?;
        let engine = s("engine")?;
        Ok(RunRecord {
            idx: n("idx")? as usize,
            cell: s("cell")?,
            scenario: s("scenario")?,
            app: s("app")?,
            transport: s("transport")?,
            // Rows written before the scheduler axis existed all ran the
            // thread-per-PE engine; sim rows leave the field empty.
            scheduler: v
                .get("scheduler")
                .and_then(Value::as_str)
                .unwrap_or(if engine == "live" { "threads" } else { "" })
                .to_string(),
            engine,
            platform: s("platform")?,
            procs: n("procs")? as usize,
            gm_window: n("gm_window")? as usize,
            cache: v
                .get("cache")
                .and_then(Value::as_bool)
                .ok_or("row missing boolean field 'cache'")?,
            // Rows written before the coherence axis existed default to
            // write-invalidate, the mode those rows actually ran under.
            gm_mode: v
                .get("gm_mode")
                .and_then(Value::as_str)
                .unwrap_or("wi")
                .to_string(),
            fault_plan: s("fault_plan")?,
            seed: n("seed")?,
            status: RunStatus::parse(&status_name)
                .ok_or_else(|| format!("unknown status '{status_name}'"))?,
            note: s("note")?,
            wall_ns: n("wall_ns")?,
            virtual_ns: n("virtual_ns")?,
            events: n("events")?,
            gm_ops: n("gm_ops")?,
            gm_request_msgs: n("gm_request_msgs")?,
            retries: n("retries")?,
            p50_ns: n("p50_ns")?,
            p99_ns: n("p99_ns")?,
            p999_ns: n("p999_ns")?,
            blame_compute_ns: n("blame_compute_ns")?,
            blame_serve_ns: n("blame_serve_ns")?,
            blame_net_ns: n("blame_net_ns")?,
            blame_retry_ns: n("blame_retry_ns")?,
            blame_barrier_ns: n("blame_barrier_ns")?,
            blame_lock_ns: n("blame_lock_ns")?,
        })
    }
}

/// Merge every `gm/*_ns` latency histogram across PEs and return
/// `(p50, p99, p99.9)` — the latency columns of the row.
fn gm_latency_quantiles(metrics: &MetricsSnapshot) -> (u64, u64, u64) {
    let mut merged = LogHistogram::new();
    for (key, hist) in &metrics.histograms {
        if key.subsystem == "gm" && key.name.ends_with("_ns") {
            merged.merge(hist);
        }
    }
    if merged.count() == 0 {
        (0, 0, 0)
    } else {
        (merged.p50(), merged.p99(), merged.p999())
    }
}

/// Sum the kernel counters that constitute "GM operations" on the sim
/// engine, where reads/writes are split by locality.
fn sim_gm_ops(metrics: &MetricsSnapshot) -> u64 {
    [
        "gm_local_reads",
        "gm_remote_reads",
        "gm_local_writes",
        "gm_remote_writes",
        "fetch_adds",
    ]
    .iter()
    .map(|name| metrics.counter_sum_over_pes("kernel", name))
    .sum()
}

/// Execute one run in-process and produce its row. Aborted live runs
/// yield a row with `status = abort`; spec-level failures yield
/// `status = error`. Timeouts are enforced by the parent process, not
/// here.
pub fn execute_run(spec: &RunSpec) -> RunRecord {
    let app = match AppKind::parse(&spec.app) {
        Ok(app) => app,
        Err(e) => return RunRecord::failed(spec, RunStatus::Error, e),
    };
    if spec.engine == "sim" {
        execute_sim(spec, app)
    } else {
        execute_live(spec, app)
    }
}

fn execute_sim(spec: &RunSpec, app: AppKind) -> RunRecord {
    let settings = SimSettings {
        platform: spec.platform.clone(),
        organization: spec.organization.clone(),
        protocol: spec.protocol.clone(),
        cache: spec.cache,
        gm_mode: spec.gm_mode.clone(),
        machines: spec.machines,
        tracing: false,
        telemetry_ms: None,
        seed: Some(spec.seed),
        gm_window: spec.gm_window,
    };
    let (platform, config) = match build::build_sim(&settings) {
        Ok(v) => v,
        Err(e) => return RunRecord::failed(spec, RunStatus::Error, e),
    };
    let program = DseProgram::new(platform).with_config(config);
    let p = &spec.params;
    let started = Instant::now();
    let run: RunResult = match app {
        AppKind::Gauss => {
            let params = gauss_seidel::GaussSeidelParams::paper(p.n);
            gauss_seidel::solve_parallel(&program, spec.procs, params).0
        }
        AppKind::GaussMp => {
            let params = gauss_seidel::GaussSeidelParams::paper(p.n);
            gauss_seidel_mp::solve_parallel_mp(&program, spec.procs, params).0
        }
        AppKind::Dct => {
            let mut params = dct::DctParams::paper(p.block);
            if p.size != 0 {
                params.size = p.size;
            }
            dct::compress_parallel(&program, spec.procs, params).0
        }
        AppKind::Othello => {
            let params = othello::OthelloParams::paper(p.depth);
            othello::search_parallel(&program, spec.procs, params).0
        }
        AppKind::Matmul => {
            let params = matmul::MatmulParams::single(p.n.min(256));
            matmul::multiply_parallel(&program, spec.procs, params).0
        }
        AppKind::Knights => {
            let params = knights::KnightsParams::paper(p.jobs);
            knights::count_parallel(&program, spec.procs, params).0
        }
    };
    let wall_ns = started.elapsed().as_nanos() as u64;
    let (p50_ns, p99_ns, p999_ns) = gm_latency_quantiles(&run.metrics);
    RunRecord {
        wall_ns,
        virtual_ns: run.report.end_time.as_nanos(),
        events: run
            .metrics
            .counter("sim", "events_processed", None)
            .unwrap_or(0),
        gm_ops: sim_gm_ops(&run.metrics),
        gm_request_msgs: run
            .metrics
            .counter_sum_over_pes("kernel", "gm_request_msgs"),
        retries: run.metrics.counter_sum_over_pes("kernel", "gm_retries"),
        p50_ns,
        p99_ns,
        p999_ns,
        status: RunStatus::Ok,
        note: String::new(),
        ..RunRecord::failed(spec, RunStatus::Ok, "")
    }
}

fn execute_live(spec: &RunSpec, app: AppKind) -> RunRecord {
    if !app.live_ok() {
        return RunRecord::failed(
            spec,
            RunStatus::Error,
            format!("app '{}' does not run on the live engine", spec.app),
        );
    }
    let mut cfg = match build::build_live(
        &spec.transport,
        Some(spec.fault_plan.as_str()),
        Some(spec.seed),
        spec.cache,
        &spec.gm_mode,
        &spec.scheduler,
    ) {
        Ok(cfg) => cfg,
        Err(e) => return RunRecord::failed(spec, RunStatus::Error, e),
    };
    // Always trace live cells: the row's blame columns decompose the
    // run's wall clock, so every sweep shows *where* a cell's time went.
    cfg.tracing = true;
    let p = spec.params;
    let runner = LiveRunner::new(spec.procs).config(cfg);
    let started = Instant::now();
    let outcome: Result<LiveRunResult, _> = match app {
        AppKind::Gauss => {
            let params = gauss_seidel::GaussSeidelParams::paper(p.n);
            runner.try_run(move |ctx: &mut LiveCtx| {
                gauss_seidel::body(ctx, &params);
            })
        }
        AppKind::Dct => {
            let mut params = dct::DctParams::paper(p.block);
            if p.size != 0 {
                params.size = p.size;
            }
            runner.try_run(move |ctx: &mut LiveCtx| {
                dct::body(ctx, &params);
            })
        }
        AppKind::Othello => {
            let params = othello::OthelloParams::paper(p.depth);
            runner.try_run(move |ctx: &mut LiveCtx| {
                othello::body(ctx, &params);
            })
        }
        AppKind::Matmul => {
            let params = matmul::MatmulParams::single(p.n.min(256));
            runner.try_run(move |ctx: &mut LiveCtx| {
                matmul::body(ctx, &params);
            })
        }
        AppKind::Knights => {
            let params = knights::KnightsParams::paper(p.jobs);
            runner.try_run(move |ctx: &mut LiveCtx| {
                knights::body(ctx, &params);
            })
        }
        AppKind::GaussMp => unreachable!("rejected above"),
    };
    let wall_ns = started.elapsed().as_nanos() as u64;
    match outcome {
        Ok(run) => {
            let (p50_ns, p99_ns, p999_ns) = gm_latency_quantiles(&run.metrics);
            let blame = dse_trace::blame(&dse_trace::assemble(&run.trace_spans)).total();
            RunRecord {
                wall_ns,
                events: 0,
                gm_ops: run.metrics.counter_sum_over_pes("kernel", "gm_ops"),
                gm_request_msgs: run
                    .metrics
                    .counter_sum_over_pes("kernel", "gm_request_msgs"),
                retries: run.metrics.counter_sum_over_pes("kernel", "gm_retries"),
                p50_ns,
                p99_ns,
                p999_ns,
                blame_compute_ns: blame.compute_ns,
                blame_serve_ns: blame.serve_ns,
                blame_net_ns: blame.net_ns,
                blame_retry_ns: blame.retry_ns,
                blame_barrier_ns: blame.barrier_ns,
                blame_lock_ns: blame.lock_ns,
                status: RunStatus::Ok,
                note: String::new(),
                ..RunRecord::failed(spec, RunStatus::Ok, "")
            }
        }
        Err(err) => {
            let mut rec = RunRecord::failed(
                spec,
                RunStatus::Abort,
                err.report().lines().next().unwrap_or("aborted").to_string(),
            );
            rec.wall_ns = wall_ns;
            rec
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{expand, parse_spec};

    fn tiny_sim_spec() -> RunSpec {
        let spec =
            parse_spec("[[scenario]]\nname = \"t\"\napp = \"matmul\"\nprocs = [2]\nn = 16\n")
                .unwrap();
        expand(&spec).remove(0)
    }

    #[test]
    fn sim_run_produces_a_complete_row() {
        let rs = tiny_sim_spec();
        let row = execute_run(&rs);
        assert_eq!(row.status, RunStatus::Ok, "{}", row.note);
        assert!(row.events > 0, "sim/events_processed must be counted");
        assert!(row.gm_ops > 0);
        assert!(row.virtual_ns > 0);
        assert!(row.wall_ns > 0);
        assert_eq!(row.cell, "t.matmul.sim.sunos.w0.c0.p2");
    }

    #[test]
    fn live_run_produces_gm_ops() {
        let spec = parse_spec(
            "[[scenario]]\nname = \"l\"\napp = \"matmul\"\nengine = \"live\"\nprocs = [2]\nn = 16\n",
        )
        .unwrap();
        let rs = expand(&spec).remove(0);
        let row = execute_run(&rs);
        assert_eq!(row.status, RunStatus::Ok, "{}", row.note);
        assert!(
            row.gm_ops > 0,
            "kernel/gm_ops must be counted on the live path"
        );
        assert_eq!(row.virtual_ns, 0);
        // Live cells always trace, so the blame decomposition is
        // populated and partitions the PEs' app-span wall time.
        let parts = row.blame_compute_ns
            + row.blame_serve_ns
            + row.blame_net_ns
            + row.blame_retry_ns
            + row.blame_barrier_ns
            + row.blame_lock_ns;
        assert!(parts > 0, "blame columns must be populated on live rows");
        assert!(row.blame_compute_ns > 0);
        assert!(row.p999_ns >= row.p99_ns);
    }

    #[test]
    fn live_tasks_scheduler_row_and_legacy_parse_default() {
        let spec = parse_spec(
            "[[scenario]]\nname = \"l\"\napp = \"matmul\"\nengine = \"live\"\nprocs = [2]\n\
             n = 16\nscheduler = \"tasks\"\n",
        )
        .unwrap();
        let rs = expand(&spec).remove(0);
        assert_eq!(rs.cell_id(), "l.matmul.live.channel.tasks.p2");
        let row = execute_run(&rs);
        assert_eq!(row.status, RunStatus::Ok, "{}", row.note);
        assert_eq!(row.scheduler, "tasks");
        assert!(row.gm_ops > 0);
        // Rows serialized before the scheduler axis existed parse with the
        // scheduler those rows actually ran under.
        let legacy = row.to_json_line().replace("\"scheduler\":\"tasks\",", "");
        let back = RunRecord::from_json_line(&legacy).unwrap();
        assert_eq!(back.scheduler, "threads");
    }

    #[test]
    fn rows_roundtrip_through_json() {
        let rs = tiny_sim_spec();
        let row = execute_run(&rs);
        let back = RunRecord::from_json_line(&row.to_json_line()).unwrap();
        assert_eq!(back, row);
        // Canonical form zeroes the wall clock but keeps everything else.
        let canon = RunRecord::from_json_line(&row.canonical_line()).unwrap();
        assert_eq!(canon.wall_ns, 0);
        assert_eq!(canon.events, row.events);
    }

    #[test]
    fn same_seed_sim_rows_are_byte_identical() {
        let rs = tiny_sim_spec();
        let a = execute_run(&rs).canonical_line();
        let b = execute_run(&rs).canonical_line();
        assert_eq!(a, b);
    }

    #[test]
    fn csv_line_has_header_arity() {
        let rs = tiny_sim_spec();
        let row = execute_run(&rs);
        assert_eq!(
            row.to_csv_line().split(',').count(),
            CSV_HEADER.split(',').count()
        );
    }
}
