//! Parallel run-matrix executor.
//!
//! Each run executes in a child process (the `dse-sweep run-one` hidden
//! mode re-invokes the current executable), which buys two things an
//! in-process thread pool cannot: a *hard* per-run timeout — the parent
//! kills the child at its deadline no matter where it is stuck — and
//! isolation, so one aborting or crashing run cannot take the whole
//! sweep down. Children are scheduled onto a bounded number of slots and
//! their single-line JSON rows are collected in matrix order.

use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::run::{RunRecord, RunStatus};
use crate::spec::RunSpec;

/// Default number of concurrent runs: one per host core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One child in flight.
struct Slot {
    run: usize,
    child: Child,
    deadline: Instant,
}

/// Execute every run of the matrix by re-invoking `exe` in `run-one`
/// mode against `spec_path`. `jobs` children run concurrently (0 means
/// one per core). `progress` fires once per completed run, in completion
/// order. Returns rows in matrix order.
pub fn run_matrix(
    exe: &Path,
    spec_path: &Path,
    runs: &[RunSpec],
    jobs: usize,
    mut progress: impl FnMut(&RunRecord),
) -> Vec<RunRecord> {
    let jobs = if jobs == 0 { default_jobs() } else { jobs }.max(1);
    let mut rows: Vec<Option<RunRecord>> = vec![None; runs.len()];
    let mut next = 0usize;
    let mut slots: Vec<Slot> = Vec::with_capacity(jobs);
    while next < runs.len() || !slots.is_empty() {
        // Fill free slots.
        while slots.len() < jobs && next < runs.len() {
            let spec = &runs[next];
            match spawn_one(exe, spec_path, spec) {
                Ok(child) => slots.push(Slot {
                    run: next,
                    child,
                    deadline: Instant::now() + Duration::from_millis(spec.timeout_ms),
                }),
                Err(e) => {
                    let rec = RunRecord::failed(spec, RunStatus::Error, e);
                    progress(&rec);
                    rows[next] = Some(rec);
                }
            }
            next += 1;
        }
        // Poll children.
        let mut i = 0;
        while i < slots.len() {
            let done = match slots[i].child.try_wait() {
                Ok(Some(_)) => true,
                Ok(None) => {
                    if Instant::now() >= slots[i].deadline {
                        let _ = slots[i].child.kill();
                        let _ = slots[i].child.wait();
                        let slot = slots.swap_remove(i);
                        let spec = &runs[slot.run];
                        let mut rec = RunRecord::failed(
                            spec,
                            RunStatus::Timeout,
                            format!("killed at the {}ms deadline", spec.timeout_ms),
                        );
                        rec.wall_ns = spec.timeout_ms * 1_000_000;
                        progress(&rec);
                        rows[slot.run] = Some(rec);
                        continue;
                    }
                    false
                }
                Err(e) => {
                    let slot = slots.swap_remove(i);
                    let rec = RunRecord::failed(
                        &runs[slot.run],
                        RunStatus::Error,
                        format!("wait failed: {e}"),
                    );
                    progress(&rec);
                    rows[slot.run] = Some(rec);
                    continue;
                }
            };
            if !done {
                i += 1;
                continue;
            }
            let slot = slots.swap_remove(i);
            let spec = &runs[slot.run];
            let rec = collect_child(spec, slot.child);
            progress(&rec);
            rows[slot.run] = Some(rec);
        }
        if !slots.is_empty() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    rows.into_iter()
        .map(|r| r.expect("every run recorded"))
        .collect()
}

fn spawn_one(exe: &Path, spec_path: &Path, spec: &RunSpec) -> Result<Child, String> {
    Command::new(exe)
        .arg("run-one")
        .arg("--spec")
        .arg(spec_path)
        .arg("--index")
        .arg(spec.idx.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", exe.display()))
}

/// Harvest an exited child: its last stdout line is the row.
fn collect_child(spec: &RunSpec, child: Child) -> RunRecord {
    let out = match child.wait_with_output() {
        Ok(out) => out,
        Err(e) => return RunRecord::failed(spec, RunStatus::Error, format!("wait failed: {e}")),
    };
    let stdout = String::from_utf8_lossy(&out.stdout);
    let row_line = stdout.lines().rev().find(|l| l.starts_with('{'));
    match row_line.map(RunRecord::from_json_line) {
        Some(Ok(mut rec)) => {
            // The child computed the row from its own view of the spec;
            // trust its metrics but pin identity to the parent's matrix.
            rec.idx = spec.idx;
            rec
        }
        Some(Err(e)) => RunRecord::failed(spec, RunStatus::Error, format!("bad row: {e}")),
        None => {
            let stderr = String::from_utf8_lossy(&out.stderr);
            let detail = stderr.lines().last().unwrap_or("no output").to_string();
            RunRecord::failed(
                spec,
                RunStatus::Error,
                format!("child exited {} without a row: {detail}", out.status),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
