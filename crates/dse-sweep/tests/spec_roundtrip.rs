//! Property tests for the scenario-spec layer: a normalized spec
//! survives `to_toml` → `parse_spec` exactly, expansion is deterministic
//! with dense indices and a predictable cardinality, and the cell id is
//! a function of every axis except the seed.

use proptest::collection::vec;
use proptest::prelude::*;

use dse_sweep::spec::Scenario;
use dse_sweep::{expand, parse_spec, AppParams, SweepSpec};

/// Non-empty subset of `items`, chosen by bitmask so the result is
/// duplicate-free and keeps the source order.
fn subset(items: &'static [&'static str]) -> impl Strategy<Value = Vec<String>> {
    let n = items.len();
    (1u64..(1 << n)).prop_map(move |mask| {
        (0..n)
            .filter(|i| mask >> i & 1 == 1)
            .map(|i| items[i].to_string())
            .collect()
    })
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let axes = (
        subset(&["gauss", "gauss-mp", "dct", "othello", "matmul", "knights"]),
        subset(&["sim", "live"]),
        (subset(&["channel", "tcp"]), subset(&["threads", "tasks"])),
        subset(&["sunos", "aix", "linux"]),
        vec(1usize..9, 1..3),
        vec(0usize..8, 1..3),
    );
    let variants = (
        (
            prop_oneof![Just(vec![false]), Just(vec![true]), Just(vec![false, true]),],
            subset(&["wi", "rc"]),
        ),
        prop_oneof![
            Just(vec![String::new()]),
            Just(vec![String::new(), "seed=7,drop=10".to_string()]),
        ],
        prop_oneof![Just(Vec::<u64>::new()), vec(1u64..100, 1..3)],
        1usize..8,
        prop_oneof![Just("linked".to_string()), Just("legacy".to_string())],
        prop_oneof![
            Just("tcp".to_string()),
            Just("udp".to_string()),
            Just("raw".to_string()),
        ],
    );
    let extras = (
        prop_oneof![Just(0u64), 1u64..5000],
        1usize..300,
        1usize..16,
        prop_oneof![Just(0usize), 16usize..64],
        1usize..6,
        1usize..20,
    );
    (any::<u64>(), axes, variants, extras).prop_map(|(tag, axes, variants, extras)| {
        let (mut apps, engines, (transports, schedulers), platforms, procs, gm_windows) = axes;
        let ((caches, gm_modes), fault_plans, seeds, machines, organization, protocol) = variants;
        let (timeout_ms, n, block, size, depth, jobs) = extras;
        // gauss-mp is sim-only; keep the generated spec valid.
        if engines.iter().any(|e| e == "live") {
            apps.retain(|a| a != "gauss-mp");
            if apps.is_empty() {
                apps.push("gauss".into());
            }
        }
        Scenario {
            name: format!("sc{}", tag % 1000),
            apps,
            engines,
            transports,
            schedulers,
            platforms,
            procs,
            gm_windows,
            caches,
            gm_modes,
            fault_plans,
            seeds,
            machines,
            organization,
            protocol,
            timeout_ms,
            params: AppParams {
                n,
                block,
                size,
                depth: depth as u32,
                jobs,
            },
        }
    })
}

fn sweep_spec() -> impl Strategy<Value = SweepSpec> {
    (
        any::<u64>(),
        1u64..120_000,
        vec(1u64..1000, 1..4),
        vec(scenario(), 1..4),
    )
        .prop_map(|(tag, timeout_ms, seeds, scenarios)| SweepSpec {
            name: format!("sweep{}", tag % 100),
            timeout_ms,
            seeds,
            scenarios,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn toml_roundtrip_is_exact(spec in sweep_spec()) {
        let toml = spec.to_toml();
        let back = parse_spec(&toml).map_err(TestCaseError::fail)?;
        prop_assert_eq!(&back, &spec, "spec did not survive round-trip:\n{}", toml);
        // Re-serialization is a fixpoint: normalized in, normalized out.
        prop_assert_eq!(back.to_toml(), toml);
    }

    #[test]
    fn expansion_is_deterministic_and_dense(spec in sweep_spec()) {
        let runs = expand(&spec);
        prop_assert_eq!(&runs, &expand(&spec));
        // The matrix survives a serialize/parse cycle untouched — this is
        // what lets a child process re-derive its RunSpec from (file, idx).
        let reparsed = parse_spec(&spec.to_toml()).map_err(TestCaseError::fail)?;
        prop_assert_eq!(&runs, &expand(&reparsed));
        for (i, r) in runs.iter().enumerate() {
            prop_assert_eq!(r.idx, i);
        }
        // Cardinality: per scenario, sim multiplies platform x window
        // while live multiplies transport x fault plan; both multiply the
        // cache/mode pairs (mode pinned to wi when the cache is off) and
        // then apps x procs x seeds.
        let mut want = 0usize;
        for sc in &spec.scenarios {
            let seeds = if sc.seeds.is_empty() { spec.seeds.len() } else { sc.seeds.len() };
            let cache_modes: usize = sc
                .caches
                .iter()
                .map(|&c| if c { sc.gm_modes.len() } else { 1 })
                .sum();
            for engine in &sc.engines {
                let variants = if engine == "sim" {
                    sc.platforms.len() * sc.gm_windows.len() * cache_modes
                } else {
                    sc.transports.len() * sc.schedulers.len() * sc.fault_plans.len() * cache_modes
                };
                want += sc.apps.len() * variants * sc.procs.len() * seeds;
            }
        }
        prop_assert_eq!(runs.len(), want);
    }

    #[test]
    fn cell_id_excludes_exactly_the_seed(spec in sweep_spec()) {
        let runs = expand(&spec);
        for r in &runs {
            let id = r.cell_id();
            let mut reseeded = r.clone();
            reseeded.seed ^= 1;
            prop_assert_eq!(&reseeded.cell_id(), &id);
            prop_assert!(id.ends_with(&format!(".p{}", r.procs)), "{}", id);
            prop_assert!(
                id.starts_with(&format!("{}.{}.{}.", r.scenario, r.app, r.engine)),
                "{}", id
            );
        }
    }
}
