//! End-to-end tests that drive the real `dse-sweep` binary: outputs,
//! cross-process determinism of the per-run rows, the regression gate's
//! exit codes, and the hard per-run timeout.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use dse_sweep::agg;
use dse_sweep::run::RunRecord;

const BIN: &str = env!("CARGO_BIN_EXE_dse-sweep");

const SPEC: &str = r#"
[sweep]
name = "e2e"
timeout_ms = 60000
seeds = [1, 2]

[[scenario]]
name = "m"
app = "matmul"
engine = "sim"
platform = "sunos"
procs = [2]
n = 12
"#;

/// Fresh scratch directory, unique per test so the suite can run with
/// any test-thread count.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dse-sweep-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sweep(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn dse-sweep")
}

fn write_spec(dir: &Path, body: &str) -> PathBuf {
    let path = dir.join("spec.toml");
    std::fs::write(&path, body).unwrap();
    path
}

fn read_rows(out_dir: &Path) -> Vec<RunRecord> {
    let jsonl = std::fs::read_to_string(out_dir.join("runs.jsonl")).unwrap();
    jsonl
        .lines()
        .map(|l| RunRecord::from_json_line(l).unwrap())
        .collect()
}

#[test]
fn end_to_end_outputs_and_cross_process_determinism() {
    let dir = scratch("outputs");
    let spec = write_spec(&dir, SPEC);
    let out_a = dir.join("a");
    let out_b = dir.join("b");

    for out in [&out_a, &out_b] {
        let res = sweep(&[
            "--spec",
            spec.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]);
        assert!(
            res.status.success(),
            "sweep failed: {}",
            String::from_utf8_lossy(&res.stderr)
        );
    }

    for name in ["runs.jsonl", "runs.csv", "summary.txt", "BENCH_sweep.json"] {
        assert!(out_a.join(name).exists(), "missing output {name}");
    }
    let csv = std::fs::read_to_string(out_a.join("runs.csv")).unwrap();
    assert_eq!(csv.lines().count(), 3, "header + one row per run");

    let rows_a = read_rows(&out_a);
    assert_eq!(rows_a.len(), 2);
    for row in &rows_a {
        assert_eq!(row.status.name(), "ok", "note: {}", row.note);
        assert_eq!(row.cell, "m.matmul.sim.sunos.w0.c0.p2");
        assert!(row.events > 0, "sim run recorded no events");
        assert!(row.gm_ops > 0, "sim run recorded no GM ops");
        assert!(row.virtual_ns > 0);
    }

    // Same spec + seed => byte-identical rows modulo wall-clock, even
    // across separate parent processes.
    let canon = |rows: &[RunRecord]| -> Vec<String> {
        rows.iter().map(RunRecord::canonical_line).collect()
    };
    assert_eq!(canon(&rows_a), canon(&read_rows(&out_b)));

    // The aggregate trajectory file parses and covers exactly one cell.
    let bench = std::fs::read_to_string(out_a.join("BENCH_sweep.json")).unwrap();
    let cells = agg::parse_bench_json(&bench).unwrap();
    assert_eq!(cells.len(), 1);
    assert_eq!(cells[0].cell, "m.matmul.sim.sunos.w0.c0.p2");
    assert_eq!(cells[0].runs, 2);
    assert_eq!(cells[0].ok, 2);
}

#[test]
fn gate_exit_codes_follow_the_baseline() {
    let dir = scratch("gate");
    let spec = write_spec(&dir, SPEC);
    let out = dir.join("out");
    let res = sweep(&[
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(res.status.success());

    let bench = std::fs::read_to_string(out.join("BENCH_sweep.json")).unwrap();
    let cells = agg::parse_bench_json(&bench).unwrap();

    // Baseline doctored 100x faster than reality: every cell regresses
    // far past any gate, so --gate must exit 1.
    let mut inflated = cells.clone();
    for c in &mut inflated {
        c.events_per_sec *= 100.0;
        c.gm_ops_per_sec *= 100.0;
    }
    let fast = dir.join("baseline_fast.json");
    std::fs::write(&fast, agg::to_bench_json("e2e", &inflated)).unwrap();
    let res = sweep(&[
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        dir.join("gate_fail").to_str().unwrap(),
        "--baseline",
        fast.to_str().unwrap(),
        "--gate",
        "15",
    ]);
    assert_eq!(
        res.status.code(),
        Some(1),
        "inflated baseline must trip the gate: {}",
        String::from_utf8_lossy(&res.stdout)
    );
    let report = String::from_utf8_lossy(&res.stdout);
    assert!(report.contains("gate: FAIL"), "{report}");

    // Baseline doctored 100x slower: no regression is possible, exit 0.
    let mut deflated = cells;
    for c in &mut deflated {
        c.events_per_sec /= 100.0;
        c.gm_ops_per_sec /= 100.0;
    }
    let slow = dir.join("baseline_slow.json");
    std::fs::write(&slow, agg::to_bench_json("e2e", &deflated)).unwrap();
    let res = sweep(&[
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        dir.join("gate_pass").to_str().unwrap(),
        "--baseline",
        slow.to_str().unwrap(),
        "--gate",
        "15",
    ]);
    assert_eq!(
        res.status.code(),
        Some(0),
        "slow baseline must pass the gate: {}",
        String::from_utf8_lossy(&res.stdout)
    );
    assert!(String::from_utf8_lossy(&res.stdout).contains("gate: PASS"));
}

#[test]
fn per_run_timeout_kills_the_child() {
    let dir = scratch("timeout");
    // 1 ms is shorter than child-process startup, so the run can only
    // ever end as a timeout — no flakiness on slow machines.
    let spec = write_spec(
        &dir,
        r#"
[sweep]
name = "slow"
timeout_ms = 1
seeds = [1]

[[scenario]]
name = "g"
app = "gauss"
engine = "sim"
procs = [4]
n = 400
"#,
    );
    let out = dir.join("out");
    let res = sweep(&[
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(
        res.status.success(),
        "timeouts are recorded, not fatal: {}",
        String::from_utf8_lossy(&res.stderr)
    );
    let rows = read_rows(&out);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].status.name(), "timeout");
    let bench = std::fs::read_to_string(out.join("BENCH_sweep.json")).unwrap();
    let cells = agg::parse_bench_json(&bench).unwrap();
    assert_eq!(cells[0].timeouts, 1);
    assert_eq!(cells[0].ok, 0);
}

#[test]
fn list_mode_prints_the_matrix_without_running() {
    let dir = scratch("list");
    let spec = write_spec(&dir, SPEC);
    let res = sweep(&["--spec", spec.to_str().unwrap(), "--list"]);
    assert!(res.status.success());
    let stdout = String::from_utf8_lossy(&res.stdout);
    assert!(stdout.contains("m.matmul.sim.sunos.w0.c0.p2"), "{stdout}");
    assert!(stdout.contains("2 runs"), "{stdout}");
}
