//! # dse-live — the real-thread DSE execution engine
//!
//! The counterpart of the simulated cluster: [`LiveRunner`] executes the
//! same [`dse_api::ParallelApi`] application bodies on real OS threads with
//! real synchronization and wall-clock timing. One application source, two
//! engines — the portability the paper's design argues for, demonstrated
//! mechanically by the cross-engine equivalence tests in `tests/`.

#![warn(missing_docs)]

mod engine;
mod error;

pub use dse_kernel::{GmMode, SchedulerKind};
pub use dse_transport::{FaultPlan, RetryPolicy};
pub use engine::{LiveCluster, LiveCtx, LiveRunConfig, LiveRunResult, LiveRunner, TransportKind};
pub use error::{FailureKind, FailureRole, PeFailure, RunError};
