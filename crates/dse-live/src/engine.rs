//! The live execution engine: the same Parallel API, driven by real wire
//! messages over a pluggable [`Transport`].
//!
//! Where the simulator answers "how long would this have taken on a 1999
//! cluster", the live engine *runs* the program — and it runs it the way
//! the paper's Fig. 3 describes. Each processor element hosts two threads:
//!
//! * an **application thread** executing the rank's body through
//!   [`LiveCtx`], whose global-memory accesses take the own-node fast path
//!   when the range is homed locally and otherwise become encoded
//!   `GmReadReq`/`GmWriteReq`/`GmBatchReq` request messages to the home
//!   PE's kernel;
//! * a **kernel thread** — the linked-library DSE kernel's message loop —
//!   the sole consumer of the PE's transport endpoint. It services incoming
//!   GM requests against the global store, forwards responses to its own
//!   application thread, and (on PE 0) runs the cluster coordinator:
//!   barriers, locks, exit collection, and the telemetry aggregator behind
//!   `--watch`.
//!
//! The transport is chosen per run ([`TransportKind`]): an in-process
//! channel mesh, a framed TCP-over-loopback mesh, or Unix domain sockets —
//! identical program results on all of them, which is the portability claim
//! made mechanical.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use dse_api::{GmHandle, ParallelApi};
use dse_kernel::cache::{blocks_inside, blocks_touching};
use dse_kernel::gmem::GlobalStore;
use dse_kernel::task::{is_app_bound, KernelEnv, KernelEvent, KernelTask, Outbound, Progress};
use dse_kernel::{CacheStore, Distribution, GmMode, SchedulerKind, CACHE_BLOCK};
use dse_msg::{GlobalPid, GmOp, Message, NodeId, RegionId, ReqId, ReqIdGen, TraceCtx};
use dse_obs::{
    ClusterAggregator, DeltaTracker, FlightEventKind, FlightRecorder, MetricKey, MetricsSnapshot,
    Registry, SpanKind, TelemetryDelta, TraceRecorder, TraceRole, TraceSpanKind, TraceSpanRec,
};
use dse_platform::Work;
use dse_transport::{
    BlockingQueue, ChannelTransport, FaultPlan, FaultyTransport, Pop, RetryPolicy, SocketTransport,
    Transport, TransportError,
};

use crate::error::{abort_code, FailureKind, FailureRole, PeFailure, RunError};

pub(crate) mod sched;

/// Which wire carries the live engine's messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process MPSC channel mesh (frames still encoded/decoded).
    Channel,
    /// Framed TCP over loopback, one connection per PE pair.
    Tcp,
    /// Framed Unix domain sockets (Unix only).
    Uds,
}

impl TransportKind {
    /// Stable lowercase name (matches the `--transport` CLI flag values).
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Channel => "channel",
            TransportKind::Tcp => "tcp",
            TransportKind::Uds => "uds",
        }
    }
}

/// Distinguishes concurrent UDS meshes within one process.
static UDS_RUN: AtomicU64 = AtomicU64::new(0);

/// Retry/deadline defaults for outstanding GM requests. Distinct from the
/// connection-establishment defaults in `dse-transport`: requests are
/// idempotent on the wire (the serving kernel dedups retransmits by
/// `(from, req)`), so retrying is always safe, but a wedged home PE should
/// fail the run in well under a second.
fn default_gm_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 5,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_millis(400),
    }
}

/// Everything configurable about a live run beyond `nprocs` and the body.
#[derive(Debug, Clone)]
pub struct LiveRunConfig {
    /// Which wire carries the run's messages.
    pub kind: TransportKind,
    /// Deterministic fault injection applied to every endpoint (`None`
    /// runs on a clean mesh).
    pub fault_plan: Option<FaultPlan>,
    /// Retry/deadline budget for outstanding GM requests.
    pub gm_retry: RetryPolicy,
    /// Flight-recorder ring size (0 disables post-mortem capture).
    pub flight_capacity: usize,
    /// Causal tracing: when set, every causal hop (GM request → serve →
    /// redemption, barrier and lock rounds) emits trace spans and trace
    /// context rides the wire frames; when clear, the wire format and the
    /// hot paths are exactly the untraced ones.
    pub tracing: bool,
    /// Read-replica GM caching: readers keep copies of remote blocks and
    /// the home kernels run the directory coherence protocol over the wire
    /// (`GmInvalidate`/`GmInvalidateAck`). Off by default — the uncached
    /// request/response semantics are the cross-engine baseline.
    pub gm_cache: bool,
    /// Coherence protocol for cached runs: write-invalidate (every write
    /// synchronously invalidates the sharers) or release consistency
    /// (writes defer; readers self-invalidate at acquire points). Ignored
    /// when `gm_cache` is off.
    pub gm_mode: GmMode,
    /// Which engine drives the per-PE kernels: one OS thread per PE
    /// (`Threads`, the reference implementation) or a small worker pool
    /// multiplexing every PE's kernel task (`Tasks`, for many-PE runs).
    pub scheduler: SchedulerKind,
    /// Bound on a kernel's idle wait between events. `None` picks the
    /// scheduler default: 50 ms under `Threads`, 5 ms under `Tasks`
    /// (thousands of idle PEs sharing a few workers would otherwise stack
    /// their waits into seconds of shutdown latency).
    pub kernel_tick: Option<Duration>,
}

impl Default for LiveRunConfig {
    fn default() -> LiveRunConfig {
        LiveRunConfig {
            kind: TransportKind::Channel,
            fault_plan: None,
            gm_retry: default_gm_retry(),
            flight_capacity: 256,
            tracing: false,
            gm_cache: false,
            gm_mode: GmMode::WriteInvalidate,
            scheduler: SchedulerKind::Threads,
            kernel_tick: None,
        }
    }
}

impl LiveRunConfig {
    /// Default configuration on an explicit transport.
    pub fn on(kind: TransportKind) -> LiveRunConfig {
        LiveRunConfig {
            kind,
            ..LiveRunConfig::default()
        }
    }
}

/// Removes the UDS socket directory when the run unwinds — normally or
/// otherwise — so aborted runs do not leak socket files into the temp dir.
struct SocketDirGuard(PathBuf);

impl Drop for SocketDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

type BuiltMesh = (Vec<Arc<dyn Transport>>, Option<SocketDirGuard>);

fn build_transports(
    kind: TransportKind,
    nprocs: usize,
    plan: Option<&FaultPlan>,
) -> Result<BuiltMesh, TransportError> {
    let n = nprocs as u32;
    let (raw, guard): BuiltMesh = match kind {
        TransportKind::Channel => (
            ChannelTransport::cluster(n)
                .into_iter()
                .map(|t| Arc::new(t) as Arc<dyn Transport>)
                .collect(),
            None,
        ),
        TransportKind::Tcp => (
            SocketTransport::tcp_cluster(n)?
                .into_iter()
                .map(|t| Arc::new(t) as Arc<dyn Transport>)
                .collect(),
            None,
        ),
        TransportKind::Uds => {
            let dir = std::env::temp_dir().join(format!(
                "dse-live-{}-{}",
                std::process::id(),
                UDS_RUN.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).map_err(|e| TransportError::Io(e.to_string()))?;
            // Armed before the mesh build: a half-constructed mesh must
            // not leak the directory either.
            let guard = SocketDirGuard(dir.clone());
            let cluster = SocketTransport::uds_cluster(n, &dir)?;
            (
                cluster
                    .into_iter()
                    .map(|t| Arc::new(t) as Arc<dyn Transport>)
                    .collect(),
                Some(guard),
            )
        }
    };
    let endpoints = match plan {
        Some(p) => raw
            .into_iter()
            .map(|t| Arc::new(FaultyTransport::new(t, p.clone())) as Arc<dyn Transport>)
            .collect(),
        None => raw,
    };
    Ok((endpoints, guard))
}

/// Shared state of a live run: the home-partitioned global store and the
/// wall-clock metrics registry. Partition ownership is enforced by routing
/// — a rank only touches bytes homed elsewhere through request messages to
/// the home PE's kernel thread, never directly.
pub struct LiveCluster {
    nprocs: usize,
    store: GlobalStore,
    allocs: Mutex<Vec<(RegionId, usize)>>,
    /// Wall-clock observability: the same registry the simulator uses,
    /// fed with `Instant`-measured nanoseconds instead of virtual time.
    metrics: Registry,
    /// Post-mortem ring of recent wire sends and stalls.
    flight: FlightRecorder,
    /// First-hand failure observations, in discovery order.
    failures: Mutex<Vec<PeFailure>>,
    /// Cluster-wide abort latch: once set, kernel loops drain out and app
    /// threads unwind at their next blocking point.
    abort: AtomicBool,
    /// Retry/deadline budget for the app side's outstanding GM requests.
    retry: RetryPolicy,
    /// Engine clock origin for flight-recorder timestamps.
    t0: Instant,
    /// Whether causal tracing is on for this run.
    tracing: bool,
    /// Per-thread causal span streams, flushed here at thread end (also on
    /// abort, so the post-mortem trace is complete). Entries are
    /// `(pe, role, spans)` with role 0 = app thread, 1 = kernel thread.
    trace_sink: Mutex<Vec<(u32, u8, Vec<TraceSpanRec>)>>,
    /// Replica cache + sharing directory (`Some` only for cached runs).
    /// The per-node block maps and the directory live in one shared
    /// structure because the cluster is one address space, but every
    /// *protocol* action on them travels the wire.
    cache: Option<CacheStore>,
    /// Coherence protocol for cached runs.
    gm_mode: GmMode,
    /// Per-PE install guards: the epoch counts invalidations applied
    /// against that PE's replicas. A read snapshot the epoch at dispatch
    /// and installs its blocks on completion only if the epoch is
    /// unchanged, so an invalidation racing a fetch can never be undone by
    /// a late install.
    install_guards: Vec<Mutex<u64>>,
    /// Which engine drives the per-PE kernels.
    scheduler: SchedulerKind,
    /// Effective bound on a kernel's idle wait for this run.
    kernel_tick: Duration,
    /// Per-PE application-thread inboxes. The co-resident kernel is the
    /// usual producer; on lossless in-process transports remote kernels
    /// push app-bound responses here directly, skipping the relay hop
    /// through the destination's kernel.
    app_inboxes: Vec<AppInbox>,
}

/// One PE's app-thread inbox: responses and coordination wakeups.
type AppInbox = Arc<BlockingQueue<(Message, Option<TraceCtx>)>>;

impl LiveCluster {
    /// Shared state for `nprocs` processing elements.
    pub fn new(nprocs: usize) -> LiveCluster {
        LiveCluster::with_config(nprocs, &LiveRunConfig::default())
    }

    fn with_config(nprocs: usize, cfg: &LiveRunConfig) -> LiveCluster {
        LiveCluster {
            nprocs,
            store: GlobalStore::new(nprocs),
            allocs: Mutex::new(Vec::new()),
            metrics: Registry::new(),
            flight: FlightRecorder::with_capacity(cfg.flight_capacity),
            failures: Mutex::new(Vec::new()),
            abort: AtomicBool::new(false),
            retry: cfg.gm_retry,
            t0: Instant::now(),
            tracing: cfg.tracing,
            trace_sink: Mutex::new(Vec::new()),
            cache: cfg.gm_cache.then(|| CacheStore::new(nprocs)),
            gm_mode: cfg.gm_mode,
            install_guards: (0..nprocs).map(|_| Mutex::new(0)).collect(),
            scheduler: cfg.scheduler,
            kernel_tick: cfg.kernel_tick.unwrap_or(match cfg.scheduler {
                SchedulerKind::Threads => THREADS_TICK,
                SchedulerKind::Tasks => TASKS_TICK,
            }),
            app_inboxes: (0..nprocs)
                .map(|_| Arc::new(BlockingQueue::default()))
                .collect(),
        }
    }

    /// Deliver a message to `pe`'s application thread. Best-effort: a
    /// closed inbox (its kernel already tore down) drops the message, the
    /// same way a dead relay kernel would have.
    fn app_push(&self, pe: u32, msg: Message, ctx: Option<TraceCtx>) {
        let _ = self.app_inboxes[pe as usize].push((msg, ctx));
    }

    /// Park one thread's causal spans in the cluster sink.
    fn flush_trace(&self, pe: u32, role: u8, spans: Vec<TraceSpanRec>) {
        if !spans.is_empty() {
            self.trace_sink.lock().push((pe, role, spans));
        }
    }

    /// The backing global store (for post-run inspection).
    pub fn store(&self) -> &GlobalStore {
        &self.store
    }

    /// The live metrics registry (wall-clock latencies, per-rank counters).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The flight recorder ring (post-run / post-mortem inspection).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    fn aborting(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// Record a kernel thread's first-hand failure and latch the abort.
    /// Kernels always record: on a mesh-wide event (a TCP peer dying)
    /// every surviving kernel's observation belongs in the report.
    fn note_kernel_failure(&self, pe: u32, kind: FailureKind) {
        self.abort.store(true, Ordering::Release);
        self.failures.lock().push(PeFailure {
            pe,
            role: FailureRole::Kernel,
            kind,
        });
    }

    /// Record an app thread's failure only if it is the *first*
    /// observation: once the cluster is already aborting, an app dying at
    /// its next blocking point is a casualty of the abort, not a cause.
    fn note_app_failure(&self, pe: u32, kind: FailureKind) {
        if !self.abort.swap(true, Ordering::AcqRel) {
            self.failures.lock().push(PeFailure {
                pe,
                role: FailureRole::App,
                kind,
            });
        }
    }
}

/// Matches [`dse_api::AUTO_BARRIER_BASE`]: auto-sequenced barrier ids live
/// above this bound on both engines.
const AUTO_BARRIER_BASE: u32 = 0x4000_0000;

// ---------------------------------------------------------------------------
// Kernel thread: the per-PE message loop.
//
// The protocol logic itself — GM service, directory coherence, barriers,
// locks, exit collection, telemetry emission, causal spans — lives in
// `dse_kernel::task::KernelTask`, a sans-IO state machine consuming one
// event per `poll`. The live engine supplies the IO around it, twice: the
// blocking per-PE driver below (`SchedulerKind::Threads`, the reference
// implementation) and the worker-pool multiplexer in `crate::sched`
// (`SchedulerKind::Tasks`). Both drivers feed the same state machine, so
// their runs are bit-identical by construction.
// ---------------------------------------------------------------------------

type WatchSpec<'h> = (Duration, dse_kernel::task::WatchHook<'h>);

/// Default bound on a kernel's idle wait under the threaded scheduler:
/// even an unwatched, idle kernel wakes this often to notice the cluster
/// abort latch (or a silently dead peer) instead of blocking forever.
pub(crate) const THREADS_TICK: Duration = Duration::from_millis(50);

/// Default tick under the task scheduler: thousands of idle PEs sharing a
/// few workers would otherwise stack their 50 ms waits into seconds of
/// shutdown latency.
pub(crate) const TASKS_TICK: Duration = Duration::from_millis(5);

impl LiveCluster {
    /// The shared-state view one PE's kernel task serves against.
    fn kernel_env<'a>(&'a self, pe: u32, start: Instant) -> KernelEnv<'a> {
        KernelEnv {
            pe,
            nprocs: self.nprocs,
            store: &self.store,
            metrics: &self.metrics,
            flight: &self.flight,
            cache: self.cache.as_ref(),
            gm_mode: self.gm_mode,
            install_guard: &self.install_guards[pe as usize],
            engine_t0: self.t0,
            run_start: start,
        }
    }
}

thread_local! {
    /// Reused per-driver-thread accumulator for [`flush_outbox`]'s
    /// per-destination wire batches — warm capacity, no per-flush
    /// allocation.
    static WIRE_BATCH: std::cell::RefCell<Vec<(Message, Option<TraceCtx>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Ship an accumulated run of same-destination wire messages: a single
/// send for a run of one, a coalesced [`Transport::send_batch`] otherwise
/// (one socket write per destination per tick instead of one per message).
fn ship_wire_batch(
    transport: &dyn Transport,
    to: u32,
    batch: &mut Vec<(Message, Option<TraceCtx>)>,
) -> Result<(), FailureKind> {
    let res = if batch.len() == 1 {
        let (msg, ctx) = &batch[0];
        match ctx {
            Some(c) => transport.send_ctx(to, msg, *c),
            None => transport.send(to, msg),
        }
    } else {
        transport.send_batch(to, batch)
    };
    batch.clear();
    res.map_err(FailureKind::Transport)
}

/// Drain a task's outbox onto the wire / the app inboxes. A failed
/// [`Outbound::Wire`] send stops the drain (discarding the rest, matching
/// the blocking loop's abort-on-first-error semantics) and fails the
/// kernel; best-effort items never fail.
///
/// Consecutive [`Outbound::Wire`] items for the same destination are
/// grouped into one [`Transport::send_batch`] call, preserving order —
/// a batch is flushed before any send to a different destination or any
/// non-wire item, so the observable delivery order is unchanged.
///
/// On the lossless in-process channel transport, app-bound wire messages
/// (read responses, write acks, barrier releases, lock grants) are pushed
/// straight into the destination's app inbox instead: the receiving
/// kernel would only have decoded and forwarded them, so the direct push
/// saves that relay wakeup. The requester-side install-epoch guard
/// already covers the one ordering this drops (a response racing an
/// invalidation to the same PE), and faulty/socket transports keep the
/// full wire path so loss, delay, and retransmission behavior are
/// untouched.
pub(crate) fn flush_outbox(
    task: &mut KernelTask<'_>,
    transport: &dyn Transport,
    cluster: &LiveCluster,
    pe: u32,
) -> Result<(), FailureKind> {
    let direct = transport.kind() == "channel";
    WIRE_BATCH.with(|cell| {
        let batch = &mut *cell.borrow_mut();
        batch.clear();
        let mut batch_to: Option<u32> = None;
        for out in task.drain_outbox() {
            match out {
                Outbound::Wire { to, msg, ctx } if direct && is_app_bound(&msg) => {
                    if let Some(prev) = batch_to.take() {
                        ship_wire_batch(transport, prev, batch)?;
                    }
                    cluster
                        .metrics
                        .incr(MetricKey::pe("kernel", "app_direct_msgs", pe));
                    cluster.app_push(to, msg, ctx);
                }
                Outbound::Wire { to, msg, ctx } => {
                    if batch_to != Some(to) {
                        if let Some(prev) = batch_to.take() {
                            ship_wire_batch(transport, prev, batch)?;
                        }
                        batch_to = Some(to);
                    }
                    batch.push((msg, ctx));
                }
                Outbound::WireBestEffort { to, msg } => {
                    if let Some(prev) = batch_to.take() {
                        ship_wire_batch(transport, prev, batch)?;
                    }
                    let _ = transport.send(to, &msg);
                }
                Outbound::App { msg, ctx } => {
                    if let Some(prev) = batch_to.take() {
                        ship_wire_batch(transport, prev, batch)?;
                    }
                    cluster.app_push(pe, msg, ctx);
                }
            }
        }
        if let Some(to) = batch_to {
            ship_wire_batch(transport, to, batch)?;
        }
        Ok(())
    })
}

/// Shared teardown of one PE's kernel, whichever driver ran it: flush the
/// causal spans, convert a first-hand failure into an `Abort` relay
/// (non-zero PEs report to PE 0, PE 0 broadcasts), wake the co-resident
/// app thread, and release the transport endpoint.
pub(crate) fn finish_kernel(
    pe: u32,
    cluster: &LiveCluster,
    transport: &dyn Transport,
    task: KernelTask<'_>,
    exit: Result<Option<Message>, FailureKind>,
) -> (DeltaTracker, Option<ClusterAggregator>) {
    let (tracker, agg, spans) = task.finish();
    // Flush this kernel's causal spans whatever the exit path — an aborted
    // run's post-mortem trace is where they matter most.
    cluster.flush_trace(pe, 1, spans);
    let relay = match exit {
        Ok(None) => None,
        Ok(Some(frame)) => Some(frame),
        Err(kind) => {
            let code = match &kind {
                FailureKind::Transport(_) => abort_code::TRANSPORT,
                _ => abort_code::GENERIC,
            };
            let frame = Message::Abort {
                source: pe,
                code,
                detail: kind.to_string().into_bytes(),
            };
            cluster.note_kernel_failure(pe, kind);
            // Best-effort wire propagation: non-zero PEs report to the
            // coordinator, which re-broadcasts below. The shared abort
            // latch is the in-process backstop when our endpoint is dead.
            if pe != 0 {
                let _ = transport.send(0, &frame);
            }
            Some(frame)
        }
    };
    if let Some(frame) = relay {
        if pe == 0 {
            for q in 1..cluster.nprocs as u32 {
                let _ = transport.send(q, &frame);
            }
        }
        // Wake our own app thread so it unwinds at its next receive.
        cluster.app_push(pe, frame, None);
    }
    transport.shutdown();
    // Closing the inbox is what "kernel gone" looks like to the app now
    // that the channel is a shared queue: already-queued messages (the
    // abort frame above included) drain first, then receives report
    // closure.
    cluster.app_inboxes[pe as usize].close();
    (tracker, agg)
}

/// One PE's kernel under the threaded scheduler: a dedicated OS thread
/// blocking on the transport and feeding the events to a [`KernelTask`].
///
/// The task serves GM requests against the store (responses go back on the
/// wire), forwards app-bound messages to the co-resident application
/// thread, and on PE 0 additionally coordinates barriers, locks, exit
/// collection and telemetry aggregation. Returns this PE's delta tracker
/// (for the final absolute telemetry round) and, on a watched PE 0, the
/// aggregator. Every blocking receive is bounded by the kernel tick so a
/// silently dead peer or the cluster abort latch is noticed promptly.
fn live_kernel(
    pe: u32,
    cluster: &LiveCluster,
    transport: &Arc<dyn Transport>,
    watch: Option<WatchSpec<'_>>,
    start: Instant,
) -> (DeltaTracker, Option<ClusterAggregator>) {
    let mut task = KernelTask::new(
        cluster.kernel_env(pe, start),
        watch,
        cluster.kernel_tick,
        cluster.tracing,
    );
    let exit = loop {
        if cluster.aborting() {
            match task.poll(KernelEvent::AbortLatch) {
                Progress::Aborted(frame) => break Ok(Some(frame)),
                _ => unreachable!("abort latch poll is terminal"),
            }
        }
        let event = match transport.recv(Some(task.timeout())) {
            Ok(Some(env)) => KernelEvent::Message {
                from: env.from,
                msg: env.msg,
                ctx: env.ctx,
            },
            Ok(None) => KernelEvent::Tick,
            Err(e) => break Err(FailureKind::Transport(e)),
        };
        let prog = task.poll(event);
        if let Err(e) = flush_outbox(&mut task, transport.as_ref(), cluster, pe) {
            break Err(e);
        }
        match prog {
            Progress::Pending => {}
            Progress::Clean => break Ok(None),
            Progress::Aborted(frame) => break Ok(Some(frame)),
        }
    };
    finish_kernel(pe, cluster, transport.as_ref(), task, exit)
}

// ---------------------------------------------------------------------------
// Application thread: LiveCtx, the ParallelApi over the wire.
// ---------------------------------------------------------------------------

/// Where a completed read segment's bytes land.
#[derive(Clone, Copy)]
struct ReadDest {
    handle: u64,
    buf_off: usize,
    abs_off: u64,
    len: usize,
}

/// Bookkeeping for one read request on the wire (plain or batched).
struct ReadCtl {
    offset: u64,
    len: usize,
    dests: Vec<ReadDest>,
    /// Region the segment reads (for replica installs on cached runs).
    region: RegionId,
    /// Fully-contained blocks to install on completion (empty when the
    /// replica cache is off).
    install: std::ops::Range<u64>,
    /// Install-epoch snapshot taken at dispatch: a mismatch at completion
    /// means an invalidation raced the fetch, so the install is skipped.
    epoch: u64,
}

/// Bookkeeping for one write request on the wire: the handles it completes.
struct WriteCtl {
    writers: Vec<u64>,
}

/// One staged (not yet sent) split-phase segment.
struct StagedSeg {
    home: u32,
    region: RegionId,
    offset: u64,
    kind: SegKind,
}

enum SegKind {
    Read { len: usize, dests: Vec<ReadDest> },
    Write { data: Vec<u8>, writers: Vec<u64> },
}

/// Unwind payload of an app thread stopped by the cluster abort: carried
/// via `resume_unwind` (so the panic hook stays silent) and swallowed by
/// the harness when joining, unlike a genuine application panic.
struct AbortUnwind;

/// Retransmission bookkeeping for one outstanding GM request.
struct RetryState {
    /// Home PE the request is addressed to.
    home: u32,
    /// The encoded-identical request, kept for retransmission.
    msg: Message,
    /// Send attempts so far (initial send counts as the first).
    attempts: u32,
    /// Current backoff step (doubles per retry, capped by the policy).
    backoff: Duration,
    /// When the next retransmit is due.
    next_retry: Instant,
    /// When the original send happened (for the deadline report).
    sent_at: Instant,
    /// Trace context of the original send; retransmits carry the same one
    /// so the home kernel's dedup replay stays in the same causal chain.
    ctx: Option<TraceCtx>,
}

/// Requester-side trace bookkeeping for one outstanding GM request: the
/// root `gm_req` span opened at dispatch and closed at completion.
struct ReqSpan {
    /// The root span id (the wire ctx's `parent`).
    span: u64,
    /// Dispatch time on the engine clock.
    start_ns: u64,
    /// Home PE the request went to.
    home: u32,
    /// Retransmits sent so far.
    retries: u32,
}

/// The span kind a retransmitted request would have opened (for the
/// flight-recorder stall event on a deadline trip).
fn span_kind_of(msg: &Message) -> SpanKind {
    match msg {
        Message::GmWriteReq { .. } => SpanKind::GmWrite,
        Message::GmFetchAddReq { .. } => SpanKind::GmFetchAdd,
        Message::GmBatchReq { .. } => SpanKind::GmBatch,
        _ => SpanKind::GmRead,
    }
}

/// An issued request awaiting its response, keyed by correlation id.
enum InflightReq {
    Read(ReadCtl),
    Write(WriteCtl),
    Batch(Vec<InflightOp>),
}

enum InflightOp {
    Read(ReadCtl),
    Write(WriteCtl),
}

/// A split-phase handle's outstanding work.
struct HandleState {
    /// Segments (staged or in flight) still owed to this handle.
    remaining: usize,
    /// Read destination buffer (`None` for writes).
    buf: Option<Vec<u8>>,
    /// Issue time, for the completion latency histogram.
    started: Instant,
    is_read: bool,
    /// Whether any segment left the node (decides the latency histogram:
    /// `remote_*_ns` vs `local_*_ns`, matching the simulator's names).
    remote: bool,
}

/// Per-process context of the live engine: implements [`ParallelApi`] by
/// splitting each access across home nodes — own-node ranges go straight to
/// the store (the linked-library fast path), remote ranges become staged
/// request messages that coalesce per home and travel as real wire traffic.
pub struct LiveCtx {
    rank: u32,
    pid: GlobalPid,
    cluster: Arc<LiveCluster>,
    transport: Arc<dyn Transport>,
    app_rx: AppInbox,
    reqs: ReqIdGen,
    barrier_seq: u32,
    alloc_seq: usize,
    /// Messages (with their wire trace context) that arrived while
    /// awaiting something else.
    stash: VecDeque<(Message, Option<TraceCtx>)>,
    /// Split-phase machinery (mirrors the simulator's `DseCtx`).
    next_handle: u64,
    handles: HashMap<u64, HandleState>,
    completed: HashMap<u64, Option<Vec<u8>>>,
    staged: Vec<StagedSeg>,
    inflight: HashMap<u64, InflightReq>,
    /// Retransmission state for outstanding requests, keyed like
    /// `inflight`; entries are dropped when the response arrives.
    retry: HashMap<u64, RetryState>,
    /// Reusable scratch for element-wise `GmArray` accessors.
    scratch: Vec<u8>,
    /// Causal span recorder for this app thread.
    rec: TraceRecorder,
    /// This PE's trace id (= the app root span's id).
    trace: u64,
    /// The app root span every top-level span parents to.
    app_span: u64,
    /// When the app thread started, engine clock.
    app_start_ns: u64,
    /// Open `gm_req` root spans keyed by request id.
    req_spans: HashMap<u64, ReqSpan>,
}

impl LiveCtx {
    fn new(rank: u32, cluster: Arc<LiveCluster>, transport: Arc<dyn Transport>) -> LiveCtx {
        let app_rx = Arc::clone(&cluster.app_inboxes[rank as usize]);
        let mut rec = if cluster.tracing {
            TraceRecorder::new(rank, TraceRole::App)
        } else {
            TraceRecorder::disabled(rank, TraceRole::App)
        };
        // The app root span doubles as this PE's trace id: every causal
        // chain the PE originates shares it.
        let app_span = rec.next_id();
        let app_start_ns = cluster.now_ns();
        LiveCtx {
            rank,
            pid: GlobalPid::new(NodeId(rank as u16), 1),
            cluster,
            transport,
            app_rx,
            reqs: ReqIdGen::new(),
            barrier_seq: 0,
            alloc_seq: 0,
            stash: VecDeque::new(),
            next_handle: 0,
            handles: HashMap::new(),
            completed: HashMap::new(),
            staged: Vec::new(),
            inflight: HashMap::new(),
            retry: HashMap::new(),
            scratch: Vec::new(),
            rec,
            trace: app_span,
            app_span,
            app_start_ns,
            req_spans: HashMap::new(),
        }
    }

    /// True when this run records causal spans.
    fn tracing(&self) -> bool {
        self.cluster.tracing
    }

    /// Close the app root span (called once, when the body is done or the
    /// thread is unwinding) so the blame table has the PE's wall clock.
    fn close_app_span(&mut self) {
        if self.tracing() {
            let span = TraceSpanRec::new(
                TraceSpanKind::App,
                self.trace,
                self.app_span,
                0,
                self.rank,
                self.app_start_ns,
                self.cluster.now_ns(),
            );
            self.rec.push(span);
        }
    }

    fn metrics(&self) -> &Registry {
        &self.cluster.metrics
    }

    /// Record a first-hand app failure (if it is the first observation),
    /// latch the cluster abort, and unwind this app thread without
    /// tripping the panic hook.
    fn die(&self, kind: FailureKind) -> ! {
        self.cluster.note_app_failure(self.rank, kind);
        resume_unwind(Box::new(AbortUnwind))
    }

    fn send(&self, to: u32, msg: &Message) {
        self.send_traced(to, msg, None);
    }

    fn send_traced(&self, to: u32, msg: &Message, ctx: Option<TraceCtx>) {
        self.cluster.flight.record(
            self.cluster.now_ns(),
            self.rank,
            FlightEventKind::Bus {
                label: msg.label(),
                to_pe: to,
                bytes: msg.wire_len() as u64,
            },
        );
        let sent = match ctx {
            Some(c) => self.transport.send_ctx(to, msg, c),
            None => self.transport.send(to, msg),
        };
        if let Err(e) = sent {
            self.die(FailureKind::Transport(e));
        }
    }

    /// Receive the next message from our app inbox (fed by the local
    /// kernel and, on direct-delivery transports, by remote kernels).
    ///
    /// A `None` timeout blocks until a message arrives — safe only where
    /// an eventual wakeup is guaranteed (the kernel pushes the `Abort`
    /// frame and then closes the inbox when the run dies). A `Some`
    /// timeout returns `None` on expiry so the caller can service
    /// retransmission deadlines.
    fn recv_app(&mut self, timeout: Option<Duration>) -> Option<(Message, Option<TraceCtx>)> {
        let got = match self.app_rx.pop(timeout) {
            Pop::Item(m) => m,
            Pop::TimedOut => return None,
            Pop::Closed => self.die(FailureKind::KernelGone),
        };
        if matches!(got.0, Message::Abort { .. }) {
            // The run is aborting; this thread is a casualty, not a
            // cause — unwind without recording a failure.
            resume_unwind(Box::new(AbortUnwind));
        }
        Some(got)
    }

    /// How long a completion wait may block before retransmission
    /// deadlines need servicing.
    fn retry_tick(&self) -> Duration {
        let now = Instant::now();
        self.retry
            .values()
            .map(|s| s.next_retry.saturating_duration_since(now))
            .min()
            .unwrap_or(Duration::from_millis(100))
            .clamp(Duration::from_millis(1), Duration::from_millis(100))
    }

    /// Retransmit overdue GM requests; trip the deadline once one has
    /// exhausted its attempt budget. Called whenever a completion wait
    /// times out.
    fn service_retries(&mut self) {
        if self.retry.is_empty() {
            return;
        }
        let now = Instant::now();
        let due: Vec<u64> = self
            .retry
            .iter()
            .filter(|(_, s)| s.next_retry <= now)
            .map(|(k, _)| *k)
            .collect();
        for key in due {
            let policy = self.cluster.retry;
            let (home, attempts, kind, waited_ns, elapsed_backoff, ctx, msg) = {
                let st = self.retry.get_mut(&key).unwrap();
                let waited_ns = st.sent_at.elapsed().as_nanos() as u64;
                if st.attempts >= policy.max_attempts {
                    (
                        st.home,
                        st.attempts,
                        span_kind_of(&st.msg),
                        waited_ns,
                        st.backoff,
                        st.ctx,
                        None,
                    )
                } else {
                    let elapsed_backoff = st.backoff;
                    st.attempts += 1;
                    st.backoff = (st.backoff * 2).min(policy.max_delay);
                    st.next_retry = now + st.backoff;
                    (
                        st.home,
                        st.attempts,
                        span_kind_of(&st.msg),
                        waited_ns,
                        elapsed_backoff,
                        st.ctx,
                        Some(st.msg.clone()),
                    )
                }
            };
            match msg {
                Some(msg) => {
                    // A retransmit, not a new request: `gm_request_msgs`
                    // stays put (wire accounting keeps its exact counts);
                    // the retry shows up under its own metric. The same
                    // trace context rides again so the home's dedup replay
                    // stays in the original causal chain.
                    self.metrics()
                        .incr(MetricKey::pe("kernel", "gm_retries", self.rank));
                    if let Some(rs) = self.req_spans.get_mut(&key) {
                        rs.retries += 1;
                        // The backoff that just elapsed is attributable
                        // dead time inside the request's wall clock.
                        let end = self.cluster.now_ns();
                        let mut span = TraceSpanRec::new(
                            TraceSpanKind::RetryBackoff,
                            self.trace,
                            self.rec.next_id(),
                            rs.span,
                            self.rank,
                            end.saturating_sub(elapsed_backoff.as_nanos() as u64),
                            end,
                        );
                        span.peer = home;
                        span.seq = key;
                        self.rec.push(span);
                    }
                    self.send_traced(home, &msg, ctx);
                }
                None => {
                    self.metrics()
                        .incr(MetricKey::pe("kernel", "gm_deadline_trips", self.rank));
                    let (trace, span) = self
                        .req_spans
                        .get(&key)
                        .map(|rs| (self.trace, rs.span))
                        .unwrap_or((0, 0));
                    self.cluster.flight.record_traced(
                        self.cluster.now_ns(),
                        self.rank,
                        trace,
                        span,
                        FlightEventKind::Stall {
                            kind,
                            seq: key,
                            waited_ns,
                        },
                    );
                    self.die(FailureKind::GmDeadline {
                        req: key,
                        home,
                        attempts,
                    });
                }
            }
        }
    }

    /// Arm retransmission for a just-sent request.
    fn arm_retry(&mut self, req: ReqId, home: u32, msg: Message, ctx: Option<TraceCtx>) {
        let policy = self.cluster.retry;
        let now = Instant::now();
        self.retry.insert(
            req.0,
            RetryState {
                home,
                msg,
                attempts: 1,
                backoff: policy.base_delay,
                next_retry: now + policy.base_delay,
                sent_at: now,
                ctx,
            },
        );
    }

    /// Open the root `gm_req` span for a request about to go to `home`,
    /// returning the wire trace context to send with it.
    fn open_req_span(&mut self, req: ReqId, home: u32) -> Option<TraceCtx> {
        if !self.tracing() {
            return None;
        }
        let span = self.rec.next_id();
        self.req_spans.insert(
            req.0,
            ReqSpan {
                span,
                start_ns: self.cluster.now_ns(),
                home,
                retries: 0,
            },
        );
        Some(TraceCtx {
            trace: self.trace,
            parent: span,
        })
    }

    /// Close the root `gm_req` span for a completed request and emit the
    /// redemption span linking this PE back to the home kernel's serve
    /// (when the response carried trace context).
    fn close_req_span(&mut self, req: u64, resp_ctx: Option<TraceCtx>, bytes: u64, t_in_ns: u64) {
        let Some(rs) = self.req_spans.remove(&req) else {
            return;
        };
        let end = self.cluster.now_ns();
        let mut root = TraceSpanRec::new(
            TraceSpanKind::GmReq,
            self.trace,
            rs.span,
            self.app_span,
            self.rank,
            rs.start_ns,
            end,
        );
        root.peer = rs.home;
        root.bytes = bytes;
        root.seq = req;
        root.retries = rs.retries;
        self.rec.push(root);
        if let Some(c) = resp_ctx {
            // Parent = the serve span id the home kernel stamped on the
            // response: the cross-PE link that makes the chain
            // requester → home → requester.
            let mut redeem = TraceSpanRec::new(
                TraceSpanKind::Redeem,
                self.trace,
                self.rec.next_id(),
                c.parent,
                self.rank,
                t_in_ns,
                end,
            );
            redeem.peer = rs.home;
            redeem.bytes = bytes;
            redeem.seq = req;
            self.rec.push(redeem);
        }
    }

    fn new_handle(&mut self) -> u64 {
        self.next_handle += 1;
        self.next_handle
    }

    fn home_of(&self, region: RegionId, offset: u64) -> u32 {
        self.cluster
            .store
            .home_of(region, offset)
            .unwrap_or_else(|e| panic!("live rank {}: bad GM address: {e}", self.rank))
            .0 as u32
    }

    // ----- split-phase issue/stage/flush -----------------------------------

    fn issue_read(&mut self, region: RegionId, offset: u64, len: usize, eager: bool) -> GmHandle {
        self.metrics().incr(MetricKey::pe("gm", "reads", self.rank));
        self.metrics()
            .incr(MetricKey::pe("kernel", "gm_ops", self.rank));
        let runs = self
            .cluster
            .store
            .split_by_home(region, offset, len)
            .unwrap_or_else(|e| panic!("live rank {}: gm_read failed: {e}", self.rank));
        let handle = self.new_handle();
        self.handles.insert(
            handle,
            HandleState {
                remaining: 1, // issuance token, released below
                buf: Some(vec![0u8; len]),
                started: Instant::now(),
                is_read: true,
                remote: false,
            },
        );
        for (home, off, rlen) in runs {
            let buf_off = (off - offset) as usize;
            if home.0 as u32 == self.rank {
                // Own-node fast path: straight into the store.
                let buf = self.handles.get_mut(&handle).unwrap().buf.as_mut().unwrap();
                self.cluster
                    .store
                    .read_into(region, off, &mut buf[buf_off..buf_off + rlen])
                    .unwrap();
                continue;
            }
            if self.cluster.cache.is_some() {
                self.stage_read_cached(home.0 as u32, region, offset, off, rlen, handle, eager);
                continue;
            }
            let st = self.handles.get_mut(&handle).unwrap();
            st.remaining += 1;
            st.remote = true;
            self.stage_read(home.0 as u32, region, off, rlen, handle, buf_off, eager);
        }
        self.release_issuance_token(handle)
    }

    /// One remote read run with the replica cache on: serve fully cached
    /// blocks straight out of the local replica store, and stage only the
    /// misses and edge fragments (coalesced into minimal spans) as wire
    /// fetches.
    #[allow(clippy::too_many_arguments)]
    fn stage_read_cached(
        &mut self,
        home: u32,
        region: RegionId,
        base: u64,
        off: u64,
        rlen: usize,
        handle: u64,
        eager: bool,
    ) {
        let cluster = Arc::clone(&self.cluster);
        let cs = cluster.cache.as_ref().unwrap();
        let me = NodeId(self.rank as u16);
        let end = off + rlen as u64;
        let full = blocks_inside(off, rlen);
        // Contiguous span still needing a fetch, grown block by block.
        let mut pend: Option<(u64, u64)> = None;
        let mut segs: Vec<(u64, usize)> = Vec::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for b in blocks_touching(off, rlen) {
            let bs = b * CACHE_BLOCK as u64;
            let s = bs.max(off);
            let e = (bs + CACHE_BLOCK as u64).min(end);
            let cached = full.contains(&b).then(|| cs.get(me, region, b)).flatten();
            match cached {
                Some(data) => {
                    hits += 1;
                    let st = self.handles.get_mut(&handle).unwrap();
                    let buf = st.buf.as_mut().unwrap();
                    let at = (s - base) as usize;
                    let src = (s - bs) as usize;
                    let n = (e - s) as usize;
                    buf[at..at + n].copy_from_slice(&data[src..src + n]);
                    if let Some((ps, pe)) = pend.take() {
                        segs.push((ps, (pe - ps) as usize));
                    }
                }
                None => {
                    if full.contains(&b) {
                        misses += 1;
                    }
                    match &mut pend {
                        Some((_, stop)) => *stop = e,
                        None => pend = Some((s, e)),
                    }
                }
            }
        }
        if let Some((ps, pe)) = pend {
            segs.push((ps, (pe - ps) as usize));
        }
        if hits > 0 {
            self.metrics()
                .add(MetricKey::pe("kernel", "cache_hits", self.rank), hits);
            self.metrics()
                .add(MetricKey::pe("kernel", "dir_hits", self.rank), hits);
        }
        if misses > 0 {
            self.metrics()
                .add(MetricKey::pe("kernel", "cache_misses", self.rank), misses);
            self.metrics()
                .add(MetricKey::pe("kernel", "dir_misses", self.rank), misses);
        }
        for (s, l) in segs {
            let st = self.handles.get_mut(&handle).unwrap();
            st.remaining += 1;
            st.remote = true;
            self.stage_read(home, region, s, l, handle, (s - base) as usize, false);
        }
        if eager {
            self.flush_staged();
        }
    }

    fn issue_write(&mut self, region: RegionId, offset: u64, data: &[u8], eager: bool) -> GmHandle {
        self.metrics()
            .incr(MetricKey::pe("gm", "writes", self.rank));
        self.metrics()
            .incr(MetricKey::pe("kernel", "gm_ops", self.rank));
        let runs = self
            .cluster
            .store
            .split_by_home(region, offset, data.len())
            .unwrap_or_else(|e| panic!("live rank {}: gm_write failed: {e}", self.rank));
        let handle = self.new_handle();
        self.handles.insert(
            handle,
            HandleState {
                remaining: 1, // issuance token, released below
                buf: None,
                started: Instant::now(),
                is_read: false,
                remote: false,
            },
        );
        for (home, off, rlen) in runs {
            let buf_off = (off - offset) as usize;
            let chunk = &data[buf_off..buf_off + rlen];
            if home.0 as u32 == self.rank {
                self.cluster.store.write(region, off, chunk).unwrap();
                self.own_write_coherence(region, off, rlen, Some(handle));
                continue;
            }
            if let Some(cs) = self.cluster.cache.as_ref() {
                // Our own replicas of the written range are stale the
                // moment the home applies the write; the home's take
                // excludes us, so we drop them here.
                cs.drop_range(NodeId(self.rank as u16), region, off, rlen);
            }
            let st = self.handles.get_mut(&handle).unwrap();
            st.remaining += 1;
            st.remote = true;
            self.stage_write(home.0 as u32, region, off, chunk.to_vec(), handle, eager);
        }
        self.release_issuance_token(handle)
    }

    /// Coherence actions for a write applied directly to this PE's own
    /// home partition. Write-invalidate sends `GmInvalidate` to every
    /// other holder and ties the acks into `handle`'s completion (or waits
    /// inline when `handle` is `None`, the fetch-add path). Release
    /// consistency counts the deferral and leaves the replicas to die at
    /// their holders' next acquire.
    fn own_write_coherence(
        &mut self,
        region: RegionId,
        offset: u64,
        len: usize,
        handle: Option<u64>,
    ) {
        let cluster = Arc::clone(&self.cluster);
        let Some(cs) = cluster.cache.as_ref() else {
            return;
        };
        let me = NodeId(self.rank as u16);
        if cluster.gm_mode == GmMode::ReleaseConsistency {
            if !cs.peek_holders(region, offset, len, me).is_empty() {
                self.metrics()
                    .incr(MetricKey::pe("kernel", "rc_deferred_invals", self.rank));
            }
            return;
        }
        let holders = cs.take_holders(region, offset, len, me);
        if holders.is_empty() {
            return;
        }
        self.metrics()
            .incr(MetricKey::pe("kernel", "invalidation_rounds", self.rank));
        self.metrics().add(
            MetricKey::pe("kernel", "cache_invalidations", self.rank),
            holders.len() as u64,
        );
        let mut inline: Vec<u64> = Vec::new();
        for h in holders {
            let req = self.reqs.next();
            let msg = Message::GmInvalidate {
                req,
                region,
                offset,
                len: len as u32,
            };
            self.send(h.0 as u32, &msg);
            self.arm_retry(req, h.0 as u32, msg, None);
            match handle {
                Some(hd) => {
                    let st = self.handles.get_mut(&hd).unwrap();
                    st.remaining += 1;
                    st.remote = true;
                    self.inflight
                        .insert(req.0, InflightReq::Write(WriteCtl { writers: vec![hd] }));
                }
                None => inline.push(req.0),
            }
        }
        while !inline.is_empty() {
            match self.recv_app(Some(self.retry_tick())) {
                None => self.service_retries(),
                Some((Message::GmInvalidateAck { req }, _)) if inline.contains(&req.0) => {
                    self.retry.remove(&req.0);
                    inline.retain(|&r| r != req.0);
                }
                Some(other) => self.stash.push_back(other),
            }
        }
    }

    /// Release the issuance token: if every segment was served locally, the
    /// handle is born ready (and its latency recorded now).
    fn release_issuance_token(&mut self, handle: u64) -> GmHandle {
        let st = self.handles.get_mut(&handle).unwrap();
        st.remaining -= 1;
        if st.remaining == 0 {
            let st = self.handles.remove(&handle).unwrap();
            self.record_handle_latency(&st);
            GmHandle::ready(st.buf)
        } else {
            GmHandle::queued(handle)
        }
    }

    fn record_handle_latency(&self, st: &HandleState) {
        let name = match (st.is_read, st.remote) {
            (true, true) => "remote_read_ns",
            (true, false) => "local_read_ns",
            (false, true) => "remote_write_ns",
            (false, false) => "local_write_ns",
        };
        self.metrics().record(
            MetricKey::pe("gm", name, self.rank),
            st.started.elapsed().as_nanos() as u64,
        );
    }

    /// Stage one remote read segment, coalescing with the most recently
    /// staged segment when both target the same home and region and their
    /// ranges touch or overlap.
    #[allow(clippy::too_many_arguments)]
    fn stage_read(
        &mut self,
        home: u32,
        region: RegionId,
        off: u64,
        len: usize,
        handle: u64,
        buf_off: usize,
        eager: bool,
    ) {
        let end = off + len as u64;
        let dest = ReadDest {
            handle,
            buf_off,
            abs_off: off,
            len,
        };
        let mut merged = false;
        if let Some(seg) = self.staged.last_mut() {
            if seg.home == home && seg.region == region {
                if let SegKind::Read { len: slen, dests } = &mut seg.kind {
                    let seg_end = seg.offset + *slen as u64;
                    if off <= seg_end && end >= seg.offset {
                        let new_start = seg.offset.min(off);
                        let new_end = seg_end.max(end);
                        seg.offset = new_start;
                        *slen = (new_end - new_start) as usize;
                        dests.push(dest);
                        merged = true;
                        self.cluster.metrics.incr(MetricKey::pe(
                            "kernel",
                            "gm_coalesced",
                            self.rank,
                        ));
                    }
                }
            }
        }
        if !merged {
            self.staged.push(StagedSeg {
                home,
                region,
                offset: off,
                kind: SegKind::Read {
                    len,
                    dests: vec![dest],
                },
            });
        }
        if eager {
            self.flush_staged();
        }
    }

    /// Stage one remote write segment; on overlap the later write's bytes
    /// win, preserving program order.
    fn stage_write(
        &mut self,
        home: u32,
        region: RegionId,
        off: u64,
        data: Vec<u8>,
        handle: u64,
        eager: bool,
    ) {
        let end = off + data.len() as u64;
        let mut merged = false;
        if let Some(seg) = self.staged.last_mut() {
            if seg.home == home && seg.region == region {
                if let SegKind::Write {
                    data: sdata,
                    writers,
                } = &mut seg.kind
                {
                    let seg_end = seg.offset + sdata.len() as u64;
                    if off <= seg_end && end >= seg.offset {
                        let new_start = seg.offset.min(off);
                        let new_end = seg_end.max(end);
                        let mut union = vec![0u8; (new_end - new_start) as usize];
                        let old_at = (seg.offset - new_start) as usize;
                        union[old_at..old_at + sdata.len()].copy_from_slice(sdata);
                        let new_at = (off - new_start) as usize;
                        union[new_at..new_at + data.len()].copy_from_slice(&data);
                        *sdata = union;
                        seg.offset = new_start;
                        writers.push(handle);
                        merged = true;
                        self.cluster.metrics.incr(MetricKey::pe(
                            "kernel",
                            "gm_coalesced",
                            self.rank,
                        ));
                    }
                }
            }
        }
        if !merged {
            self.staged.push(StagedSeg {
                home,
                region,
                offset: off,
                kind: SegKind::Write {
                    data,
                    writers: vec![handle],
                },
            });
        }
        if eager {
            self.flush_staged();
        }
    }

    /// Send every staged segment: one plain request per singleton home
    /// group, one batched request per multi-segment home group.
    fn flush_staged(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let staged = std::mem::take(&mut self.staged);
        let mut groups: Vec<(u32, Vec<StagedSeg>)> = Vec::new();
        for seg in staged {
            match groups.iter_mut().find(|(h, _)| *h == seg.home) {
                Some((_, v)) => v.push(seg),
                None => groups.push((seg.home, vec![seg])),
            }
        }
        for (home, mut segs) in groups {
            if segs.len() == 1 {
                self.send_plain(home, segs.pop().unwrap());
            } else {
                self.send_batch(home, segs);
            }
        }
    }

    /// Build one read segment's completion bookkeeping, snapshotting the
    /// install epoch at dispatch for cached runs.
    fn read_ctl(&self, region: RegionId, offset: u64, len: usize, dests: Vec<ReadDest>) -> ReadCtl {
        let (install, epoch) = if self.cluster.cache.is_some() {
            (
                blocks_inside(offset, len),
                *self.cluster.install_guards[self.rank as usize].lock(),
            )
        } else {
            (0..0, 0)
        };
        ReadCtl {
            offset,
            len,
            dests,
            region,
            install,
            epoch,
        }
    }

    fn send_plain(&mut self, home: u32, seg: StagedSeg) {
        let req = self.reqs.next();
        let (msg, ctl) = match seg.kind {
            SegKind::Read { len, dests } => (
                Message::GmReadReq {
                    req,
                    region: seg.region,
                    offset: seg.offset,
                    len: len as u32,
                },
                InflightReq::Read(self.read_ctl(seg.region, seg.offset, len, dests)),
            ),
            SegKind::Write { data, writers } => (
                Message::GmWriteReq {
                    req,
                    region: seg.region,
                    offset: seg.offset,
                    data: data.into(),
                },
                InflightReq::Write(WriteCtl { writers }),
            ),
        };
        self.dispatch(home, req, msg, ctl);
    }

    fn send_batch(&mut self, home: u32, segs: Vec<StagedSeg>) {
        let req = self.reqs.next();
        let mut ops = Vec::with_capacity(segs.len());
        let mut ctls = Vec::with_capacity(segs.len());
        for seg in segs {
            match seg.kind {
                SegKind::Read { len, dests } => {
                    ops.push(GmOp::Read {
                        region: seg.region,
                        offset: seg.offset,
                        len: len as u32,
                    });
                    ctls.push(InflightOp::Read(
                        self.read_ctl(seg.region, seg.offset, len, dests),
                    ));
                }
                SegKind::Write { data, writers } => {
                    ctls.push(InflightOp::Write(WriteCtl { writers }));
                    ops.push(GmOp::Write {
                        region: seg.region,
                        offset: seg.offset,
                        data: data.into(),
                    });
                }
            }
        }
        let msg = Message::GmBatchReq { req, ops };
        self.dispatch(home, req, msg, InflightReq::Batch(ctls));
    }

    fn dispatch(&mut self, home: u32, req: ReqId, msg: Message, ctl: InflightReq) {
        self.metrics()
            .incr(MetricKey::pe("kernel", "gm_request_msgs", self.rank));
        let ctx = self.open_req_span(req, home);
        self.send_traced(home, &msg, ctx);
        self.arm_retry(req, home, msg, ctx);
        self.inflight.insert(req.0, ctl);
        self.metrics().gauge_max(
            MetricKey::pe("kernel", "gm_inflight", self.rank),
            self.inflight.len() as u64,
        );
    }

    // ----- completion ------------------------------------------------------

    /// Consume exactly one GM completion — from the stash if an earlier
    /// drain parked one there, otherwise off the kernel's forwarding
    /// channel.
    fn drain_one(&mut self) {
        if let Some(idx) = self.stash.iter().position(|(m, _)| {
            matches!(
                m,
                Message::GmReadResp { .. }
                    | Message::GmWriteAck { .. }
                    | Message::GmBatchResp { .. }
                    | Message::GmInvalidateAck { .. }
            )
        }) {
            let (msg, ctx) = self.stash.remove(idx).unwrap();
            self.process_completion(msg, ctx);
            return;
        }
        loop {
            match self.recv_app(Some(self.retry_tick())) {
                None => self.service_retries(),
                Some((
                    msg @ (Message::GmReadResp { .. }
                    | Message::GmWriteAck { .. }
                    | Message::GmBatchResp { .. }
                    | Message::GmInvalidateAck { .. }),
                    ctx,
                )) => {
                    self.process_completion(msg, ctx);
                    return;
                }
                Some(other) => self.stash.push_back(other),
            }
        }
    }

    /// Apply one GM completion. A response whose correlation id is no
    /// longer in flight is a duplicate delivery (fault injection or a
    /// retransmit crossing the original response on the wire) and is
    /// dropped; a response of the *wrong kind* for a live id is a protocol
    /// bug and still panics.
    fn process_completion(&mut self, msg: Message, ctx: Option<TraceCtx>) {
        let t_in_ns = self.cluster.now_ns();
        let bytes = msg.wire_len() as u64;
        match msg {
            Message::GmReadResp { req, data } => match self.inflight.remove(&req.0) {
                Some(InflightReq::Read(c)) => {
                    self.retry.remove(&req.0);
                    self.complete_read(c, &data);
                    self.close_req_span(req.0, ctx, bytes, t_in_ns);
                }
                Some(_) => panic!("live rank {}: GmReadResp for a non-read request", self.rank),
                None => {}
            },
            Message::GmWriteAck { req } => match self.inflight.remove(&req.0) {
                Some(InflightReq::Write(c)) => {
                    self.retry.remove(&req.0);
                    self.complete_write(c);
                    self.close_req_span(req.0, ctx, bytes, t_in_ns);
                }
                Some(_) => panic!(
                    "live rank {}: GmWriteAck for a non-write request",
                    self.rank
                ),
                None => {}
            },
            Message::GmBatchResp { req, reads } => match self.inflight.remove(&req.0) {
                Some(InflightReq::Batch(ops)) => {
                    self.retry.remove(&req.0);
                    let mut it = reads.into_iter();
                    for op in ops {
                        match op {
                            InflightOp::Read(c) => {
                                let data = it.next().expect("missing batched read result");
                                self.complete_read(c, &data);
                            }
                            InflightOp::Write(c) => self.complete_write(c),
                        }
                    }
                    self.close_req_span(req.0, ctx, bytes, t_in_ns);
                }
                Some(_) => panic!(
                    "live rank {}: GmBatchResp for a non-batch request",
                    self.rank
                ),
                None => {}
            },
            Message::GmInvalidateAck { req } => match self.inflight.remove(&req.0) {
                // Own-node write invalidation round: the ack completes the
                // writing handle exactly like a remote write ack would.
                Some(InflightReq::Write(c)) => {
                    self.retry.remove(&req.0);
                    self.complete_write(c);
                }
                Some(_) => panic!(
                    "live rank {}: GmInvalidateAck for a non-invalidation request",
                    self.rank
                ),
                None => {}
            },
            _ => unreachable!("process_completion on a non-GM message"),
        }
    }

    fn complete_read(&mut self, ctl: ReadCtl, data: &[u8]) {
        assert_eq!(data.len(), ctl.len, "short remote read");
        if !ctl.install.is_empty() {
            if let Some(cs) = self.cluster.cache.as_ref() {
                // Requester-side half of the lease the home granted at
                // serve time: install the fully fetched blocks, unless an
                // invalidation has landed since dispatch (epoch mismatch)
                // — then the bytes may already be stale and the lease
                // stays data-less.
                let guard = self.cluster.install_guards[self.rank as usize].lock();
                if *guard == ctl.epoch {
                    for b in ctl.install.clone() {
                        let at = (b * CACHE_BLOCK as u64 - ctl.offset) as usize;
                        cs.install_data(
                            NodeId(self.rank as u16),
                            ctl.region,
                            b,
                            data[at..at + CACHE_BLOCK].to_vec(),
                        );
                    }
                }
            }
        }
        for d in ctl.dests {
            let h = self
                .handles
                .get_mut(&d.handle)
                .expect("read completion for an unknown handle");
            let buf = h.buf.as_mut().expect("read handle without a buffer");
            let src = (d.abs_off - ctl.offset) as usize;
            buf[d.buf_off..d.buf_off + d.len].copy_from_slice(&data[src..src + d.len]);
            h.remaining -= 1;
            if h.remaining == 0 {
                let st = self.handles.remove(&d.handle).unwrap();
                self.record_handle_latency(&st);
                self.completed.insert(d.handle, st.buf);
            }
        }
    }

    fn complete_write(&mut self, ctl: WriteCtl) {
        for w in ctl.writers {
            let h = self
                .handles
                .get_mut(&w)
                .expect("write completion for an unknown handle");
            h.remaining -= 1;
            if h.remaining == 0 {
                let st = self.handles.remove(&w).unwrap();
                self.record_handle_latency(&st);
                self.completed.insert(w, None);
            }
        }
    }

    /// Emit a `gm_block` span covering a completed blocking wait on GM
    /// completions (`seq` = the request or handle waited on, 0 = fence).
    fn push_block_span(&mut self, start_ns: u64, seq: u64) {
        if self.tracing() {
            let mut span = TraceSpanRec::new(
                TraceSpanKind::GmBlock,
                self.trace,
                self.rec.next_id(),
                self.app_span,
                self.rank,
                start_ns,
                self.cluster.now_ns(),
            );
            span.seq = seq;
            self.rec.push(span);
        }
    }

    /// Complete all staged and in-flight split-phase work. Every blocking
    /// synchronization primitive fences first, so split-phase operations are
    /// always ordered before barriers, locks and atomics.
    fn gm_fence(&mut self) {
        self.flush_staged();
        if self.inflight.is_empty() {
            return;
        }
        let t0 = self.cluster.now_ns();
        while !self.inflight.is_empty() {
            self.drain_one();
        }
        self.push_block_span(t0, 0);
    }

    /// Release-consistency acquire: purge this rank's replicas (and their
    /// directory leases) so subsequent reads re-fetch from the homes.
    /// Self-invalidation costs zero wire traffic — the whole point of
    /// deferring the write-side invalidations. No-op under
    /// write-invalidate, where the protocol keeps replicas exact.
    fn acquire_replicas(&mut self) {
        let cluster = Arc::clone(&self.cluster);
        if let Some(cs) = cluster.cache.as_ref() {
            if cluster.gm_mode == GmMode::ReleaseConsistency {
                let mut epoch = cluster.install_guards[self.rank as usize].lock();
                *epoch += 1;
                cs.purge_node(NodeId(self.rank as u16));
                drop(epoch);
                self.metrics()
                    .incr(MetricKey::pe("kernel", "rc_acquires", self.rank));
            }
        }
    }

    /// Called by the harness after the body returns: fence, then notify the
    /// coordinator so it can shut the kernels down once everyone is out.
    fn finish(&mut self) {
        self.gm_fence();
        self.send(
            0,
            &Message::ExitNotice {
                pid: self.pid,
                status: 0,
            },
        );
    }
}

impl ParallelApi for LiveCtx {
    fn rank(&self) -> u32 {
        self.rank
    }

    fn nprocs(&self) -> usize {
        self.cluster.nprocs
    }

    fn compute(&mut self, _work: Work) {
        // The computation already ran for real; nothing to account.
    }

    fn gm_alloc(&mut self, len: usize, dist: Distribution) -> RegionId {
        self.gm_fence();
        let seq = self.alloc_seq;
        self.alloc_seq += 1;
        let mut table = self.cluster.allocs.lock();
        if let Some(&(id, existing)) = table.get(seq) {
            assert_eq!(existing, len, "collective allocation #{seq} size mismatch");
            return id;
        }
        assert_eq!(table.len(), seq, "collective allocations out of order");
        let id = self.cluster.store.alloc(len, dist);
        table.push((id, len));
        id
    }

    fn gm_read(&mut self, region: RegionId, offset: u64, len: usize) -> Vec<u8> {
        let h = self.issue_read(region, offset, len, true);
        self.gm_wait(h).expect("gm_read handle carries data")
    }

    fn gm_write(&mut self, region: RegionId, offset: u64, data: &[u8]) {
        let h = self.issue_write(region, offset, data, true);
        self.gm_wait(h);
    }

    fn gm_read_into(&mut self, region: RegionId, offset: u64, out: &mut [u8]) {
        let data = self.gm_read(region, offset, out.len());
        out.copy_from_slice(&data);
    }

    fn gm_read_nb(&mut self, region: RegionId, offset: u64, len: usize) -> GmHandle {
        self.issue_read(region, offset, len, false)
    }

    fn gm_write_nb(&mut self, region: RegionId, offset: u64, data: &[u8]) -> GmHandle {
        self.issue_write(region, offset, data, false)
    }

    fn gm_wait(&mut self, handle: GmHandle) -> Option<Vec<u8>> {
        let id = match handle.queued_id() {
            None => return handle.into_ready(),
            Some(id) => id,
        };
        if let Some(data) = self.completed.remove(&id) {
            return data;
        }
        assert!(
            self.handles.contains_key(&id),
            "live rank {}: gm_wait on a stale handle (result discarded by gm_wait_all)",
            self.rank
        );
        self.flush_staged();
        if !self.completed.contains_key(&id) {
            let t0 = self.cluster.now_ns();
            while !self.completed.contains_key(&id) {
                self.drain_one();
            }
            self.push_block_span(t0, id);
        }
        self.completed.remove(&id).unwrap()
    }

    fn gm_wait_all(&mut self) {
        self.gm_fence();
        self.completed.clear();
    }

    fn take_scratch(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.scratch)
    }

    fn put_scratch(&mut self, buf: Vec<u8>) {
        self.scratch = buf;
    }

    fn gm_fetch_add(&mut self, region: RegionId, offset: u64, delta: i64) -> i64 {
        self.gm_fence();
        self.metrics()
            .incr(MetricKey::pe("gm", "fetch_adds", self.rank));
        self.metrics()
            .incr(MetricKey::pe("kernel", "gm_ops", self.rank));
        let start = Instant::now();
        let home = self.home_of(region, offset);
        let prev = if home == self.rank {
            let prev = self
                .cluster
                .store
                .fetch_add(region, offset, delta)
                .unwrap_or_else(|e| panic!("live rank {}: fetch_add failed: {e}", self.rank));
            self.own_write_coherence(region, offset, 8, None);
            prev
        } else {
            if let Some(cs) = self.cluster.cache.as_ref() {
                cs.drop_range(NodeId(self.rank as u16), region, offset, 8);
            }
            let req = self.reqs.next();
            self.metrics()
                .incr(MetricKey::pe("kernel", "gm_request_msgs", self.rank));
            let msg = Message::GmFetchAddReq {
                req,
                region,
                offset,
                delta,
            };
            let ctx = self.open_req_span(req, home);
            self.send_traced(home, &msg, ctx);
            self.arm_retry(req, home, msg, ctx);
            let t_block = self.cluster.now_ns();
            let prev = loop {
                match self.recv_app(Some(self.retry_tick())) {
                    None => self.service_retries(),
                    Some((Message::GmFetchAddResp { req: r, prev }, rctx)) if r == req => {
                        self.retry.remove(&req.0);
                        let bytes = Message::GmFetchAddResp { req: r, prev }.wire_len() as u64;
                        self.close_req_span(req.0, rctx, bytes, self.cluster.now_ns());
                        break prev;
                    }
                    Some(other) => self.stash.push_back(other),
                }
            };
            self.push_block_span(t_block, req.0);
            prev
        };
        self.metrics().record(
            MetricKey::pe("gm", "fetch_add_ns", self.rank),
            start.elapsed().as_nanos() as u64,
        );
        prev
    }

    fn barrier(&mut self) {
        let id = AUTO_BARRIER_BASE + self.barrier_seq;
        self.barrier_seq += 1;
        self.gm_fence();
        let start = Instant::now();
        let t0 = self.cluster.now_ns();
        let wait_span = self.rec.next_id();
        let ctx = self.tracing().then_some(TraceCtx {
            trace: self.trace,
            parent: wait_span,
        });
        self.send_traced(
            0,
            &Message::BarrierEnter {
                barrier: id,
                pid: self.pid,
            },
            ctx,
        );
        loop {
            // Barrier traffic is never retried (it is not idempotent and
            // the fault plan leaves control messages unharmed), so this
            // wait may block: an abort wakes it via the forwarded frame.
            match self.recv_app(None).unwrap() {
                (Message::BarrierRelease { barrier, .. }, _) if barrier == id => break,
                other => self.stash.push_back(other),
            }
        }
        if self.tracing() {
            let mut s = TraceSpanRec::new(
                TraceSpanKind::BarrierWait,
                self.trace,
                wait_span,
                self.app_span,
                self.rank,
                t0,
                self.cluster.now_ns(),
            );
            s.peer = 0;
            s.seq = id as u64;
            self.rec.push(s);
        }
        self.metrics().record(
            MetricKey::pe("sync", "barrier_wait_ns", self.rank),
            start.elapsed().as_nanos() as u64,
        );
        // Completing a barrier is an acquire point.
        self.acquire_replicas();
    }

    fn lock(&mut self, id: u32) {
        self.gm_fence();
        let start = Instant::now();
        let t0 = self.cluster.now_ns();
        let req = self.reqs.next();
        let wait_span = self.rec.next_id();
        let ctx = self.tracing().then_some(TraceCtx {
            trace: self.trace,
            parent: wait_span,
        });
        self.send_traced(
            0,
            &Message::LockReq {
                req,
                lock: id,
                pid: self.pid,
            },
            ctx,
        );
        loop {
            match self.recv_app(None).unwrap() {
                (Message::LockGrant { req: r, .. }, _) if r == req => break,
                other => self.stash.push_back(other),
            }
        }
        if self.tracing() {
            let mut s = TraceSpanRec::new(
                TraceSpanKind::LockWait,
                self.trace,
                wait_span,
                self.app_span,
                self.rank,
                t0,
                self.cluster.now_ns(),
            );
            s.peer = 0;
            s.seq = req.0;
            self.rec.push(s);
        }
        self.metrics().record(
            MetricKey::pe("sync", "lock_wait_ns", self.rank),
            start.elapsed().as_nanos() as u64,
        );
        // A lock grant is an acquire point.
        self.acquire_replicas();
    }

    fn unlock(&mut self, id: u32) {
        self.gm_fence();
        self.send(
            0,
            &Message::UnlockReq {
                lock: id,
                pid: self.pid,
            },
        );
    }

    fn gm_release(&mut self) {
        // Making prior writes globally visible is exactly the fence: every
        // write ack (gated on its invalidations under WI) has landed.
        self.gm_fence();
    }

    fn gm_acquire(&mut self) {
        self.gm_fence();
        self.acquire_replicas();
    }
}

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

/// Result of a live run.
#[derive(Debug, Clone)]
pub struct LiveRunResult {
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Processing elements used.
    pub nprocs: usize,
    /// Which transport carried the run's messages.
    pub transport: TransportKind,
    /// Observability snapshot: per-rank GM/sync counters, kernel service
    /// stats, and wall-clock latency histograms (same schema as the
    /// simulator's).
    pub metrics: MetricsSnapshot,
    /// The rollup the telemetry plane rebuilt from the deltas that rode the
    /// transport to PE 0 (`Some` only for watched runs; matches `metrics`
    /// after a clean run).
    pub telemetry_rollup: Option<MetricsSnapshot>,
    /// Flight-recorder dump at run end (JSONL, oldest event first): the
    /// last `flight_capacity` wire sends and stalls. On an aborted run the
    /// equivalent post-mortem dump rides in [`RunError`] instead.
    pub flight_jsonl: String,
    /// Per-PE causal spans recorded when [`LiveRunConfig::tracing`] is on
    /// (empty otherwise): `trace_spans[pe]` holds that PE's app-thread
    /// spans followed by its kernel-thread spans, ready for the
    /// `dse-trace` assembler.
    pub trace_spans: Vec<Vec<TraceSpanRec>>,
}

/// Builder for live runs: the one entry point to the live engine.
///
/// Every knob the old `run_live*`/`try_run_live*` family spread across six
/// signatures is a chained setter here; `run` panics on failure, `try_run`
/// returns the structured [`RunError`].
///
/// ```
/// use dse_api::{collective, ParallelApi};
/// use dse_live::LiveRunner;
///
/// let result = LiveRunner::new(4).run(|ctx| {
///     let all = collective::all_gather(ctx, ctx.rank() as i64);
///     assert_eq!(all, vec![0, 1, 2, 3]);
/// });
/// assert_eq!(result.nprocs, 4);
/// ```
pub struct LiveRunner<'h> {
    nprocs: usize,
    cfg: LiveRunConfig,
    watch: Option<WatchSpec<'h>>,
}

impl<'h> LiveRunner<'h> {
    /// A run over `nprocs` PEs on the default configuration (in-process
    /// channel transport, no faults, no watch, cache off).
    pub fn new(nprocs: usize) -> LiveRunner<'h> {
        LiveRunner {
            nprocs,
            cfg: LiveRunConfig::default(),
            watch: None,
        }
    }

    /// Which wire carries the run's messages.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.cfg.kind = kind;
        self
    }

    /// Deterministic fault injection applied to every endpoint.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = Some(plan);
        self
    }

    /// Retry/deadline budget for outstanding GM requests.
    pub fn gm_retry(mut self, policy: RetryPolicy) -> Self {
        self.cfg.gm_retry = policy;
        self
    }

    /// Flight-recorder ring size (0 disables post-mortem capture).
    pub fn flight_capacity(mut self, capacity: usize) -> Self {
        self.cfg.flight_capacity = capacity;
        self
    }

    /// Causal tracing on or off (see [`LiveRunConfig::tracing`]).
    pub fn tracing(mut self, on: bool) -> Self {
        self.cfg.tracing = on;
        self
    }

    /// Read-replica GM caching with the wire directory protocol (see
    /// [`LiveRunConfig::gm_cache`]).
    pub fn gm_cache(mut self, on: bool) -> Self {
        self.cfg.gm_cache = on;
        self
    }

    /// Coherence protocol for cached runs (see [`LiveRunConfig::gm_mode`]).
    pub fn gm_mode(mut self, mode: GmMode) -> Self {
        self.cfg.gm_mode = mode;
        self
    }

    /// Which engine drives the per-PE kernels (see
    /// [`LiveRunConfig::scheduler`]): `Threads` is the thread-per-PE
    /// reference implementation, `Tasks` multiplexes every kernel on a
    /// small worker pool so one process can run thousands of PEs.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.cfg.scheduler = kind;
        self
    }

    /// Bound on a kernel's idle wait between events (see
    /// [`LiveRunConfig::kernel_tick`]).
    pub fn kernel_tick(mut self, tick: Duration) -> Self {
        self.cfg.kernel_tick = Some(tick);
        self
    }

    /// Replace the whole configuration at once (for callers that already
    /// assembled a [`LiveRunConfig`]).
    pub fn config(mut self, cfg: LiveRunConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Watch the run: each PE's kernel thread ships incremental telemetry
    /// deltas *over the transport* to PE 0 every `interval`; PE 0's kernel
    /// applies them to a [`ClusterAggregator`] and invokes `hook` with the
    /// aggregator and the elapsed wall clock in nanoseconds on each of its
    /// own ticks. The hook signature matches the simulator's epoch hook,
    /// so one rendering function (e.g. `dse_ssi::view::render_top`) serves
    /// both engines. After the kernels shut down, a final absolute round
    /// heals any deltas lost in the shutdown race and the resulting rollup
    /// lands in [`LiveRunResult::telemetry_rollup`].
    pub fn watch(
        mut self,
        interval: Duration,
        hook: &'h (dyn Fn(&ClusterAggregator, u64) + Send + Sync),
    ) -> Self {
        self.watch = Some((interval, hook));
        self
    }

    /// Run `body` as an SPMD program, panicking on a structured failure.
    pub fn run<F>(self, body: F) -> LiveRunResult
    where
        F: Fn(&mut LiveCtx) + Send + Sync,
    {
        self.try_run(body)
            .unwrap_or_else(|e| panic!("live run failed:\n{e}"))
    }

    /// Run `body` with structured failure reporting: a run that hits a
    /// transport fault, a GM deadline, or a dead kernel aborts
    /// cluster-wide (every thread joins) and returns a [`RunError`]
    /// carrying the per-PE failure report and the flight-recorder
    /// post-mortem instead of panicking.
    pub fn try_run<F>(self, body: F) -> Result<LiveRunResult, RunError>
    where
        F: Fn(&mut LiveCtx) + Send + Sync,
    {
        run_live_inner(self.cfg, self.nprocs, self.watch, body)
    }
}

fn run_live_inner<F>(
    cfg: LiveRunConfig,
    nprocs: usize,
    watch: Option<WatchSpec<'_>>,
    body: F,
) -> Result<LiveRunResult, RunError>
where
    F: Fn(&mut LiveCtx) + Send + Sync,
{
    assert!(nprocs > 0);
    let cluster = Arc::new(LiveCluster::with_config(nprocs, &cfg));
    let start = Instant::now();
    // The guard outlives the scope below: socket files are removed however
    // the run ends, including an unwinding abort.
    let (transports, _socket_dir) =
        match build_transports(cfg.kind, nprocs, cfg.fault_plan.as_ref()) {
            Ok(built) => built,
            Err(e) => {
                return Err(RunError {
                    failures: vec![PeFailure {
                        pe: 0,
                        role: FailureRole::Kernel,
                        kind: FailureKind::Mesh(e),
                    }],
                    flight_jsonl: cluster.flight.to_jsonl(),
                    elapsed: start.elapsed(),
                })
            }
        };
    let rollup = std::thread::scope(|scope| {
        let mut kernel_inputs: Vec<sched::KernelInput> = Vec::with_capacity(nprocs);
        let mut app_handles = Vec::with_capacity(nprocs);
        for (pe, transport) in transports.iter().enumerate() {
            let app_cluster = Arc::clone(&cluster);
            let app_transport = Arc::clone(transport);
            kernel_inputs.push((pe as u32, Arc::clone(transport)));
            let body = &body;
            let app_thread = move || {
                let mut ctx = LiveCtx::new(pe as u32, app_cluster, app_transport);
                let out = catch_unwind(AssertUnwindSafe(|| {
                    body(&mut ctx);
                    ctx.finish();
                }));
                // Flush this PE's app-side spans however the body ended:
                // an aborted run still yields a usable partial trace.
                ctx.close_app_span();
                let spans = ctx.rec.take();
                ctx.cluster.flush_trace(pe as u32, 0, spans);
                if let Err(p) = out {
                    // A genuine app panic aborts the cluster so the
                    // kernels drain out instead of waiting for an
                    // ExitNotice that will never come; the payload still
                    // propagates through the harness join below.
                    if !p.is::<AbortUnwind>() {
                        ctx.cluster.abort.store(true, Ordering::Release);
                    }
                    resume_unwind(p);
                }
            };
            app_handles.push(match cluster.scheduler {
                SchedulerKind::Threads => scope.spawn(app_thread),
                // App bodies are blocking closures, so they keep dedicated
                // threads under both schedulers — but at many-PE scale the
                // default ~8 MiB stacks would dominate memory, so the task
                // scheduler shrinks them.
                SchedulerKind::Tasks => std::thread::Builder::new()
                    .stack_size(sched::APP_STACK)
                    .spawn_scoped(scope, app_thread)
                    .expect("spawn app thread"),
            });
        }
        // Kernels first: they stop only after a clean shutdown handshake
        // or a cluster abort, either of which also unblocks the apps.
        let mut trackers = Vec::with_capacity(nprocs);
        let mut agg = None;
        let mut propagate = None;
        match cluster.scheduler {
            SchedulerKind::Threads => {
                let kernel_handles: Vec<_> = kernel_inputs
                    .into_iter()
                    .map(|(pe, transport)| {
                        let kernel_cluster = Arc::clone(&cluster);
                        scope.spawn(move || {
                            live_kernel(pe, &kernel_cluster, &transport, watch, start)
                        })
                    })
                    .collect();
                for h in kernel_handles {
                    match h.join() {
                        Ok((tracker, a)) => {
                            trackers.push(tracker);
                            agg = agg.or(a);
                        }
                        Err(p) => {
                            // A kernel *bug* (transport failures return
                            // structured errors, they never unwind): latch
                            // the abort so the rest of the cluster drains,
                            // re-panic once every thread is down.
                            cluster.abort.store(true, Ordering::Release);
                            propagate.get_or_insert(p);
                        }
                    }
                }
            }
            SchedulerKind::Tasks => {
                match sched::run_kernels(&cluster, kernel_inputs, watch, start) {
                    Ok(results) => {
                        for (tracker, a) in results {
                            trackers.push(tracker);
                            agg = agg.or(a);
                        }
                    }
                    Err(p) => {
                        cluster.abort.store(true, Ordering::Release);
                        propagate.get_or_insert(p);
                    }
                }
            }
        }
        for h in app_handles {
            if let Err(p) = h.join() {
                if !p.is::<AbortUnwind>() {
                    propagate.get_or_insert(p);
                }
            }
        }
        if let Some(p) = propagate {
            resume_unwind(p);
        }
        if cluster.aborting() {
            // No rollup for an aborted run: the registry is mid-flight
            // and the caller gets the failure report instead.
            return None;
        }
        // Final absolute telemetry round: reproduce the registry exactly
        // through the same encode/decode codec the wire used, healing any
        // deltas the shutdown race dropped.
        watch.map(|(_, hook)| {
            let mut agg = agg.expect("watched run must produce an aggregator");
            let snap = cluster.metrics.snapshot();
            let now_ns = start.elapsed().as_nanos() as u64;
            for t in trackers.iter_mut() {
                let (seq, d) = t.absolute(&snap, &[]);
                let back = TelemetryDelta::decode(&d.encode()).expect("telemetry self-roundtrip");
                agg.apply(t.pe(), seq, now_ns, &back);
            }
            hook(&agg, now_ns);
            agg.rollup()
        })
    });
    let failures = std::mem::take(&mut *cluster.failures.lock());
    let flight_jsonl = cluster.flight.to_jsonl();
    if !failures.is_empty() {
        return Err(RunError {
            failures,
            flight_jsonl,
            elapsed: start.elapsed(),
        });
    }
    let mut sink = std::mem::take(&mut *cluster.trace_sink.lock());
    sink.sort_by_key(|(pe, role, _)| (*pe, *role));
    let mut trace_spans = vec![Vec::new(); nprocs];
    for (pe, _, spans) in sink {
        trace_spans[pe as usize].extend(spans);
    }
    Ok(LiveRunResult {
        elapsed: start.elapsed(),
        nprocs,
        transport: cfg.kind,
        metrics: cluster.metrics.snapshot(),
        telemetry_rollup: rollup,
        flight_jsonl,
        trace_spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_api::{collective, GmArray, GmCounter};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn live_barrier_and_gm_roundtrip() {
        LiveRunner::new(4).run(|ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 4, Distribution::Blocked);
            arr.set(ctx, ctx.rank() as usize, ctx.rank() as u64 * 10);
            ctx.barrier();
            let all = arr.read(ctx, 0, 4);
            assert_eq!(all, vec![0, 10, 20, 30]);
        });
    }

    #[test]
    fn live_counter_is_exactly_once() {
        let total = AtomicU64::new(0);
        LiveRunner::new(4).run(|ctx| {
            let c = GmCounter::alloc(ctx);
            ctx.barrier();
            loop {
                let j = c.next(ctx);
                if j >= 100 {
                    break;
                }
                total.fetch_add(j as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..100u64).sum());
    }

    #[test]
    fn live_metrics_capture_gm_and_sync() {
        let r = LiveRunner::new(3).run(|ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 3, Distribution::Blocked);
            arr.set(ctx, ctx.rank() as usize, 1);
            ctx.barrier();
            let _ = arr.read(ctx, 0, 3);
        });
        assert!(r.metrics.counter("gm", "writes", Some(0)).unwrap_or(0) >= 1);
        let h = r
            .metrics
            .histogram("sync", "barrier_wait_ns", Some(1))
            .expect("barrier histogram for rank 1");
        assert!(h.count() >= 1);
    }

    #[test]
    fn live_run_exchanges_wire_messages() {
        // The acceptance gate for the message-passing engine: a multi-PE
        // run must put real GM request messages on the transport.
        let r = LiveRunner::new(2).run(|ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 8, Distribution::Blocked);
            arr.set(ctx, (ctx.rank() as usize + 5) % 8, 1);
            ctx.barrier();
            let _ = arr.read(ctx, 0, 8);
        });
        assert!(
            r.metrics.counter_sum_over_pes("kernel", "gm_request_msgs") > 0,
            "no GM request messages crossed the transport"
        );
        assert!(
            r.metrics.counter_sum_over_pes("kernel", "requests_served") > 0,
            "no kernel served a GM request"
        );
    }

    #[test]
    fn watched_rollup_matches_direct_snapshot() {
        let epochs = AtomicU64::new(0);
        let hook = |_agg: &ClusterAggregator, _now_ns: u64| {
            epochs.fetch_add(1, Ordering::SeqCst);
        };
        let r = LiveRunner::new(3)
            .watch(Duration::from_millis(1), &hook)
            .run(|ctx| {
                let arr = GmArray::<u64>::alloc(ctx, 3, Distribution::Blocked);
                arr.set(ctx, ctx.rank() as usize, 7);
                ctx.barrier();
                let _ = arr.read(ctx, 0, 3);
            });
        assert!(epochs.load(Ordering::SeqCst) >= 1, "hook never fired");
        let rollup = r.telemetry_rollup.expect("watched run produces a rollup");
        assert_eq!(
            rollup.to_jsonl(),
            r.metrics.to_jsonl(),
            "in-band rollup must reproduce the wall-clock registry exactly"
        );
    }

    #[test]
    fn unwatched_run_has_no_rollup() {
        let r = LiveRunner::new(2).run(|ctx| ctx.barrier());
        assert!(r.telemetry_rollup.is_none());
    }

    #[test]
    fn live_collectives() {
        LiveRunner::new(5).run(|ctx| {
            let s = collective::reduce_sum(ctx, 1.0);
            assert_eq!(s, 5.0);
            let g = collective::all_gather(ctx, ctx.rank() as i64);
            assert_eq!(g, vec![0, 1, 2, 3, 4]);
        });
    }

    #[test]
    fn live_locks_are_mutually_exclusive() {
        let inside = AtomicU64::new(0);
        LiveRunner::new(6).run(|ctx| {
            for _ in 0..50 {
                ctx.lock(3);
                let v = inside.fetch_add(1, Ordering::SeqCst);
                assert_eq!(v, 0, "two threads inside the critical section");
                inside.fetch_sub(1, Ordering::SeqCst);
                ctx.unlock(3);
            }
        });
    }

    #[test]
    #[should_panic(expected = "release of unknown lock 9")]
    fn live_unlock_unheld_panics() {
        LiveRunner::new(1).run(|ctx| {
            ctx.unlock(9);
        });
    }

    #[test]
    fn live_on_tcp_roundtrip() {
        let r = LiveRunner::new(3).transport(TransportKind::Tcp).run(|ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 3, Distribution::Blocked);
            arr.set(ctx, ctx.rank() as usize, ctx.rank() as u64 + 1);
            ctx.barrier();
            let all = arr.read(ctx, 0, 3);
            assert_eq!(all, vec![1, 2, 3]);
        });
        assert_eq!(r.transport, TransportKind::Tcp);
        assert!(r.metrics.counter_sum_over_pes("kernel", "gm_request_msgs") > 0);
    }

    #[cfg(unix)]
    #[test]
    fn live_on_uds_roundtrip() {
        LiveRunner::new(2).transport(TransportKind::Uds).run(|ctx| {
            let c = GmCounter::alloc(ctx);
            ctx.barrier();
            let mine = c.next(ctx);
            assert!(mine < 2);
        });
    }

    #[test]
    fn transient_drops_are_absorbed_by_retry() {
        // Deterministically drop and duplicate some GM traffic: the retry
        // layer (app retransmits, kernel dedups) must still produce the
        // exact fault-free answer.
        let cfg = LiveRunConfig {
            fault_plan: Some(FaultPlan::parse("seed=11,drop=150,dup=80").unwrap()),
            ..LiveRunConfig::default()
        };
        let r = LiveRunner::new(3)
            .config(cfg)
            .try_run(|ctx| {
                let arr = GmArray::<u64>::alloc(ctx, 12, Distribution::Blocked);
                for i in 0..12 {
                    if i % 3 == ctx.rank() as usize {
                        arr.set(ctx, i, (i * 7) as u64);
                    }
                }
                ctx.barrier();
                let all = arr.read(ctx, 0, 12);
                assert_eq!(all, (0..12u64).map(|i| i * 7).collect::<Vec<_>>());
            })
            .expect("drops and dups are recoverable faults");
        assert_eq!(r.nprocs, 3);
    }

    #[test]
    fn injected_disconnect_yields_structured_error() {
        // Kill PE 1's endpoint mid-run: the run must abort cluster-wide
        // with a structured report instead of panicking or hanging.
        let cfg = LiveRunConfig {
            fault_plan: Some(FaultPlan::parse("seed=3,disconnect=1:8").unwrap()),
            ..LiveRunConfig::default()
        };
        let err = LiveRunner::new(3)
            .config(cfg)
            .try_run(|ctx| {
                let arr = GmArray::<u64>::alloc(ctx, 64, Distribution::Blocked);
                for round in 0..200 {
                    arr.set(ctx, (ctx.rank() as usize * 13 + round) % 64, round as u64);
                    ctx.barrier();
                }
            })
            .expect_err("a dead endpoint must fail the run");
        assert!(!err.failures.is_empty(), "report must name an observer");
        assert!(
            err.report().contains("first-hand failure"),
            "report must render"
        );
    }

    #[test]
    fn gm_deadline_trips_when_home_pe_never_answers() {
        // Drop *everything* recoverable: every GM request vanishes, so the
        // issuing app must exhaust its retries and trip the deadline.
        let cfg = LiveRunConfig {
            fault_plan: Some(FaultPlan::parse("seed=1,drop=1000").unwrap()),
            gm_retry: RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(20),
            },
            ..LiveRunConfig::default()
        };
        let err = LiveRunner::new(2)
            .config(cfg)
            .try_run(|ctx| {
                let arr = GmArray::<u64>::alloc(ctx, 8, Distribution::Blocked);
                // Rank 0 writes into rank 1's half: always a wire request.
                if ctx.rank() == 0 {
                    arr.set(ctx, 7, 42);
                }
                ctx.barrier();
            })
            .expect_err("an unanswerable GM request must trip the deadline");
        assert!(
            err.failures
                .iter()
                .any(|f| matches!(f.kind, FailureKind::GmDeadline { attempts: 3, .. })),
            "deadline trip must be first-hand: {err}"
        );
    }

    #[test]
    fn split_phase_batches_on_the_wire() {
        // Two non-adjacent writes to the same remote home must coalesce
        // into one GmBatchReq: exactly one request message for both.
        let r = LiveRunner::new(2).run(|ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 16, Distribution::Blocked);
            if ctx.rank() == 0 {
                // Elements 8..16 are homed on rank 1.
                let h1 = ctx.gm_write_nb(arr.region(), 8 * 8, &7u64.to_le_bytes());
                let h2 = ctx.gm_write_nb(arr.region(), 10 * 8, &9u64.to_le_bytes());
                ctx.gm_wait(h1);
                ctx.gm_wait(h2);
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                assert_eq!(arr.get(ctx, 8), 7);
                assert_eq!(arr.get(ctx, 10), 9);
            }
        });
        assert_eq!(
            r.metrics.counter("kernel", "gm_request_msgs", Some(0)),
            Some(1),
            "two staged writes to one home must travel as one batch"
        );
    }

    #[test]
    fn tracing_links_requester_serve_and_redeem_spans() {
        use dse_obs::TraceSpanKind;
        let cfg = LiveRunConfig {
            tracing: true,
            ..LiveRunConfig::default()
        };
        let r = LiveRunner::new(2)
            .config(cfg)
            .try_run(|ctx| {
                let arr = GmArray::<u64>::alloc(ctx, 8, Distribution::Blocked);
                arr.set(ctx, ctx.rank() as usize, ctx.rank() as u64 + 1);
                ctx.barrier();
                let all = arr.read(ctx, 0, 8);
                assert_eq!(all[0], 1);
                assert_eq!(all[1], 2);
            })
            .unwrap();
        assert_eq!(r.trace_spans.len(), 2);
        let all: Vec<_> = r.trace_spans.iter().flatten().collect();
        // Every PE closes exactly one root app span.
        assert_eq!(
            all.iter()
                .filter(|s| s.kind == TraceSpanKind::App && s.parent == 0)
                .count(),
            2
        );
        // Each GM request span must chain requester -> home serve ->
        // requester redeem: the serve span's id is derived from the
        // request span id on both endpoints independently.
        let reqs: Vec<_> = all
            .iter()
            .filter(|s| s.kind == TraceSpanKind::GmReq)
            .collect();
        assert!(!reqs.is_empty(), "remote reads must open request spans");
        for rq in &reqs {
            let serve_id = dse_kernel::task::serve_span_id(rq.span, 0);
            let serve = all
                .iter()
                .find(|s| s.kind == TraceSpanKind::Serve && s.span == serve_id)
                .unwrap_or_else(|| panic!("request span {} has no serve span", rq.span));
            assert_ne!(serve.pe, rq.pe, "serve happens at the home PE");
            assert!(
                all.iter()
                    .any(|s| s.kind == TraceSpanKind::Redeem && s.parent == serve_id),
                "serve span {serve_id} never redeemed at the requester"
            );
            assert_eq!(serve.trace, rq.trace, "one trace id end to end");
        }
        // Barrier rounds: each PE's wait span links to a release span
        // carrying the same barrier id in `seq`.
        let waits: Vec<_> = all
            .iter()
            .filter(|s| s.kind == TraceSpanKind::BarrierWait)
            .collect();
        assert!(!waits.is_empty(), "barrier rounds must record wait spans");
        assert_eq!(waits.len() % 2, 0, "every round blocks both PEs");
        for w in &waits {
            assert!(
                all.iter()
                    .any(|s| s.kind == TraceSpanKind::BarrierRelease && s.seq == w.seq),
                "barrier wait {} has no matching release",
                w.seq
            );
        }
    }

    /// Shared-table workload for the coherence tests: every rank replicates
    /// the whole array, then each rank writes one element homed on the
    /// *next* rank (so a third rank always holds a stale replica), plus one
    /// element of its own partition, then everyone re-reads everything.
    fn coherence_body(ctx: &mut LiveCtx) {
        // 384 u64 over 3 ranks: 128 elements (1024 bytes = 2 cache blocks)
        // per home.
        let arr = GmArray::<u64>::alloc(ctx, 384, Distribution::Blocked);
        ctx.barrier();
        let _ = arr.read(ctx, 0, 384); // replicate everything
        ctx.barrier();
        let me = ctx.rank() as usize;
        let remote = 128 * ((me + 1) % 3) + 7;
        let own = 128 * me + 11;
        arr.set(ctx, remote, (1000 + me) as u64);
        arr.set(ctx, own, (2000 + me) as u64);
        ctx.barrier();
        let all = arr.read(ctx, 0, 384);
        for r in 0..3usize {
            assert_eq!(all[128 * ((r + 1) % 3) + 7], (1000 + r) as u64);
            assert_eq!(all[128 * r + 11], (2000 + r) as u64);
        }
    }

    #[test]
    fn cached_wi_invalidates_stale_replicas() {
        // Write-invalidate: the stale third-party replicas must be killed
        // over the wire (home-gated remote writes and app-driven own-node
        // writes both), or the final reads above would observe stale data.
        let r = LiveRunner::new(3).gm_cache(true).run(coherence_body);
        let m = &r.metrics;
        assert!(m.counter_sum_over_pes("kernel", "dir_leases") > 0, "leases");
        assert!(m.counter_sum_over_pes("kernel", "dir_hits") > 0, "hits");
        assert!(
            m.counter_sum_over_pes("kernel", "cache_invalidations") > 0,
            "writes with sharers must invalidate"
        );
        assert!(
            m.counter_sum_over_pes("kernel", "dir_invals") > 0,
            "holders must apply wire invalidations"
        );
        assert_eq!(m.counter_sum_over_pes("kernel", "rc_deferred_invals"), 0);
    }

    #[test]
    fn cached_rc_is_correct_at_sync_points() {
        // Release consistency: zero invalidation traffic; the barriers'
        // implied acquires purge the replicas, so the final reads still
        // observe every released write. (The replicate-read is itself
        // followed by a barrier, so its leases are released again before
        // the writes — deferral counting is covered by the flag-ordered
        // test below.)
        let r = LiveRunner::new(3)
            .gm_cache(true)
            .gm_mode(GmMode::ReleaseConsistency)
            .run(coherence_body);
        let m = &r.metrics;
        assert_eq!(
            m.counter_sum_over_pes("kernel", "cache_invalidations"),
            0,
            "RC must not send invalidations"
        );
        assert_eq!(m.counter_sum_over_pes("kernel", "invalidation_rounds"), 0);
        assert!(
            m.counter_sum_over_pes("kernel", "rc_acquires") > 0,
            "barriers imply acquires"
        );
    }

    #[test]
    fn cached_read_mostly_serves_from_replicas() {
        let r = LiveRunner::new(2).gm_cache(true).run(|ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 256, Distribution::Blocked);
            ctx.barrier();
            for _ in 0..5 {
                let all = arr.read(ctx, 0, 256);
                assert_eq!(all[0], 0);
            }
        });
        let m = &r.metrics;
        assert!(
            m.counter_sum_over_pes("kernel", "dir_hits")
                >= m.counter_sum_over_pes("kernel", "dir_misses"),
            "repeat reads must be served from replicas"
        );
        // 5 full-array reads each, but only the first one fetches the
        // remote half: the request count stays near the uncached cost of a
        // single sweep.
        assert!(
            m.counter_sum_over_pes("kernel", "gm_request_msgs") <= 4,
            "replica hits must keep requests off the wire, got {}",
            m.counter_sum_over_pes("kernel", "gm_request_msgs")
        );
    }

    #[test]
    fn cached_rc_defers_invalidations_to_acquire() {
        // A hand-rolled release/acquire pair (no barrier, so no implied
        // purge between the lease and the write): the writer's update to a
        // block rank 0 holds a replica of must be *deferred* (counted, not
        // sent), and rank 0's explicit acquire must drop the stale replica
        // — without the purge, the cached block would satisfy the read.
        let r = LiveRunner::new(2)
            .gm_cache(true)
            .gm_mode(GmMode::ReleaseConsistency)
            .run(|ctx| {
                let arr = GmArray::<u64>::alloc(ctx, 256, Distribution::Blocked);
                let flag = GmCounter::alloc(ctx);
                ctx.barrier();
                if ctx.rank() == 0 {
                    let _ = arr.read(ctx, 128, 128); // replicate rank 1's half
                    flag.next(ctx); // leases are on record: let the writer go
                    while flag.load(ctx) < 2 {
                        std::thread::yield_now();
                    }
                    ctx.gm_acquire();
                    assert_eq!(arr.get(ctx, 200), 77, "acquire must drop the replica");
                } else {
                    while flag.load(ctx) < 1 {
                        std::thread::yield_now();
                    }
                    arr.set(ctx, 200, 77); // own partition; rank 0 holds a lease
                    ctx.gm_release();
                    flag.next(ctx);
                }
            });
        let m = &r.metrics;
        assert!(
            m.counter_sum_over_pes("kernel", "rc_deferred_invals") > 0,
            "a write over a leased block must count a deferral"
        );
        assert_eq!(
            m.counter_sum_over_pes("kernel", "cache_invalidations"),
            0,
            "RC must not send invalidations"
        );
        assert!(m.counter_sum_over_pes("kernel", "rc_acquires") > 0);
    }

    #[test]
    fn tracing_off_records_nothing() {
        let r = LiveRunner::new(2).run(|ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 4, Distribution::Blocked);
            arr.set(ctx, ctx.rank() as usize, 1);
            ctx.barrier();
        });
        assert!(r.trace_spans.iter().all(|v| v.is_empty()));
    }

    #[test]
    fn tasks_scheduler_runs_barriers_locks_and_gm() {
        let total = AtomicU64::new(0);
        LiveRunner::new(8)
            .scheduler(SchedulerKind::Tasks)
            .run(|ctx| {
                let arr = GmArray::<u64>::alloc(ctx, 8, Distribution::Blocked);
                arr.set(ctx, ctx.rank() as usize, ctx.rank() as u64 * 3);
                ctx.barrier();
                let all = arr.read(ctx, 0, 8);
                assert_eq!(all, (0..8u64).map(|r| r * 3).collect::<Vec<_>>());
                let c = GmCounter::alloc(ctx);
                ctx.barrier();
                loop {
                    let j = c.next(ctx);
                    if j >= 40 {
                        break;
                    }
                    total.fetch_add(j as u64, Ordering::Relaxed);
                }
            });
        assert_eq!(total.load(Ordering::Relaxed), (0..40u64).sum());
    }

    #[test]
    fn tasks_scheduler_aborted_run_reports_failures() {
        // Kill PE 1's endpoint mid-run under the task scheduler: the abort
        // latch must drain the whole worker pool instead of hanging it.
        let err = LiveRunner::new(3)
            .scheduler(SchedulerKind::Tasks)
            .fault_plan(FaultPlan::parse("seed=3,disconnect=1:8").unwrap())
            .try_run(|ctx| {
                let arr = GmArray::<u64>::alloc(ctx, 64, Distribution::Blocked);
                for round in 0..200 {
                    arr.set(ctx, (ctx.rank() as usize * 13 + round) % 64, round as u64);
                    ctx.barrier();
                }
            })
            .expect_err("a dead endpoint must fail the run");
        assert!(!err.failures.is_empty());
    }

    // ----- LiveRunner builder edge cases -----

    #[test]
    fn builder_setters_round_trip_into_run_config() {
        let hook = |_: &ClusterAggregator, _: u64| {};
        let plan = FaultPlan::parse("seed=5,drop=10").unwrap();
        let retry = RetryPolicy {
            max_attempts: 9,
            base_delay: Duration::from_millis(3),
            max_delay: Duration::from_millis(30),
        };
        let r = LiveRunner::new(4)
            .transport(TransportKind::Tcp)
            .fault_plan(plan.clone())
            .gm_retry(retry)
            .flight_capacity(99)
            .tracing(true)
            .gm_cache(true)
            .gm_mode(GmMode::ReleaseConsistency)
            .scheduler(SchedulerKind::Tasks)
            .kernel_tick(Duration::from_millis(7))
            .watch(Duration::from_millis(40), &hook);
        assert_eq!(r.cfg.kind, TransportKind::Tcp);
        assert_eq!(r.cfg.fault_plan, Some(plan));
        assert_eq!(r.cfg.gm_retry.max_attempts, 9);
        assert_eq!(r.cfg.gm_retry.base_delay, Duration::from_millis(3));
        assert_eq!(r.cfg.flight_capacity, 99);
        assert!(r.cfg.tracing);
        assert!(r.cfg.gm_cache);
        assert_eq!(r.cfg.gm_mode, GmMode::ReleaseConsistency);
        assert_eq!(r.cfg.scheduler, SchedulerKind::Tasks);
        assert_eq!(r.cfg.kernel_tick, Some(Duration::from_millis(7)));
        assert!(r.watch.is_some());
        // `config` replaces the whole assembled configuration at once.
        let r = r.config(LiveRunConfig::default());
        assert_eq!(r.cfg.kind, TransportKind::Channel);
        assert_eq!(r.cfg.scheduler, SchedulerKind::Threads);
        assert_eq!(r.cfg.kernel_tick, None);
    }

    #[test]
    fn kernel_tick_defaults_per_scheduler_and_overrides() {
        let threads = LiveCluster::with_config(2, &LiveRunConfig::default());
        assert_eq!(threads.kernel_tick, THREADS_TICK);
        let tasks = LiveCluster::with_config(
            2,
            &LiveRunConfig {
                scheduler: SchedulerKind::Tasks,
                ..LiveRunConfig::default()
            },
        );
        assert_eq!(tasks.kernel_tick, TASKS_TICK);
        let explicit = LiveCluster::with_config(
            2,
            &LiveRunConfig {
                kernel_tick: Some(Duration::from_millis(2)),
                ..LiveRunConfig::default()
            },
        );
        assert_eq!(explicit.kernel_tick, Duration::from_millis(2));
    }

    #[test]
    fn gm_mode_without_cache_is_inert() {
        // Setting a coherence protocol while the cache is off must not
        // change behavior: no directory, no leases, no invalidations.
        let r = LiveRunner::new(3)
            .gm_mode(GmMode::ReleaseConsistency)
            .run(|ctx| {
                let arr = GmArray::<u64>::alloc(ctx, 6, Distribution::Blocked);
                arr.set(ctx, ctx.rank() as usize, 5);
                ctx.barrier();
                let _ = arr.read(ctx, 0, 6);
                ctx.gm_release();
                ctx.gm_acquire();
            });
        assert_eq!(r.metrics.counter_sum_over_pes("kernel", "dir_leases"), 0);
        assert_eq!(r.metrics.counter_sum_over_pes("kernel", "dir_invals"), 0);
        assert_eq!(
            r.metrics
                .counter_sum_over_pes("kernel", "rc_deferred_invals"),
            0
        );
    }

    #[test]
    fn cache_with_write_invalidate_and_rc_both_run_clean() {
        // The two legal gm_mode/gm_cache combinations both complete and
        // agree on program results.
        for mode in [GmMode::WriteInvalidate, GmMode::ReleaseConsistency] {
            let r = LiveRunner::new(2).gm_cache(true).gm_mode(mode).run(|ctx| {
                let arr = GmArray::<u64>::alloc(ctx, 4, Distribution::Blocked);
                arr.set(ctx, ctx.rank() as usize, 11);
                ctx.barrier();
                ctx.gm_acquire();
                let sum: u64 = arr.read(ctx, 0, 4).iter().sum();
                assert_eq!(sum, 22);
            });
            assert!(r.metrics.counter_sum_over_pes("kernel", "requests_served") > 0);
        }
    }

    #[test]
    fn watch_composes_with_try_run() {
        let ticks = AtomicU64::new(0);
        let hook = |_: &ClusterAggregator, _: u64| {
            ticks.fetch_add(1, Ordering::Relaxed);
        };
        let r = LiveRunner::new(2)
            .watch(Duration::from_millis(5), &hook)
            .try_run(|ctx| {
                let c = GmCounter::alloc(ctx);
                ctx.barrier();
                while c.next(ctx) < 20 {}
            })
            .expect("watched try_run must succeed");
        // The final absolute round always fires the hook at least once and
        // produces a rollup that matches the registry.
        assert!(ticks.load(Ordering::Relaxed) >= 1);
        let rollup = r.telemetry_rollup.expect("watched run yields a rollup");
        assert_eq!(
            rollup.counter_sum_over_pes("kernel", "requests_served"),
            r.metrics.counter_sum_over_pes("kernel", "requests_served")
        );
    }
}
