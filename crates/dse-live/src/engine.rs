//! The live execution engine: the same Parallel API on real OS threads.
//!
//! Where the simulator answers "how long would this have taken on a 1999
//! cluster", the live engine simply *runs* the program — one thread per DSE
//! process, the global memory backed by the same `GlobalStore`, barriers
//! and locks by real synchronization primitives, wall-clock timing. One
//! application body, two engines: the portability the paper argues for.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use dse_api::ParallelApi;
use dse_kernel::gmem::GlobalStore;
use dse_kernel::Distribution;
use dse_msg::RegionId;
use dse_obs::{
    ClusterAggregator, DeltaTracker, MetricKey, MetricsSnapshot, Registry, TelemetryDelta,
};
use dse_platform::Work;

/// Cluster lock table: held ids plus a condvar for waiters.
struct LiveLocks {
    held: Mutex<std::collections::HashSet<u32>>,
    cv: Condvar,
}

/// Shared state of a live run.
pub struct LiveCluster {
    nprocs: usize,
    store: GlobalStore,
    barriers: Mutex<HashMap<u32, Arc<Barrier>>>,
    locks: LiveLocks,
    allocs: Mutex<Vec<(RegionId, usize)>>,
    /// Wall-clock observability: the same registry the simulator uses,
    /// fed with `Instant`-measured nanoseconds instead of virtual time.
    metrics: Registry,
}

impl LiveCluster {
    /// Shared state for `nprocs` processes.
    pub fn new(nprocs: usize) -> LiveCluster {
        LiveCluster {
            nprocs,
            store: GlobalStore::new(nprocs),
            barriers: Mutex::new(HashMap::new()),
            locks: LiveLocks {
                held: Mutex::new(std::collections::HashSet::new()),
                cv: Condvar::new(),
            },
            allocs: Mutex::new(Vec::new()),
            metrics: Registry::new(),
        }
    }

    fn barrier_for(&self, id: u32) -> Arc<Barrier> {
        let mut map = self.barriers.lock();
        Arc::clone(
            map.entry(id)
                .or_insert_with(|| Arc::new(Barrier::new(self.nprocs))),
        )
    }

    /// The backing global store (for post-run inspection).
    pub fn store(&self) -> &GlobalStore {
        &self.store
    }

    /// The live metrics registry (wall-clock latencies, per-rank counters).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }
}

/// Per-process context of the live engine.
pub struct LiveCtx {
    rank: u32,
    cluster: Arc<LiveCluster>,
    barrier_seq: u32,
    alloc_seq: usize,
    /// Reusable scratch for element-wise `GmArray` accessors.
    scratch: Vec<u8>,
}

impl LiveCtx {
    /// Run `f`, recording its wall-clock duration into this rank's
    /// `name` histogram (subsystem `gm` or `sync`, nanoseconds).
    fn timed<R>(&self, subsystem: &'static str, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.cluster.metrics.record(
            MetricKey::pe(subsystem, name, self.rank),
            start.elapsed().as_nanos() as u64,
        );
        out
    }
}

/// Matches [`dse_api::AUTO_BARRIER_BASE`]: auto-sequenced barrier ids live
/// above this bound on both engines.
const AUTO_BARRIER_BASE: u32 = 0x4000_0000;

impl ParallelApi for LiveCtx {
    fn rank(&self) -> u32 {
        self.rank
    }

    fn nprocs(&self) -> usize {
        self.cluster.nprocs
    }

    fn compute(&mut self, _work: Work) {
        // The computation already ran for real; nothing to account.
    }

    fn gm_alloc(&mut self, len: usize, dist: Distribution) -> RegionId {
        let seq = self.alloc_seq;
        self.alloc_seq += 1;
        let mut table = self.cluster.allocs.lock();
        if let Some(&(id, existing)) = table.get(seq) {
            assert_eq!(existing, len, "collective allocation #{seq} size mismatch");
            return id;
        }
        assert_eq!(table.len(), seq, "collective allocations out of order");
        let id = self.cluster.store.alloc(len, dist);
        table.push((id, len));
        id
    }

    fn gm_read(&mut self, region: RegionId, offset: u64, len: usize) -> Vec<u8> {
        self.cluster
            .metrics
            .incr(MetricKey::pe("gm", "reads", self.rank));
        self.timed("gm", "read_ns", || {
            self.cluster
                .store
                .read(region, offset, len)
                .unwrap_or_else(|e| panic!("live rank {}: gm_read failed: {e}", self.rank))
        })
    }

    fn gm_write(&mut self, region: RegionId, offset: u64, data: &[u8]) {
        self.cluster
            .metrics
            .incr(MetricKey::pe("gm", "writes", self.rank));
        self.timed("gm", "write_ns", || {
            self.cluster
                .store
                .write(region, offset, data)
                .unwrap_or_else(|e| panic!("live rank {}: gm_write failed: {e}", self.rank))
        })
    }

    fn gm_read_into(&mut self, region: RegionId, offset: u64, out: &mut [u8]) {
        self.cluster
            .metrics
            .incr(MetricKey::pe("gm", "reads", self.rank));
        self.timed("gm", "read_ns", || {
            self.cluster
                .store
                .read_into(region, offset, out)
                .unwrap_or_else(|e| panic!("live rank {}: gm_read failed: {e}", self.rank))
        })
    }

    fn take_scratch(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.scratch)
    }

    fn put_scratch(&mut self, buf: Vec<u8>) {
        self.scratch = buf;
    }

    fn gm_fetch_add(&mut self, region: RegionId, offset: u64, delta: i64) -> i64 {
        self.cluster
            .metrics
            .incr(MetricKey::pe("gm", "fetch_adds", self.rank));
        self.timed("gm", "fetch_add_ns", || {
            self.cluster
                .store
                .fetch_add(region, offset, delta)
                .unwrap_or_else(|e| panic!("live rank {}: fetch_add failed: {e}", self.rank))
        })
    }

    fn barrier(&mut self) {
        let id = AUTO_BARRIER_BASE + self.barrier_seq;
        self.barrier_seq += 1;
        let barrier = self.cluster.barrier_for(id);
        self.timed("sync", "barrier_wait_ns", || {
            barrier.wait();
        });
    }

    fn lock(&mut self, id: u32) {
        self.timed("sync", "lock_wait_ns", || {
            let mut held = self.cluster.locks.held.lock();
            while held.contains(&id) {
                self.cluster.locks.cv.wait(&mut held);
            }
            held.insert(id);
        });
    }

    fn unlock(&mut self, id: u32) {
        let mut held = self.cluster.locks.held.lock();
        assert!(held.remove(&id), "unlock of lock {id} not held");
        drop(held);
        self.cluster.locks.cv.notify_all();
    }
}

/// Result of a live run.
#[derive(Debug, Clone)]
pub struct LiveRunResult {
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Threads used.
    pub nprocs: usize,
    /// Observability snapshot: per-rank GM/sync counters and wall-clock
    /// latency histograms (same schema as the simulator's).
    pub metrics: MetricsSnapshot,
    /// The rollup the telemetry sampler rebuilt through the in-band delta
    /// codec (`Some` only for [`run_live_watched`] runs; matches `metrics`
    /// after a clean run).
    pub telemetry_rollup: Option<MetricsSnapshot>,
}

/// Run `body` as an SPMD program over `nprocs` real threads.
///
/// ```
/// use dse_api::{collective, ParallelApi};
///
/// let result = dse_live::run_live(4, |ctx| {
///     let all = collective::all_gather(ctx, ctx.rank() as i64);
///     assert_eq!(all, vec![0, 1, 2, 3]);
/// });
/// assert_eq!(result.nprocs, 4);
/// ```
pub fn run_live<F>(nprocs: usize, body: F) -> LiveRunResult
where
    F: Fn(&mut LiveCtx) + Send + Sync,
{
    run_live_inner(nprocs, None, body)
}

/// Watched variant of [`run_live`]: a sampler thread wakes every
/// `interval`, drives one telemetry round — each rank's [`DeltaTracker`]
/// through the same encode/decode codec the simulator ships over the wire,
/// into a [`ClusterAggregator`] — and invokes `hook` with the aggregator
/// and the elapsed wall clock in nanoseconds. The hook signature matches
/// the simulator's epoch hook, so one rendering function (e.g.
/// `dse_ssi::view::render_top`) serves both engines. When every rank has
/// finished, a final absolute round runs, the hook fires once more, and
/// the resulting rollup lands in [`LiveRunResult::telemetry_rollup`].
pub fn run_live_watched<F, H>(nprocs: usize, interval: Duration, hook: H, body: F) -> LiveRunResult
where
    F: Fn(&mut LiveCtx) + Send + Sync,
    H: Fn(&ClusterAggregator, u64) + Send + Sync,
{
    run_live_inner(nprocs, Some((interval, &hook)), body)
}

type WatchSpec<'h> = (
    Duration,
    &'h (dyn Fn(&ClusterAggregator, u64) + Send + Sync),
);

fn run_live_inner<F>(nprocs: usize, watch: Option<WatchSpec<'_>>, body: F) -> LiveRunResult
where
    F: Fn(&mut LiveCtx) + Send + Sync,
{
    assert!(nprocs > 0);
    let cluster = Arc::new(LiveCluster::new(nprocs));
    let done = AtomicUsize::new(0);
    let rollup_cell: Mutex<Option<MetricsSnapshot>> = Mutex::new(None);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for rank in 0..nprocs {
            let cluster = Arc::clone(&cluster);
            let body = &body;
            let done = &done;
            scope.spawn(move || {
                let mut ctx = LiveCtx {
                    rank: rank as u32,
                    cluster,
                    barrier_seq: 0,
                    alloc_seq: 0,
                    scratch: Vec::new(),
                };
                body(&mut ctx);
                done.fetch_add(1, Ordering::Release);
            });
        }
        if let Some((interval, hook)) = watch {
            let cluster = Arc::clone(&cluster);
            let done = &done;
            let rollup_cell = &rollup_cell;
            scope.spawn(move || {
                let mut trackers: Vec<DeltaTracker> = (0..nprocs)
                    .map(|r| DeltaTracker::new(r as u32, r == 0))
                    .collect();
                let mut agg = ClusterAggregator::new(nprocs);
                loop {
                    // Read the completion flag *before* the snapshot: if all
                    // ranks were done by then, the snapshot is final and the
                    // closing absolute round reproduces it exactly.
                    let finished = done.load(Ordering::Acquire) == nprocs;
                    let snap = cluster.metrics.snapshot();
                    let now_ns = start.elapsed().as_nanos() as u64;
                    for t in trackers.iter_mut() {
                        let emitted = if finished {
                            Some(t.absolute(&snap, &[]))
                        } else {
                            t.delta(&snap, &[], t.pe() == 0)
                        };
                        if let Some((seq, d)) = emitted {
                            let back = TelemetryDelta::decode(&d.encode())
                                .expect("telemetry self-roundtrip");
                            agg.apply(t.pe(), seq, now_ns, &back);
                        }
                    }
                    hook(&agg, now_ns);
                    if finished {
                        break;
                    }
                    std::thread::sleep(interval);
                }
                *rollup_cell.lock() = Some(agg.rollup());
            });
        }
    });
    LiveRunResult {
        elapsed: start.elapsed(),
        nprocs,
        metrics: cluster.metrics.snapshot(),
        telemetry_rollup: rollup_cell.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_api::{collective, GmArray, GmCounter};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn live_barrier_and_gm_roundtrip() {
        run_live(4, |ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 4, Distribution::Blocked);
            arr.set(ctx, ctx.rank() as usize, ctx.rank() as u64 * 10);
            ctx.barrier();
            let all = arr.read(ctx, 0, 4);
            assert_eq!(all, vec![0, 10, 20, 30]);
        });
    }

    #[test]
    fn live_counter_is_exactly_once() {
        let total = AtomicU64::new(0);
        run_live(4, |ctx| {
            let c = GmCounter::alloc(ctx);
            ctx.barrier();
            loop {
                let j = c.next(ctx);
                if j >= 100 {
                    break;
                }
                total.fetch_add(j as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..100u64).sum());
    }

    #[test]
    fn live_metrics_capture_gm_and_sync() {
        let r = run_live(3, |ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 3, Distribution::Blocked);
            arr.set(ctx, ctx.rank() as usize, 1);
            ctx.barrier();
            let _ = arr.read(ctx, 0, 3);
        });
        assert!(r.metrics.counter("gm", "writes", Some(0)).unwrap_or(0) >= 1);
        let h = r
            .metrics
            .histogram("sync", "barrier_wait_ns", Some(1))
            .expect("barrier histogram for rank 1");
        assert!(h.count() >= 1);
    }

    #[test]
    fn watched_rollup_matches_direct_snapshot() {
        let epochs = AtomicU64::new(0);
        let r = run_live_watched(
            3,
            Duration::from_millis(1),
            |_agg, _now_ns| {
                epochs.fetch_add(1, Ordering::SeqCst);
            },
            |ctx| {
                let arr = GmArray::<u64>::alloc(ctx, 3, Distribution::Blocked);
                arr.set(ctx, ctx.rank() as usize, 7);
                ctx.barrier();
                let _ = arr.read(ctx, 0, 3);
            },
        );
        assert!(epochs.load(Ordering::SeqCst) >= 1, "hook never fired");
        let rollup = r.telemetry_rollup.expect("watched run produces a rollup");
        assert_eq!(
            rollup.to_jsonl(),
            r.metrics.to_jsonl(),
            "in-band rollup must reproduce the wall-clock registry exactly"
        );
    }

    #[test]
    fn unwatched_run_has_no_rollup() {
        let r = run_live(2, |ctx| ctx.barrier());
        assert!(r.telemetry_rollup.is_none());
    }

    #[test]
    fn live_collectives() {
        run_live(5, |ctx| {
            let s = collective::reduce_sum(ctx, 1.0);
            assert_eq!(s, 5.0);
            let g = collective::all_gather(ctx, ctx.rank() as i64);
            assert_eq!(g, vec![0, 1, 2, 3, 4]);
        });
    }

    #[test]
    fn live_locks_are_mutually_exclusive() {
        let inside = AtomicU64::new(0);
        run_live(6, |ctx| {
            for _ in 0..50 {
                ctx.lock(3);
                let v = inside.fetch_add(1, Ordering::SeqCst);
                assert_eq!(v, 0, "two threads inside the critical section");
                inside.fetch_sub(1, Ordering::SeqCst);
                ctx.unlock(3);
            }
        });
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn live_unlock_unheld_panics() {
        run_live(1, |ctx| {
            ctx.unlock(9);
        });
    }
}
