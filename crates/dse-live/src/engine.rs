//! The live execution engine: the same Parallel API, driven by real wire
//! messages over a pluggable [`Transport`].
//!
//! Where the simulator answers "how long would this have taken on a 1999
//! cluster", the live engine *runs* the program — and it runs it the way
//! the paper's Fig. 3 describes. Each processor element hosts two threads:
//!
//! * an **application thread** executing the rank's body through
//!   [`LiveCtx`], whose global-memory accesses take the own-node fast path
//!   when the range is homed locally and otherwise become encoded
//!   `GmReadReq`/`GmWriteReq`/`GmBatchReq` request messages to the home
//!   PE's kernel;
//! * a **kernel thread** — the linked-library DSE kernel's message loop —
//!   the sole consumer of the PE's transport endpoint. It services incoming
//!   GM requests against the global store, forwards responses to its own
//!   application thread, and (on PE 0) runs the cluster coordinator:
//!   barriers, locks, exit collection, and the telemetry aggregator behind
//!   `--watch`.
//!
//! The transport is chosen per run ([`TransportKind`]): an in-process
//! channel mesh, a framed TCP-over-loopback mesh, or Unix domain sockets —
//! identical program results on all of them, which is the portability claim
//! made mechanical.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use dse_api::{GmHandle, ParallelApi};
use dse_kernel::gmem::GlobalStore;
use dse_kernel::{
    serve_gm, BarrierCenter, BarrierOutcome, Distribution, GmServiceHooks, LockCenter, LockOutcome,
    Party, Served, UnlockOutcome,
};
use dse_msg::{GlobalPid, GmOp, Message, NodeId, RegionId, ReqId, ReqIdGen};
use dse_obs::{
    ClusterAggregator, DeltaTracker, MetricKey, MetricsSnapshot, Registry, TelemetryDelta,
};
use dse_platform::Work;
use dse_transport::{ChannelTransport, SocketTransport, Transport, TransportError};

/// Which wire carries the live engine's messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process MPSC channel mesh (frames still encoded/decoded).
    Channel,
    /// Framed TCP over loopback, one connection per PE pair.
    Tcp,
    /// Framed Unix domain sockets (Unix only).
    Uds,
}

impl TransportKind {
    /// Stable lowercase name (matches the `--transport` CLI flag values).
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Channel => "channel",
            TransportKind::Tcp => "tcp",
            TransportKind::Uds => "uds",
        }
    }
}

/// Distinguishes concurrent UDS meshes within one process.
static UDS_RUN: AtomicU64 = AtomicU64::new(0);

fn build_transports(kind: TransportKind, nprocs: usize) -> Vec<Arc<dyn Transport>> {
    let n = nprocs as u32;
    match kind {
        TransportKind::Channel => ChannelTransport::cluster(n)
            .into_iter()
            .map(|t| Arc::new(t) as Arc<dyn Transport>)
            .collect(),
        TransportKind::Tcp => SocketTransport::tcp_cluster(n)
            .unwrap_or_else(|e| panic!("live engine: TCP mesh construction failed: {e}"))
            .into_iter()
            .map(|t| Arc::new(t) as Arc<dyn Transport>)
            .collect(),
        TransportKind::Uds => {
            let dir = std::env::temp_dir().join(format!(
                "dse-live-{}-{}",
                std::process::id(),
                UDS_RUN.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| panic!("live engine: cannot create socket dir: {e}"));
            let cluster = SocketTransport::uds_cluster(n, &dir)
                .unwrap_or_else(|e| panic!("live engine: UDS mesh construction failed: {e}"));
            cluster
                .into_iter()
                .map(|t| Arc::new(t) as Arc<dyn Transport>)
                .collect()
        }
    }
}

/// Shared state of a live run: the home-partitioned global store and the
/// wall-clock metrics registry. Partition ownership is enforced by routing
/// — a rank only touches bytes homed elsewhere through request messages to
/// the home PE's kernel thread, never directly.
pub struct LiveCluster {
    nprocs: usize,
    store: GlobalStore,
    allocs: Mutex<Vec<(RegionId, usize)>>,
    /// Wall-clock observability: the same registry the simulator uses,
    /// fed with `Instant`-measured nanoseconds instead of virtual time.
    metrics: Registry,
}

impl LiveCluster {
    /// Shared state for `nprocs` processing elements.
    pub fn new(nprocs: usize) -> LiveCluster {
        LiveCluster {
            nprocs,
            store: GlobalStore::new(nprocs),
            allocs: Mutex::new(Vec::new()),
            metrics: Registry::new(),
        }
    }

    /// The backing global store (for post-run inspection).
    pub fn store(&self) -> &GlobalStore {
        &self.store
    }

    /// The live metrics registry (wall-clock latencies, per-rank counters).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }
}

/// Matches [`dse_api::AUTO_BARRIER_BASE`]: auto-sequenced barrier ids live
/// above this bound on both engines.
const AUTO_BARRIER_BASE: u32 = 0x4000_0000;

// ---------------------------------------------------------------------------
// Kernel thread: the per-PE message loop.
// ---------------------------------------------------------------------------

type WatchHook<'h> = &'h (dyn Fn(&ClusterAggregator, u64) + Send + Sync);
type WatchSpec<'h> = (Duration, WatchHook<'h>);

/// Kernel-side GM service accounting, using the same metric names the
/// simulator's kernel emits so one `dse-top` view serves both engines.
struct LiveGmHooks<'a> {
    metrics: &'a Registry,
    pe: u32,
}

impl GmServiceHooks for LiveGmHooks<'_> {
    fn read_executed(&mut self, _region: dse_msg::RegionId, _offset: u64, data: &[u8]) {
        self.metrics.add(
            MetricKey::pe("kernel", "gm_bytes_read", self.pe),
            data.len() as u64,
        );
    }
    fn write_executed(&mut self, _region: dse_msg::RegionId, _offset: u64, len: usize) {
        self.metrics.add(
            MetricKey::pe("kernel", "gm_bytes_written", self.pe),
            len as u64,
        );
    }
    fn fetch_add_executed(&mut self, _region: dse_msg::RegionId, _offset: u64) {}
}

/// What the app thread can receive from its kernel: responses to its own
/// requests and coordination wakeups, forwarded off the transport.
fn is_app_bound(msg: &Message) -> bool {
    matches!(
        msg,
        Message::GmReadResp { .. }
            | Message::GmWriteAck { .. }
            | Message::GmBatchResp { .. }
            | Message::GmFetchAddResp { .. }
            | Message::BarrierRelease { .. }
            | Message::LockGrant { .. }
    )
}

/// One PE's kernel loop: the single consumer of this PE's transport.
///
/// Serves GM requests against the store (responses go back on the wire),
/// forwards app-bound messages to the co-resident application thread, and
/// on PE 0 additionally coordinates barriers, locks, exit collection and
/// telemetry aggregation. Returns this PE's delta tracker (for the final
/// absolute telemetry round) and, on a watched PE 0, the aggregator.
fn live_kernel(
    pe: u32,
    cluster: &LiveCluster,
    transport: &Arc<dyn Transport>,
    app_tx: mpsc::Sender<Message>,
    watch: Option<WatchSpec<'_>>,
    start: Instant,
) -> (DeltaTracker, Option<ClusterAggregator>) {
    let nprocs = cluster.nprocs;
    let mut tracker = DeltaTracker::new(pe, pe == 0);
    let mut agg = (pe == 0 && watch.is_some()).then(|| ClusterAggregator::new(nprocs));
    // Coordination state lives on PE 0 (reply tokens are PE ranks).
    let barriers: BarrierCenter<u32> = BarrierCenter::new(nprocs);
    let locks: LockCenter<u32> = LockCenter::new();
    let mut exited = 0usize;
    let mut last_emit = Instant::now();
    let send = |to: u32, msg: &Message| {
        transport
            .send(to, msg)
            .unwrap_or_else(|e| panic!("live kernel PE {pe}: send to {to} failed: {e}"));
    };
    loop {
        let timeout = watch
            .as_ref()
            .map(|(iv, _)| iv.saturating_sub(last_emit.elapsed()));
        let env = match transport.recv(timeout) {
            Ok(env) => env,
            Err(TransportError::Closed) => break,
            Err(e) => panic!("live kernel PE {pe}: transport receive failed: {e}"),
        };
        let mut shutdown = false;
        if let Some(env) = env {
            let from = env.from;
            let t0 = Instant::now();
            cluster
                .metrics
                .incr(MetricKey::pe("kernel", "messages", pe));
            let mut hooks = LiveGmHooks {
                metrics: &cluster.metrics,
                pe,
            };
            match serve_gm(&cluster.store, env.msg, &mut hooks) {
                Served::Response(resp) => {
                    cluster
                        .metrics
                        .incr(MetricKey::pe("kernel", "requests_served", pe));
                    cluster.metrics.record(
                        MetricKey::pe("kernel", "service_ns", pe),
                        t0.elapsed().as_nanos() as u64,
                    );
                    send(from, &resp);
                }
                Served::NotGm(msg) if is_app_bound(&msg) => {
                    // Response or wakeup addressed to our application
                    // thread; it may have exited already if the program is
                    // erroneous, so delivery is best-effort.
                    let _ = app_tx.send(msg);
                }
                Served::NotGm(msg) => match msg {
                    Message::BarrierEnter { barrier, pid } => {
                        let party = Party {
                            pid,
                            node: NodeId(from as u16),
                            reply_to: from,
                            req: ReqId(0),
                        };
                        if let BarrierOutcome::Complete { epoch, waiters } =
                            barriers.enter(barrier, party)
                        {
                            let release = Message::BarrierRelease { barrier, epoch };
                            for w in waiters {
                                send(w.reply_to, &release);
                            }
                            send(from, &release);
                        }
                    }
                    Message::LockReq { req, lock, pid } => {
                        let party = Party {
                            pid,
                            node: NodeId(from as u16),
                            reply_to: from,
                            req,
                        };
                        if let LockOutcome::Granted = locks.acquire(lock, party) {
                            send(from, &Message::LockGrant { req, lock });
                        }
                    }
                    Message::UnlockReq { lock, pid } => {
                        if let UnlockOutcome::Granted(next) = locks.release(lock, pid) {
                            send(
                                next.reply_to,
                                &Message::LockGrant {
                                    req: next.req,
                                    lock,
                                },
                            );
                        }
                    }
                    Message::ExitNotice { .. } => {
                        exited += 1;
                        if exited == nprocs {
                            for q in 0..nprocs as u32 {
                                send(q, &Message::KernelShutdown);
                            }
                        }
                    }
                    Message::Telemetry {
                        pe: src,
                        seq,
                        payload,
                    } => {
                        if let Some(agg) = agg.as_mut() {
                            let delta = TelemetryDelta::decode(&payload)
                                .expect("live telemetry delta decode");
                            agg.apply(src, seq, start.elapsed().as_nanos() as u64, &delta);
                        }
                    }
                    Message::KernelShutdown => shutdown = true,
                    other => panic!("live kernel PE {pe}: unexpected message {other:?}"),
                },
            }
        }
        if let Some((interval, hook)) = watch.as_ref() {
            if last_emit.elapsed() >= *interval {
                last_emit = Instant::now();
                let snap = cluster.metrics.snapshot();
                // PE 0 forces an empty heartbeat so the aggregator's
                // staleness clock keeps advancing on an idle cluster.
                if let Some((seq, d)) = tracker.delta(&snap, &[], pe == 0) {
                    // The aggregating PE may already be gone during
                    // shutdown; a lost delta is healed by the final
                    // absolute round.
                    let _ = transport.send(
                        0,
                        &Message::Telemetry {
                            pe,
                            seq,
                            payload: d.encode(),
                        },
                    );
                }
                if let Some(agg) = agg.as_ref() {
                    hook(agg, start.elapsed().as_nanos() as u64);
                }
            }
        }
        if shutdown {
            break;
        }
    }
    transport.shutdown();
    (tracker, agg)
}

// ---------------------------------------------------------------------------
// Application thread: LiveCtx, the ParallelApi over the wire.
// ---------------------------------------------------------------------------

/// Where a completed read segment's bytes land.
#[derive(Clone, Copy)]
struct ReadDest {
    handle: u64,
    buf_off: usize,
    abs_off: u64,
    len: usize,
}

/// Bookkeeping for one read request on the wire (plain or batched).
struct ReadCtl {
    offset: u64,
    len: usize,
    dests: Vec<ReadDest>,
}

/// Bookkeeping for one write request on the wire: the handles it completes.
struct WriteCtl {
    writers: Vec<u64>,
}

/// One staged (not yet sent) split-phase segment.
struct StagedSeg {
    home: u32,
    region: RegionId,
    offset: u64,
    kind: SegKind,
}

enum SegKind {
    Read { len: usize, dests: Vec<ReadDest> },
    Write { data: Vec<u8>, writers: Vec<u64> },
}

/// An issued request awaiting its response, keyed by correlation id.
enum InflightReq {
    Read(ReadCtl),
    Write(WriteCtl),
    Batch(Vec<InflightOp>),
}

enum InflightOp {
    Read(ReadCtl),
    Write(WriteCtl),
}

/// A split-phase handle's outstanding work.
struct HandleState {
    /// Segments (staged or in flight) still owed to this handle.
    remaining: usize,
    /// Read destination buffer (`None` for writes).
    buf: Option<Vec<u8>>,
    /// Issue time, for the completion latency histogram.
    started: Instant,
    is_read: bool,
    /// Whether any segment left the node (decides the latency histogram:
    /// `remote_*_ns` vs `local_*_ns`, matching the simulator's names).
    remote: bool,
}

/// Per-process context of the live engine: implements [`ParallelApi`] by
/// splitting each access across home nodes — own-node ranges go straight to
/// the store (the linked-library fast path), remote ranges become staged
/// request messages that coalesce per home and travel as real wire traffic.
pub struct LiveCtx {
    rank: u32,
    pid: GlobalPid,
    cluster: Arc<LiveCluster>,
    transport: Arc<dyn Transport>,
    app_rx: mpsc::Receiver<Message>,
    reqs: ReqIdGen,
    barrier_seq: u32,
    alloc_seq: usize,
    /// Messages that arrived while awaiting something else.
    stash: VecDeque<Message>,
    /// Split-phase machinery (mirrors the simulator's `DseCtx`).
    next_handle: u64,
    handles: HashMap<u64, HandleState>,
    completed: HashMap<u64, Option<Vec<u8>>>,
    staged: Vec<StagedSeg>,
    inflight: HashMap<u64, InflightReq>,
    /// Reusable scratch for element-wise `GmArray` accessors.
    scratch: Vec<u8>,
}

impl LiveCtx {
    fn new(
        rank: u32,
        cluster: Arc<LiveCluster>,
        transport: Arc<dyn Transport>,
        app_rx: mpsc::Receiver<Message>,
    ) -> LiveCtx {
        LiveCtx {
            rank,
            pid: GlobalPid::new(NodeId(rank as u16), 1),
            cluster,
            transport,
            app_rx,
            reqs: ReqIdGen::new(),
            barrier_seq: 0,
            alloc_seq: 0,
            stash: VecDeque::new(),
            next_handle: 0,
            handles: HashMap::new(),
            completed: HashMap::new(),
            staged: Vec::new(),
            inflight: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    fn metrics(&self) -> &Registry {
        &self.cluster.metrics
    }

    fn send(&self, to: u32, msg: &Message) {
        self.transport
            .send(to, msg)
            .unwrap_or_else(|e| panic!("live rank {}: send to {to} failed: {e}", self.rank));
    }

    /// Receive the next message forwarded by our kernel thread.
    fn recv(&mut self) -> Message {
        self.app_rx
            .recv()
            .unwrap_or_else(|_| panic!("live rank {}: kernel thread went away", self.rank))
    }

    fn new_handle(&mut self) -> u64 {
        self.next_handle += 1;
        self.next_handle
    }

    fn home_of(&self, region: RegionId, offset: u64) -> u32 {
        self.cluster
            .store
            .home_of(region, offset)
            .unwrap_or_else(|e| panic!("live rank {}: bad GM address: {e}", self.rank))
            .0 as u32
    }

    // ----- split-phase issue/stage/flush -----------------------------------

    fn issue_read(&mut self, region: RegionId, offset: u64, len: usize, eager: bool) -> GmHandle {
        self.metrics().incr(MetricKey::pe("gm", "reads", self.rank));
        let runs = self
            .cluster
            .store
            .split_by_home(region, offset, len)
            .unwrap_or_else(|e| panic!("live rank {}: gm_read failed: {e}", self.rank));
        let handle = self.new_handle();
        self.handles.insert(
            handle,
            HandleState {
                remaining: 1, // issuance token, released below
                buf: Some(vec![0u8; len]),
                started: Instant::now(),
                is_read: true,
                remote: false,
            },
        );
        for (home, off, rlen) in runs {
            let buf_off = (off - offset) as usize;
            if home.0 as u32 == self.rank {
                // Own-node fast path: straight into the store.
                let buf = self.handles.get_mut(&handle).unwrap().buf.as_mut().unwrap();
                self.cluster
                    .store
                    .read_into(region, off, &mut buf[buf_off..buf_off + rlen])
                    .unwrap();
                continue;
            }
            let st = self.handles.get_mut(&handle).unwrap();
            st.remaining += 1;
            st.remote = true;
            self.stage_read(home.0 as u32, region, off, rlen, handle, buf_off, eager);
        }
        self.release_issuance_token(handle)
    }

    fn issue_write(&mut self, region: RegionId, offset: u64, data: &[u8], eager: bool) -> GmHandle {
        self.metrics()
            .incr(MetricKey::pe("gm", "writes", self.rank));
        let runs = self
            .cluster
            .store
            .split_by_home(region, offset, data.len())
            .unwrap_or_else(|e| panic!("live rank {}: gm_write failed: {e}", self.rank));
        let handle = self.new_handle();
        self.handles.insert(
            handle,
            HandleState {
                remaining: 1, // issuance token, released below
                buf: None,
                started: Instant::now(),
                is_read: false,
                remote: false,
            },
        );
        for (home, off, rlen) in runs {
            let buf_off = (off - offset) as usize;
            let chunk = &data[buf_off..buf_off + rlen];
            if home.0 as u32 == self.rank {
                self.cluster.store.write(region, off, chunk).unwrap();
                continue;
            }
            let st = self.handles.get_mut(&handle).unwrap();
            st.remaining += 1;
            st.remote = true;
            self.stage_write(home.0 as u32, region, off, chunk.to_vec(), handle, eager);
        }
        self.release_issuance_token(handle)
    }

    /// Release the issuance token: if every segment was served locally, the
    /// handle is born ready (and its latency recorded now).
    fn release_issuance_token(&mut self, handle: u64) -> GmHandle {
        let st = self.handles.get_mut(&handle).unwrap();
        st.remaining -= 1;
        if st.remaining == 0 {
            let st = self.handles.remove(&handle).unwrap();
            self.record_handle_latency(&st);
            GmHandle::ready(st.buf)
        } else {
            GmHandle::queued(handle)
        }
    }

    fn record_handle_latency(&self, st: &HandleState) {
        let name = match (st.is_read, st.remote) {
            (true, true) => "remote_read_ns",
            (true, false) => "local_read_ns",
            (false, true) => "remote_write_ns",
            (false, false) => "local_write_ns",
        };
        self.metrics().record(
            MetricKey::pe("gm", name, self.rank),
            st.started.elapsed().as_nanos() as u64,
        );
    }

    /// Stage one remote read segment, coalescing with the most recently
    /// staged segment when both target the same home and region and their
    /// ranges touch or overlap.
    #[allow(clippy::too_many_arguments)]
    fn stage_read(
        &mut self,
        home: u32,
        region: RegionId,
        off: u64,
        len: usize,
        handle: u64,
        buf_off: usize,
        eager: bool,
    ) {
        let end = off + len as u64;
        let dest = ReadDest {
            handle,
            buf_off,
            abs_off: off,
            len,
        };
        let mut merged = false;
        if let Some(seg) = self.staged.last_mut() {
            if seg.home == home && seg.region == region {
                if let SegKind::Read { len: slen, dests } = &mut seg.kind {
                    let seg_end = seg.offset + *slen as u64;
                    if off <= seg_end && end >= seg.offset {
                        let new_start = seg.offset.min(off);
                        let new_end = seg_end.max(end);
                        seg.offset = new_start;
                        *slen = (new_end - new_start) as usize;
                        dests.push(dest);
                        merged = true;
                        self.cluster.metrics.incr(MetricKey::pe(
                            "kernel",
                            "gm_coalesced",
                            self.rank,
                        ));
                    }
                }
            }
        }
        if !merged {
            self.staged.push(StagedSeg {
                home,
                region,
                offset: off,
                kind: SegKind::Read {
                    len,
                    dests: vec![dest],
                },
            });
        }
        if eager {
            self.flush_staged();
        }
    }

    /// Stage one remote write segment; on overlap the later write's bytes
    /// win, preserving program order.
    fn stage_write(
        &mut self,
        home: u32,
        region: RegionId,
        off: u64,
        data: Vec<u8>,
        handle: u64,
        eager: bool,
    ) {
        let end = off + data.len() as u64;
        let mut merged = false;
        if let Some(seg) = self.staged.last_mut() {
            if seg.home == home && seg.region == region {
                if let SegKind::Write {
                    data: sdata,
                    writers,
                } = &mut seg.kind
                {
                    let seg_end = seg.offset + sdata.len() as u64;
                    if off <= seg_end && end >= seg.offset {
                        let new_start = seg.offset.min(off);
                        let new_end = seg_end.max(end);
                        let mut union = vec![0u8; (new_end - new_start) as usize];
                        let old_at = (seg.offset - new_start) as usize;
                        union[old_at..old_at + sdata.len()].copy_from_slice(sdata);
                        let new_at = (off - new_start) as usize;
                        union[new_at..new_at + data.len()].copy_from_slice(&data);
                        *sdata = union;
                        seg.offset = new_start;
                        writers.push(handle);
                        merged = true;
                        self.cluster.metrics.incr(MetricKey::pe(
                            "kernel",
                            "gm_coalesced",
                            self.rank,
                        ));
                    }
                }
            }
        }
        if !merged {
            self.staged.push(StagedSeg {
                home,
                region,
                offset: off,
                kind: SegKind::Write {
                    data,
                    writers: vec![handle],
                },
            });
        }
        if eager {
            self.flush_staged();
        }
    }

    /// Send every staged segment: one plain request per singleton home
    /// group, one batched request per multi-segment home group.
    fn flush_staged(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let staged = std::mem::take(&mut self.staged);
        let mut groups: Vec<(u32, Vec<StagedSeg>)> = Vec::new();
        for seg in staged {
            match groups.iter_mut().find(|(h, _)| *h == seg.home) {
                Some((_, v)) => v.push(seg),
                None => groups.push((seg.home, vec![seg])),
            }
        }
        for (home, mut segs) in groups {
            if segs.len() == 1 {
                self.send_plain(home, segs.pop().unwrap());
            } else {
                self.send_batch(home, segs);
            }
        }
    }

    fn send_plain(&mut self, home: u32, seg: StagedSeg) {
        let req = self.reqs.next();
        let (msg, ctl) = match seg.kind {
            SegKind::Read { len, dests } => (
                Message::GmReadReq {
                    req,
                    region: seg.region,
                    offset: seg.offset,
                    len: len as u32,
                },
                InflightReq::Read(ReadCtl {
                    offset: seg.offset,
                    len,
                    dests,
                }),
            ),
            SegKind::Write { data, writers } => (
                Message::GmWriteReq {
                    req,
                    region: seg.region,
                    offset: seg.offset,
                    data,
                },
                InflightReq::Write(WriteCtl { writers }),
            ),
        };
        self.dispatch(home, req, msg, ctl);
    }

    fn send_batch(&mut self, home: u32, segs: Vec<StagedSeg>) {
        let req = self.reqs.next();
        let mut ops = Vec::with_capacity(segs.len());
        let mut ctls = Vec::with_capacity(segs.len());
        for seg in segs {
            match seg.kind {
                SegKind::Read { len, dests } => {
                    ops.push(GmOp::Read {
                        region: seg.region,
                        offset: seg.offset,
                        len: len as u32,
                    });
                    ctls.push(InflightOp::Read(ReadCtl {
                        offset: seg.offset,
                        len,
                        dests,
                    }));
                }
                SegKind::Write { data, writers } => {
                    ctls.push(InflightOp::Write(WriteCtl { writers }));
                    ops.push(GmOp::Write {
                        region: seg.region,
                        offset: seg.offset,
                        data,
                    });
                }
            }
        }
        let msg = Message::GmBatchReq { req, ops };
        self.dispatch(home, req, msg, InflightReq::Batch(ctls));
    }

    fn dispatch(&mut self, home: u32, req: ReqId, msg: Message, ctl: InflightReq) {
        self.metrics()
            .incr(MetricKey::pe("kernel", "gm_request_msgs", self.rank));
        self.send(home, &msg);
        self.inflight.insert(req.0, ctl);
        self.metrics().gauge_max(
            MetricKey::pe("kernel", "gm_inflight", self.rank),
            self.inflight.len() as u64,
        );
    }

    // ----- completion ------------------------------------------------------

    /// Consume exactly one GM completion — from the stash if an earlier
    /// drain parked one there, otherwise off the kernel's forwarding
    /// channel.
    fn drain_one(&mut self) {
        if let Some(idx) = self.stash.iter().position(|m| {
            matches!(
                m,
                Message::GmReadResp { .. }
                    | Message::GmWriteAck { .. }
                    | Message::GmBatchResp { .. }
            )
        }) {
            let msg = self.stash.remove(idx).unwrap();
            self.process_completion(msg);
            return;
        }
        loop {
            let msg = self.recv();
            match msg {
                Message::GmReadResp { .. }
                | Message::GmWriteAck { .. }
                | Message::GmBatchResp { .. } => {
                    self.process_completion(msg);
                    return;
                }
                other => self.stash.push_back(other),
            }
        }
    }

    fn process_completion(&mut self, msg: Message) {
        match msg {
            Message::GmReadResp { req, data } => {
                let ctl = match self.inflight.remove(&req.0) {
                    Some(InflightReq::Read(c)) => c,
                    _ => panic!("live rank {}: unmatched GmReadResp", self.rank),
                };
                self.complete_read(ctl, &data);
            }
            Message::GmWriteAck { req } => {
                let ctl = match self.inflight.remove(&req.0) {
                    Some(InflightReq::Write(c)) => c,
                    _ => panic!("live rank {}: unmatched GmWriteAck", self.rank),
                };
                self.complete_write(ctl);
            }
            Message::GmBatchResp { req, reads } => {
                let ops = match self.inflight.remove(&req.0) {
                    Some(InflightReq::Batch(o)) => o,
                    _ => panic!("live rank {}: unmatched GmBatchResp", self.rank),
                };
                let mut it = reads.into_iter();
                for op in ops {
                    match op {
                        InflightOp::Read(c) => {
                            let data = it.next().expect("missing batched read result");
                            self.complete_read(c, &data);
                        }
                        InflightOp::Write(c) => self.complete_write(c),
                    }
                }
            }
            _ => unreachable!("process_completion on a non-GM message"),
        }
    }

    fn complete_read(&mut self, ctl: ReadCtl, data: &[u8]) {
        assert_eq!(data.len(), ctl.len, "short remote read");
        for d in ctl.dests {
            let h = self
                .handles
                .get_mut(&d.handle)
                .expect("read completion for an unknown handle");
            let buf = h.buf.as_mut().expect("read handle without a buffer");
            let src = (d.abs_off - ctl.offset) as usize;
            buf[d.buf_off..d.buf_off + d.len].copy_from_slice(&data[src..src + d.len]);
            h.remaining -= 1;
            if h.remaining == 0 {
                let st = self.handles.remove(&d.handle).unwrap();
                self.record_handle_latency(&st);
                self.completed.insert(d.handle, st.buf);
            }
        }
    }

    fn complete_write(&mut self, ctl: WriteCtl) {
        for w in ctl.writers {
            let h = self
                .handles
                .get_mut(&w)
                .expect("write completion for an unknown handle");
            h.remaining -= 1;
            if h.remaining == 0 {
                let st = self.handles.remove(&w).unwrap();
                self.record_handle_latency(&st);
                self.completed.insert(w, None);
            }
        }
    }

    /// Complete all staged and in-flight split-phase work. Every blocking
    /// synchronization primitive fences first, so split-phase operations are
    /// always ordered before barriers, locks and atomics.
    fn gm_fence(&mut self) {
        self.flush_staged();
        while !self.inflight.is_empty() {
            self.drain_one();
        }
    }

    /// Called by the harness after the body returns: fence, then notify the
    /// coordinator so it can shut the kernels down once everyone is out.
    fn finish(&mut self) {
        self.gm_fence();
        self.send(
            0,
            &Message::ExitNotice {
                pid: self.pid,
                status: 0,
            },
        );
    }
}

impl ParallelApi for LiveCtx {
    fn rank(&self) -> u32 {
        self.rank
    }

    fn nprocs(&self) -> usize {
        self.cluster.nprocs
    }

    fn compute(&mut self, _work: Work) {
        // The computation already ran for real; nothing to account.
    }

    fn gm_alloc(&mut self, len: usize, dist: Distribution) -> RegionId {
        self.gm_fence();
        let seq = self.alloc_seq;
        self.alloc_seq += 1;
        let mut table = self.cluster.allocs.lock();
        if let Some(&(id, existing)) = table.get(seq) {
            assert_eq!(existing, len, "collective allocation #{seq} size mismatch");
            return id;
        }
        assert_eq!(table.len(), seq, "collective allocations out of order");
        let id = self.cluster.store.alloc(len, dist);
        table.push((id, len));
        id
    }

    fn gm_read(&mut self, region: RegionId, offset: u64, len: usize) -> Vec<u8> {
        let h = self.issue_read(region, offset, len, true);
        self.gm_wait(h).expect("gm_read handle carries data")
    }

    fn gm_write(&mut self, region: RegionId, offset: u64, data: &[u8]) {
        let h = self.issue_write(region, offset, data, true);
        self.gm_wait(h);
    }

    fn gm_read_into(&mut self, region: RegionId, offset: u64, out: &mut [u8]) {
        let data = self.gm_read(region, offset, out.len());
        out.copy_from_slice(&data);
    }

    fn gm_read_nb(&mut self, region: RegionId, offset: u64, len: usize) -> GmHandle {
        self.issue_read(region, offset, len, false)
    }

    fn gm_write_nb(&mut self, region: RegionId, offset: u64, data: &[u8]) -> GmHandle {
        self.issue_write(region, offset, data, false)
    }

    fn gm_wait(&mut self, handle: GmHandle) -> Option<Vec<u8>> {
        let id = match handle.queued_id() {
            None => return handle.into_ready(),
            Some(id) => id,
        };
        if let Some(data) = self.completed.remove(&id) {
            return data;
        }
        assert!(
            self.handles.contains_key(&id),
            "live rank {}: gm_wait on a stale handle (result discarded by gm_wait_all)",
            self.rank
        );
        self.flush_staged();
        while !self.completed.contains_key(&id) {
            self.drain_one();
        }
        self.completed.remove(&id).unwrap()
    }

    fn gm_wait_all(&mut self) {
        self.gm_fence();
        self.completed.clear();
    }

    fn take_scratch(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.scratch)
    }

    fn put_scratch(&mut self, buf: Vec<u8>) {
        self.scratch = buf;
    }

    fn gm_fetch_add(&mut self, region: RegionId, offset: u64, delta: i64) -> i64 {
        self.gm_fence();
        self.metrics()
            .incr(MetricKey::pe("gm", "fetch_adds", self.rank));
        let start = Instant::now();
        let home = self.home_of(region, offset);
        let prev = if home == self.rank {
            self.cluster
                .store
                .fetch_add(region, offset, delta)
                .unwrap_or_else(|e| panic!("live rank {}: fetch_add failed: {e}", self.rank))
        } else {
            let req = self.reqs.next();
            self.metrics()
                .incr(MetricKey::pe("kernel", "gm_request_msgs", self.rank));
            self.send(
                home,
                &Message::GmFetchAddReq {
                    req,
                    region,
                    offset,
                    delta,
                },
            );
            loop {
                let msg = self.recv();
                match msg {
                    Message::GmFetchAddResp { req: r, prev } if r == req => break prev,
                    other => self.stash.push_back(other),
                }
            }
        };
        self.metrics().record(
            MetricKey::pe("gm", "fetch_add_ns", self.rank),
            start.elapsed().as_nanos() as u64,
        );
        prev
    }

    fn barrier(&mut self) {
        let id = AUTO_BARRIER_BASE + self.barrier_seq;
        self.barrier_seq += 1;
        self.gm_fence();
        let start = Instant::now();
        self.send(
            0,
            &Message::BarrierEnter {
                barrier: id,
                pid: self.pid,
            },
        );
        loop {
            let msg = self.recv();
            match msg {
                Message::BarrierRelease { barrier, .. } if barrier == id => break,
                other => self.stash.push_back(other),
            }
        }
        self.metrics().record(
            MetricKey::pe("sync", "barrier_wait_ns", self.rank),
            start.elapsed().as_nanos() as u64,
        );
    }

    fn lock(&mut self, id: u32) {
        self.gm_fence();
        let start = Instant::now();
        let req = self.reqs.next();
        self.send(
            0,
            &Message::LockReq {
                req,
                lock: id,
                pid: self.pid,
            },
        );
        loop {
            let msg = self.recv();
            match msg {
                Message::LockGrant { req: r, .. } if r == req => break,
                other => self.stash.push_back(other),
            }
        }
        self.metrics().record(
            MetricKey::pe("sync", "lock_wait_ns", self.rank),
            start.elapsed().as_nanos() as u64,
        );
    }

    fn unlock(&mut self, id: u32) {
        self.gm_fence();
        self.send(
            0,
            &Message::UnlockReq {
                lock: id,
                pid: self.pid,
            },
        );
    }
}

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

/// Result of a live run.
#[derive(Debug, Clone)]
pub struct LiveRunResult {
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Processing elements used.
    pub nprocs: usize,
    /// Which transport carried the run's messages.
    pub transport: TransportKind,
    /// Observability snapshot: per-rank GM/sync counters, kernel service
    /// stats, and wall-clock latency histograms (same schema as the
    /// simulator's).
    pub metrics: MetricsSnapshot,
    /// The rollup the telemetry plane rebuilt from the deltas that rode the
    /// transport to PE 0 (`Some` only for watched runs; matches `metrics`
    /// after a clean run).
    pub telemetry_rollup: Option<MetricsSnapshot>,
}

/// Run `body` as an SPMD program over `nprocs` PEs on the in-process
/// channel transport.
///
/// ```
/// use dse_api::{collective, ParallelApi};
///
/// let result = dse_live::run_live(4, |ctx| {
///     let all = collective::all_gather(ctx, ctx.rank() as i64);
///     assert_eq!(all, vec![0, 1, 2, 3]);
/// });
/// assert_eq!(result.nprocs, 4);
/// ```
pub fn run_live<F>(nprocs: usize, body: F) -> LiveRunResult
where
    F: Fn(&mut LiveCtx) + Send + Sync,
{
    run_live_inner(TransportKind::Channel, nprocs, None, body)
}

/// [`run_live`] on an explicitly chosen transport.
pub fn run_live_on<F>(kind: TransportKind, nprocs: usize, body: F) -> LiveRunResult
where
    F: Fn(&mut LiveCtx) + Send + Sync,
{
    run_live_inner(kind, nprocs, None, body)
}

/// Watched variant of [`run_live`]: each PE's kernel thread ships
/// incremental telemetry deltas *over the transport* to PE 0 every
/// `interval`; PE 0's kernel applies them to a [`ClusterAggregator`] and
/// invokes `hook` with the aggregator and the elapsed wall clock in
/// nanoseconds on each of its own ticks. The hook signature matches the
/// simulator's epoch hook, so one rendering function (e.g.
/// `dse_ssi::view::render_top`) serves both engines. After the kernels shut
/// down, a final absolute round heals any deltas lost in the shutdown race
/// and the resulting rollup lands in [`LiveRunResult::telemetry_rollup`].
pub fn run_live_watched<F, H>(nprocs: usize, interval: Duration, hook: H, body: F) -> LiveRunResult
where
    F: Fn(&mut LiveCtx) + Send + Sync,
    H: Fn(&ClusterAggregator, u64) + Send + Sync,
{
    run_live_inner(
        TransportKind::Channel,
        nprocs,
        Some((interval, &hook)),
        body,
    )
}

/// [`run_live_watched`] on an explicitly chosen transport.
pub fn run_live_watched_on<F, H>(
    kind: TransportKind,
    nprocs: usize,
    interval: Duration,
    hook: H,
    body: F,
) -> LiveRunResult
where
    F: Fn(&mut LiveCtx) + Send + Sync,
    H: Fn(&ClusterAggregator, u64) + Send + Sync,
{
    run_live_inner(kind, nprocs, Some((interval, &hook)), body)
}

fn run_live_inner<F>(
    kind: TransportKind,
    nprocs: usize,
    watch: Option<WatchSpec<'_>>,
    body: F,
) -> LiveRunResult
where
    F: Fn(&mut LiveCtx) + Send + Sync,
{
    assert!(nprocs > 0);
    let cluster = Arc::new(LiveCluster::new(nprocs));
    let transports = build_transports(kind, nprocs);
    let start = Instant::now();
    let rollup = std::thread::scope(|scope| {
        let mut kernel_handles = Vec::with_capacity(nprocs);
        for (pe, transport) in transports.iter().enumerate() {
            let kernel_cluster = Arc::clone(&cluster);
            let app_cluster = Arc::clone(&cluster);
            let app_transport = Arc::clone(transport);
            let (app_tx, app_rx) = mpsc::channel();
            kernel_handles.push(scope.spawn(move || {
                live_kernel(pe as u32, &kernel_cluster, transport, app_tx, watch, start)
            }));
            let body = &body;
            scope.spawn(move || {
                let mut ctx = LiveCtx::new(pe as u32, app_cluster, app_transport, app_rx);
                body(&mut ctx);
                ctx.finish();
            });
        }
        // Joining the kernels also waits out the apps: kernels only shut
        // down after every rank's ExitNotice reached the coordinator.
        let mut trackers = Vec::with_capacity(nprocs);
        let mut agg = None;
        for h in kernel_handles {
            let (tracker, a) = match h.join() {
                Ok(out) => out,
                Err(p) => std::panic::resume_unwind(p),
            };
            trackers.push(tracker);
            agg = agg.or(a);
        }
        // Final absolute telemetry round: reproduce the registry exactly
        // through the same encode/decode codec the wire used, healing any
        // deltas the shutdown race dropped.
        watch.map(|(_, hook)| {
            let mut agg = agg.expect("watched run must produce an aggregator");
            let snap = cluster.metrics.snapshot();
            let now_ns = start.elapsed().as_nanos() as u64;
            for t in trackers.iter_mut() {
                let (seq, d) = t.absolute(&snap, &[]);
                let back = TelemetryDelta::decode(&d.encode()).expect("telemetry self-roundtrip");
                agg.apply(t.pe(), seq, now_ns, &back);
            }
            hook(&agg, now_ns);
            agg.rollup()
        })
    });
    LiveRunResult {
        elapsed: start.elapsed(),
        nprocs,
        transport: kind,
        metrics: cluster.metrics.snapshot(),
        telemetry_rollup: rollup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_api::{collective, GmArray, GmCounter};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn live_barrier_and_gm_roundtrip() {
        run_live(4, |ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 4, Distribution::Blocked);
            arr.set(ctx, ctx.rank() as usize, ctx.rank() as u64 * 10);
            ctx.barrier();
            let all = arr.read(ctx, 0, 4);
            assert_eq!(all, vec![0, 10, 20, 30]);
        });
    }

    #[test]
    fn live_counter_is_exactly_once() {
        let total = AtomicU64::new(0);
        run_live(4, |ctx| {
            let c = GmCounter::alloc(ctx);
            ctx.barrier();
            loop {
                let j = c.next(ctx);
                if j >= 100 {
                    break;
                }
                total.fetch_add(j as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..100u64).sum());
    }

    #[test]
    fn live_metrics_capture_gm_and_sync() {
        let r = run_live(3, |ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 3, Distribution::Blocked);
            arr.set(ctx, ctx.rank() as usize, 1);
            ctx.barrier();
            let _ = arr.read(ctx, 0, 3);
        });
        assert!(r.metrics.counter("gm", "writes", Some(0)).unwrap_or(0) >= 1);
        let h = r
            .metrics
            .histogram("sync", "barrier_wait_ns", Some(1))
            .expect("barrier histogram for rank 1");
        assert!(h.count() >= 1);
    }

    #[test]
    fn live_run_exchanges_wire_messages() {
        // The acceptance gate for the message-passing engine: a multi-PE
        // run must put real GM request messages on the transport.
        let r = run_live(2, |ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 8, Distribution::Blocked);
            arr.set(ctx, (ctx.rank() as usize + 5) % 8, 1);
            ctx.barrier();
            let _ = arr.read(ctx, 0, 8);
        });
        assert!(
            r.metrics.counter_sum_over_pes("kernel", "gm_request_msgs") > 0,
            "no GM request messages crossed the transport"
        );
        assert!(
            r.metrics.counter_sum_over_pes("kernel", "requests_served") > 0,
            "no kernel served a GM request"
        );
    }

    #[test]
    fn watched_rollup_matches_direct_snapshot() {
        let epochs = AtomicU64::new(0);
        let r = run_live_watched(
            3,
            Duration::from_millis(1),
            |_agg, _now_ns| {
                epochs.fetch_add(1, Ordering::SeqCst);
            },
            |ctx| {
                let arr = GmArray::<u64>::alloc(ctx, 3, Distribution::Blocked);
                arr.set(ctx, ctx.rank() as usize, 7);
                ctx.barrier();
                let _ = arr.read(ctx, 0, 3);
            },
        );
        assert!(epochs.load(Ordering::SeqCst) >= 1, "hook never fired");
        let rollup = r.telemetry_rollup.expect("watched run produces a rollup");
        assert_eq!(
            rollup.to_jsonl(),
            r.metrics.to_jsonl(),
            "in-band rollup must reproduce the wall-clock registry exactly"
        );
    }

    #[test]
    fn unwatched_run_has_no_rollup() {
        let r = run_live(2, |ctx| ctx.barrier());
        assert!(r.telemetry_rollup.is_none());
    }

    #[test]
    fn live_collectives() {
        run_live(5, |ctx| {
            let s = collective::reduce_sum(ctx, 1.0);
            assert_eq!(s, 5.0);
            let g = collective::all_gather(ctx, ctx.rank() as i64);
            assert_eq!(g, vec![0, 1, 2, 3, 4]);
        });
    }

    #[test]
    fn live_locks_are_mutually_exclusive() {
        let inside = AtomicU64::new(0);
        run_live(6, |ctx| {
            for _ in 0..50 {
                ctx.lock(3);
                let v = inside.fetch_add(1, Ordering::SeqCst);
                assert_eq!(v, 0, "two threads inside the critical section");
                inside.fetch_sub(1, Ordering::SeqCst);
                ctx.unlock(3);
            }
        });
    }

    #[test]
    #[should_panic(expected = "release of unknown lock 9")]
    fn live_unlock_unheld_panics() {
        run_live(1, |ctx| {
            ctx.unlock(9);
        });
    }

    #[test]
    fn live_on_tcp_roundtrip() {
        let r = run_live_on(TransportKind::Tcp, 3, |ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 3, Distribution::Blocked);
            arr.set(ctx, ctx.rank() as usize, ctx.rank() as u64 + 1);
            ctx.barrier();
            let all = arr.read(ctx, 0, 3);
            assert_eq!(all, vec![1, 2, 3]);
        });
        assert_eq!(r.transport, TransportKind::Tcp);
        assert!(r.metrics.counter_sum_over_pes("kernel", "gm_request_msgs") > 0);
    }

    #[cfg(unix)]
    #[test]
    fn live_on_uds_roundtrip() {
        run_live_on(TransportKind::Uds, 2, |ctx| {
            let c = GmCounter::alloc(ctx);
            ctx.barrier();
            let mine = c.next(ctx);
            assert!(mine < 2);
        });
    }

    #[test]
    fn split_phase_batches_on_the_wire() {
        // Two non-adjacent writes to the same remote home must coalesce
        // into one GmBatchReq: exactly one request message for both.
        let r = run_live(2, |ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 16, Distribution::Blocked);
            if ctx.rank() == 0 {
                // Elements 8..16 are homed on rank 1.
                let h1 = ctx.gm_write_nb(arr.region(), 8 * 8, &7u64.to_le_bytes());
                let h2 = ctx.gm_write_nb(arr.region(), 10 * 8, &9u64.to_le_bytes());
                ctx.gm_wait(h1);
                ctx.gm_wait(h2);
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                assert_eq!(arr.get(ctx, 8), 7);
                assert_eq!(arr.get(ctx, 10), 9);
            }
        });
        assert_eq!(
            r.metrics.counter("kernel", "gm_request_msgs", Some(0)),
            Some(1),
            "two staged writes to one home must travel as one batch"
        );
    }
}
