//! Structured failure reporting for the live engine.
//!
//! A live run that hits a transport fault, a GM request deadline, or a
//! dead kernel no longer panics its way down: every thread records what it
//! saw into the cluster's failure list, the run aborts cluster-wide via an
//! `Abort` control frame, and the harness returns a [`RunError`] carrying
//! one [`PeFailure`] per first-hand observer plus the flight recorder's
//! post-mortem dump of the events leading up to the failure.

use std::fmt;
use std::time::Duration;

use dse_transport::TransportError;

/// Which of a PE's two threads observed the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureRole {
    /// The application thread (the rank's body / `LiveCtx`).
    App,
    /// The kernel thread (the PE's message loop).
    Kernel,
}

impl fmt::Display for FailureRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureRole::App => write!(f, "app"),
            FailureRole::Kernel => write!(f, "kernel"),
        }
    }
}

/// What went wrong, as observed first-hand by one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A transport operation failed (send or receive).
    Transport(TransportError),
    /// A GM request exhausted its retry budget with no response.
    GmDeadline {
        /// Correlation id of the abandoned request.
        req: u64,
        /// Home PE the request was addressed to.
        home: u32,
        /// Send attempts made (initial send plus retransmits).
        attempts: u32,
    },
    /// The co-resident kernel thread went away while the app still needed it.
    KernelGone,
    /// The transport mesh could not be constructed at startup.
    Mesh(TransportError),
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Transport(e) => write!(f, "transport failure: {e}"),
            FailureKind::GmDeadline {
                req,
                home,
                attempts,
            } => write!(
                f,
                "GM request {req} to home PE {home} unanswered after {attempts} attempts"
            ),
            FailureKind::KernelGone => write!(f, "kernel thread exited while the app was waiting"),
            FailureKind::Mesh(e) => write!(f, "transport mesh construction failed: {e}"),
        }
    }
}

/// One thread's first-hand failure observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeFailure {
    /// Processing element the observing thread belongs to.
    pub pe: u32,
    /// Which thread observed it.
    pub role: FailureRole,
    /// What it observed.
    pub kind: FailureKind,
}

impl fmt::Display for PeFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE {} [{}]: {}", self.pe, self.role, self.kind)
    }
}

/// A live run that aborted instead of completing.
///
/// Only first-hand observations are listed: threads that stopped because
/// they received the `Abort` broadcast are casualties, not causes, and do
/// not appear. `flight_jsonl` is the flight recorder's ring at the moment
/// the run unwound — the post-mortem context (recent messages, stalls)
/// leading up to the failure.
#[derive(Debug, Clone)]
pub struct RunError {
    /// First-hand failure observations, in discovery order.
    pub failures: Vec<PeFailure>,
    /// Flight-recorder post-mortem dump (JSONL, oldest event first).
    pub flight_jsonl: String,
    /// Wall clock from run start to abort completion.
    pub elapsed: Duration,
}

impl RunError {
    /// Multi-line per-PE failure report suitable for stderr.
    pub fn report(&self) -> String {
        let mut out = format!(
            "live run aborted after {:.3}s with {} first-hand failure(s):\n",
            self.elapsed.as_secs_f64(),
            self.failures.len()
        );
        for f in &self.failures {
            out.push_str(&format!("  {f}\n"));
        }
        out.push_str(&format!(
            "flight recorder: {} post-mortem event(s) captured\n",
            self.flight_jsonl.lines().count()
        ));
        out
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.report().trim_end())
    }
}

impl std::error::Error for RunError {}

// `Abort` frame `code` values moved into the kernel with the task state
// machine; the live engine shares them.
pub(crate) use dse_kernel::task::abort_code;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_lists_each_failure_and_flight_size() {
        let err = RunError {
            failures: vec![
                PeFailure {
                    pe: 2,
                    role: FailureRole::Kernel,
                    kind: FailureKind::Transport(TransportError::Closed),
                },
                PeFailure {
                    pe: 0,
                    role: FailureRole::App,
                    kind: FailureKind::GmDeadline {
                        req: 41,
                        home: 2,
                        attempts: 5,
                    },
                },
            ],
            flight_jsonl: "{}\n{}\n{}\n".to_string(),
            elapsed: Duration::from_millis(1500),
        };
        let rep = err.report();
        assert!(rep.contains("2 first-hand failure(s)"));
        assert!(rep.contains("PE 2 [kernel]: transport failure: transport closed"));
        assert!(rep.contains("PE 0 [app]: GM request 41 to home PE 2 unanswered after 5 attempts"));
        assert!(rep.contains("3 post-mortem event(s)"));
        assert_eq!(format!("{err}").lines().count(), 4);
    }
}
