//! The task scheduler (`SchedulerKind::Tasks`): every PE's kernel as a
//! poll-driven task multiplexed on a small worker pool.
//!
//! The threaded engine spends one OS thread per kernel blocking in `recv`;
//! at 1,000+ PEs that is 1,000+ mostly-idle threads. Here the kernels are
//! [`KernelTask`] state machines and a pool of `available_parallelism`
//! workers sweeps them: each worker owns a static partition of the PEs and
//! repeatedly (a) checks the cluster abort latch, (b) drains a bounded
//! batch of ready messages per task via the non-blocking
//! [`Transport::poll_recv`] readiness path, and (c) fires a
//! [`KernelEvent::Tick`] when a task's timer deadline (telemetry emission,
//! the idle heartbeat) is due. Nothing ever blocks on a single PE's
//! socket, so one worker can serve hundreds of kernels.
//!
//! The drivers share everything with the threaded engine except the event
//! delivery: the same state machine, the same `flush_outbox`, the same
//! `finish_kernel` teardown — which is why the two schedulers produce
//! bit-identical program results.
//!
//! App bodies remain blocking closures on dedicated threads (shrunk to
//! [`APP_STACK`] stacks); only kernel work multiplexes.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use dse_kernel::task::{abort_code, KernelEvent, KernelTask, Progress};
use dse_msg::Message;
use dse_obs::{ClusterAggregator, DeltaTracker};
use dse_transport::Transport;

use super::{finish_kernel, flush_outbox, LiveCluster, WatchSpec};
use crate::error::FailureKind;

/// One PE's kernel-side wiring: rank and transport endpoint (the app
/// inbox lives in the shared [`LiveCluster`]).
pub(crate) type KernelInput = (u32, Arc<dyn Transport>);

/// Stack size for app threads under the task scheduler: the bodies are
/// shallow SPMD loops, and a thousand default 8 MiB stacks would dwarf
/// the run's actual working set.
pub(crate) const APP_STACK: usize = 512 * 1024;

/// Per-task bound on messages drained in one sweep visit, so one busy PE
/// (PE 0 under coordination load) cannot starve its partition neighbors.
const MAX_BATCH: usize = 32;

/// Consecutive empty sweeps a worker spin-yields before it starts
/// sleeping between sweeps.
const SPIN_SWEEPS: u32 = 50;

/// Sleep between sweeps once a worker has gone idle: long enough to stop
/// burning a core, short enough to keep request latency well under the
/// kernel tick.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// What each kernel hands back at teardown: its telemetry delta tracker
/// and, for a watched PE 0, the cluster aggregator.
type KernelOutput = (DeltaTracker, Option<ClusterAggregator>);

/// One kernel task being driven by a worker.
struct Slot<'a> {
    pe: u32,
    transport: Arc<dyn Transport>,
    task: KernelTask<'a>,
    /// When the task next wants a `Tick`.
    deadline: Instant,
    /// Set once the task is finished (clean, aborted, or failed).
    exit: Option<Result<Option<Message>, FailureKind>>,
}

/// Drive every kernel in `inputs` to completion on a worker pool. Returns
/// the per-PE `(tracker, aggregator)` results in rank order, or the first
/// panic payload after the whole cluster has drained (mirroring the
/// threaded engine's join-then-rethrow discipline).
pub(crate) fn run_kernels(
    cluster: &LiveCluster,
    inputs: Vec<KernelInput>,
    watch: Option<WatchSpec<'_>>,
    start: Instant,
) -> Result<Vec<KernelOutput>, Box<dyn Any + Send>> {
    let nworkers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(inputs.len())
        .max(1);
    // Static round-robin partition: contiguous ranks land on different
    // workers, so the coordinator (PE 0) shares its worker with as few
    // hot neighbors as possible.
    let mut parts: Vec<Vec<KernelInput>> = (0..nworkers).map(|_| Vec::new()).collect();
    for (i, input) in inputs.into_iter().enumerate() {
        parts[i % nworkers].push(input);
    }
    let joined: Vec<Result<Vec<(u32, KernelOutput)>, _>> = thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .enumerate()
            .map(|(w, part)| {
                thread::Builder::new()
                    .name(format!("dse-sched-{w}"))
                    .spawn_scoped(s, move || worker_loop(cluster, part, watch, start))
                    .expect("spawn scheduler worker")
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    let mut out = Vec::new();
    let mut propagate: Option<Box<dyn Any + Send>> = None;
    for r in joined {
        match r {
            Ok(items) => out.extend(items),
            Err(p) => {
                cluster.abort.store(true, Ordering::Release);
                propagate.get_or_insert(p);
            }
        }
    }
    if let Some(p) = propagate {
        return Err(p);
    }
    out.sort_by_key(|(pe, _)| *pe);
    Ok(out.into_iter().map(|(_, output)| output).collect())
}

/// One worker: sweep the partition's tasks until every one has exited,
/// then tear each down through the shared `finish_kernel` path. A panic
/// inside a task poll latches the cluster abort, lets the rest of the
/// partition drain through their abort-latch exits, and only then
/// re-raises — so the cluster never hangs on a dead coordinator.
fn worker_loop<'e>(
    cluster: &'e LiveCluster,
    part: Vec<KernelInput>,
    watch: Option<WatchSpec<'e>>,
    start: Instant,
) -> Vec<(u32, KernelOutput)> {
    let mut slots: Vec<Slot<'e>> = part
        .into_iter()
        .map(|(pe, transport)| {
            let task = KernelTask::new(
                cluster.kernel_env(pe, start),
                watch,
                cluster.kernel_tick,
                cluster.tracing,
            );
            let deadline = task.deadline();
            Slot {
                pe,
                transport,
                task,
                deadline,
                exit: None,
            }
        })
        .collect();
    let mut panic_payload: Option<Box<dyn Any + Send>> = None;
    let mut idle_sweeps = 0u32;
    while slots.iter().any(|s| s.exit.is_none()) {
        let mut progressed = false;
        for slot in slots.iter_mut() {
            if slot.exit.is_some() {
                continue;
            }
            match catch_unwind(AssertUnwindSafe(|| step(cluster, slot))) {
                Ok(p) => progressed |= p,
                Err(p) => {
                    // The task's protocol state is gone; the cluster can
                    // only abort. Mark this slot aborted so its teardown
                    // still shuts the endpoint down and wakes its app.
                    cluster.abort.store(true, Ordering::Release);
                    slot.exit = Some(Ok(Some(Message::Abort {
                        source: slot.pe,
                        code: abort_code::GENERIC,
                        detail: b"kernel task panicked".to_vec(),
                    })));
                    panic_payload.get_or_insert(p);
                    progressed = true;
                }
            }
        }
        if progressed {
            idle_sweeps = 0;
        } else {
            idle_sweeps += 1;
            if idle_sweeps < SPIN_SWEEPS {
                thread::yield_now();
            } else {
                thread::sleep(IDLE_SLEEP);
            }
        }
    }
    let results = slots
        .into_iter()
        .map(|slot| {
            let exit = slot.exit.expect("loop exits only when every slot has");
            let output = finish_kernel(slot.pe, cluster, slot.transport.as_ref(), slot.task, exit);
            (slot.pe, output)
        })
        .collect();
    if let Some(p) = panic_payload {
        resume_unwind(p);
    }
    results
}

/// One sweep visit to one live task: abort latch, then a bounded batch of
/// ready messages, then the timer. Returns whether any event was
/// consumed. Sets `slot.exit` when the task finishes.
fn step(cluster: &LiveCluster, slot: &mut Slot<'_>) -> bool {
    if cluster.aborting() {
        match slot.task.poll(KernelEvent::AbortLatch) {
            Progress::Aborted(frame) => slot.exit = Some(Ok(Some(frame))),
            _ => unreachable!("abort latch poll is terminal"),
        }
        return true;
    }
    let mut progressed = false;
    for _ in 0..MAX_BATCH {
        match slot.transport.poll_recv() {
            Ok(Some(env)) => {
                progressed = true;
                if drive(
                    cluster,
                    slot,
                    KernelEvent::Message {
                        from: env.from,
                        msg: env.msg,
                        ctx: env.ctx,
                    },
                ) {
                    return true;
                }
            }
            Ok(None) => break,
            Err(e) => {
                slot.exit = Some(Err(FailureKind::Transport(e)));
                return true;
            }
        }
    }
    if Instant::now() >= slot.deadline {
        progressed = true;
        if drive(cluster, slot, KernelEvent::Tick) {
            return true;
        }
    }
    progressed
}

/// Feed one event, flush the outbox, refresh the timer. Returns true when
/// the slot reached a terminal state.
fn drive(cluster: &LiveCluster, slot: &mut Slot<'_>, event: KernelEvent) -> bool {
    let prog = slot.task.poll(event);
    if let Err(e) = flush_outbox(&mut slot.task, slot.transport.as_ref(), cluster, slot.pe) {
        slot.exit = Some(Err(e));
        return true;
    }
    slot.deadline = slot.task.deadline();
    match prog {
        Progress::Pending => false,
        Progress::Clean => {
            slot.exit = Some(Ok(None));
            true
        }
        Progress::Aborted(frame) => {
            slot.exit = Some(Ok(Some(frame)));
            true
        }
    }
}
