//! Property tests for global-memory management: arbitrary operation
//! sequences match a flat local mirror, home-splitting is a partition, and
//! the cache block arithmetic tiles exactly.

use proptest::prelude::*;

use dse_kernel::cache::{blocks_inside, blocks_touching, CACHE_BLOCK};
use dse_kernel::gmem::{Distribution, GlobalStore};
use dse_msg::NodeId;

fn arb_dist(nnodes: usize) -> impl Strategy<Value = Distribution> {
    prop_oneof![
        Just(Distribution::Blocked),
        (1usize..200).prop_map(|c| Distribution::BlockedBy { chunk: c }),
        (1usize..100).prop_map(|b| Distribution::Cyclic { block: b }),
        (0..nnodes).prop_map(|n| Distribution::OnNode(NodeId(n as u16))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn read_write_matches_mirror(
        dist in arb_dist(4),
        len in 1usize..2000,
        ops in proptest::collection::vec(
            (any::<bool>(), 0usize..2000, 0usize..300, any::<u8>()),
            0..40
        ),
    ) {
        let gs = GlobalStore::new(4);
        let r = gs.alloc(len, dist);
        let mut mirror = vec![0u8; len];
        for (is_write, off, oplen, fill) in ops {
            let off = off % len;
            let oplen = oplen.min(len - off);
            if is_write {
                let data = vec![fill; oplen];
                gs.write(r, off as u64, &data).unwrap();
                mirror[off..off + oplen].copy_from_slice(&data);
            } else {
                let got = gs.read(r, off as u64, oplen).unwrap();
                prop_assert_eq!(&got[..], &mirror[off..off + oplen]);
            }
        }
    }

    #[test]
    fn split_by_home_is_an_exact_partition(
        dist in arb_dist(5),
        len in 1usize..3000,
        off in 0usize..3000,
        span in 0usize..1000,
    ) {
        let gs = GlobalStore::new(5);
        let r = gs.alloc(len, dist);
        let off = off % len;
        let span = span.min(len - off);
        let runs = gs.split_by_home(r, off as u64, span).unwrap();
        // Contiguous, in order, covering exactly [off, off+span).
        let mut cursor = off as u64;
        for (home, ro, rl) in &runs {
            prop_assert_eq!(*ro, cursor, "gap or overlap");
            prop_assert!(*rl > 0);
            // Every byte of the run really homes on the reported node.
            for probe in [*ro, ro + *rl as u64 - 1, ro + (*rl as u64) / 2] {
                prop_assert_eq!(gs.home_of(r, probe).unwrap(), *home);
            }
            cursor += *rl as u64;
        }
        prop_assert_eq!(cursor, (off + span) as u64);
        // Adjacent runs have distinct homes (maximal merging).
        for w in runs.windows(2) {
            prop_assert_ne!(w[0].0, w[1].0);
        }
    }

    #[test]
    fn fetch_add_sequence_matches_model(
        deltas in proptest::collection::vec(any::<i32>(), 1..50),
    ) {
        let gs = GlobalStore::new(2);
        let r = gs.alloc(8, Distribution::OnNode(NodeId(0)));
        let mut model: i64 = 0;
        for d in deltas {
            let prev = gs.fetch_add(r, 0, d as i64).unwrap();
            prop_assert_eq!(prev, model);
            model = model.wrapping_add(d as i64);
        }
    }

    #[test]
    fn cache_block_arithmetic_tiles(off in 0u64..100_000, len in 0usize..10_000) {
        let touching = blocks_touching(off, len);
        let inside = blocks_inside(off, len);
        // Inside ⊆ touching.
        prop_assert!(inside.start >= touching.start);
        prop_assert!(inside.end <= touching.end.max(inside.start));
        // Every inside block really lies within the range.
        let b = CACHE_BLOCK as u64;
        for blk in inside {
            prop_assert!(blk * b >= off);
            prop_assert!((blk + 1) * b <= off + len as u64);
        }
        // Touching blocks intersect the range (when non-empty).
        if len > 0 {
            for blk in touching {
                let bs = blk * b;
                let be = (blk + 1) * b;
                prop_assert!(bs < off + len as u64 && be > off);
            }
        }
    }
}
