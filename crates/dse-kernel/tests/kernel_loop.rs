//! Integration tests driving `kernel_main` directly with scripted peer
//! processes: request/response round trips, coherence transactions,
//! shutdown, and failure injection.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use dse_kernel::kernel::{kernel_main, AppFactory};
use dse_kernel::netpath::send_msg;
use dse_kernel::{ClusterShared, Distribution, DseConfig, SimMsg};
use dse_msg::{Message, NodeId, RegionId, ReqId};
use dse_platform::{ClusterSpec, Platform};
use dse_sim::{ProcCtx, SimDuration, Simulator};

/// Build a 2-node cluster with kernels and return (sim, shared).
fn cluster(config: DseConfig) -> (Simulator<SimMsg>, Arc<ClusterShared>) {
    let spec = ClusterSpec::paper(Platform::linux_pentium2(), 2);
    let mut sim: Simulator<SimMsg> = Simulator::new();
    let cpus = (0..spec.machines_used())
        .map(|m| sim.add_resource(&format!("cpu{m}")))
        .collect();
    let shared = Arc::new(ClusterShared::new(spec, config, cpus));
    let factory: AppFactory = Arc::new(|_, _| Box::new(|_ctx| {}));
    let kernels = (0..2)
        .map(|n| {
            let shared = Arc::clone(&shared);
            let factory = Arc::clone(&factory);
            sim.spawn(&format!("kernel{n}"), move |kctx| {
                kernel_main(kctx, NodeId(n as u16), shared, factory)
            })
        })
        .collect();
    shared.set_kernels(kernels);
    (sim, shared)
}

/// A scripted peer on node 0 exchanging messages with kernel 1.
fn run_peer(
    config: DseConfig,
    setup: impl FnOnce(&ClusterShared) + Send + 'static,
    script: impl FnOnce(&mut ProcCtx<SimMsg>, &ClusterShared) + Send + 'static,
) -> Arc<ClusterShared> {
    let (mut sim, shared) = cluster(config);
    let s2 = Arc::clone(&shared);
    setup(&shared);
    sim.spawn("peer", move |ctx| {
        script(ctx, &s2);
        // Orderly shutdown of both kernels.
        for n in 0..2 {
            let k = s2.kernel_of(NodeId(n));
            ctx.send(
                k,
                SimDuration::from_nanos(1),
                SimMsg {
                    from_node: NodeId(0),
                    reply_to: ctx.id(),
                    bytes: Message::KernelShutdown.encode(),
                },
            );
        }
    });
    sim.run();
    shared
}

fn send_and_await(
    ctx: &mut ProcCtx<SimMsg>,
    shared: &ClusterShared,
    to: NodeId,
    msg: Message,
) -> Message {
    let k = shared.kernel_of(to);
    let me = ctx.id();
    send_msg(ctx, shared, NodeId(0), to, k, me, &msg);
    let env = ctx.recv().expect("kernel reply");
    Message::decode(&env.msg.bytes).unwrap()
}

#[test]
fn remote_read_write_roundtrip() {
    let shared = run_peer(
        DseConfig::paper(),
        |shared| {
            // A region homed entirely on node 1.
            let r = shared.store.alloc(64, Distribution::OnNode(NodeId(1)));
            assert_eq!(r, RegionId(0));
        },
        |ctx, shared| {
            let w = send_and_await(
                ctx,
                shared,
                NodeId(1),
                Message::GmWriteReq {
                    req: ReqId(1),
                    region: RegionId(0),
                    offset: 8,
                    data: vec![5, 6, 7].into(),
                },
            );
            assert_eq!(w, Message::GmWriteAck { req: ReqId(1) });
            let r = send_and_await(
                ctx,
                shared,
                NodeId(1),
                Message::GmReadReq {
                    req: ReqId(2),
                    region: RegionId(0),
                    offset: 7,
                    len: 5,
                },
            );
            assert_eq!(
                r,
                Message::GmReadResp {
                    req: ReqId(2),
                    data: vec![0, 5, 6, 7, 0].into()
                }
            );
        },
    );
    let stats = shared.stats.snapshot();
    assert_eq!(stats.gm_remote_reads, 1);
    assert_eq!(stats.gm_remote_writes, 1);
}

#[test]
fn remote_fetch_add_serializes() {
    let prev_sum = Arc::new(AtomicI64::new(0));
    let ps = Arc::clone(&prev_sum);
    run_peer(
        DseConfig::paper(),
        |shared| {
            let _ = shared.store.alloc(8, Distribution::OnNode(NodeId(1)));
        },
        move |ctx, shared| {
            for i in 0..5 {
                let resp = send_and_await(
                    ctx,
                    shared,
                    NodeId(1),
                    Message::GmFetchAddReq {
                        req: ReqId(i),
                        region: RegionId(0),
                        offset: 0,
                        delta: 10,
                    },
                );
                match resp {
                    Message::GmFetchAddResp { prev, .. } => {
                        assert_eq!(prev, i as i64 * 10);
                        ps.fetch_add(prev, Ordering::SeqCst);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        },
    );
    assert_eq!(prev_sum.load(Ordering::SeqCst), 10 + 20 + 30 + 40);
}

#[test]
fn write_with_cached_holder_defers_ack_until_invalidated() {
    // With the cache on: read once (installing a copy at node 0), then
    // write from node 0's peer... the holder here must be a *different*
    // node than the writer for an invalidation to occur. We stage node 0
    // as holder and write on behalf of node 0 — no invalidation — then
    // stage an artificial holder entry for node 1 and observe the
    // invalidation transaction through the stats.
    let shared = run_peer(
        DseConfig::paper().with_gm_cache(true),
        |shared| {
            let r = shared.store.alloc(1024, Distribution::OnNode(NodeId(1)));
            assert_eq!(r, RegionId(0));
        },
        |ctx, shared| {
            // Read a full cache block: kernel 1 registers node 0 as holder.
            let r = send_and_await(
                ctx,
                shared,
                NodeId(1),
                Message::GmReadReq {
                    req: ReqId(1),
                    region: RegionId(0),
                    offset: 0,
                    len: 1024,
                },
            );
            assert!(matches!(r, Message::GmReadResp { .. }));
            assert!(shared.cache.get(NodeId(0), RegionId(0), 0).is_some());
            // A write from node *1*'s perspective would exclude itself; we
            // are node 0's peer, so write as node 0 — the kernel excludes
            // node 0 and finds no other holder: immediate ack.
            let w = send_and_await(
                ctx,
                shared,
                NodeId(1),
                Message::GmWriteReq {
                    req: ReqId(2),
                    region: RegionId(0),
                    offset: 0,
                    data: vec![9; 16].into(),
                },
            );
            assert_eq!(w, Message::GmWriteAck { req: ReqId(2) });
        },
    );
    // The write (16 bytes at offset 0) cleared the directory entry for
    // block 0 only; block 1's registration from the 1024-byte read remains.
    assert!(shared
        .cache
        .take_holders(RegionId(0), 0, 512, NodeId(9))
        .is_empty());
    assert_eq!(
        shared.cache.take_holders(RegionId(0), 512, 512, NodeId(9)),
        vec![NodeId(0)]
    );
}

#[test]
fn invalidate_request_drops_blocks_and_acks() {
    run_peer(
        DseConfig::paper().with_gm_cache(true),
        |shared| {
            let r = shared.store.alloc(1024, Distribution::OnNode(NodeId(0)));
            assert_eq!(r, RegionId(0));
            // Pretend node 1 cached block 0.
            shared
                .cache
                .install(NodeId(1), RegionId(0), 0, vec![1; 512]);
        },
        |ctx, shared| {
            assert_eq!(shared.cache.cached_blocks(NodeId(1)), 1);
            let ack = send_and_await(
                ctx,
                shared,
                NodeId(1),
                Message::GmInvalidate {
                    req: ReqId(77),
                    region: RegionId(0),
                    offset: 0,
                    len: 512,
                },
            );
            assert_eq!(ack, Message::GmInvalidateAck { req: ReqId(77) });
            assert_eq!(shared.cache.cached_blocks(NodeId(1)), 0);
        },
    );
}

#[test]
fn kernels_exit_on_shutdown() {
    let (mut sim, shared) = cluster(DseConfig::paper());
    let s2 = Arc::clone(&shared);
    sim.spawn("stopper", move |ctx| {
        for n in 0..2 {
            let k = s2.kernel_of(NodeId(n));
            ctx.send(
                k,
                SimDuration::from_nanos(1),
                SimMsg {
                    from_node: NodeId(0),
                    reply_to: ctx.id(),
                    bytes: Message::KernelShutdown.encode(),
                },
            );
        }
    });
    let report = sim.run();
    assert!(report.completed_named("kernel0"));
    assert!(report.completed_named("kernel1"));
    assert!(report.blocked_at_end.is_empty());
}

#[test]
#[should_panic(expected = "undecodable")]
fn corrupted_wire_bytes_panic_the_kernel() {
    let (mut sim, shared) = cluster(DseConfig::paper());
    let s2 = Arc::clone(&shared);
    sim.spawn("attacker", move |ctx| {
        let k = s2.kernel_of(NodeId(1));
        ctx.send(
            k,
            SimDuration::from_nanos(1),
            SimMsg {
                from_node: NodeId(0),
                reply_to: ctx.id(),
                bytes: vec![0xEE, 0xFF, 0x00],
            },
        );
    });
    sim.run();
}

#[test]
fn invoke_spawns_and_acks() {
    let ran = Arc::new(AtomicU64::new(0));
    let spec = ClusterSpec::paper(Platform::sunos_sparc(), 2);
    let mut sim: Simulator<SimMsg> = Simulator::new();
    let cpus = (0..spec.machines_used())
        .map(|m| sim.add_resource(&format!("cpu{m}")))
        .collect();
    let shared = Arc::new(ClusterShared::new(spec, DseConfig::paper(), cpus));
    let r2 = Arc::clone(&ran);
    let factory: AppFactory = Arc::new(move |rank, _pid| {
        let r = Arc::clone(&r2);
        Box::new(move |_ctx| {
            r.fetch_add(rank as u64 + 1, Ordering::SeqCst);
        })
    });
    let kernels = (0..2)
        .map(|n| {
            let shared = Arc::clone(&shared);
            let factory = Arc::clone(&factory);
            sim.spawn(&format!("kernel{n}"), move |kctx| {
                kernel_main(kctx, NodeId(n as u16), shared, factory)
            })
        })
        .collect();
    shared.set_kernels(kernels);
    let s2 = Arc::clone(&shared);
    sim.spawn("driver", move |ctx| {
        let resp = send_and_await(
            ctx,
            &s2,
            NodeId(1),
            Message::InvokeReq {
                req: ReqId(1),
                rank: 6,
                args: vec![],
            },
        );
        match resp {
            Message::InvokeAck { pid, .. } => {
                assert_eq!(pid.node(), NodeId(1));
                assert!(s2.app_proc(pid).is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        for n in 0..2 {
            let k = s2.kernel_of(NodeId(n));
            ctx.send(
                k,
                SimDuration::from_nanos(1),
                SimMsg {
                    from_node: NodeId(0),
                    reply_to: ctx.id(),
                    bytes: Message::KernelShutdown.encode(),
                },
            );
        }
    });
    sim.run();
    assert_eq!(ran.load(Ordering::SeqCst), 7); // rank 6 ran exactly once
}
