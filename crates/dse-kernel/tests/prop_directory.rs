//! Property tests for the sharing directory behind the GM coherence
//! protocols: the sharing vector tracks a reference model exactly, never
//! loses a live replica, invalidations cover exactly the recorded sharers,
//! and lease grant/revoke round-trips.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use dse_kernel::cache::{blocks_touching, CacheStore, CACHE_BLOCK};
use dse_kernel::directory::{Directory, Sharers};
use dse_msg::{NodeId, RegionId};

const NODES: usize = 6;
const BLOCKS: u64 = 8;

/// One step of the directory state machine.
#[derive(Debug, Clone)]
enum Op {
    /// Reader `node` leases `block`.
    Grant { node: u16, block: u64 },
    /// Writer `node` writes a range: takes (and clears) the sharers.
    Take { node: u16, block: u64, span: usize },
    /// Writer `node` peeks the sharers (RC deferral count) — no change.
    Peek { node: u16, block: u64, span: usize },
    /// `node` acquires under RC: releases every lease it holds.
    ReleaseNode { node: u16 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let node = 0u16..NODES as u16;
    let block = 0u64..BLOCKS;
    let span = 1usize..3 * CACHE_BLOCK;
    prop_oneof![
        (node.clone(), block.clone()).prop_map(|(node, block)| Op::Grant { node, block }),
        (node.clone(), block.clone(), span.clone()).prop_map(|(node, block, span)| Op::Take {
            node,
            block,
            span
        }),
        (node.clone(), block.clone(), span).prop_map(|(node, block, span)| Op::Peek {
            node,
            block,
            span
        }),
        node.prop_map(|node| Op::ReleaseNode { node }),
    ]
}

/// Reference model: plain sets per block.
#[derive(Default)]
struct Model {
    holders: HashMap<u64, HashSet<u16>>,
}

impl Model {
    fn sharers_of_range(&self, offset: u64, len: usize, exclude: u16) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for b in blocks_touching(offset, len) {
            if let Some(set) = self.holders.get(&b) {
                for &n in set {
                    if n != exclude && !out.contains(&NodeId(n)) {
                        out.push(NodeId(n));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn directory_matches_reference_model(
        ops in proptest::collection::vec(arb_op(), 1..60),
    ) {
        let r = RegionId(0);
        let dir = Directory::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Grant { node, block } => {
                    let fresh = dir.grant(r, block, NodeId(node));
                    let model_fresh = model.holders.entry(block).or_default().insert(node);
                    prop_assert_eq!(fresh, model_fresh, "lease grant freshness");
                }
                Op::Take { node, block, span } => {
                    let offset = block * CACHE_BLOCK as u64;
                    let got = dir.take_range(r, offset, span, NodeId(node));
                    let want = model.sharers_of_range(offset, span, node);
                    // Invalidations cover exactly the recorded sharers.
                    prop_assert_eq!(&got, &want, "take must equal model sharers");
                    for b in blocks_touching(offset, span) {
                        model.holders.remove(&b);
                    }
                }
                Op::Peek { node, block, span } => {
                    let offset = block * CACHE_BLOCK as u64;
                    let got = dir.peek_range(r, offset, span, NodeId(node));
                    let want = model.sharers_of_range(offset, span, node);
                    prop_assert_eq!(got, want, "peek must not disturb the vector");
                }
                Op::ReleaseNode { node } => {
                    let released = dir.release_node(NodeId(node));
                    let mut model_released = 0usize;
                    model.holders.retain(|_, set| {
                        if set.remove(&node) {
                            model_released += 1;
                        }
                        !set.is_empty()
                    });
                    prop_assert_eq!(released, model_released, "release count");
                }
            }
            // Invariant after every step: the directory never loses a live
            // lease — each block's holders equal the model's exactly.
            for b in 0..BLOCKS {
                let mut want: Vec<NodeId> = model
                    .holders
                    .get(&b)
                    .map(|s| s.iter().map(|&n| NodeId(n)).collect())
                    .unwrap_or_default();
                want.sort_unstable();
                prop_assert_eq!(dir.holders(r, b), want, "block {} holders", b);
            }
        }
    }

    #[test]
    fn sharers_bitset_matches_set_semantics(
        ops in proptest::collection::vec((any::<bool>(), 0u16..128), 1..80),
    ) {
        let mut s = Sharers::new();
        let mut model: HashSet<u16> = HashSet::new();
        for (add, n) in ops {
            if add {
                prop_assert_eq!(s.insert(NodeId(n)), model.insert(n));
            } else {
                prop_assert_eq!(s.remove(NodeId(n)), model.remove(&n));
            }
            prop_assert_eq!(s.count(), model.len());
            prop_assert_eq!(s.is_empty(), model.is_empty());
        }
        let mut want: Vec<NodeId> = model.iter().map(|&n| NodeId(n)).collect();
        want.sort_unstable();
        prop_assert_eq!(s.nodes(), want);
    }

    #[test]
    fn cache_store_never_holds_unleased_replicas_under_wi(
        ops in proptest::collection::vec(arb_op(), 1..50),
    ) {
        // Drive a CacheStore the way the write-invalidate protocol does:
        // grants install data, takes are followed by holder-side drops,
        // release-node purges. Afterwards every cached block must still be
        // covered by a directory lease (the "directory never loses a live
        // replica" safety property: a write invalidates every real copy).
        let r = RegionId(0);
        let cs = CacheStore::new(NODES);
        for op in ops {
            match op {
                Op::Grant { node, block } => {
                    cs.install(NodeId(node), r, block, vec![node as u8; CACHE_BLOCK]);
                }
                Op::Take { node, block, span } => {
                    let offset = block * CACHE_BLOCK as u64;
                    for h in cs.take_holders(r, offset, span, NodeId(node)) {
                        cs.drop_range(h, r, offset, span);
                    }
                    // The writer's own stale copies go too.
                    cs.drop_range(NodeId(node), r, offset, span);
                }
                Op::Peek { node, block, span } => {
                    let offset = block * CACHE_BLOCK as u64;
                    let _ = cs.peek_holders(r, offset, span, NodeId(node));
                }
                Op::ReleaseNode { node } => {
                    cs.purge_node(NodeId(node));
                }
            }
        }
        for n in 0..NODES as u16 {
            for b in 0..BLOCKS {
                if cs.get(NodeId(n), r, b).is_some() {
                    prop_assert!(
                        cs.directory().holders(r, b).contains(&NodeId(n)),
                        "node {} holds block {} without a directory lease",
                        n,
                        b
                    );
                }
            }
        }
    }
}
