//! The DSE kernel main loop (the parallel processing engine).
//!
//! One kernel runs per node. Under the new organization it is a library
//! linked into the application's process, woken by async-I/O signals when a
//! remote request arrives; in the simulator it is its own scheduled entity
//! whose service time is charged to the node's machine CPU — which is
//! exactly the semantics of signal-driven interruption: kernel work steals
//! CPU from the co-resident application process.

use std::collections::HashMap;
use std::sync::Arc;

use dse_msg::{GlobalPid, Message, NodeId, ReqId, ReqIdGen};
use dse_obs::{DeltaTracker, FlightEventKind, MetricKey, SpanKind, TelemetryDelta};
use dse_sim::{ProcCtx, ProcId, RecvResult};

use crate::cache::blocks_inside;
use crate::config::GmMode;
use crate::netpath::{charge_recv, send_msg};
use crate::service::{serve_gm, GmServiceHooks, Served};
use crate::shared::ClusterShared;
use crate::simmsg::SimMsg;
use crate::sync::{BarrierOutcome, LockOutcome, Party, UnlockOutcome};
use crate::watchdog::StallWatchdog;

/// A ready-to-run application process body (built by the API layer).
pub type AppBody = Box<dyn FnOnce(&mut ProcCtx<SimMsg>) + Send>;

/// Factory turning (rank, pid) into an application process body; supplied
/// by the program harness so the kernel stays independent of the API crate.
pub type AppFactory = Arc<dyn Fn(u32, GlobalPid) -> AppBody + Send + Sync>;

/// Handle a barrier entry on behalf of `party` and, if the barrier
/// completed, send the releases to all *earlier* waiters. Returns the
/// completed epoch (the caller decides whether `party` itself proceeds
/// directly — the own-node path — or needs its own release message — the
/// remote path). `acting_node` is the node whose CPU pays for the sends.
pub fn barrier_enter(
    ctx: &mut ProcCtx<SimMsg>,
    shared: &ClusterShared,
    acting_node: NodeId,
    barrier: u32,
    party: Party,
) -> Option<u32> {
    match shared.barriers.enter(barrier, party) {
        BarrierOutcome::Wait => None,
        BarrierOutcome::Complete { epoch, waiters } => {
            shared.stats.update(acting_node, |s| s.barrier_epochs += 1);
            let release = Message::BarrierRelease { barrier, epoch };
            for w in waiters {
                send_msg(
                    ctx,
                    shared,
                    acting_node,
                    w.node,
                    w.reply_to,
                    ctx.id(),
                    &release,
                );
            }
            Some(epoch)
        }
    }
}

/// Handle a lock request on behalf of `party`; sends the grant if the lock
/// was free. `acting_node` pays for the grant send.
pub fn lock_acquire(
    ctx: &mut ProcCtx<SimMsg>,
    shared: &ClusterShared,
    acting_node: NodeId,
    lock: u32,
    party: Party,
) {
    match shared.locks.acquire(lock, party) {
        LockOutcome::Granted => {
            shared.stats.update(acting_node, |s| s.lock_grants += 1);
            let grant = Message::LockGrant {
                req: party.req,
                lock,
            };
            send_msg(
                ctx,
                shared,
                acting_node,
                party.node,
                party.reply_to,
                ctx.id(),
                &grant,
            );
        }
        LockOutcome::Queued => {}
    }
}

/// Handle a lock release; passes ownership to the next queued party if any.
pub fn lock_release(
    ctx: &mut ProcCtx<SimMsg>,
    shared: &ClusterShared,
    acting_node: NodeId,
    lock: u32,
    pid: GlobalPid,
) {
    match shared.locks.release(lock, pid) {
        UnlockOutcome::Released => {}
        UnlockOutcome::Granted(next) => {
            shared.stats.update(acting_node, |s| s.lock_grants += 1);
            let grant = Message::LockGrant {
                req: next.req,
                lock,
            };
            send_msg(
                ctx,
                shared,
                acting_node,
                next.node,
                next.reply_to,
                ctx.id(),
                &grant,
            );
        }
    }
}

/// The span identity of a GM request message (kind, correlation seq).
fn gm_span_of(msg: &Message) -> (SpanKind, u64) {
    match msg {
        Message::GmReadReq { req, .. } => (SpanKind::GmRead, req.0),
        Message::GmWriteReq { req, .. } => (SpanKind::GmWrite, req.0),
        Message::GmFetchAddReq { req, .. } => (SpanKind::GmFetchAdd, req.0),
        Message::GmBatchReq { req, .. } => (SpanKind::GmBatch, req.0),
        other => unreachable!("not a GM request: {other:?}"),
    }
}

/// The simulator's accounting around the engine-neutral GM service: every
/// executed operation charges the serving node's CPU, updates the kernel
/// stats cell, installs cache blocks for the requester, and starts
/// write-invalidate rounds whose acks gate the response.
struct SimGmHooks<'a> {
    ctx: &'a mut ProcCtx<SimMsg>,
    shared: &'a ClusterShared,
    node: NodeId,
    cache_on: bool,
    /// Release consistency: defer invalidations to the readers' acquire
    /// points instead of starting rounds on the write path.
    rc: bool,
    requester: NodeId,
    txn_ids: &'a mut ReqIdGen,
    acks_needed: usize,
    txns: Vec<u64>,
}

impl GmServiceHooks for SimGmHooks<'_> {
    fn read_executed(&mut self, region: dse_msg::RegionId, offset: u64, data: &[u8]) {
        self.ctx.use_resource(
            self.shared.cpu_of(self.node),
            self.shared.cost(self.node).mem_copy(data.len()),
        );
        self.shared.stats.update(self.node, |s| {
            s.gm_remote_reads += 1;
            s.gm_bytes_read += data.len() as u64;
        });
        if self.cache_on {
            // The reader will install every block fully inside the
            // response; record it as a holder of exactly those. A fresh
            // directory registration is a lease grant, charged to this
            // home.
            for b in blocks_inside(offset, data.len()) {
                let lo = (b as usize * crate::cache::CACHE_BLOCK) as u64 - offset;
                let chunk = data[lo as usize..lo as usize + crate::cache::CACHE_BLOCK].to_vec();
                if self.shared.cache.install(self.requester, region, b, chunk) {
                    self.shared.stats.update(self.node, |s| s.dir_leases += 1);
                }
            }
        }
    }

    fn write_executed(&mut self, region: dse_msg::RegionId, offset: u64, len: usize) {
        self.ctx.use_resource(
            self.shared.cpu_of(self.node),
            self.shared.cost(self.node).mem_copy(len),
        );
        self.shared.stats.update(self.node, |s| {
            s.gm_remote_writes += 1;
            s.gm_bytes_written += len as u64;
        });
        if self.cache_on {
            self.coherence_write(region, offset, len);
        }
    }

    fn fetch_add_executed(&mut self, region: dse_msg::RegionId, offset: u64) {
        self.shared.stats.update(self.node, |s| s.fetch_adds += 1);
        if self.cache_on {
            self.coherence_write(region, offset, 8);
        }
    }

    fn invalidated(&mut self, region: dse_msg::RegionId, offset: u64, len: usize) {
        // The holder-side action: drop this node's stale replicas before
        // the ack goes back to the writer's home.
        self.shared.cache.drop_range(self.node, region, offset, len);
        self.shared.stats.update(self.node, |s| s.dir_invals += 1);
    }
}

impl SimGmHooks<'_> {
    /// Coherence action for a served store mutation: under write-invalidate
    /// start an ack-gated invalidation round; under release consistency
    /// leave the sharers' leases alone (they self-invalidate at their next
    /// acquire point) and only count what was deferred.
    fn coherence_write(&mut self, region: dse_msg::RegionId, offset: u64, len: usize) {
        if self.rc {
            let deferred = self
                .shared
                .cache
                .peek_holders(region, offset, len, self.requester);
            if !deferred.is_empty() {
                self.shared
                    .stats
                    .update(self.node, |s| s.rc_deferred_invals += 1);
            }
            return;
        }
        let txn = self.txn_ids.next();
        let acks = begin_invalidation(
            self.ctx,
            self.shared,
            self.node,
            txn,
            region,
            offset,
            len,
            self.requester,
        );
        if acks > 0 {
            self.acks_needed += acks;
            self.txns.push(txn.0);
        }
    }
}

/// A response gated on outstanding invalidation acknowledgements. A plain
/// write or fetch-add gates on one invalidation round; a coalesced batch
/// gates its single response on every round its merged writes started.
struct ResponseGate {
    remaining: usize,
    response: Message,
    to_node: NodeId,
    to_proc: ProcId,
}

/// Start a write-invalidate transaction for a store mutation covering
/// `[offset, offset+len)` of `region`: sends `GmInvalidate` to every other
/// holder and returns the number of acks to await (0 = no holders).
#[allow(clippy::too_many_arguments)]
pub fn begin_invalidation(
    ctx: &mut ProcCtx<SimMsg>,
    shared: &ClusterShared,
    acting_node: NodeId,
    txn: ReqId,
    region: dse_msg::RegionId,
    offset: u64,
    len: usize,
    exclude: NodeId,
) -> usize {
    let holders = shared.cache.take_holders(region, offset, len, exclude);
    if !holders.is_empty() {
        // One round per merged request: a coalesced write that absorbed
        // several `gm_write_nb` calls still counts a single round here.
        shared
            .stats
            .update(acting_node, |s| s.invalidation_rounds += 1);
    }
    let inv = Message::GmInvalidate {
        req: txn,
        region,
        offset,
        len: len as u32,
    };
    for h in &holders {
        shared
            .stats
            .update(acting_node, |s| s.cache_invalidations += 1);
        let kproc = shared.kernel_of(*h);
        let me = ctx.id();
        send_msg(ctx, shared, acting_node, *h, kproc, me, &inv);
    }
    holders.len()
}

/// The kernel loop for `node`. Runs until a `KernelShutdown` arrives (or the
/// simulation drains).
pub fn kernel_main(
    ctx: &mut ProcCtx<SimMsg>,
    node: NodeId,
    shared: Arc<ClusterShared>,
    factory: AppFactory,
) {
    let mut next_local_pid: u16 = 1;
    let cache_on = shared.config.gm_cache;
    let rc = cache_on && shared.config.gm_mode == GmMode::ReleaseConsistency;
    let mut txn_ids = ReqIdGen::new();
    let mut gates: HashMap<u64, ResponseGate> = HashMap::new();
    let mut txn_to_gate: HashMap<u64, u64> = HashMap::new();
    // Telemetry plane (all `None` when `config.telemetry` is off, leaving
    // the classic blocking-recv loop and zero extra traffic).
    let telemetry = shared.config.telemetry.clone();
    let mut tracker = telemetry
        .as_ref()
        .map(|_| DeltaTracker::new(node.0 as u32, node == NodeId(0)));
    let mut watchdog = if node == NodeId(0) {
        telemetry.as_ref().map(|t| {
            StallWatchdog::new(t.watchdog_deadline.as_nanos()).with_escalation(t.escalate_after)
        })
    } else {
        None
    };
    let mut next_emit = telemetry.as_ref().map(|t| ctx.now() + t.interval);
    loop {
        let env = match next_emit {
            Some(at) => match ctx.recv_deadline(at) {
                RecvResult::Msg(env) => env,
                RecvResult::Timeout => {
                    // Idle tick: ship this PE's metric delta in-band and
                    // (on node 0) poll the stall watchdog.
                    emit_delta(ctx, &shared, node, tracker.as_mut().unwrap());
                    if let Some(wd) = watchdog.as_mut() {
                        poll_watchdog(&shared, wd, ctx.now().as_nanos());
                    }
                    next_emit = Some(ctx.now() + telemetry.as_ref().unwrap().interval);
                    continue;
                }
                RecvResult::Shutdown => break,
            },
            None => match ctx.recv() {
                Some(env) => env,
                None => break,
            },
        };
        let sm = env.msg;
        let msg = Message::decode(&sm.bytes).expect("kernel received undecodable message");
        if matches!(msg, Message::KernelShutdown) {
            // Ship the final absolute state before exiting, so the cluster
            // rollup at the aggregator matches the direct end-of-run rollup
            // exactly even if incremental deltas were still in flight.
            if let Some(tr) = tracker.as_mut() {
                final_flush(ctx.now().as_nanos(), &shared, node, tr);
            }
            break;
        }
        // Async-I/O receive path: signal delivery + protocol processing on
        // this node's CPU (stealing time from the co-resident app).
        charge_recv(ctx, &shared, node, sm.bytes.len());
        let service_start = ctx.now();
        // Which requester span (kind, pe, seq) this iteration serviced, if
        // the message was a remote GM request with an open span.
        let mut serviced: Option<(SpanKind, u64)> = None;
        // Telemetry deltas are control-plane traffic: they pay the receive
        // cost like any message but are not "requests served".
        let mut in_band_telemetry = false;
        match msg {
            Message::Telemetry {
                pe: from_pe,
                seq,
                payload,
            } => {
                debug_assert_eq!(node, NodeId(0), "telemetry must reach the aggregating node");
                in_band_telemetry = true;
                let delta = TelemetryDelta::decode(&payload)
                    .unwrap_or_else(|e| panic!("kernel {node}: bad telemetry payload: {e:?}"));
                let now_ns = ctx.now().as_nanos();
                shared.flight.record(
                    now_ns,
                    from_pe,
                    FlightEventKind::Telemetry {
                        seq,
                        absolute: delta.absolute,
                    },
                );
                shared.aggregator.lock().apply(from_pe, seq, now_ns, &delta);
                shared.metrics.incr(
                    MetricKey::pe("kernel", "telemetry_in", node.0 as u32)
                        .on_machine(shared.machine_of(node) as u32),
                );
                // Node 0's own loopback delta closes an aggregation epoch:
                // it was emitted last in the round, so every older delta
                // has been applied — tell the live view.
                if from_pe == node.0 as u32 {
                    if let Some(hook) = shared.epoch_hook() {
                        let agg = shared.aggregator.lock();
                        hook(&agg, now_ns);
                    }
                }
            }
            msg @ (Message::GmReadReq { .. }
            | Message::GmWriteReq { .. }
            | Message::GmFetchAddReq { .. }
            | Message::GmBatchReq { .. }) => {
                serviced = Some(gm_span_of(&msg));
                let is_batch = matches!(msg, Message::GmBatchReq { .. });
                // The engine-neutral service executes the store operations;
                // these hooks layer the simulator's accounting on top: CPU
                // charges, kernel stats, cache installs, and invalidation
                // rounds for the mutated ranges.
                let mut hooks = SimGmHooks {
                    ctx,
                    shared: &shared,
                    node,
                    cache_on,
                    rc,
                    requester: sm.from_node,
                    txn_ids: &mut txn_ids,
                    acks_needed: 0,
                    txns: Vec::new(),
                };
                let resp = match serve_gm(&shared.store, msg, &mut hooks) {
                    Served::Response(r) => r,
                    Served::NotGm(_) => unreachable!("matched GM request arm"),
                };
                let acks_needed = hooks.acks_needed;
                let txns = std::mem::take(&mut hooks.txns);
                drop(hooks);
                if acks_needed > 0 {
                    // Gate the response on the invalidation rounds. A plain
                    // write/fetch-add reuses its single txn id as the gate;
                    // a batch gets one gate covering every merged write.
                    let gate_id = if is_batch { txn_ids.next().0 } else { txns[0] };
                    for t in txns {
                        txn_to_gate.insert(t, gate_id);
                    }
                    gates.insert(
                        gate_id,
                        ResponseGate {
                            remaining: acks_needed,
                            response: resp,
                            to_node: sm.from_node,
                            to_proc: sm.reply_to,
                        },
                    );
                } else {
                    send_msg(
                        ctx,
                        &shared,
                        node,
                        sm.from_node,
                        sm.reply_to,
                        ctx.id(),
                        &resp,
                    );
                }
            }
            Message::InvokeReq { req, rank, .. } => {
                // Parallel process creation: fork-scale cost, then the new
                // process begins on this node.
                ctx.use_resource(shared.cpu_of(node), shared.cost(node).fork());
                let pid = GlobalPid::new(node, next_local_pid);
                next_local_pid += 1;
                shared.stats.update(node, |s| s.invokes += 1);
                let body = factory(rank, pid);
                let app_proc = ctx.spawn(&format!("rank{rank}@{node}"), move |pctx| {
                    body(pctx);
                });
                shared.register_app(pid, app_proc);
                let resp = Message::InvokeAck { req, pid };
                send_msg(
                    ctx,
                    &shared,
                    node,
                    sm.from_node,
                    sm.reply_to,
                    ctx.id(),
                    &resp,
                );
            }
            Message::TerminateReq { req, pid } => {
                shared.mark_terminated(pid);
                let resp = Message::TerminateAck { req };
                send_msg(
                    ctx,
                    &shared,
                    node,
                    sm.from_node,
                    sm.reply_to,
                    ctx.id(),
                    &resp,
                );
            }
            Message::BarrierEnter { barrier, pid } => {
                debug_assert_eq!(node, NodeId(0), "barrier traffic must reach node 0");
                let party = Party {
                    pid,
                    node: sm.from_node,
                    reply_to: sm.reply_to,
                    req: ReqId(0),
                };
                if let Some(epoch) = barrier_enter(ctx, &shared, node, barrier, party) {
                    // The remote completer is itself blocked awaiting a
                    // release (unlike the own-node path, which proceeds
                    // straight through the library call).
                    let release = Message::BarrierRelease { barrier, epoch };
                    send_msg(
                        ctx,
                        &shared,
                        node,
                        sm.from_node,
                        sm.reply_to,
                        ctx.id(),
                        &release,
                    );
                }
            }
            Message::LockReq { req, lock, pid } => {
                debug_assert_eq!(node, NodeId(0), "lock traffic must reach node 0");
                let party = Party {
                    pid,
                    node: sm.from_node,
                    reply_to: sm.reply_to,
                    req,
                };
                lock_acquire(ctx, &shared, node, lock, party);
            }
            Message::UnlockReq { lock, pid } => {
                debug_assert_eq!(node, NodeId(0), "lock traffic must reach node 0");
                lock_release(ctx, &shared, node, lock, pid);
            }
            msg @ Message::GmInvalidate { .. } => {
                // The holder-side half of an invalidation round goes
                // through the engine-neutral service like every other GM
                // message; the hook drops this node's stale copies.
                let mut hooks = SimGmHooks {
                    ctx,
                    shared: &shared,
                    node,
                    cache_on,
                    rc,
                    requester: sm.from_node,
                    txn_ids: &mut txn_ids,
                    acks_needed: 0,
                    txns: Vec::new(),
                };
                let ack = match serve_gm(&shared.store, msg, &mut hooks) {
                    Served::Response(r) => r,
                    Served::NotGm(_) => unreachable!("invalidate is a GM message"),
                };
                drop(hooks);
                send_msg(
                    ctx,
                    &shared,
                    node,
                    sm.from_node,
                    sm.reply_to,
                    ctx.id(),
                    &ack,
                );
            }
            Message::GmInvalidateAck { req } => {
                let gate_id = *txn_to_gate
                    .get(&req.0)
                    .unwrap_or_else(|| panic!("kernel {node}: stray invalidate ack {req:?}"));
                let done = {
                    let gate = gates.get_mut(&gate_id).expect("gate for pending txn");
                    gate.remaining -= 1;
                    gate.remaining == 0
                };
                if done {
                    txn_to_gate.retain(|_, g| *g != gate_id);
                    let gate = gates.remove(&gate_id).unwrap();
                    send_msg(
                        ctx,
                        &shared,
                        node,
                        gate.to_node,
                        gate.to_proc,
                        ctx.id(),
                        &gate.response,
                    );
                }
            }
            other => panic!("kernel {node}: unexpected message {other:?}"),
        }
        if !in_band_telemetry {
            let service_ns = (ctx.now() - service_start).as_nanos();
            let pe = node.0 as u32;
            let machine = shared.machine_of(node) as u32;
            shared
                .metrics
                .incr(MetricKey::pe("kernel", "requests_served", pe).on_machine(machine));
            shared.metrics.record(
                MetricKey::pe("kernel", "service_ns", pe).on_machine(machine),
                service_ns,
            );
            if let Some((kind, seq)) = serviced {
                shared
                    .spans
                    .note_service(kind, sm.from_node.0 as u32, seq, service_ns);
            }
        }
        // Catch-up emission: the recv timeout only fires when the mailbox
        // is idle, so a busy kernel checks the emission clock after each
        // serviced message.
        if let (Some(t), Some(at)) = (telemetry.as_ref(), next_emit) {
            if ctx.now() >= at {
                emit_delta(ctx, &shared, node, tracker.as_mut().unwrap());
                if let Some(wd) = watchdog.as_mut() {
                    poll_watchdog(&shared, wd, ctx.now().as_nanos());
                }
                next_emit = Some(ctx.now() + t.interval);
            }
        }
    }
}

/// This node's synthesized extra counters: its kernel-stats cell flattened
/// into metric series (the part of the per-PE rollup not kept in the
/// registry).
fn synth_counters(shared: &ClusterShared, node: NodeId) -> Vec<(MetricKey, u64)> {
    shared
        .stats
        .snapshot_pe(node.index())
        .as_metric_counters(node.0 as u32, shared.machine_of(node) as u32)
}

/// Periodic telemetry emission: ship this PE's incremental metric delta
/// in-band to node 0's kernel. Node 0 forces an emission even when nothing
/// changed — its own loopback delta is the heartbeat that closes each
/// aggregation epoch for the live view.
fn emit_delta(
    ctx: &mut ProcCtx<SimMsg>,
    shared: &ClusterShared,
    node: NodeId,
    tracker: &mut DeltaTracker,
) {
    let snap = shared.metrics.snapshot();
    let extra = synth_counters(shared, node);
    let force = node == NodeId(0);
    if let Some((seq, d)) = tracker.delta(&snap, &extra, force) {
        let msg = Message::Telemetry {
            pe: tracker.pe(),
            seq,
            payload: d.encode(),
        };
        let kproc = shared.kernel_of(NodeId(0));
        let me = ctx.id();
        send_msg(ctx, shared, node, NodeId(0), kproc, me, &msg);
    }
}

/// Shutdown flush: apply this PE's absolute state straight to the
/// aggregator. The wire cannot carry it (the aggregating kernel exits on
/// the same shutdown wave and late messages would be dropped), but it still
/// crosses the exact encode/decode path the wire uses, so the rollup stays
/// a pure product of the in-band codec.
fn final_flush(now_ns: u64, shared: &ClusterShared, node: NodeId, tracker: &mut DeltaTracker) {
    let snap = shared.metrics.snapshot();
    let extra = synth_counters(shared, node);
    let (seq, d) = tracker.absolute(&snap, &extra);
    let back = TelemetryDelta::decode(&d.encode()).expect("telemetry self-roundtrip");
    shared.flight.record(
        now_ns,
        node.0 as u32,
        FlightEventKind::Telemetry {
            seq,
            absolute: true,
        },
    );
    shared
        .aggregator
        .lock()
        .apply(node.0 as u32, seq, now_ns, &back);
}

/// Node 0's watchdog poll: flag GM requests stuck past the deadline, count
/// them, append them to the shared stall report, and capture a one-shot
/// flight-recorder dump on the first trip.
fn poll_watchdog(shared: &ClusterShared, wd: &mut StallWatchdog, now_ns: u64) {
    let reports = wd.check(now_ns, &shared.spans);
    if reports.is_empty() {
        return;
    }
    for r in &reports {
        shared
            .metrics
            .incr(MetricKey::pe("kernel", "gm_stalls", r.pe));
        shared.flight.record(
            now_ns,
            r.pe,
            FlightEventKind::Stall {
                kind: r.kind,
                seq: r.seq,
                waited_ns: r.waited_ns(),
            },
        );
    }
    let mut dump = shared.flight_dump.lock();
    if dump.is_none() {
        *dump = Some(shared.flight.to_jsonl());
    }
    drop(dump);
    shared.stalls.lock().extend(reports);
    // Escalation hook: past the configured stall budget, record the trip
    // (and refresh the post-mortem dump so it covers the escalating stall).
    if wd.take_escalation() {
        shared
            .metrics
            .incr(MetricKey::global("kernel", "stall_escalations"));
        *shared.flight_dump.lock() = Some(shared.flight.to_jsonl());
    }
}
