//! The DSE kernel main loop (the parallel processing engine).
//!
//! One kernel runs per node. Under the new organization it is a library
//! linked into the application's process, woken by async-I/O signals when a
//! remote request arrives; in the simulator it is its own scheduled entity
//! whose service time is charged to the node's machine CPU — which is
//! exactly the semantics of signal-driven interruption: kernel work steals
//! CPU from the co-resident application process.

use std::collections::HashMap;
use std::sync::Arc;

use dse_msg::{GlobalPid, Message, NodeId, ReqId, ReqIdGen};
use dse_obs::{MetricKey, SpanKind};
use dse_sim::{ProcCtx, ProcId};

use crate::cache::blocks_inside;
use crate::netpath::{charge_recv, send_msg};
use crate::shared::ClusterShared;
use crate::simmsg::SimMsg;
use crate::sync::{BarrierOutcome, LockOutcome, Party, UnlockOutcome};

/// A ready-to-run application process body (built by the API layer).
pub type AppBody = Box<dyn FnOnce(&mut ProcCtx<SimMsg>) + Send>;

/// Factory turning (rank, pid) into an application process body; supplied
/// by the program harness so the kernel stays independent of the API crate.
pub type AppFactory = Arc<dyn Fn(u32, GlobalPid) -> AppBody + Send + Sync>;

/// Handle a barrier entry on behalf of `party` and, if the barrier
/// completed, send the releases to all *earlier* waiters. Returns the
/// completed epoch (the caller decides whether `party` itself proceeds
/// directly — the own-node path — or needs its own release message — the
/// remote path). `acting_node` is the node whose CPU pays for the sends.
pub fn barrier_enter(
    ctx: &mut ProcCtx<SimMsg>,
    shared: &ClusterShared,
    acting_node: NodeId,
    barrier: u32,
    party: Party,
) -> Option<u32> {
    match shared.barriers.enter(barrier, party) {
        BarrierOutcome::Wait => None,
        BarrierOutcome::Complete { epoch, waiters } => {
            shared.stats.update(acting_node, |s| s.barrier_epochs += 1);
            let release = Message::BarrierRelease { barrier, epoch };
            for w in waiters {
                send_msg(
                    ctx,
                    shared,
                    acting_node,
                    w.node,
                    w.reply_to,
                    ctx.id(),
                    &release,
                );
            }
            Some(epoch)
        }
    }
}

/// Handle a lock request on behalf of `party`; sends the grant if the lock
/// was free. `acting_node` pays for the grant send.
pub fn lock_acquire(
    ctx: &mut ProcCtx<SimMsg>,
    shared: &ClusterShared,
    acting_node: NodeId,
    lock: u32,
    party: Party,
) {
    match shared.locks.acquire(lock, party) {
        LockOutcome::Granted => {
            shared.stats.update(acting_node, |s| s.lock_grants += 1);
            let grant = Message::LockGrant {
                req: party.req,
                lock,
            };
            send_msg(
                ctx,
                shared,
                acting_node,
                party.node,
                party.reply_to,
                ctx.id(),
                &grant,
            );
        }
        LockOutcome::Queued => {}
    }
}

/// Handle a lock release; passes ownership to the next queued party if any.
pub fn lock_release(
    ctx: &mut ProcCtx<SimMsg>,
    shared: &ClusterShared,
    acting_node: NodeId,
    lock: u32,
    pid: GlobalPid,
) {
    match shared.locks.release(lock, pid) {
        UnlockOutcome::Released => {}
        UnlockOutcome::Granted(next) => {
            shared.stats.update(acting_node, |s| s.lock_grants += 1);
            let grant = Message::LockGrant {
                req: next.req,
                lock,
            };
            send_msg(
                ctx,
                shared,
                acting_node,
                next.node,
                next.reply_to,
                ctx.id(),
                &grant,
            );
        }
    }
}

/// A coherence transaction awaiting invalidation acknowledgements before
/// its response can be released.
struct PendingTxn {
    remaining: usize,
    response: Message,
    to_node: NodeId,
    to_proc: ProcId,
}

/// Start a write-invalidate transaction for a store mutation covering
/// `[offset, offset+len)` of `region`: sends `GmInvalidate` to every other
/// holder and returns the number of acks to await (0 = no holders).
#[allow(clippy::too_many_arguments)]
pub fn begin_invalidation(
    ctx: &mut ProcCtx<SimMsg>,
    shared: &ClusterShared,
    acting_node: NodeId,
    txn: ReqId,
    region: dse_msg::RegionId,
    offset: u64,
    len: usize,
    exclude: NodeId,
) -> usize {
    let holders = shared.cache.take_holders(region, offset, len, exclude);
    let inv = Message::GmInvalidate {
        req: txn,
        region,
        offset,
        len: len as u32,
    };
    for h in &holders {
        shared
            .stats
            .update(acting_node, |s| s.cache_invalidations += 1);
        let kproc = shared.kernel_of(*h);
        let me = ctx.id();
        send_msg(ctx, shared, acting_node, *h, kproc, me, &inv);
    }
    holders.len()
}

/// The kernel loop for `node`. Runs until a `KernelShutdown` arrives (or the
/// simulation drains).
pub fn kernel_main(
    ctx: &mut ProcCtx<SimMsg>,
    node: NodeId,
    shared: Arc<ClusterShared>,
    factory: AppFactory,
) {
    let mut next_local_pid: u16 = 1;
    let cache_on = shared.config.gm_cache;
    let mut txn_ids = ReqIdGen::new();
    let mut pending: HashMap<u64, PendingTxn> = HashMap::new();
    while let Some(env) = ctx.recv() {
        let sm = env.msg;
        let msg = Message::decode(&sm.bytes).expect("kernel received undecodable message");
        if matches!(msg, Message::KernelShutdown) {
            break;
        }
        // Async-I/O receive path: signal delivery + protocol processing on
        // this node's CPU (stealing time from the co-resident app).
        charge_recv(ctx, &shared, node, sm.bytes.len());
        let service_start = ctx.now();
        // Which requester span (kind, pe, seq) this iteration serviced, if
        // the message was a remote GM request with an open span.
        let mut serviced: Option<(SpanKind, u64)> = None;
        match msg {
            Message::GmReadReq {
                req,
                region,
                offset,
                len,
            } => {
                serviced = Some((SpanKind::GmRead, req.0));
                let data = shared
                    .store
                    .read(region, offset, len as usize)
                    .unwrap_or_else(|e| panic!("kernel {node}: remote read failed: {e}"));
                ctx.use_resource(shared.cpu_of(node), shared.cost(node).mem_copy(data.len()));
                shared.stats.update(node, |s| {
                    s.gm_remote_reads += 1;
                    s.gm_bytes_read += data.len() as u64;
                });
                if cache_on {
                    // The reader will install every block fully inside the
                    // response; record it as a holder of exactly those.
                    for b in blocks_inside(offset, len as usize) {
                        let lo = (b as usize * crate::cache::CACHE_BLOCK) as u64 - offset;
                        let chunk =
                            data[lo as usize..lo as usize + crate::cache::CACHE_BLOCK].to_vec();
                        shared.cache.install(sm.from_node, region, b, chunk);
                    }
                }
                let resp = Message::GmReadResp { req, data };
                send_msg(
                    ctx,
                    &shared,
                    node,
                    sm.from_node,
                    sm.reply_to,
                    ctx.id(),
                    &resp,
                );
            }
            Message::GmWriteReq {
                req,
                region,
                offset,
                data,
            } => {
                serviced = Some((SpanKind::GmWrite, req.0));
                ctx.use_resource(shared.cpu_of(node), shared.cost(node).mem_copy(data.len()));
                shared.stats.update(node, |s| {
                    s.gm_remote_writes += 1;
                    s.gm_bytes_written += data.len() as u64;
                });
                let len = data.len();
                shared
                    .store
                    .write(region, offset, &data)
                    .unwrap_or_else(|e| panic!("kernel {node}: remote write failed: {e}"));
                let resp = Message::GmWriteAck { req };
                let mut acks_needed = 0;
                if cache_on {
                    let txn = txn_ids.next();
                    acks_needed = begin_invalidation(
                        ctx,
                        &shared,
                        node,
                        txn,
                        region,
                        offset,
                        len,
                        sm.from_node,
                    );
                    if acks_needed > 0 {
                        pending.insert(
                            txn.0,
                            PendingTxn {
                                remaining: acks_needed,
                                response: resp.clone(),
                                to_node: sm.from_node,
                                to_proc: sm.reply_to,
                            },
                        );
                    }
                }
                if acks_needed == 0 {
                    send_msg(
                        ctx,
                        &shared,
                        node,
                        sm.from_node,
                        sm.reply_to,
                        ctx.id(),
                        &resp,
                    );
                }
            }
            Message::GmFetchAddReq {
                req,
                region,
                offset,
                delta,
            } => {
                serviced = Some((SpanKind::GmFetchAdd, req.0));
                let prev = shared
                    .store
                    .fetch_add(region, offset, delta)
                    .unwrap_or_else(|e| panic!("kernel {node}: remote fetch-add failed: {e}"));
                shared.stats.update(node, |s| s.fetch_adds += 1);
                let resp = Message::GmFetchAddResp { req, prev };
                let mut acks_needed = 0;
                if cache_on {
                    let txn = txn_ids.next();
                    acks_needed = begin_invalidation(
                        ctx,
                        &shared,
                        node,
                        txn,
                        region,
                        offset,
                        8,
                        sm.from_node,
                    );
                    if acks_needed > 0 {
                        pending.insert(
                            txn.0,
                            PendingTxn {
                                remaining: acks_needed,
                                response: resp.clone(),
                                to_node: sm.from_node,
                                to_proc: sm.reply_to,
                            },
                        );
                    }
                }
                if acks_needed == 0 {
                    send_msg(
                        ctx,
                        &shared,
                        node,
                        sm.from_node,
                        sm.reply_to,
                        ctx.id(),
                        &resp,
                    );
                }
            }
            Message::InvokeReq { req, rank, .. } => {
                // Parallel process creation: fork-scale cost, then the new
                // process begins on this node.
                ctx.use_resource(shared.cpu_of(node), shared.cost(node).fork());
                let pid = GlobalPid::new(node, next_local_pid);
                next_local_pid += 1;
                shared.stats.update(node, |s| s.invokes += 1);
                let body = factory(rank, pid);
                let app_proc = ctx.spawn(&format!("rank{rank}@{node}"), move |pctx| {
                    body(pctx);
                });
                shared.register_app(pid, app_proc);
                let resp = Message::InvokeAck { req, pid };
                send_msg(
                    ctx,
                    &shared,
                    node,
                    sm.from_node,
                    sm.reply_to,
                    ctx.id(),
                    &resp,
                );
            }
            Message::TerminateReq { req, pid } => {
                shared.mark_terminated(pid);
                let resp = Message::TerminateAck { req };
                send_msg(
                    ctx,
                    &shared,
                    node,
                    sm.from_node,
                    sm.reply_to,
                    ctx.id(),
                    &resp,
                );
            }
            Message::BarrierEnter { barrier, pid } => {
                debug_assert_eq!(node, NodeId(0), "barrier traffic must reach node 0");
                let party = Party {
                    pid,
                    node: sm.from_node,
                    reply_to: sm.reply_to,
                    req: ReqId(0),
                };
                if let Some(epoch) = barrier_enter(ctx, &shared, node, barrier, party) {
                    // The remote completer is itself blocked awaiting a
                    // release (unlike the own-node path, which proceeds
                    // straight through the library call).
                    let release = Message::BarrierRelease { barrier, epoch };
                    send_msg(
                        ctx,
                        &shared,
                        node,
                        sm.from_node,
                        sm.reply_to,
                        ctx.id(),
                        &release,
                    );
                }
            }
            Message::LockReq { req, lock, pid } => {
                debug_assert_eq!(node, NodeId(0), "lock traffic must reach node 0");
                let party = Party {
                    pid,
                    node: sm.from_node,
                    reply_to: sm.reply_to,
                    req,
                };
                lock_acquire(ctx, &shared, node, lock, party);
            }
            Message::UnlockReq { lock, pid } => {
                debug_assert_eq!(node, NodeId(0), "lock traffic must reach node 0");
                lock_release(ctx, &shared, node, lock, pid);
            }
            Message::GmInvalidate {
                req,
                region,
                offset,
                len,
            } => {
                // Drop this node's stale copies and confirm.
                shared.cache.drop_range(node, region, offset, len as usize);
                let ack = Message::GmInvalidateAck { req };
                send_msg(
                    ctx,
                    &shared,
                    node,
                    sm.from_node,
                    sm.reply_to,
                    ctx.id(),
                    &ack,
                );
            }
            Message::GmInvalidateAck { req } => {
                let done = {
                    let txn = pending
                        .get_mut(&req.0)
                        .unwrap_or_else(|| panic!("kernel {node}: stray invalidate ack {req:?}"));
                    txn.remaining -= 1;
                    txn.remaining == 0
                };
                if done {
                    let txn = pending.remove(&req.0).unwrap();
                    send_msg(
                        ctx,
                        &shared,
                        node,
                        txn.to_node,
                        txn.to_proc,
                        ctx.id(),
                        &txn.response,
                    );
                }
            }
            other => panic!("kernel {node}: unexpected message {other:?}"),
        }
        let service_ns = (ctx.now() - service_start).as_nanos();
        let pe = node.0 as u32;
        let machine = shared.machine_of(node) as u32;
        shared
            .metrics
            .incr(MetricKey::pe("kernel", "requests_served", pe).on_machine(machine));
        shared.metrics.record(
            MetricKey::pe("kernel", "service_ns", pe).on_machine(machine),
            service_ns,
        );
        if let Some((kind, seq)) = serviced {
            shared
                .spans
                .note_service(kind, sm.from_node.0 as u32, seq, service_ns);
        }
    }
}
