//! The resumable kernel state machine: one PE's message loop as a sans-IO
//! task.
//!
//! [`KernelTask`] is the live engine's kernel loop with the blocking
//! receive factored out: instead of owning a transport and sleeping in
//! `recv`, the task consumes one [`KernelEvent`] per [`KernelTask::poll`]
//! call — a decoded message, a housekeeping tick, or the cluster abort
//! latch — and reports [`Progress`]. Everything it wants to say to the
//! world accumulates in an outbox of [`Outbound`] items the driver drains
//! after each poll: wire sends (the driver maps transport errors to
//! failures), best-effort telemetry sends, and forwards to the co-resident
//! application thread.
//!
//! Because the task never blocks, one OS thread can drive one task (the
//! classic thread-per-PE engine) or a small worker pool can multiplex
//! thousands of them — both drivers run the *same* protocol logic, which
//! is what makes the two live schedulers bit-identical by construction.
//! The old 50 ms recv tick and the watch-interval telemetry emission are
//! re-expressed as timer state: [`KernelTask::timeout`] tells the driver
//! how long it may wait before the task wants a [`KernelEvent::Tick`].

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use dse_msg::{Message, NodeId, RegionId, ReqId, TraceCtx};
use dse_obs::{
    derived_span_id, ClusterAggregator, DeltaTracker, FlightEventKind, FlightRecorder, MetricKey,
    Registry, TelemetryDelta, TraceRecorder, TraceRole, TraceSpanKind, TraceSpanRec,
};

use crate::cache::{blocks_inside, CacheStore};
use crate::config::GmMode;
use crate::dedup::{dedup_key, DedupCache};
use crate::gmem::GlobalStore;
use crate::service::{serve_gm, GmServiceHooks, Served};
use crate::sync::{BarrierCenter, BarrierOutcome, LockCenter, LockOutcome, Party, UnlockOutcome};

/// `Abort` frame `code` values used by the kernel and the live engine.
pub mod abort_code {
    /// Abort relayed or triggered without a more specific cause.
    pub const GENERIC: u32 = 0;
    /// A transport send/receive failed.
    pub const TRANSPORT: u32 = 1;
}

// ---------------------------------------------------------------------------
// Deterministic derived span ids.
//
// Spans whose ids both wire endpoints (or two runs of the same seed) must
// agree on are never minted from a counter — they are derived by hashing
// ids the endpoints already share. The salt keeps the three derivation
// families disjoint.
// ---------------------------------------------------------------------------

/// Serve span for the `replay`-th answer (0 = fresh) to the request whose
/// root span is `parent`: requester and home compute the same id.
pub fn serve_span_id(parent: u64, replay: u32) -> u64 {
    derived_span_id(parent, 1 | ((replay as u64) << 8))
}

/// Barrier-release span for one `(barrier, epoch)` round.
pub fn barrier_span_id(barrier: u32, epoch: u32) -> u64 {
    derived_span_id(((barrier as u64) << 24) ^ epoch as u64, 2)
}

/// Lock-grant span for the request `req` issued by PE `owner`.
pub fn lock_span_id(owner: u32, req: u64) -> u64 {
    derived_span_id(((owner as u64) << 40) ^ req, 3)
}

/// Wire context and half-built grant span for a lock grant to `owner`
/// (the caller stamps `end_ns` and `pe`). `start_ns` is when the request
/// arrived at the coordinator, so the span covers the coordinator-side
/// queueing time.
fn lock_grant_trace(
    ctx: Option<TraceCtx>,
    owner: u32,
    req: u64,
    start_ns: u64,
) -> (Option<TraceCtx>, Option<TraceSpanRec>) {
    match ctx {
        Some(c) => {
            let span_id = lock_span_id(owner, req);
            let mut span = TraceSpanRec::new(
                TraceSpanKind::LockGrant,
                c.trace,
                span_id,
                c.parent,
                0,
                start_ns,
                start_ns,
            );
            span.peer = owner;
            span.seq = req;
            (
                Some(TraceCtx {
                    trace: c.trace,
                    parent: span_id,
                }),
                Some(span),
            )
        }
        None => (None, None),
    }
}

/// Kernel transaction ids live above this bit so they can never collide
/// with app-side `ReqIdGen` ids: a `GmInvalidateAck` whose id has the high
/// bit belongs to a home kernel's write gate, anything else to an app's
/// own-node invalidation round.
pub const KERNEL_TXN_BASE: u64 = 1 << 63;

/// Serving-side GM request dedup capacity (per kernel, across all peers).
const DEDUP_CAP: usize = 64;

/// What the app thread can receive from its kernel: responses to its own
/// requests and coordination wakeups, forwarded off the transport.
pub fn is_app_bound(msg: &Message) -> bool {
    matches!(
        msg,
        Message::GmReadResp { .. }
            | Message::GmWriteAck { .. }
            | Message::GmBatchResp { .. }
            | Message::GmFetchAddResp { .. }
            | Message::BarrierRelease { .. }
            | Message::LockGrant { .. }
    )
}

/// Kernel-side GM service accounting, using the same metric names the
/// simulator's kernel emits so one `dse-top` view serves both engines.
/// On cached runs the hooks also run the home side of the directory
/// protocol: reads grant leases to the requester at serve time, writes are
/// collected so the task can gate the response on invalidation acks, and a
/// `GmInvalidate` addressed to this PE drops the local replicas.
struct LiveGmHooks<'a> {
    metrics: &'a Registry,
    pe: u32,
    /// The requesting PE of the message being served.
    from: u32,
    /// The run's replica cache (`None` on uncached runs).
    cache: Option<&'a CacheStore>,
    /// This PE's install guard, for holder-side invalidation application.
    guard: &'a Mutex<u64>,
    /// Written ranges of the request being served, in execution order —
    /// the task consults the directory for these after the serve.
    writes: Vec<(RegionId, u64, usize)>,
}

impl GmServiceHooks for LiveGmHooks<'_> {
    fn read_executed(&mut self, region: RegionId, offset: u64, data: &[u8]) {
        self.metrics.add(
            MetricKey::pe("kernel", "gm_bytes_read", self.pe),
            data.len() as u64,
        );
        if let Some(cs) = self.cache {
            // Home-side half of the lease: record the requester as a
            // sharer of every block its fetch fully covers. The data half
            // installs at the requester on completion (epoch-guarded).
            let mut fresh = 0u64;
            for b in blocks_inside(offset, data.len()) {
                if cs.grant(NodeId(self.from as u16), region, b) {
                    fresh += 1;
                }
            }
            if fresh > 0 {
                self.metrics
                    .add(MetricKey::pe("kernel", "dir_leases", self.pe), fresh);
            }
        }
    }
    fn write_executed(&mut self, region: RegionId, offset: u64, len: usize) {
        self.metrics.add(
            MetricKey::pe("kernel", "gm_bytes_written", self.pe),
            len as u64,
        );
        if self.cache.is_some() {
            self.writes.push((region, offset, len));
        }
    }
    fn fetch_add_executed(&mut self, region: RegionId, offset: u64) {
        if self.cache.is_some() {
            self.writes.push((region, offset, 8));
        }
    }
    fn invalidated(&mut self, region: RegionId, offset: u64, len: usize) {
        if let Some(cs) = self.cache {
            // Epoch first, then the drop, both under the guard: an app-side
            // install that checked the epoch before this bump is either
            // already in the map (the drop removes it) or will re-check and
            // skip.
            let mut epoch = self.guard.lock();
            *epoch += 1;
            cs.drop_range(NodeId(self.pe as u16), region, offset, len);
            drop(epoch);
            self.metrics
                .incr(MetricKey::pe("kernel", "dir_invals", self.pe));
        }
    }
}

/// A served write (or atomic) whose response is withheld until every
/// stale replica's invalidation ack has come back — the live engine's
/// single-home transaction ordering.
struct WriteGate {
    /// Invalidation acks still outstanding.
    remaining: usize,
    /// The withheld response.
    resp: Message,
    /// The requester it goes back to.
    to: u32,
    /// Trace context the response rides with.
    ctx: Option<TraceCtx>,
    /// Dedup key of the gated request: inserted into the served cache only
    /// when the response actually goes out.
    key: Option<(u32, u64)>,
}

/// One input to [`KernelTask::poll`].
pub enum KernelEvent {
    /// A decoded envelope from the transport.
    Message {
        /// Sending PE.
        from: u32,
        /// The decoded message.
        msg: Message,
        /// Trace context that rode the frame, if any.
        ctx: Option<TraceCtx>,
    },
    /// A housekeeping timer: the driver waited [`KernelTask::timeout`]
    /// without traffic (telemetry emission happens here).
    Tick,
    /// The driver observed the cluster abort latch.
    AbortLatch,
}

/// What a poll step concluded.
pub enum Progress {
    /// Keep feeding events.
    Pending,
    /// Normal shutdown: every rank's ExitNotice reached the coordinator
    /// and `KernelShutdown` came back.
    Clean,
    /// The run is aborting; the payload is the `Abort` frame to relay
    /// (PE 0 re-broadcasts it to the cluster).
    Aborted(Message),
}

/// One queued output of a poll step, drained by the driver in order.
pub enum Outbound {
    /// A wire send whose failure fails the kernel (the driver maps the
    /// transport error and stops draining).
    Wire {
        /// Destination PE.
        to: u32,
        /// The message.
        msg: Message,
        /// Trace context to ride the frame.
        ctx: Option<TraceCtx>,
    },
    /// A best-effort wire send (telemetry deltas: the aggregating PE may
    /// already be gone during shutdown; a lost delta is healed by the
    /// final absolute round).
    WireBestEffort {
        /// Destination PE.
        to: u32,
        /// The message.
        msg: Message,
    },
    /// A best-effort forward to the co-resident application thread (it
    /// may have exited already if the program is erroneous).
    App {
        /// The message.
        msg: Message,
        /// Trace context that rode the frame.
        ctx: Option<TraceCtx>,
    },
}

/// The shared run state one kernel task serves against. All references
/// point into the live engine's cluster structure; the task copies them
/// out so borrows never tangle with the task's own mutable state.
#[derive(Clone, Copy)]
pub struct KernelEnv<'a> {
    /// This task's PE.
    pub pe: u32,
    /// Cluster size.
    pub nprocs: usize,
    /// The home-partitioned global store.
    pub store: &'a GlobalStore,
    /// Wall-clock metrics registry.
    pub metrics: &'a Registry,
    /// Post-mortem ring of recent wire sends and stalls.
    pub flight: &'a FlightRecorder,
    /// Replica cache + sharing directory (`None` on uncached runs).
    pub cache: Option<&'a CacheStore>,
    /// Coherence protocol for cached runs.
    pub gm_mode: GmMode,
    /// This PE's install guard (epoch of applied invalidations).
    pub install_guard: &'a Mutex<u64>,
    /// Engine clock origin for flight/span timestamps.
    pub engine_t0: Instant,
    /// Run start for telemetry timestamps.
    pub run_start: Instant,
}

impl KernelEnv<'_> {
    fn now_ns(&self) -> u64 {
        self.engine_t0.elapsed().as_nanos() as u64
    }
}

/// Telemetry hook invoked on the aggregating PE's emission ticks.
pub type WatchHook<'h> = &'h (dyn Fn(&ClusterAggregator, u64) + Send + Sync);

/// One PE's kernel as a resumable state machine. See the module docs for
/// the event/driver contract; see the live engine for the two drivers.
pub struct KernelTask<'a> {
    env: KernelEnv<'a>,
    /// Coordination state lives on PE 0 (reply tokens are PE ranks).
    barriers: BarrierCenter<u32>,
    locks: LockCenter<u32>,
    served_cache: DedupCache,
    // Directory coherence state (cached runs only): write gates awaiting
    // invalidation acks, the inval-txn → gate index, and the dedup keys of
    // requests currently gated (their retransmits are dropped, not
    // re-executed).
    gates: HashMap<u64, WriteGate>,
    inval_to_gate: HashMap<u64, u64>,
    pending_gated: HashSet<(u32, u64)>,
    next_txn: u64,
    // Trace context and arrival time of coordination requests still
    // pending an answer: barrier rounds keyed by barrier id (first-enter
    // time), lock requests keyed by (requester, req).
    barrier_open: HashMap<u32, u64>,
    lock_pend: HashMap<(u32, u64), (Option<TraceCtx>, u64)>,
    exited: usize,
    last_emit: Instant,
    watch: Option<(Duration, WatchHook<'a>)>,
    /// Bound on the driver's wait between events (the old `IDLE_TICK`).
    tick: Duration,
    tracker: DeltaTracker,
    agg: Option<ClusterAggregator>,
    rec: TraceRecorder,
    outbox: VecDeque<Outbound>,
}

impl<'a> KernelTask<'a> {
    /// A fresh kernel task over `env`. `watch` enables telemetry emission
    /// every interval (and aggregation + hook invocation on PE 0); `tick`
    /// bounds the driver's idle wait; `tracing` records causal spans.
    pub fn new(
        env: KernelEnv<'a>,
        watch: Option<(Duration, WatchHook<'a>)>,
        tick: Duration,
        tracing: bool,
    ) -> KernelTask<'a> {
        let pe = env.pe;
        KernelTask {
            barriers: BarrierCenter::new(env.nprocs),
            locks: LockCenter::new(),
            served_cache: DedupCache::new(DEDUP_CAP),
            gates: HashMap::new(),
            inval_to_gate: HashMap::new(),
            pending_gated: HashSet::new(),
            next_txn: 0,
            barrier_open: HashMap::new(),
            lock_pend: HashMap::new(),
            exited: 0,
            last_emit: Instant::now(),
            watch,
            tick,
            tracker: DeltaTracker::new(pe, pe == 0),
            agg: (pe == 0 && watch.is_some()).then(|| ClusterAggregator::new(env.nprocs)),
            rec: if tracing {
                TraceRecorder::new(pe, TraceRole::Kernel)
            } else {
                TraceRecorder::disabled(pe, TraceRole::Kernel)
            },
            outbox: VecDeque::new(),
            env,
        }
    }

    /// How long the driver may wait for the next event before the task
    /// wants a [`KernelEvent::Tick`] (telemetry emission and the idle
    /// heartbeat, formerly the hardwired 50 ms recv tick).
    pub fn timeout(&self) -> Duration {
        match &self.watch {
            Some((iv, _)) => iv.saturating_sub(self.last_emit.elapsed()).min(self.tick),
            None => self.tick,
        }
    }

    /// Absolute form of [`KernelTask::timeout`], for deadline-sorted
    /// drivers.
    pub fn deadline(&self) -> Instant {
        Instant::now() + self.timeout()
    }

    /// Drain queued outputs in order. Dropping the iterator early (e.g. on
    /// the first failed send) discards the rest, matching the blocking
    /// loop's abort-on-first-error semantics.
    pub fn drain_outbox(&mut self) -> std::collections::vec_deque::Drain<'_, Outbound> {
        self.outbox.drain(..)
    }

    /// Tear down: the delta tracker (for the final absolute telemetry
    /// round), the aggregator (watched PE 0 only), and the recorded spans.
    pub fn finish(mut self) -> (DeltaTracker, Option<ClusterAggregator>, Vec<TraceSpanRec>) {
        (self.tracker, self.agg, self.rec.take())
    }

    fn send(&mut self, to: u32, msg: Message, ctx: Option<TraceCtx>) {
        self.env.flight.record(
            self.env.now_ns(),
            self.env.pe,
            FlightEventKind::Bus {
                label: msg.label(),
                to_pe: to,
                bytes: msg.wire_len() as u64,
            },
        );
        if to == self.env.pe && is_app_bound(&msg) {
            // A response addressed to our own application thread. Sending
            // it over the transport would only loop it back to this very
            // kernel (encode → own inbox → wake → decode → reclassify as
            // app-bound) one poll later; hand it to the app directly
            // instead. Kernel-bound self-traffic (e.g. invalidation acks)
            // still rides the wire so its handling order is unchanged.
            self.outbox.push_back(Outbound::App { msg, ctx });
        } else {
            self.outbox.push_back(Outbound::Wire { to, msg, ctx });
        }
    }

    /// Consume one event. Drain the outbox after every call — including
    /// the terminal ones: the abort relay and shutdown fan-out ride it.
    pub fn poll(&mut self, event: KernelEvent) -> Progress {
        let pe = self.env.pe;
        let mut shutdown = false;
        match event {
            KernelEvent::AbortLatch => {
                return Progress::Aborted(Message::Abort {
                    source: pe,
                    code: abort_code::GENERIC,
                    detail: b"cluster abort latch".to_vec(),
                });
            }
            KernelEvent::Tick => {}
            KernelEvent::Message { from, msg, ctx } => match self.handle_message(from, msg, ctx) {
                Handled::Swallowed => return Progress::Pending,
                Handled::Done => {}
                Handled::Shutdown => shutdown = true,
                Handled::Aborted(frame) => return Progress::Aborted(frame),
            },
        }
        self.emit_if_due();
        if shutdown {
            Progress::Clean
        } else {
            Progress::Pending
        }
    }

    fn emit_if_due(&mut self) {
        let pe = self.env.pe;
        if let Some((interval, hook)) = self.watch {
            if self.last_emit.elapsed() >= interval {
                self.last_emit = Instant::now();
                let snap = self.env.metrics.snapshot();
                // PE 0 forces an empty heartbeat so the aggregator's
                // staleness clock keeps advancing on an idle cluster.
                if let Some((seq, d)) = self.tracker.delta(&snap, &[], pe == 0) {
                    self.outbox.push_back(Outbound::WireBestEffort {
                        to: 0,
                        msg: Message::Telemetry {
                            pe,
                            seq,
                            payload: d.encode(),
                        },
                    });
                }
                if let Some(agg) = self.agg.as_ref() {
                    hook(agg, self.env.run_start.elapsed().as_nanos() as u64);
                }
            }
        }
    }

    fn handle_message(&mut self, from: u32, msg: Message, ctx: Option<TraceCtx>) -> Handled {
        let env = self.env;
        let pe = env.pe;
        let nprocs = env.nprocs;
        let rc = env.gm_mode == GmMode::ReleaseConsistency;
        let t0 = Instant::now();
        let t_in_ns = env.now_ns();
        env.metrics.incr(MetricKey::pe("kernel", "messages", pe));
        let key = dedup_key(&msg, from);
        if let Some(key) = key {
            if let Some((resp, replay)) = self.served_cache.replay(key) {
                // Retransmit of a request we already served: replay the
                // cached response rather than re-executing it (a second
                // fetch-add would change the answer). Not a fresh serve,
                // so `requests_served` stays put.
                env.metrics
                    .incr(MetricKey::pe("kernel", "gm_dup_requests", pe));
                // The replay is its own serve span (dedup-flagged),
                // derived from the same root as the original serve.
                let resp_ctx = ctx.map(|c| TraceCtx {
                    trace: c.trace,
                    parent: serve_span_id(c.parent, replay),
                });
                let bytes = resp.wire_len() as u64;
                self.send(from, resp, resp_ctx);
                if let Some(c) = ctx {
                    let mut span = TraceSpanRec::new(
                        TraceSpanKind::Serve,
                        c.trace,
                        serve_span_id(c.parent, replay),
                        c.parent,
                        pe,
                        t_in_ns,
                        env.now_ns(),
                    );
                    span.peer = from;
                    span.bytes = bytes;
                    span.seq = key.1;
                    span.dedup = true;
                    self.rec.push(span);
                }
                return Handled::Swallowed;
            }
            if self.pending_gated.contains(&key) {
                // Retransmit of a write still gated on invalidation acks:
                // drop it. The response becomes replayable the moment the
                // gate opens; re-executing now would leak an ungated ack
                // past the coherence protocol.
                return Handled::Swallowed;
            }
        }
        let mut hooks = LiveGmHooks {
            metrics: env.metrics,
            pe,
            from,
            cache: env.cache,
            guard: env.install_guard,
            writes: Vec::new(),
        };
        let gm_ctx = ctx;
        match serve_gm(env.store, msg, &mut hooks) {
            Served::Response(resp) => {
                env.metrics
                    .incr(MetricKey::pe("kernel", "requests_served", pe));
                env.metrics.record(
                    MetricKey::pe("kernel", "service_ns", pe),
                    t0.elapsed().as_nanos() as u64,
                );
                // Fresh serve: child of the requester's root span, and
                // the response carries the serve span as the parent so
                // the requester's redemption links back to it.
                let resp_ctx = gm_ctx.map(|c| TraceCtx {
                    trace: c.trace,
                    parent: serve_span_id(c.parent, 0),
                });
                if let Some(c) = gm_ctx {
                    let mut span = TraceSpanRec::new(
                        TraceSpanKind::Serve,
                        c.trace,
                        serve_span_id(c.parent, 0),
                        c.parent,
                        pe,
                        t_in_ns,
                        env.now_ns(),
                    );
                    span.peer = from;
                    span.bytes = resp.wire_len() as u64;
                    span.seq = key.map(|k| k.1).unwrap_or(0);
                    self.rec.push(span);
                }
                // Directory coherence for the ranges this serve wrote:
                // WI takes the sharers and gates the response on their
                // acks; RC leaves the leases in place and counts the
                // deferral (the replicas die at the holders' next
                // acquire).
                let mut invals: Vec<(NodeId, RegionId, u64, usize)> = Vec::new();
                if let Some(cs) = env.cache {
                    let writer = NodeId(from as u16);
                    let writes = std::mem::take(&mut hooks.writes);
                    for (region, offset, len) in writes {
                        if rc {
                            if !cs.peek_holders(region, offset, len, writer).is_empty() {
                                env.metrics
                                    .incr(MetricKey::pe("kernel", "rc_deferred_invals", pe));
                            }
                            continue;
                        }
                        let holders = cs.take_holders(region, offset, len, writer);
                        if holders.is_empty() {
                            continue;
                        }
                        env.metrics
                            .incr(MetricKey::pe("kernel", "invalidation_rounds", pe));
                        env.metrics.add(
                            MetricKey::pe("kernel", "cache_invalidations", pe),
                            holders.len() as u64,
                        );
                        for h in holders {
                            if h.0 as u32 == pe {
                                // Our own replica: apply the drop
                                // in-place, no wire round needed.
                                hooks.invalidated(region, offset, len);
                            } else {
                                invals.push((h, region, offset, len));
                            }
                        }
                    }
                }
                if invals.is_empty() {
                    if let Some(key) = key {
                        self.served_cache.insert(key, resp.clone());
                    }
                    self.send(from, resp, resp_ctx);
                } else {
                    let gate_id = self.next_txn;
                    let mut remaining = 0usize;
                    for (h, region, offset, len) in invals {
                        self.next_txn += 1;
                        let txn = KERNEL_TXN_BASE | self.next_txn;
                        self.inval_to_gate.insert(txn, gate_id);
                        remaining += 1;
                        self.send(
                            h.0 as u32,
                            Message::GmInvalidate {
                                req: ReqId(txn),
                                region,
                                offset,
                                len: len as u32,
                            },
                            None,
                        );
                    }
                    if let Some(key) = key {
                        self.pending_gated.insert(key);
                    }
                    self.gates.insert(
                        gate_id,
                        WriteGate {
                            remaining,
                            resp,
                            to: from,
                            ctx: resp_ctx,
                            key,
                        },
                    );
                }
            }
            Served::NotGm(msg) if is_app_bound(&msg) => {
                // Response or wakeup addressed to our application thread;
                // delivery is best-effort. The wire trace context travels
                // along so the app thread can link its redemption span to
                // the remote serve.
                self.outbox.push_back(Outbound::App { msg, ctx: gm_ctx });
            }
            Served::NotGm(msg) => match msg {
                Message::GmInvalidateAck { req } => {
                    if let Some(gate_id) = self.inval_to_gate.remove(&req.0) {
                        // One of our write gates: the holder has dropped
                        // its replica. Open the gate once the last ack
                        // lands — only then does the writer see its ack
                        // and only then does the response become
                        // replayable for retransmits.
                        let done = {
                            let g = self
                                .gates
                                .get_mut(&gate_id)
                                .expect("invalidation ack for an unknown gate");
                            g.remaining -= 1;
                            g.remaining == 0
                        };
                        if done {
                            let g = self.gates.remove(&gate_id).unwrap();
                            if let Some(key) = g.key {
                                self.pending_gated.remove(&key);
                                self.served_cache.insert(key, g.resp.clone());
                            }
                            self.send(g.to, g.resp, g.ctx);
                        }
                    } else {
                        // An app-originated invalidation round (own-node
                        // write): the ack belongs to our app thread.
                        self.outbox.push_back(Outbound::App {
                            msg: Message::GmInvalidateAck { req },
                            ctx: gm_ctx,
                        });
                    }
                }
                Message::BarrierEnter { barrier, pid } => {
                    let party = Party {
                        pid,
                        node: NodeId(from as u16),
                        reply_to: from,
                        req: ReqId(0),
                    };
                    self.barrier_open.entry(barrier).or_insert(t_in_ns);
                    if let BarrierOutcome::Complete { epoch, waiters } =
                        self.barriers.enter(barrier, party)
                    {
                        let release = Message::BarrierRelease { barrier, epoch };
                        // One release span covers the whole round, first
                        // enter to completion; its id is derived from
                        // (barrier, epoch) so both runs of a seed agree.
                        // Parent: the completing enter's wait span (the
                        // enter that made the round whole).
                        let span_id = barrier_span_id(barrier, epoch);
                        let release_ctx = gm_ctx.map(|c| TraceCtx {
                            trace: c.trace,
                            parent: span_id,
                        });
                        for w in waiters {
                            self.send(w.reply_to, release.clone(), release_ctx);
                        }
                        self.send(from, release, release_ctx);
                        if let Some(c) = gm_ctx {
                            let opened = self.barrier_open.remove(&barrier).unwrap_or(t_in_ns);
                            let mut span = TraceSpanRec::new(
                                TraceSpanKind::BarrierRelease,
                                c.trace,
                                span_id,
                                c.parent,
                                pe,
                                opened,
                                env.now_ns(),
                            );
                            span.peer = from;
                            span.seq = barrier as u64;
                            self.rec.push(span);
                        } else {
                            self.barrier_open.remove(&barrier);
                        }
                    }
                }
                Message::LockReq { req, lock, pid } => {
                    let party = Party {
                        pid,
                        node: NodeId(from as u16),
                        reply_to: from,
                        req,
                    };
                    match self.locks.acquire(lock, party) {
                        LockOutcome::Granted => {
                            let (ctx, grant) = lock_grant_trace(gm_ctx, from, req.0, t_in_ns);
                            self.send(from, Message::LockGrant { req, lock }, ctx);
                            if let Some(mut span) = grant {
                                span.end_ns = env.now_ns();
                                span.pe = pe;
                                self.rec.push(span);
                            }
                        }
                        LockOutcome::Queued => {
                            self.lock_pend.insert((from, req.0), (gm_ctx, t_in_ns));
                        }
                    }
                }
                Message::UnlockReq { lock, pid } => {
                    if let UnlockOutcome::Granted(next) = self.locks.release(lock, pid) {
                        let (pend_ctx, queued_at) = self
                            .lock_pend
                            .remove(&(next.reply_to, next.req.0))
                            .unwrap_or((None, t_in_ns));
                        let (ctx, grant) =
                            lock_grant_trace(pend_ctx, next.reply_to, next.req.0, queued_at);
                        self.send(
                            next.reply_to,
                            Message::LockGrant {
                                req: next.req,
                                lock,
                            },
                            ctx,
                        );
                        if let Some(mut span) = grant {
                            span.end_ns = env.now_ns();
                            span.pe = pe;
                            self.rec.push(span);
                        }
                    }
                }
                Message::ExitNotice { .. } => {
                    self.exited += 1;
                    if self.exited == nprocs {
                        for q in 0..nprocs as u32 {
                            self.send(q, Message::KernelShutdown, None);
                        }
                    }
                }
                Message::Telemetry {
                    pe: src,
                    seq,
                    payload,
                } => {
                    if let Some(agg) = self.agg.as_mut() {
                        let now_ns = env.run_start.elapsed().as_nanos() as u64;
                        match TelemetryDelta::decode(&payload) {
                            Ok(delta) => agg.apply(src, seq, now_ns, &delta),
                            Err(e) => {
                                // A corrupt delta is dropped and accounted
                                // as a sequence gap — the telemetry plane
                                // degrades, the run does not.
                                eprintln!(
                                    "live kernel PE {pe}: dropping corrupt telemetry \
                                     delta from PE {src} (seq {seq}): {e}"
                                );
                                env.metrics
                                    .incr(MetricKey::pe("kernel", "telemetry_corrupt", pe));
                                agg.note_corrupt(src, seq, now_ns);
                            }
                        }
                    }
                }
                Message::Abort {
                    source,
                    code,
                    detail,
                } => {
                    return Handled::Aborted(Message::Abort {
                        source,
                        code,
                        detail,
                    });
                }
                Message::KernelShutdown => return Handled::Shutdown,
                other => panic!("live kernel PE {pe}: unexpected message {other:?}"),
            },
        }
        Handled::Done
    }
}

/// Internal outcome of one message dispatch.
enum Handled {
    /// Dedup replay or gated retransmit: skip the emission check, exactly
    /// like the blocking loop's `continue`.
    Swallowed,
    /// Handled; fall through to the emission check.
    Done,
    /// `KernelShutdown` seen: clean exit after the emission check.
    Shutdown,
    /// An `Abort` frame (to relay).
    Aborted(Message),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmem::Distribution;
    use dse_msg::GlobalPid;

    fn env_fixture(nprocs: usize) -> (GlobalStore, Registry, FlightRecorder, Mutex<u64>) {
        (
            GlobalStore::new(nprocs),
            Registry::new(),
            FlightRecorder::with_capacity(16),
            Mutex::new(0),
        )
    }

    fn task<'a>(
        pe: u32,
        nprocs: usize,
        fx: &'a (GlobalStore, Registry, FlightRecorder, Mutex<u64>),
    ) -> KernelTask<'a> {
        let env = KernelEnv {
            pe,
            nprocs,
            store: &fx.0,
            metrics: &fx.1,
            flight: &fx.2,
            cache: None,
            gm_mode: GmMode::WriteInvalidate,
            install_guard: &fx.3,
            engine_t0: Instant::now(),
            run_start: Instant::now(),
        };
        KernelTask::new(env, None, Duration::from_millis(50), false)
    }

    #[test]
    fn serves_a_gm_read_into_the_outbox() {
        let fx = env_fixture(1);
        let region = fx.0.alloc(8, Distribution::Blocked);
        fx.0.write(region, 0, &7u64.to_le_bytes()).unwrap();
        let mut t = task(0, 1, &fx);
        let prog = t.poll(KernelEvent::Message {
            from: 0,
            msg: Message::GmReadReq {
                req: ReqId(1),
                region,
                offset: 0,
                len: 8,
            },
            ctx: None,
        });
        assert!(matches!(prog, Progress::Pending));
        let out: Vec<_> = t.drain_outbox().collect();
        assert_eq!(out.len(), 1);
        // The requester is our own PE, so the response short-circuits the
        // wire loopback and goes straight to the application side.
        match &out[0] {
            Outbound::App {
                msg: Message::GmReadResp { data, .. },
                ..
            } => assert_eq!(data.as_slice(), &7u64.to_le_bytes()),
            _ => panic!("expected a read response for the local app"),
        }
    }

    #[test]
    fn barrier_completes_when_all_parties_enter() {
        let fx = env_fixture(2);
        let mut t = task(0, 2, &fx);
        let enter = |pe: u32| KernelEvent::Message {
            from: pe,
            msg: Message::BarrierEnter {
                barrier: 9,
                pid: GlobalPid::new(NodeId(pe as u16), 0),
            },
            ctx: None,
        };
        t.poll(enter(1));
        assert_eq!(t.drain_outbox().count(), 0, "incomplete round must wait");
        t.poll(enter(0));
        // Remote parties get wire releases; our own party's release skips
        // the self-loopback and goes straight to the local app.
        let releases: Vec<u32> = t
            .drain_outbox()
            .map(|o| match o {
                Outbound::Wire {
                    to,
                    msg: Message::BarrierRelease { barrier: 9, .. },
                    ..
                } => to,
                Outbound::App {
                    msg: Message::BarrierRelease { barrier: 9, .. },
                    ..
                } => 0,
                _ => panic!("expected only barrier releases"),
            })
            .collect();
        assert_eq!(releases, vec![1, 0]);
    }

    #[test]
    fn shutdown_and_abort_are_terminal() {
        let fx = env_fixture(1);
        let mut t = task(0, 1, &fx);
        assert!(matches!(t.poll(KernelEvent::Tick), Progress::Pending));
        assert!(matches!(
            t.poll(KernelEvent::AbortLatch),
            Progress::Aborted(_)
        ));
        let mut t = task(0, 1, &fx);
        let prog = t.poll(KernelEvent::Message {
            from: 0,
            msg: Message::KernelShutdown,
            ctx: None,
        });
        assert!(matches!(prog, Progress::Clean));
    }

    #[test]
    fn fetch_add_retransmit_replays_not_reexecutes() {
        let fx = env_fixture(1);
        let region = fx.0.alloc(8, Distribution::Blocked);
        let mut t = task(0, 1, &fx);
        let req = || KernelEvent::Message {
            from: 0,
            msg: Message::GmFetchAddReq {
                req: ReqId(5),
                region,
                offset: 0,
                delta: 1,
            },
            ctx: None,
        };
        t.poll(req());
        t.poll(req()); // retransmit of the same (from, req)
        let prevs: Vec<i64> = t
            .drain_outbox()
            .map(|o| match o {
                // Self-addressed responses route directly to the local app.
                Outbound::App {
                    msg: Message::GmFetchAddResp { prev, .. },
                    ..
                } => prev,
                _ => panic!("expected fetch-add responses"),
            })
            .collect();
        assert_eq!(prevs, vec![0, 0], "dedup must replay the first answer");
        assert_eq!(fx.0.read(region, 0, 8).unwrap(), 1i64.to_le_bytes());
    }
}
