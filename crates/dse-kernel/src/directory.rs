//! The per-block sharing directory backing the GM coherence protocols.
//!
//! Each home kernel conceptually owns the directory entries for the blocks
//! it homes: a *sharing vector* (one bit per node) recording which nodes
//! hold a read replica of the block. Granting a replica sets the bit (a
//! *lease*); a write under write-invalidate consults the vector and
//! invalidates exactly the recorded sharers; release consistency leaves the
//! vector in place at write time and lets readers drop their own leases at
//! acquire points instead.
//!
//! The directory is centralized in one structure here because both engines
//! run in a single address space; the per-home ownership shows up in who is
//! *charged* for touching it, not in where the bits live.

use std::collections::HashMap;

use parking_lot::Mutex;

use dse_msg::{NodeId, RegionId};

use crate::cache::blocks_touching;

/// Key of one directory entry (region, block index).
type BlockKey = (RegionId, u64);

/// A per-block sharing vector: one bit per node holding a replica.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sharers {
    words: Vec<u64>,
}

impl Sharers {
    /// The empty sharing vector.
    pub fn new() -> Sharers {
        Sharers::default()
    }

    /// Set `node`'s bit. Returns true when the bit was newly set (a fresh
    /// lease grant, as opposed to refreshing an existing one).
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Clear `node`'s bit. Returns true when the bit was set.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// True when `node` holds a lease on this block.
    pub fn contains(&self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// True when no node holds a lease.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of leased replicas.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The sharers in ascending node order.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.count());
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(NodeId((w * 64 + b) as u16));
                bits &= bits - 1;
            }
        }
        out
    }
}

/// The sharing directory: block key → sharing vector.
#[derive(Debug, Default)]
pub struct Directory {
    map: Mutex<HashMap<BlockKey, Sharers>>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Record that `node` holds a replica of `block`. Returns true when
    /// this is a fresh lease (the node was not already registered).
    pub fn grant(&self, region: RegionId, block: u64, node: NodeId) -> bool {
        self.map
            .lock()
            .entry((region, block))
            .or_default()
            .insert(node)
    }

    /// Remove and return the sharers (other than `exclude`) of every block
    /// intersecting `[offset, offset+len)` — the write-invalidate
    /// recipients. Sorted, deduplicated; the touched entries are cleared
    /// (`exclude`'s own lease included: the writer's copy is stale too).
    pub fn take_range(
        &self,
        region: RegionId,
        offset: u64,
        len: usize,
        exclude: NodeId,
    ) -> Vec<NodeId> {
        let mut map = self.map.lock();
        let mut holders: Vec<NodeId> = Vec::new();
        for b in blocks_touching(offset, len) {
            if let Some(set) = map.remove(&(region, b)) {
                for n in set.nodes() {
                    if n != exclude && !holders.contains(&n) {
                        holders.push(n);
                    }
                }
            }
        }
        holders.sort_unstable();
        holders
    }

    /// The sharers (other than `exclude`) of blocks intersecting the range,
    /// without clearing anything — how release consistency counts the
    /// invalidations it defers.
    pub fn peek_range(
        &self,
        region: RegionId,
        offset: u64,
        len: usize,
        exclude: NodeId,
    ) -> Vec<NodeId> {
        let map = self.map.lock();
        let mut holders: Vec<NodeId> = Vec::new();
        for b in blocks_touching(offset, len) {
            if let Some(set) = map.get(&(region, b)) {
                for n in set.nodes() {
                    if n != exclude && !holders.contains(&n) {
                        holders.push(n);
                    }
                }
            }
        }
        holders.sort_unstable();
        holders
    }

    /// Drop every lease held by `node` (the acquire-side self-invalidation
    /// of release consistency). Returns how many block leases were
    /// released.
    pub fn release_node(&self, node: NodeId) -> usize {
        let mut map = self.map.lock();
        let mut released = 0;
        map.retain(|_, set| {
            if set.remove(node) {
                released += 1;
            }
            !set.is_empty()
        });
        released
    }

    /// Current sharers of one block, in node order (tests/diagnostics).
    pub fn holders(&self, region: RegionId, block: u64) -> Vec<NodeId> {
        self.map
            .lock()
            .get(&(region, block))
            .map(|s| s.nodes())
            .unwrap_or_default()
    }

    /// Number of blocks with at least one registered sharer.
    pub fn shared_blocks(&self) -> usize {
        self.map.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharers_bitset_roundtrip() {
        let mut s = Sharers::new();
        assert!(s.is_empty());
        assert!(s.insert(NodeId(3)), "fresh lease");
        assert!(!s.insert(NodeId(3)), "refresh is not a new lease");
        assert!(s.insert(NodeId(70)), "second word allocated on demand");
        assert!(s.contains(NodeId(3)) && s.contains(NodeId(70)));
        assert_eq!(s.nodes(), vec![NodeId(3), NodeId(70)]);
        assert_eq!(s.count(), 2);
        assert!(s.remove(NodeId(3)));
        assert!(!s.remove(NodeId(3)), "double release is a no-op");
        assert!(!s.contains(NodeId(3)));
        assert!(!s.is_empty());
    }

    #[test]
    fn grant_take_release() {
        let d = Directory::new();
        let r = RegionId(0);
        assert!(d.grant(r, 0, NodeId(1)));
        assert!(!d.grant(r, 0, NodeId(1)), "re-grant is lease refresh");
        assert!(d.grant(r, 0, NodeId(2)));
        assert!(d.grant(r, 1, NodeId(2)));
        assert_eq!(d.holders(r, 0), vec![NodeId(1), NodeId(2)]);
        // Peek does not clear.
        assert_eq!(
            d.peek_range(r, 0, 2 * crate::cache::CACHE_BLOCK, NodeId(1)),
            vec![NodeId(2)]
        );
        assert_eq!(d.holders(r, 0), vec![NodeId(1), NodeId(2)]);
        // Take clears, excludes the writer, dedups across blocks.
        assert_eq!(
            d.take_range(r, 0, 2 * crate::cache::CACHE_BLOCK, NodeId(1)),
            vec![NodeId(2)]
        );
        assert!(d.holders(r, 0).is_empty());
        assert_eq!(d.shared_blocks(), 0);
    }

    #[test]
    fn release_node_drops_all_leases_of_one_node() {
        let d = Directory::new();
        let r = RegionId(7);
        d.grant(r, 0, NodeId(0));
        d.grant(r, 1, NodeId(0));
        d.grant(r, 1, NodeId(1));
        assert_eq!(d.release_node(NodeId(0)), 2);
        assert_eq!(d.release_node(NodeId(0)), 0, "idempotent");
        assert_eq!(d.holders(r, 1), vec![NodeId(1)]);
        assert_eq!(d.shared_blocks(), 1, "empty entries are pruned");
    }
}
