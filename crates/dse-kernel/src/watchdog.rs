//! Stall watchdog: flags GM requests with no response past a deadline.
//!
//! The watchdog runs on the aggregating kernel (node 0) as part of the
//! telemetry plane. Each telemetry tick it polls the [`SpanTable`]'s open
//! spans and flags any global-memory request (read / write / fetch-add)
//! that has been open longer than the configured deadline. A span is
//! flagged at most once: the watchdog remembers `(kind, pe, seq)` keys it
//! has already reported, so a stuck request produces exactly one
//! [`StallReport`] even though the watchdog keeps polling.
//!
//! Barrier and lock spans are deliberately *not* watched: they legitimately
//! stay open for as long as the application makes them (a barrier waits for
//! the slowest PE), so a deadline on them would only produce noise. GM
//! requests, by contrast, are bounded by kernel service plus wire time —
//! one still open past a quarter second of cluster time means a lost
//! response or a wedged kernel.

use std::collections::HashSet;

use dse_obs::{SpanKind, SpanTable};

/// One flagged GM request: open past the watchdog deadline with no response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallReport {
    /// Request kind (always one of the GM kinds).
    pub kind: SpanKind,
    /// PE that issued the request.
    pub pe: u32,
    /// Request sequence number (correlates with the span table / traces).
    pub seq: u64,
    /// When the request was issued (engine clock, ns).
    pub open_ns: u64,
    /// When the watchdog flagged it (engine clock, ns).
    pub flagged_ns: u64,
}

impl StallReport {
    /// How long the request had been waiting when flagged.
    pub fn waited_ns(&self) -> u64 {
        self.flagged_ns.saturating_sub(self.open_ns)
    }
}

/// Polls open spans and reports GM requests stuck past a deadline.
#[derive(Debug)]
pub struct StallWatchdog {
    deadline_ns: u64,
    flagged: HashSet<(SpanKind, u32, u64)>,
}

impl StallWatchdog {
    /// Watchdog with the given deadline in engine-clock nanoseconds.
    pub fn new(deadline_ns: u64) -> StallWatchdog {
        StallWatchdog {
            deadline_ns,
            flagged: HashSet::new(),
        }
    }

    /// The configured deadline in nanoseconds.
    pub fn deadline_ns(&self) -> u64 {
        self.deadline_ns
    }

    /// Poll the span table at time `now_ns`; returns newly flagged stalls
    /// (deterministic order: by open time, then PE, then sequence number,
    /// inherited from [`SpanTable::open_spans`]).
    pub fn check(&mut self, now_ns: u64, spans: &SpanTable) -> Vec<StallReport> {
        let mut out = Vec::new();
        for open in spans.open_spans() {
            if !matches!(
                open.kind,
                SpanKind::GmRead | SpanKind::GmWrite | SpanKind::GmFetchAdd | SpanKind::GmBatch
            ) {
                continue;
            }
            if now_ns.saturating_sub(open.open_ns) <= self.deadline_ns {
                continue;
            }
            if self.flagged.insert((open.kind, open.pe, open.seq)) {
                out.push(StallReport {
                    kind: open.kind,
                    pe: open.pe,
                    seq: open.seq,
                    open_ns: open.open_ns,
                    flagged_ns: now_ns,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_overdue_gm_requests_once() {
        let spans = SpanTable::new();
        spans.open(SpanKind::GmRead, 2, 7, 1_000, 64);
        spans.open(SpanKind::GmWrite, 1, 9, 500, 64);
        let mut wd = StallWatchdog::new(10_000);

        // Nothing overdue yet.
        assert!(wd.check(5_000, &spans).is_empty());

        // Only the older request is past deadline at t=11_000.
        let first = wd.check(11_000, &spans);
        assert_eq!(first.len(), 1);
        assert_eq!(
            (first[0].kind, first[0].pe, first[0].seq),
            (SpanKind::GmWrite, 1, 9)
        );
        assert_eq!(first[0].waited_ns(), 10_500);

        // Next poll flags the read but never re-reports the write.
        let second = wd.check(20_000, &spans);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].kind, SpanKind::GmRead);
        assert!(wd.check(30_000, &spans).is_empty());
    }

    #[test]
    fn sync_spans_are_not_watched() {
        let spans = SpanTable::new();
        spans.open(SpanKind::Barrier, 0, 1, 0, 0);
        spans.open(SpanKind::Lock, 3, 2, 0, 0);
        let mut wd = StallWatchdog::new(100);
        assert!(wd.check(1_000_000, &spans).is_empty());
    }

    #[test]
    fn closed_spans_stop_being_candidates() {
        let spans = SpanTable::new();
        spans.open(SpanKind::GmFetchAdd, 0, 3, 0, 16);
        spans.close(SpanKind::GmFetchAdd, 0, 3, 50);
        let mut wd = StallWatchdog::new(10);
        assert!(wd.check(1_000, &spans).is_empty());
    }
}
