//! Stall watchdog: flags GM requests with no response past a deadline.
//!
//! The watchdog runs on the aggregating kernel (node 0) as part of the
//! telemetry plane. Each telemetry tick it polls the [`SpanTable`]'s open
//! spans and flags any global-memory request (read / write / fetch-add)
//! that has been open longer than the configured deadline. A span is
//! flagged at most once: the watchdog remembers `(kind, pe, seq)` keys it
//! has already reported, so a stuck request produces exactly one
//! [`StallReport`] even though the watchdog keeps polling.
//!
//! Barrier and lock spans are deliberately *not* watched: they legitimately
//! stay open for as long as the application makes them (a barrier waits for
//! the slowest PE), so a deadline on them would only produce noise. GM
//! requests, by contrast, are bounded by kernel service plus wire time —
//! one still open past a quarter second of cluster time means a lost
//! response or a wedged kernel.

use std::collections::HashSet;

use dse_obs::{SpanKind, SpanTable};

/// One flagged GM request: open past the watchdog deadline with no response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallReport {
    /// Request kind (always one of the GM kinds).
    pub kind: SpanKind,
    /// PE that issued the request.
    pub pe: u32,
    /// Request sequence number (correlates with the span table / traces).
    pub seq: u64,
    /// When the request was issued (engine clock, ns).
    pub open_ns: u64,
    /// When the watchdog flagged it (engine clock, ns).
    pub flagged_ns: u64,
}

impl StallReport {
    /// How long the request had been waiting when flagged.
    pub fn waited_ns(&self) -> u64 {
        self.flagged_ns.saturating_sub(self.open_ns)
    }
}

/// Polls open spans and reports GM requests stuck past a deadline.
#[derive(Debug)]
pub struct StallWatchdog {
    deadline_ns: u64,
    flagged: HashSet<(SpanKind, u32, u64)>,
    total_flagged: u64,
    escalate_after: Option<u32>,
    escalated: bool,
}

impl StallWatchdog {
    /// Watchdog with the given deadline in engine-clock nanoseconds.
    pub fn new(deadline_ns: u64) -> StallWatchdog {
        StallWatchdog {
            deadline_ns,
            flagged: HashSet::new(),
            total_flagged: 0,
            escalate_after: None,
            escalated: false,
        }
    }

    /// Arm escalation: once `after` distinct stalls have been flagged over
    /// the run, [`StallWatchdog::take_escalation`] fires (once). `None`
    /// leaves escalation off.
    pub fn with_escalation(mut self, after: Option<u32>) -> StallWatchdog {
        self.escalate_after = after;
        self
    }

    /// The configured deadline in nanoseconds.
    pub fn deadline_ns(&self) -> u64 {
        self.deadline_ns
    }

    /// Distinct stalls flagged over the whole run (pruning does not forget
    /// them).
    pub fn total_flagged(&self) -> u64 {
        self.total_flagged
    }

    /// Currently remembered flag keys — spans flagged and still open.
    /// Bounded by the number of open GM spans, not run length.
    pub fn flagged_backlog(&self) -> usize {
        self.flagged.len()
    }

    /// True exactly once: when the run's distinct-stall count crosses the
    /// escalation threshold. The caller decides what escalation means
    /// (metric, flight dump, abort).
    pub fn take_escalation(&mut self) -> bool {
        match self.escalate_after {
            Some(n) if !self.escalated && self.total_flagged >= u64::from(n) => {
                self.escalated = true;
                true
            }
            _ => false,
        }
    }

    /// Poll the span table at time `now_ns`; returns newly flagged stalls
    /// (deterministic order: by open time, then PE, then sequence number,
    /// inherited from [`SpanTable::open_spans`]).
    pub fn check(&mut self, now_ns: u64, spans: &SpanTable) -> Vec<StallReport> {
        let opens = spans.open_spans();
        // Prune memory of spans that have since closed: sequence numbers
        // are never reused, so a closed span can't be re-flagged, and
        // keeping its key would grow the set without bound on long runs.
        if !self.flagged.is_empty() {
            let still_open: HashSet<(SpanKind, u32, u64)> =
                opens.iter().map(|o| (o.kind, o.pe, o.seq)).collect();
            self.flagged.retain(|k| still_open.contains(k));
        }
        let mut out = Vec::new();
        for open in opens {
            if !matches!(
                open.kind,
                SpanKind::GmRead | SpanKind::GmWrite | SpanKind::GmFetchAdd | SpanKind::GmBatch
            ) {
                continue;
            }
            if now_ns.saturating_sub(open.open_ns) <= self.deadline_ns {
                continue;
            }
            if self.flagged.insert((open.kind, open.pe, open.seq)) {
                self.total_flagged += 1;
                out.push(StallReport {
                    kind: open.kind,
                    pe: open.pe,
                    seq: open.seq,
                    open_ns: open.open_ns,
                    flagged_ns: now_ns,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_overdue_gm_requests_once() {
        let spans = SpanTable::new();
        spans.open(SpanKind::GmRead, 2, 7, 1_000, 64);
        spans.open(SpanKind::GmWrite, 1, 9, 500, 64);
        let mut wd = StallWatchdog::new(10_000);

        // Nothing overdue yet.
        assert!(wd.check(5_000, &spans).is_empty());

        // Only the older request is past deadline at t=11_000.
        let first = wd.check(11_000, &spans);
        assert_eq!(first.len(), 1);
        assert_eq!(
            (first[0].kind, first[0].pe, first[0].seq),
            (SpanKind::GmWrite, 1, 9)
        );
        assert_eq!(first[0].waited_ns(), 10_500);

        // Next poll flags the read but never re-reports the write.
        let second = wd.check(20_000, &spans);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].kind, SpanKind::GmRead);
        assert!(wd.check(30_000, &spans).is_empty());
    }

    #[test]
    fn sync_spans_are_not_watched() {
        let spans = SpanTable::new();
        spans.open(SpanKind::Barrier, 0, 1, 0, 0);
        spans.open(SpanKind::Lock, 3, 2, 0, 0);
        let mut wd = StallWatchdog::new(100);
        assert!(wd.check(1_000_000, &spans).is_empty());
    }

    #[test]
    fn closed_spans_stop_being_candidates() {
        let spans = SpanTable::new();
        spans.open(SpanKind::GmFetchAdd, 0, 3, 0, 16);
        spans.close(SpanKind::GmFetchAdd, 0, 3, 50);
        let mut wd = StallWatchdog::new(10);
        assert!(wd.check(1_000, &spans).is_empty());
    }

    #[test]
    fn flag_memory_is_pruned_when_spans_close() {
        let spans = SpanTable::new();
        let mut wd = StallWatchdog::new(10);
        // A long run of slow requests, each eventually answered: the flag
        // set must not accumulate one entry per request forever.
        for seq in 0..100u64 {
            spans.open(SpanKind::GmRead, 1, seq, seq * 1_000, 64);
            let flagged = wd.check(seq * 1_000 + 500_000, &spans);
            assert_eq!(flagged.len(), 1, "request {seq} should flag once");
            spans.close(SpanKind::GmRead, 1, seq, seq * 1_000 + 600_000);
        }
        assert_eq!(wd.total_flagged(), 100);
        // One more poll prunes the last closed span's key.
        assert!(wd.check(200_000_000, &spans).is_empty());
        assert_eq!(wd.flagged_backlog(), 0, "closed spans must be pruned");
    }

    #[test]
    fn escalation_fires_once_at_threshold() {
        let spans = SpanTable::new();
        let mut wd = StallWatchdog::new(10).with_escalation(Some(2));
        spans.open(SpanKind::GmRead, 0, 1, 0, 64);
        wd.check(1_000, &spans);
        assert!(!wd.take_escalation(), "below threshold");
        spans.open(SpanKind::GmWrite, 1, 2, 0, 64);
        wd.check(2_000, &spans);
        assert!(wd.take_escalation(), "threshold crossed");
        assert!(!wd.take_escalation(), "fires only once");
        // Unarmed watchdogs never escalate.
        let mut off = StallWatchdog::new(10);
        off.check(1_000, &spans);
        assert!(!off.take_escalation());
    }
}
