//! The shared cluster state every simulated entity holds an `Arc` to.
//!
//! Data-wise this is one address space (we are a simulator); *cost*-wise
//! every access to it is priced and charged to the right machine's CPU by
//! the code that touches it. Only one simulation thread runs at a time, so
//! the internal locks never contend — they exist to satisfy `Sync` and to
//! serve the live engine, which shares this type.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dse_msg::{GlobalPid, NodeId};
use dse_net::{Network, ProtocolModel};
use dse_platform::ClusterSpec;
use dse_sim::{ProcId, ResourceId, SimDuration};

use crate::cache::CacheStore;
use crate::config::{DseConfig, NetworkChoice};
use crate::cost::CostModel;
use crate::gmem::GlobalStore;
use crate::stats::StatsCell;
use crate::sync::{BarrierCenter, LockCenter};
use crate::watchdog::StallReport;

/// Callback invoked on the aggregating kernel each time a full telemetry
/// epoch lands (its own loopback delta has been applied, meaning every
/// older delta from other PEs has too). Receives the aggregator and the
/// engine clock in nanoseconds. Used by `--watch`-style live views.
pub type TelemetryHook = Arc<dyn Fn(&dse_obs::ClusterAggregator, u64) + Send + Sync>;

/// Shared state of one cluster run.
pub struct ClusterShared {
    /// Cluster composition (platform, machines, processors).
    pub spec: ClusterSpec,
    /// Runtime configuration.
    pub config: DseConfig,
    /// Per-machine cost models (index = machine; one entry reused for all
    /// machines of a homogeneous cluster would also work, but keeping the
    /// vector uniform makes heterogeneous clusters a non-special case).
    costs: Vec<CostModel>,
    /// The global memory.
    pub store: GlobalStore,
    /// The optional read-replicating cache (only consulted when
    /// `config.gm_cache` is set).
    pub cache: CacheStore,
    /// Barrier coordination (centralized on node 0).
    pub barriers: BarrierCenter,
    /// Lock coordination (centralized on node 0).
    pub locks: LockCenter,
    /// The interconnect timing model.
    pub network: Mutex<Network>,
    /// Runtime counters, one cell per processor element.
    pub stats: StatsCell,
    /// Observability: named counters/gauges/latency histograms.
    pub metrics: dse_obs::Registry,
    /// Observability: message-level request/response spans.
    pub spans: dse_obs::SpanTable,
    /// Telemetry: the cluster rollup node 0's kernel maintains from in-band
    /// `Telemetry` messages (empty when telemetry is off).
    pub aggregator: Mutex<dse_obs::ClusterAggregator>,
    /// Telemetry: ring of recent bus/span events (disabled ring when
    /// telemetry is off — every record is then a no-op).
    pub flight: dse_obs::FlightRecorder,
    /// Telemetry: stall reports collected by node 0's watchdog.
    pub stalls: Mutex<Vec<StallReport>>,
    /// Telemetry: flight-recorder JSONL dump captured when the watchdog
    /// first tripped (post-mortem bundle).
    pub flight_dump: Mutex<Option<String>>,
    /// Telemetry: live-view hook invoked per aggregation epoch.
    epoch_hook: Mutex<Option<TelemetryHook>>,
    /// CPU resource of each physical machine, indexed by machine.
    pub cpus: Vec<ResourceId>,
    /// Node → machine placement (from [`ClusterSpec::place`]).
    placement: Vec<usize>,
    /// Simulation process of each node's kernel.
    kernels: Mutex<Vec<ProcId>>,
    /// Simulation process of each application process, by global pid.
    apps: Mutex<HashMap<GlobalPid, ProcId>>,
    /// The launcher process (receives invoke acks and exit notices).
    launcher: Mutex<Option<ProcId>>,
    /// Pids asked to terminate cooperatively.
    terminated: Mutex<Vec<GlobalPid>>,
    /// Pids whose process body has returned.
    exited: Mutex<Vec<GlobalPid>>,
    /// Cluster-wide name service: symbolic names bound to regions.
    names: Mutex<HashMap<String, dse_msg::RegionId>>,
    /// Collective-allocation table: the n-th collective alloc call maps to
    /// the n-th entry (region id plus requested size for sanity checks).
    collective_allocs: Mutex<Vec<(dse_msg::RegionId, usize)>>,
    /// Measured end-to-end execution time of the parallel application.
    pub elapsed: Mutex<Option<SimDuration>>,
}

impl ClusterShared {
    /// Build the shared state for a run. `cpus` must contain one resource
    /// per *used* machine, in machine order.
    pub fn new(spec: ClusterSpec, config: DseConfig, cpus: Vec<ResourceId>) -> ClusterShared {
        assert_eq!(
            cpus.len(),
            spec.machines_used(),
            "need one CPU resource per used machine"
        );
        let proto = ProtocolModel::of(config.protocol);
        let costs = (0..spec.machines_used())
            .map(|m| {
                CostModel::new(
                    spec.platform_of_machine(m).clone(),
                    proto,
                    config.organization,
                )
            })
            .collect();
        let network = match config.network {
            NetworkChoice::SharedBus(bps) => Network::shared_bus(bps, config.protocol, config.seed),
            NetworkChoice::Switched(bps, latency) => {
                Network::switched(spec.machines_used(), bps, latency, config.protocol)
            }
        };
        let placement = spec.place();
        let flight = match &config.telemetry {
            Some(t) => dse_obs::FlightRecorder::with_capacity(t.flight_capacity),
            None => dse_obs::FlightRecorder::disabled(),
        };
        ClusterShared {
            store: GlobalStore::new(spec.processors),
            cache: CacheStore::new(spec.processors),
            barriers: BarrierCenter::new(spec.processors),
            locks: LockCenter::new(),
            network: Mutex::new(network),
            stats: StatsCell::new(spec.processors),
            metrics: dse_obs::Registry::new(),
            spans: dse_obs::SpanTable::new(),
            aggregator: Mutex::new(dse_obs::ClusterAggregator::new(spec.processors)),
            flight,
            stalls: Mutex::new(Vec::new()),
            flight_dump: Mutex::new(None),
            epoch_hook: Mutex::new(None),
            cpus,
            placement,
            kernels: Mutex::new(Vec::new()),
            apps: Mutex::new(HashMap::new()),
            launcher: Mutex::new(None),
            terminated: Mutex::new(Vec::new()),
            exited: Mutex::new(Vec::new()),
            names: Mutex::new(HashMap::new()),
            collective_allocs: Mutex::new(Vec::new()),
            elapsed: Mutex::new(None),
            costs,
            config,
            spec,
        }
    }

    /// Number of processor elements (== parallel processes).
    pub fn nnodes(&self) -> usize {
        self.spec.processors
    }

    /// Physical machine hosting a node.
    pub fn machine_of(&self, node: NodeId) -> usize {
        self.placement[node.index()]
    }

    /// CPU resource of the machine hosting a node.
    pub fn cpu_of(&self, node: NodeId) -> ResourceId {
        self.cpus[self.machine_of(node)]
    }

    /// Cost model of the machine hosting a node.
    pub fn cost(&self, node: NodeId) -> &CostModel {
        &self.costs[self.machine_of(node)]
    }

    /// True if two nodes share a physical machine (loopback path).
    pub fn same_machine(&self, a: NodeId, b: NodeId) -> bool {
        self.machine_of(a) == self.machine_of(b)
    }

    /// Record the kernels' simulation processes (harness setup).
    pub fn set_kernels(&self, ids: Vec<ProcId>) {
        assert_eq!(ids.len(), self.nnodes());
        *self.kernels.lock() = ids;
    }

    /// The simulation process of a node's kernel.
    pub fn kernel_of(&self, node: NodeId) -> ProcId {
        self.kernels.lock()[node.index()]
    }

    /// Record the launcher's simulation process (harness setup).
    pub fn set_launcher(&self, id: ProcId) {
        *self.launcher.lock() = Some(id);
    }

    /// The launcher's simulation process.
    pub fn launcher(&self) -> ProcId {
        self.launcher.lock().expect("launcher not set")
    }

    /// Register a spawned application process.
    pub fn register_app(&self, pid: GlobalPid, proc_id: ProcId) {
        self.apps.lock().insert(pid, proc_id);
    }

    /// Look up an application process by pid.
    pub fn app_proc(&self, pid: GlobalPid) -> Option<ProcId> {
        self.apps.lock().get(&pid).copied()
    }

    /// Mark a pid for cooperative termination.
    pub fn mark_terminated(&self, pid: GlobalPid) {
        self.terminated.lock().push(pid);
    }

    /// True if the pid was asked to terminate.
    pub fn is_terminated(&self, pid: GlobalPid) -> bool {
        self.terminated.lock().contains(&pid)
    }

    /// Record that a process body returned (single-system-image process
    /// table bookkeeping).
    pub fn mark_exited(&self, pid: GlobalPid) {
        self.exited.lock().push(pid);
    }

    /// True if the process body has returned.
    pub fn is_exited(&self, pid: GlobalPid) -> bool {
        self.exited.lock().contains(&pid)
    }

    /// All registered application processes `(pid, sim process)` in pid
    /// order (stable for reporting).
    pub fn all_apps(&self) -> Vec<(GlobalPid, ProcId)> {
        let mut v: Vec<_> = self.apps.lock().iter().map(|(&p, &i)| (p, i)).collect();
        v.sort_by_key(|&(p, _)| p);
        v
    }

    /// Bind a cluster-wide symbolic name to a region. Returns false if the
    /// name was already bound (first binding wins).
    pub fn bind_name(&self, name: &str, region: dse_msg::RegionId) -> bool {
        let mut names = self.names.lock();
        if names.contains_key(name) {
            return false;
        }
        names.insert(name.to_string(), region);
        true
    }

    /// Look up a cluster-wide symbolic name.
    pub fn lookup_name(&self, name: &str) -> Option<dse_msg::RegionId> {
        self.names.lock().get(name).copied()
    }

    /// Install the telemetry epoch hook (harness setup; replaces any
    /// previous hook).
    pub fn set_epoch_hook(&self, hook: TelemetryHook) {
        *self.epoch_hook.lock() = Some(hook);
    }

    /// The installed telemetry epoch hook, if any.
    pub fn epoch_hook(&self) -> Option<TelemetryHook> {
        self.epoch_hook.lock().clone()
    }

    /// Resolve the `seq`-th collective allocation: the first caller runs
    /// `create` and publishes the result; later callers get the same region
    /// and must request the same size.
    pub fn collective_alloc(
        &self,
        seq: usize,
        len: usize,
        create: impl FnOnce() -> dse_msg::RegionId,
    ) -> dse_msg::RegionId {
        let mut table = self.collective_allocs.lock();
        if let Some(&(id, existing_len)) = table.get(seq) {
            assert_eq!(
                existing_len, len,
                "collective allocation #{seq} size mismatch: ranks disagree"
            );
            return id;
        }
        assert_eq!(
            table.len(),
            seq,
            "collective allocations must occur in the same order on all ranks"
        );
        let id = create();
        table.push((id, len));
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_platform::Platform;

    fn shared(p: usize) -> ClusterShared {
        let spec = ClusterSpec::paper(Platform::sunos_sparc(), p);
        let cpus = (0..spec.machines_used())
            .map(ResourceId::from_index)
            .collect();
        ClusterShared::new(spec, DseConfig::default(), cpus)
    }

    #[test]
    fn placement_and_loopback() {
        let s = shared(8);
        assert_eq!(s.machine_of(NodeId(0)), 0);
        assert_eq!(s.machine_of(NodeId(6)), 0);
        assert!(s.same_machine(NodeId(0), NodeId(6)));
        assert!(!s.same_machine(NodeId(0), NodeId(1)));
    }

    #[test]
    fn app_registry() {
        let s = shared(2);
        let pid = GlobalPid::new(NodeId(1), 1);
        assert!(s.app_proc(pid).is_none());
        s.register_app(pid, ProcId::from_index(5));
        assert_eq!(s.app_proc(pid), Some(ProcId::from_index(5)));
    }

    #[test]
    fn termination_marking() {
        let s = shared(2);
        let pid = GlobalPid::new(NodeId(0), 1);
        assert!(!s.is_terminated(pid));
        s.mark_terminated(pid);
        assert!(s.is_terminated(pid));
    }

    #[test]
    fn collective_alloc_first_creates_then_reuses() {
        let s = shared(2);
        let a = s.collective_alloc(0, 100, || {
            s.store.alloc(100, crate::gmem::Distribution::Blocked)
        });
        let b = s.collective_alloc(0, 100, || panic!("must not create twice"));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn collective_alloc_size_mismatch_detected() {
        let s = shared(2);
        let _ = s.collective_alloc(0, 100, || {
            s.store.alloc(100, crate::gmem::Distribution::Blocked)
        });
        let _ = s.collective_alloc(0, 200, || unreachable!());
    }
}
