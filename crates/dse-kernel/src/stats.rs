//! Runtime counters collected across a parallel run.
//!
//! Counters accumulate **per processor element** (one cell per node) so
//! the observability layer can report per-PE traffic, while
//! [`StatsCell::snapshot`] still rolls everything up into the single
//! cluster-wide [`KernelStats`] the rest of the system has always
//! consumed. Per-PE cells also shrink lock contention: each node mostly
//! touches its own cell.

use dse_msg::NodeId;
use dse_obs::MetricKey;
use parking_lot::Mutex;

/// A snapshot of (or live accumulator for) runtime activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Global-memory reads satisfied on the requesting node.
    pub gm_local_reads: u64,
    /// Global-memory reads that crossed to another node.
    pub gm_remote_reads: u64,
    /// Global-memory writes satisfied on the requesting node.
    pub gm_local_writes: u64,
    /// Global-memory writes that crossed to another node.
    pub gm_remote_writes: u64,
    /// Bytes read from global memory.
    pub gm_bytes_read: u64,
    /// Bytes written to global memory.
    pub gm_bytes_written: u64,
    /// Atomic fetch-add operations.
    pub fetch_adds: u64,
    /// Runtime messages sent (requests, responses, control).
    pub messages: u64,
    /// Payload bytes across all runtime messages.
    pub message_bytes: u64,
    /// Barrier completions (epochs) observed.
    pub barrier_epochs: u64,
    /// Lock grants issued.
    pub lock_grants: u64,
    /// Parallel processes invoked.
    pub invokes: u64,
    /// Cache hits in the optional GM cache.
    pub cache_hits: u64,
    /// Cache misses in the optional GM cache.
    pub cache_misses: u64,
    /// Invalidation messages sent by the optional GM cache.
    pub cache_invalidations: u64,
    /// GM request messages actually put on the netpath (plain requests and
    /// coalesced batches each count once — the split-phase pipeline's
    /// denominator for the coalesce ratio).
    pub gm_request_msgs: u64,
    /// Split-phase GM operations merged into an already-pending request
    /// instead of becoming their own message (the coalesce ratio's
    /// numerator, charged to the issuing PE).
    pub gm_coalesced: u64,
    /// Invalidation rounds started by cache-coherent writes: one per
    /// *merged* request, not one per original `gm_write_nb` call (a batch
    /// write that absorbed three coalesced writes is a single round).
    pub invalidation_rounds: u64,
    /// Reads served from a directory-leased replica (requester side).
    pub dir_hits: u64,
    /// Cacheable block lookups that missed the replica cache.
    pub dir_misses: u64,
    /// Fresh read-replica leases granted by home directories (home side).
    pub dir_leases: u64,
    /// Invalidations applied by this node as a sharer (the holder-side
    /// count behind the `--watch` INVAL column).
    pub dir_invals: u64,
    /// Invalidation rounds a release-consistency write skipped because the
    /// protocol defers them to the readers' acquire points.
    pub rc_deferred_invals: u64,
    /// Acquire-point self-invalidations performed under release
    /// consistency (barrier exit, lock grant, explicit `gm_acquire`).
    pub rc_acquires: u64,
}

impl KernelStats {
    /// Add every counter of `other` into `self`.
    pub fn merge(&mut self, other: &KernelStats) {
        self.gm_local_reads += other.gm_local_reads;
        self.gm_remote_reads += other.gm_remote_reads;
        self.gm_local_writes += other.gm_local_writes;
        self.gm_remote_writes += other.gm_remote_writes;
        self.gm_bytes_read += other.gm_bytes_read;
        self.gm_bytes_written += other.gm_bytes_written;
        self.fetch_adds += other.fetch_adds;
        self.messages += other.messages;
        self.message_bytes += other.message_bytes;
        self.barrier_epochs += other.barrier_epochs;
        self.lock_grants += other.lock_grants;
        self.invokes += other.invokes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_invalidations += other.cache_invalidations;
        self.gm_request_msgs += other.gm_request_msgs;
        self.gm_coalesced += other.gm_coalesced;
        self.invalidation_rounds += other.invalidation_rounds;
        self.dir_hits += other.dir_hits;
        self.dir_misses += other.dir_misses;
        self.dir_leases += other.dir_leases;
        self.dir_invals += other.dir_invals;
        self.rc_deferred_invals += other.rc_deferred_invals;
        self.rc_acquires += other.rc_acquires;
    }

    /// Flatten these counters into named metric series (subsystem `kernel`)
    /// for the given PE and machine. This is the canonical stats-to-metrics
    /// mapping: the end-of-run rollup and the in-band telemetry plane both
    /// use it, so a telemetry-built rollup reproduces the direct one
    /// byte-for-byte. Every field is emitted — including zero-valued ones —
    /// in declaration order.
    pub fn as_metric_counters(&self, pe: u32, machine: u32) -> Vec<(MetricKey, u64)> {
        let key = |name: &'static str| MetricKey::pe("kernel", name, pe).on_machine(machine);
        vec![
            (key("gm_local_reads"), self.gm_local_reads),
            (key("gm_remote_reads"), self.gm_remote_reads),
            (key("gm_local_writes"), self.gm_local_writes),
            (key("gm_remote_writes"), self.gm_remote_writes),
            (key("gm_bytes_read"), self.gm_bytes_read),
            (key("gm_bytes_written"), self.gm_bytes_written),
            (key("fetch_adds"), self.fetch_adds),
            (key("messages"), self.messages),
            (key("message_bytes"), self.message_bytes),
            (key("barrier_epochs"), self.barrier_epochs),
            (key("lock_grants"), self.lock_grants),
            (key("invokes"), self.invokes),
            (key("cache_hits"), self.cache_hits),
            (key("cache_misses"), self.cache_misses),
            (key("cache_invalidations"), self.cache_invalidations),
            (key("gm_request_msgs"), self.gm_request_msgs),
            (key("gm_coalesced"), self.gm_coalesced),
            (key("invalidation_rounds"), self.invalidation_rounds),
            (key("dir_hits"), self.dir_hits),
            (key("dir_misses"), self.dir_misses),
            (key("dir_leases"), self.dir_leases),
            (key("dir_invals"), self.dir_invals),
            (key("rc_deferred_invals"), self.rc_deferred_invals),
            (key("rc_acquires"), self.rc_acquires),
        ]
    }
}

/// Thread-safe accumulator shared by every simulated entity, with one
/// cell per processor element.
#[derive(Debug, Default)]
pub struct StatsCell {
    cells: Vec<Mutex<KernelStats>>,
}

impl StatsCell {
    /// Fresh zeroed counters for `npes` processor elements (at least 1).
    pub fn new(npes: usize) -> StatsCell {
        StatsCell {
            cells: (0..npes.max(1)).map(|_| Mutex::default()).collect(),
        }
    }

    /// Number of per-PE cells.
    pub fn npes(&self) -> usize {
        self.cells.len()
    }

    /// Apply a mutation to the counters of the PE acting as `node`.
    ///
    /// An out-of-range node (e.g. a control entity) charges the last
    /// cell rather than panicking, so rollups never lose counts.
    pub fn update(&self, node: NodeId, f: impl FnOnce(&mut KernelStats)) {
        let i = (node.0 as usize).min(self.cells.len() - 1);
        f(&mut self.cells[i].lock());
    }

    /// Copy one PE's counters out.
    pub fn snapshot_pe(&self, pe: usize) -> KernelStats {
        self.cells
            .get(pe)
            .map(|c| c.lock().clone())
            .unwrap_or_default()
    }

    /// Copy every PE's counters out, indexed by node id.
    pub fn per_pe(&self) -> Vec<KernelStats> {
        self.cells.iter().map(|c| c.lock().clone()).collect()
    }

    /// Roll all PEs up into the cluster-wide totals.
    pub fn snapshot(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for c in &self.cells {
            total.merge(&c.lock());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_and_snapshot() {
        let s = StatsCell::new(2);
        s.update(NodeId(0), |k| k.messages += 3);
        s.update(NodeId(1), |k| {
            k.messages += 1;
            k.gm_bytes_read += 100;
        });
        let snap = s.snapshot();
        assert_eq!(snap.messages, 4);
        assert_eq!(snap.gm_bytes_read, 100);
        assert_eq!(snap.barrier_epochs, 0);
        assert_eq!(s.snapshot_pe(0).messages, 3);
        assert_eq!(s.snapshot_pe(1).messages, 1);
    }

    #[test]
    fn rollup_equals_sum_of_cells() {
        let s = StatsCell::new(3);
        for pe in 0..3u16 {
            s.update(NodeId(pe), |k| {
                k.gm_remote_reads += (pe + 1) as u64;
                k.message_bytes += 10 * (pe + 1) as u64;
            });
        }
        let per = s.per_pe();
        let mut manual = KernelStats::default();
        for p in &per {
            manual.merge(p);
        }
        assert_eq!(manual, s.snapshot());
        assert_eq!(manual.gm_remote_reads, 6);
    }

    #[test]
    fn metric_counters_cover_every_field_in_order() {
        let ks = KernelStats {
            gm_local_reads: 1,
            cache_invalidations: 9,
            ..KernelStats::default()
        };
        let counters = ks.as_metric_counters(2, 1);
        assert_eq!(counters.len(), 24);
        assert_eq!(
            counters[0].0,
            MetricKey::pe("kernel", "gm_local_reads", 2).on_machine(1)
        );
        assert_eq!(counters[0].1, 1);
        // Zero-valued fields are still present (required so an absolute
        // telemetry snapshot matches the direct rollup exactly).
        assert_eq!(counters[1].1, 0);
        assert_eq!(counters[14].0.name, "cache_invalidations");
        assert_eq!(counters[14].1, 9);
        assert_eq!(counters[15].0.name, "gm_request_msgs");
        assert_eq!(counters[17].0.name, "invalidation_rounds");
        // The directory/RC counters are appended after the originals so
        // existing consumers keep their positions.
        assert_eq!(counters[18].0.name, "dir_hits");
        assert_eq!(counters[21].0.name, "dir_invals");
        assert_eq!(counters[23].0.name, "rc_acquires");
    }

    #[test]
    fn out_of_range_node_charges_last_cell() {
        let s = StatsCell::new(2);
        s.update(NodeId(9), |k| k.invokes += 1);
        assert_eq!(s.snapshot_pe(1).invokes, 1);
        assert_eq!(s.snapshot().invokes, 1);
    }
}
