//! Runtime counters collected across a parallel run.

use parking_lot::Mutex;

/// A snapshot of (or live accumulator for) runtime activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Global-memory reads satisfied on the requesting node.
    pub gm_local_reads: u64,
    /// Global-memory reads that crossed to another node.
    pub gm_remote_reads: u64,
    /// Global-memory writes satisfied on the requesting node.
    pub gm_local_writes: u64,
    /// Global-memory writes that crossed to another node.
    pub gm_remote_writes: u64,
    /// Bytes read from global memory.
    pub gm_bytes_read: u64,
    /// Bytes written to global memory.
    pub gm_bytes_written: u64,
    /// Atomic fetch-add operations.
    pub fetch_adds: u64,
    /// Runtime messages sent (requests, responses, control).
    pub messages: u64,
    /// Payload bytes across all runtime messages.
    pub message_bytes: u64,
    /// Barrier completions (epochs) observed.
    pub barrier_epochs: u64,
    /// Lock grants issued.
    pub lock_grants: u64,
    /// Parallel processes invoked.
    pub invokes: u64,
    /// Cache hits in the optional GM cache.
    pub cache_hits: u64,
    /// Cache misses in the optional GM cache.
    pub cache_misses: u64,
    /// Invalidation messages sent by the optional GM cache.
    pub cache_invalidations: u64,
}

/// Thread-safe accumulator shared by every simulated entity.
#[derive(Debug, Default)]
pub struct StatsCell {
    inner: Mutex<KernelStats>,
}

impl StatsCell {
    /// Fresh zeroed counters.
    pub fn new() -> StatsCell {
        StatsCell::default()
    }

    /// Apply a mutation to the counters.
    pub fn update(&self, f: impl FnOnce(&mut KernelStats)) {
        f(&mut self.inner.lock());
    }

    /// Copy the current values out.
    pub fn snapshot(&self) -> KernelStats {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_and_snapshot() {
        let s = StatsCell::new();
        s.update(|k| k.messages += 3);
        s.update(|k| {
            k.messages += 1;
            k.gm_bytes_read += 100;
        });
        let snap = s.snapshot();
        assert_eq!(snap.messages, 4);
        assert_eq!(snap.gm_bytes_read, 100);
        assert_eq!(snap.barrier_epochs, 0);
    }
}
