//! The message exchange mechanism: how a runtime message actually travels.
//!
//! Three paths, as in the paper's Fig. 3:
//!
//! * **own node** — the API calls straight into the linked kernel library;
//!   no message exists (handled by the callers via `CostModel::local_call`);
//! * **loopback** — two kernels co-located on one physical machine (the
//!   virtual-cluster case): full protocol software cost on both sides, but
//!   no LAN transmission and no collisions;
//! * **LAN** — protocol software cost on both sides plus shared-bus
//!   Ethernet transmission booked on the [`dse_net::Network`] model.
//!
//! Every send charges the *sender's* machine CPU, every receive charges the
//! *receiver's* machine CPU (protocol receive + SIGIO signal delivery +
//! context switch — the async-I/O interruption the paper describes).

use dse_msg::{Message, NodeId};
use dse_obs::MetricKey;
use dse_sim::{ProcCtx, ProcId, SimDuration};

use crate::shared::ClusterShared;
use crate::simmsg::SimMsg;

/// Send `msg` from `from_node` to the simulation process `to_proc` living
/// on `to_node`. Charges the sender-side software cost, books the wire (or
/// loopback), and dispatches the envelope. `reply_to` names the simulation
/// process any response should go to.
///
/// Returns the delivery latency so callers can attribute wire time to an
/// open observability span.
pub fn send_msg(
    ctx: &mut ProcCtx<SimMsg>,
    shared: &ClusterShared,
    from_node: NodeId,
    to_node: NodeId,
    to_proc: ProcId,
    reply_to: ProcId,
    msg: &Message,
) -> SimDuration {
    let bytes = msg.encode();
    shared.stats.update(from_node, |s| {
        s.messages += 1;
        s.message_bytes += bytes.len() as u64;
    });
    shared.flight.record(
        ctx.now().as_nanos(),
        from_node.0 as u32,
        dse_obs::FlightEventKind::Bus {
            label: msg.label(),
            to_pe: to_node.0 as u32,
            bytes: bytes.len() as u64,
        },
    );
    // Sender software path (syscall + protocol + copy), on the sender CPU.
    ctx.use_resource(
        shared.cpu_of(from_node),
        shared.cost(from_node).msg_send(bytes.len()),
    );
    let pe = from_node.0 as u32;
    let machine = shared.machine_of(from_node) as u32;
    let latency = if shared.same_machine(from_node, to_node) {
        shared
            .metrics
            .incr(MetricKey::pe("net", "loopback_msgs", pe).on_machine(machine));
        shared.cost(from_node).loopback_delay()
    } else {
        let now = ctx.now();
        let timing = shared.network.lock().send_message(
            now,
            shared.machine_of(from_node),
            shared.machine_of(to_node),
            bytes.len(),
        );
        let latency = timing.delivered_at - now;
        shared
            .metrics
            .incr(MetricKey::pe("net", "lan_msgs", pe).on_machine(machine));
        shared.metrics.record(
            MetricKey::pe("net", "wire_latency_ns", pe).on_machine(machine),
            latency.as_nanos(),
        );
        latency
    };
    ctx.send(
        to_proc,
        latency,
        SimMsg {
            from_node,
            reply_to,
            bytes,
        },
    );
    latency
}

/// Charge the receiver-side software cost for a message of `wire_len`
/// payload bytes that just arrived at `node` (protocol receive processing,
/// SIGIO delivery, context switch into kernel duty).
pub fn charge_recv(
    ctx: &mut ProcCtx<SimMsg>,
    shared: &ClusterShared,
    node: NodeId,
    wire_len: usize,
) {
    ctx.use_resource(shared.cpu_of(node), shared.cost(node).msg_recv(wire_len));
}

/// Charge the own-node fast path (function call into the linked kernel
/// library, touching `bytes` of memory).
pub fn charge_local(ctx: &mut ProcCtx<SimMsg>, shared: &ClusterShared, node: NodeId, bytes: usize) {
    ctx.use_resource(shared.cpu_of(node), shared.cost(node).local_call(bytes));
}
