//! Serving-side GM request dedup: bounded memory of recently served
//! requests keyed by `(from, req)`.
//!
//! A retransmit of an already-served request replays the cached response
//! instead of re-executing it, which is what makes requester-side retries
//! safe for non-idempotent operations (overlapping writes, fetch-add).
//! The cache also counts how many times each entry replayed: the causal
//! trace derives a distinct serve-span id per replay from that index, so
//! a retransmitted request shows up in the assembled cluster trace as one
//! fresh serve plus N dedup-replay serves, all linked to the same parent.

use std::collections::{HashMap, VecDeque};

use dse_msg::Message;

/// Bounded FIFO cache of served GM responses keyed by `(from, req)`.
#[derive(Debug, Default)]
pub struct DedupCache {
    map: HashMap<(u32, u64), CacheEntry>,
    order: VecDeque<(u32, u64)>,
    cap: usize,
}

#[derive(Debug)]
struct CacheEntry {
    resp: Message,
    replays: u32,
}

impl DedupCache {
    /// A cache remembering the last `cap` served responses.
    pub fn new(cap: usize) -> DedupCache {
        DedupCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    /// Look up a retransmitted request. On a hit, counts the replay and
    /// returns the cached response together with the replay index (1 for
    /// the first replay, 2 for the second, ...).
    pub fn replay(&mut self, key: (u32, u64)) -> Option<(Message, u32)> {
        let e = self.map.get_mut(&key)?;
        e.replays += 1;
        Some((e.resp.clone(), e.replays))
    }

    /// Remember the response to a freshly served request, evicting the
    /// oldest entry once past capacity.
    pub fn insert(&mut self, key: (u32, u64), resp: Message) {
        if self
            .map
            .insert(key, CacheEntry { resp, replays: 0 })
            .is_none()
        {
            self.order.push_back(key);
            if self.order.len() > self.cap {
                let evict = self.order.pop_front().unwrap();
                self.map.remove(&evict);
            }
        }
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Dedup key for the GM request kinds subject to retransmission.
pub fn dedup_key(msg: &Message, from: u32) -> Option<(u32, u64)> {
    match msg {
        Message::GmReadReq { req, .. }
        | Message::GmWriteReq { req, .. }
        | Message::GmFetchAddReq { req, .. }
        | Message::GmBatchReq { req, .. } => Some((from, req.0)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_msg::ReqId;

    fn ack(req: u64) -> Message {
        Message::GmWriteAck { req: ReqId(req) }
    }

    #[test]
    fn replay_counts_and_returns_cached_response() {
        let mut c = DedupCache::new(4);
        assert!(c.replay((1, 7)).is_none(), "miss before insert");
        c.insert((1, 7), ack(7));
        let (resp, idx) = c.replay((1, 7)).unwrap();
        assert_eq!(resp, ack(7));
        assert_eq!(idx, 1);
        let (_, idx) = c.replay((1, 7)).unwrap();
        assert_eq!(idx, 2, "replay index advances per hit");
    }

    #[test]
    fn evicts_oldest_past_capacity() {
        let mut c = DedupCache::new(2);
        c.insert((0, 1), ack(1));
        c.insert((0, 2), ack(2));
        c.insert((0, 3), ack(3));
        assert_eq!(c.len(), 2);
        assert!(c.replay((0, 1)).is_none(), "oldest entry evicted");
        assert!(c.replay((0, 3)).is_some());
    }

    #[test]
    fn key_covers_exactly_the_retriable_requests() {
        let from = 5;
        assert_eq!(
            dedup_key(
                &Message::GmFetchAddReq {
                    req: ReqId(9),
                    region: dse_msg::RegionId(0),
                    offset: 0,
                    delta: 1,
                },
                from
            ),
            Some((5, 9))
        );
        assert_eq!(dedup_key(&Message::KernelShutdown, from), None);
        assert_eq!(
            dedup_key(
                &Message::BarrierEnter {
                    barrier: 1,
                    pid: dse_msg::GlobalPid::new(dse_msg::NodeId(0), 1),
                },
                from
            ),
            None
        );
    }
}
