//! The optional global-memory cache: read-replicate, write-invalidate.
//!
//! DSE's baseline semantics are pure request/response — every remote access
//! pays a message round trip. This extension (in the spirit of the DSM
//! systems the paper positions itself against) lets nodes keep copies of
//! remote blocks they have read:
//!
//! * reads install fixed-size blocks into a per-node cache; the home
//!   kernel's directory records who holds copies;
//! * any write (or atomic) to a range first invalidates all other holders'
//!   copies and waits for their acknowledgements, *then* acknowledges the
//!   writer — single-home transaction ordering, the classic sequential-
//!   consistency recipe for write-invalidate protocols.
//!
//! Only blocks *fully contained* in one request are cached (edge fragments
//! always go to the home), which keeps entries uniform without complicating
//! the home-run arithmetic.

use std::collections::HashMap;

use parking_lot::Mutex;

use dse_msg::{NodeId, RegionId};

use crate::directory::Directory;

/// Cache block granularity in bytes.
pub const CACHE_BLOCK: usize = 512;

/// Key of one cached block.
type BlockKey = (RegionId, u64);

/// First block index covering `offset`.
#[inline]
pub fn block_of(offset: u64) -> u64 {
    offset / CACHE_BLOCK as u64
}

/// Block indices intersecting `[offset, offset+len)`.
pub fn blocks_touching(offset: u64, len: usize) -> std::ops::Range<u64> {
    if len == 0 {
        return block_of(offset)..block_of(offset);
    }
    block_of(offset)..block_of(offset + len as u64 - 1) + 1
}

/// Block indices whose full `[b*B, (b+1)*B)` span lies inside the range.
pub fn blocks_inside(offset: u64, len: usize) -> std::ops::Range<u64> {
    let b = CACHE_BLOCK as u64;
    let first = offset.div_ceil(b);
    let last = (offset + len as u64) / b;
    first..last.max(first)
}

/// Per-node block caches (one map per node, all living in the shared state
/// because the simulator is one address space; the per-node separation is
/// what the costs are charged against).
pub struct CacheStore {
    nodes: Vec<Mutex<HashMap<BlockKey, Vec<u8>>>>,
    /// Directory: which nodes hold a copy of each block. Lives with the
    /// data homes conceptually; centralized here because both engines run
    /// in one address space.
    directory: Directory,
}

impl CacheStore {
    /// Caches for `nnodes` nodes.
    pub fn new(nnodes: usize) -> CacheStore {
        CacheStore {
            nodes: (0..nnodes).map(|_| Mutex::new(HashMap::new())).collect(),
            directory: Directory::new(),
        }
    }

    /// Look up a block copy held by `node`.
    pub fn get(&self, node: NodeId, region: RegionId, block: u64) -> Option<Vec<u8>> {
        self.nodes[node.index()]
            .lock()
            .get(&(region, block))
            .cloned()
    }

    /// Install a block copy at `node` and register it in the directory.
    /// Returns true when this created a fresh directory lease (as opposed
    /// to refreshing a copy the directory already knew about).
    pub fn install(&self, node: NodeId, region: RegionId, block: u64, data: Vec<u8>) -> bool {
        debug_assert_eq!(data.len(), CACHE_BLOCK);
        self.nodes[node.index()]
            .lock()
            .insert((region, block), data);
        self.directory.grant(region, block, node)
    }

    /// Register `node` in the directory for `block` without installing
    /// data — the home-side half of a lease grant when the data travels to
    /// the requester separately (live engine). Returns true on a fresh
    /// lease.
    pub fn grant(&self, node: NodeId, region: RegionId, block: u64) -> bool {
        self.directory.grant(region, block, node)
    }

    /// Install block data at `node` without touching the directory — the
    /// requester-side half of a live-engine lease whose directory entry the
    /// home already recorded at serve time.
    pub fn install_data(&self, node: NodeId, region: RegionId, block: u64, data: Vec<u8>) {
        debug_assert_eq!(data.len(), CACHE_BLOCK);
        self.nodes[node.index()]
            .lock()
            .insert((region, block), data);
    }

    /// Drop `node`'s copies of all blocks intersecting the range (the
    /// holder-side action of a `GmInvalidate`).
    pub fn drop_range(&self, node: NodeId, region: RegionId, offset: u64, len: usize) {
        let mut map = self.nodes[node.index()].lock();
        for b in blocks_touching(offset, len) {
            map.remove(&(region, b));
        }
    }

    /// Remove directory registrations for every block intersecting the
    /// range and return the nodes (other than `exclude`) that held copies
    /// — the invalidation recipients.
    pub fn take_holders(
        &self,
        region: RegionId,
        offset: u64,
        len: usize,
        exclude: NodeId,
    ) -> Vec<NodeId> {
        self.directory.take_range(region, offset, len, exclude)
    }

    /// The sharers a write over the range *would* invalidate, without
    /// clearing their leases — how release consistency counts deferred
    /// invalidations.
    pub fn peek_holders(
        &self,
        region: RegionId,
        offset: u64,
        len: usize,
        exclude: NodeId,
    ) -> Vec<NodeId> {
        self.directory.peek_range(region, offset, len, exclude)
    }

    /// Drop every replica `node` holds and release its directory leases —
    /// the acquire-side self-invalidation of release consistency. Returns
    /// the number of replicas dropped.
    pub fn purge_node(&self, node: NodeId) -> usize {
        let dropped = {
            let mut map = self.nodes[node.index()].lock();
            let n = map.len();
            map.clear();
            n
        };
        self.directory.release_node(node);
        dropped
    }

    /// Number of blocks currently cached at `node` (for tests/stats).
    pub fn cached_blocks(&self, node: NodeId) -> usize {
        self.nodes[node.index()].lock().len()
    }

    /// The backing sharing directory (diagnostics and property tests).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: u64 = CACHE_BLOCK as u64;

    #[test]
    fn block_ranges() {
        assert_eq!(blocks_touching(0, 1), 0..1);
        assert_eq!(blocks_touching(0, CACHE_BLOCK), 0..1);
        assert_eq!(blocks_touching(0, CACHE_BLOCK + 1), 0..2);
        assert_eq!(blocks_touching(B - 1, 2), 0..2);
        assert_eq!(blocks_touching(B, 0), 1..1);
    }

    #[test]
    fn blocks_inside_requires_full_coverage() {
        assert_eq!(blocks_inside(0, CACHE_BLOCK), 0..1);
        assert_eq!(blocks_inside(1, CACHE_BLOCK), 1..1); // partial at both ends
        assert_eq!(blocks_inside(0, 3 * CACHE_BLOCK - 1), 0..2);
        assert_eq!(blocks_inside(B, 2 * CACHE_BLOCK), 1..3);
    }

    #[test]
    fn install_get_drop() {
        let cs = CacheStore::new(2);
        let r = RegionId(1);
        cs.install(NodeId(0), r, 3, vec![7; CACHE_BLOCK]);
        assert_eq!(cs.get(NodeId(0), r, 3).unwrap()[0], 7);
        assert!(cs.get(NodeId(1), r, 3).is_none());
        cs.drop_range(NodeId(0), r, 3 * B, CACHE_BLOCK);
        assert!(cs.get(NodeId(0), r, 3).is_none());
    }

    #[test]
    fn directory_tracks_and_clears_holders() {
        let cs = CacheStore::new(3);
        let r = RegionId(0);
        cs.install(NodeId(1), r, 0, vec![0; CACHE_BLOCK]);
        cs.install(NodeId(2), r, 0, vec![0; CACHE_BLOCK]);
        cs.install(NodeId(2), r, 1, vec![0; CACHE_BLOCK]);
        // A write over blocks 0..2, from node 1's perspective.
        let holders = cs.take_holders(r, 0, 2 * CACHE_BLOCK, NodeId(1));
        assert_eq!(holders, vec![NodeId(2)]);
        // Directory is cleared: a second take returns nobody.
        assert!(cs.take_holders(r, 0, 2 * CACHE_BLOCK, NodeId(1)).is_empty());
    }

    #[test]
    fn purge_node_releases_replicas_and_leases() {
        let cs = CacheStore::new(2);
        let r = RegionId(0);
        assert!(cs.install(NodeId(0), r, 0, vec![0; CACHE_BLOCK]), "lease");
        assert!(!cs.install(NodeId(0), r, 0, vec![1; CACHE_BLOCK]));
        cs.install(NodeId(1), r, 0, vec![0; CACHE_BLOCK]);
        assert_eq!(cs.purge_node(NodeId(0)), 1);
        assert!(cs.get(NodeId(0), r, 0).is_none());
        // Node 0's lease is gone from the directory; node 1's survives.
        assert_eq!(cs.peek_holders(r, 0, CACHE_BLOCK, NodeId(2)), [NodeId(1)]);
        // peek left the lease in place; take clears it.
        assert_eq!(cs.take_holders(r, 0, CACHE_BLOCK, NodeId(2)), [NodeId(1)]);
        assert!(cs.peek_holders(r, 0, CACHE_BLOCK, NodeId(2)).is_empty());
    }

    #[test]
    fn grant_without_data_still_invalidated() {
        let cs = CacheStore::new(2);
        let r = RegionId(0);
        assert!(cs.grant(NodeId(1), r, 4), "directory-only lease");
        assert!(cs.get(NodeId(1), r, 4).is_none(), "no data installed");
        assert_eq!(
            cs.take_holders(r, 4 * B, CACHE_BLOCK, NodeId(0)),
            [NodeId(1)]
        );
    }

    #[test]
    fn take_holders_dedups_across_blocks() {
        let cs = CacheStore::new(2);
        let r = RegionId(0);
        cs.install(NodeId(1), r, 0, vec![0; CACHE_BLOCK]);
        cs.install(NodeId(1), r, 1, vec![0; CACHE_BLOCK]);
        let holders = cs.take_holders(r, 0, 2 * CACHE_BLOCK, NodeId(0));
        assert_eq!(holders, vec![NodeId(1)]);
    }
}
