//! The combined cost model: platform × protocol × organization.
//!
//! Everything the runtime charges to a CPU goes through here, so the pricing
//! rules live in one place and the ablation benches can vary one factor at a
//! time.

use dse_net::ProtocolModel;
use dse_platform::{Platform, Work};
use dse_sim::SimDuration;

use crate::config::Organization;

/// Fork/exec-style cost of creating a DSE parallel process, expressed as a
/// multiple of the platform's context-switch cost (lab-era UNIX process
/// creation is on the order of milliseconds).
const FORK_CTX_SWITCHES: f64 = 60.0;

/// Fixed software cost of the own-node fast path (a function call into the
/// linked kernel library plus queue bookkeeping), in microseconds.
const LOCAL_CALL_US: f64 = 2.0;

/// Queueing delay of a loopback (same-machine) delivery, in microseconds.
/// The software costs dominate; this only keeps event ordering sane.
const LOOPBACK_DELAY_US: u64 = 5;

/// Prices runtime actions on one platform under one protocol/organization.
#[derive(Debug, Clone)]
pub struct CostModel {
    platform: Platform,
    proto: ProtocolModel,
    organization: Organization,
}

impl CostModel {
    /// Build a cost model.
    pub fn new(platform: Platform, proto: ProtocolModel, organization: Organization) -> CostModel {
        CostModel {
            platform,
            proto,
            organization,
        }
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// CPU time for application work.
    pub fn compute(&self, work: Work) -> SimDuration {
        SimDuration::from_secs_f64(self.platform.compute_secs(work))
    }

    /// Host software time to push one `bytes`-payload message into the
    /// network (syscall + protocol send processing, protocol-scaled).
    pub fn msg_send(&self, bytes: usize) -> SimDuration {
        let os = &self.platform.os_params;
        let secs = (os.syscall_us + os.proto_send_us * self.proto.per_msg_scale) * 1e-6
            + bytes as f64 * os.proto_byte_ns * self.proto.per_byte_scale * 1e-9;
        SimDuration::from_secs_f64(secs + self.ipc_penalty())
    }

    /// Host software time to take one `bytes`-payload message out of the
    /// network: protocol receive processing plus the async-I/O signal
    /// delivery and the context switch into DSE-kernel duty.
    pub fn msg_recv(&self, bytes: usize) -> SimDuration {
        let os = &self.platform.os_params;
        let secs =
            (os.proto_recv_us * self.proto.per_msg_scale + os.signal_us + os.context_switch_us)
                * 1e-6
                + bytes as f64 * os.proto_byte_ns * self.proto.per_byte_scale * 1e-9;
        SimDuration::from_secs_f64(secs + self.ipc_penalty())
    }

    /// Own-node fast path: the API calls straight into the linked kernel
    /// library and touches `bytes` of memory. Under the legacy organization
    /// this instead crosses the IPC boundary to the kernel process.
    pub fn local_call(&self, bytes: usize) -> SimDuration {
        let copy = bytes as f64 / (self.platform.cpu.mem_mb_s * 1e6);
        SimDuration::from_secs_f64(LOCAL_CALL_US * 1e-6 + copy + self.ipc_penalty())
    }

    /// Memory traffic of servicing a GM request (copy in/out of the store).
    pub fn mem_copy(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / (self.platform.cpu.mem_mb_s * 1e6))
    }

    /// Queueing delay of a loopback (same-machine) delivery — the network
    /// path's non-LAN branch. Part of the cost model rather than a network
    /// constant so organization/platform variants can reprice it.
    pub fn loopback_delay(&self) -> SimDuration {
        SimDuration::from_micros(LOOPBACK_DELAY_US)
    }

    /// Cost of creating one DSE parallel process on this node.
    pub fn fork(&self) -> SimDuration {
        SimDuration::from_secs_f64(
            self.platform.os_params.context_switch_us * FORK_CTX_SWITCHES * 1e-6,
        )
    }

    /// The per-interaction penalty the legacy separate-process organization
    /// pays (an IPC rendezvous plus two context switches); zero for the
    /// linked-library organization.
    fn ipc_penalty(&self) -> f64 {
        match self.organization {
            Organization::LinkedLibrary => 0.0,
            Organization::SeparateProcess => self.platform.legacy_ipc_secs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_net::Protocol;

    fn model(org: Organization) -> CostModel {
        CostModel::new(
            Platform::sunos_sparc(),
            ProtocolModel::of(Protocol::TcpIp),
            org,
        )
    }

    #[test]
    fn legacy_is_strictly_more_expensive() {
        let new = model(Organization::LinkedLibrary);
        let old = model(Organization::SeparateProcess);
        assert!(old.msg_send(100) > new.msg_send(100));
        assert!(old.msg_recv(100) > new.msg_recv(100));
        assert!(old.local_call(100) > new.local_call(100));
        // Compute is organization-independent.
        assert_eq!(
            old.compute(Work::flops(1000)),
            new.compute(Work::flops(1000))
        );
    }

    #[test]
    fn local_call_cheaper_than_message_pair() {
        let m = model(Organization::LinkedLibrary);
        let local = m.local_call(256);
        let remote = m.msg_send(256) + m.msg_recv(256);
        assert!(
            local.as_nanos() * 10 < remote.as_nanos(),
            "own-node path must be much cheaper: {local} vs {remote}"
        );
    }

    #[test]
    fn lighter_protocol_cheaper() {
        let tcp = CostModel::new(
            Platform::linux_pentium2(),
            ProtocolModel::of(Protocol::TcpIp),
            Organization::LinkedLibrary,
        );
        let raw = CostModel::new(
            Platform::linux_pentium2(),
            ProtocolModel::of(Protocol::RawEthernet),
            Organization::LinkedLibrary,
        );
        assert!(raw.msg_send(1000) < tcp.msg_send(1000));
        assert!(raw.msg_recv(1000) < tcp.msg_recv(1000));
    }

    #[test]
    fn fork_is_milliseconds_scale() {
        let m = model(Organization::LinkedLibrary);
        let f = m.fork().as_secs_f64();
        assert!(f > 1e-3 && f < 20e-3, "fork cost {f}s out of range");
    }

    #[test]
    fn per_byte_costs_grow() {
        let m = model(Organization::LinkedLibrary);
        assert!(m.msg_send(10_000) > m.msg_send(10));
        assert!(m.mem_copy(10_000) > m.mem_copy(10));
    }
}
