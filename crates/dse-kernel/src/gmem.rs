//! The global memory management module.
//!
//! DSE's programming model is a shared *global memory* physically
//! partitioned across the processor elements: every region byte has a *home
//! node*, own-node accesses take the cheap linked-library path, and accesses
//! to bytes homed elsewhere become request/response messages to the home
//! node's kernel. This module owns region metadata, the backing bytes and
//! the home-mapping arithmetic; the timing of accesses is the kernel's and
//! API's business.

use std::fmt;

use parking_lot::Mutex;

use dse_msg::{NodeId, RegionId};

/// How a region's bytes are distributed over the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Split into `nnodes` contiguous chunks; node `i` homes chunk `i`.
    Blocked,
    /// Contiguous chunks of exactly `chunk` bytes; node `i` homes
    /// `[i*chunk, (i+1)*chunk)` and the last node also homes any tail.
    /// Use this to keep element boundaries aligned with home boundaries.
    BlockedBy {
        /// Chunk size in bytes.
        chunk: usize,
    },
    /// Round-robin blocks of the given byte size across nodes.
    Cyclic {
        /// Block size in bytes.
        block: usize,
    },
    /// Entire region homed on one node (master-held data, task counters).
    OnNode(NodeId),
}

/// Errors from global-memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GmError {
    /// The region id is unknown.
    NoSuchRegion(RegionId),
    /// An access fell outside the region.
    OutOfBounds {
        /// The offending region.
        region: RegionId,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Actual region size.
        size: usize,
    },
    /// A fetch-add cell must be 8-byte sized and aligned and entirely homed
    /// on one node.
    BadAtomicCell {
        /// The offending region.
        region: RegionId,
        /// Requested offset.
        offset: u64,
    },
}

impl fmt::Display for GmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmError::NoSuchRegion(r) => write!(f, "no such global-memory region {r}"),
            GmError::OutOfBounds {
                region,
                offset,
                len,
                size,
            } => write!(
                f,
                "out-of-bounds access to {region}: offset {offset} len {len} size {size}"
            ),
            GmError::BadAtomicCell { region, offset } => {
                write!(f, "bad atomic cell in {region} at offset {offset}")
            }
        }
    }
}

impl std::error::Error for GmError {}

struct Region {
    len: usize,
    dist: Distribution,
    data: Vec<u8>,
}

/// The cluster's global memory: all regions plus the home-mapping rules.
///
/// Access is internally locked; in the simulator only one process thread
/// runs at a time so there is never contention, and in the live engine the
/// lock provides the needed mutual exclusion.
pub struct GlobalStore {
    nnodes: usize,
    regions: Mutex<Vec<Region>>,
}

impl GlobalStore {
    /// A store for a cluster of `nnodes` processor elements.
    pub fn new(nnodes: usize) -> GlobalStore {
        assert!(nnodes > 0);
        GlobalStore {
            nnodes,
            regions: Mutex::new(Vec::new()),
        }
    }

    /// Number of nodes the store distributes over.
    pub fn nnodes(&self) -> usize {
        self.nnodes
    }

    /// Allocate a zero-initialized region.
    pub fn alloc(&self, len: usize, dist: Distribution) -> RegionId {
        if let Distribution::Cyclic { block } = dist {
            assert!(block > 0, "cyclic block size must be positive");
        }
        if let Distribution::BlockedBy { chunk } = dist {
            assert!(chunk > 0, "blocked chunk size must be positive");
        }
        if let Distribution::OnNode(n) = dist {
            assert!(
                n.index() < self.nnodes,
                "home node {n} outside cluster of {}",
                self.nnodes
            );
        }
        let mut regions = self.regions.lock();
        let id = RegionId(regions.len() as u32);
        regions.push(Region {
            len,
            dist,
            data: vec![0u8; len],
        });
        id
    }

    /// Number of regions allocated so far.
    pub fn region_count(&self) -> usize {
        self.regions.lock().len()
    }

    /// Size of a region in bytes.
    pub fn region_len(&self, region: RegionId) -> Result<usize, GmError> {
        let regions = self.regions.lock();
        regions
            .get(region.0 as usize)
            .map(|r| r.len)
            .ok_or(GmError::NoSuchRegion(region))
    }

    fn check(
        regions: &[Region],
        region: RegionId,
        offset: u64,
        len: usize,
    ) -> Result<&Region, GmError> {
        let r = regions
            .get(region.0 as usize)
            .ok_or(GmError::NoSuchRegion(region))?;
        let end = offset.checked_add(len as u64).ok_or(GmError::OutOfBounds {
            region,
            offset,
            len,
            size: r.len,
        })?;
        if end > r.len as u64 {
            return Err(GmError::OutOfBounds {
                region,
                offset,
                len,
                size: r.len,
            });
        }
        Ok(r)
    }

    /// Copy `len` bytes out of a region.
    pub fn read(&self, region: RegionId, offset: u64, len: usize) -> Result<Vec<u8>, GmError> {
        let mut out = vec![0u8; len];
        self.read_into(region, offset, &mut out)?;
        Ok(out)
    }

    /// Copy `out.len()` bytes out of a region into a caller-owned buffer
    /// (the allocation-free path behind `read`).
    pub fn read_into(&self, region: RegionId, offset: u64, out: &mut [u8]) -> Result<(), GmError> {
        let regions = self.regions.lock();
        let r = Self::check(&regions, region, offset, out.len())?;
        out.copy_from_slice(&r.data[offset as usize..offset as usize + out.len()]);
        Ok(())
    }

    /// Write bytes into a region.
    pub fn write(&self, region: RegionId, offset: u64, data: &[u8]) -> Result<(), GmError> {
        let mut regions = self.regions.lock();
        let idx = region.0 as usize;
        Self::check(&regions, region, offset, data.len())?;
        regions[idx].data[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Atomic fetch-and-add on an aligned 8-byte little-endian cell.
    pub fn fetch_add(&self, region: RegionId, offset: u64, delta: i64) -> Result<i64, GmError> {
        if !offset.is_multiple_of(8) {
            return Err(GmError::BadAtomicCell { region, offset });
        }
        let mut regions = self.regions.lock();
        let idx = region.0 as usize;
        Self::check(&regions, region, offset, 8)?;
        // The cell must live entirely on one node for the home-node kernel
        // to serialize it.
        let home_a = Self::home_of_inner(&regions[idx], self.nnodes, offset);
        let home_b = Self::home_of_inner(&regions[idx], self.nnodes, offset + 7);
        if home_a != home_b {
            return Err(GmError::BadAtomicCell { region, offset });
        }
        let o = offset as usize;
        let cell: [u8; 8] = regions[idx].data[o..o + 8].try_into().unwrap();
        let prev = i64::from_le_bytes(cell);
        regions[idx].data[o..o + 8].copy_from_slice(&prev.wrapping_add(delta).to_le_bytes());
        Ok(prev)
    }

    fn home_of_inner(r: &Region, nnodes: usize, offset: u64) -> NodeId {
        let o = offset as usize;
        match r.dist {
            Distribution::OnNode(n) => n,
            Distribution::Blocked => {
                if r.len == 0 {
                    return NodeId(0);
                }
                let chunk = r.len.div_ceil(nnodes);
                NodeId(((o / chunk).min(nnodes - 1)) as u16)
            }
            Distribution::BlockedBy { chunk } => NodeId(((o / chunk).min(nnodes - 1)) as u16),
            Distribution::Cyclic { block } => NodeId(((o / block) % nnodes) as u16),
        }
    }

    /// Home node of the byte at `offset`.
    pub fn home_of(&self, region: RegionId, offset: u64) -> Result<NodeId, GmError> {
        let regions = self.regions.lock();
        let r = regions
            .get(region.0 as usize)
            .ok_or(GmError::NoSuchRegion(region))?;
        Ok(Self::home_of_inner(r, self.nnodes, offset))
    }

    /// Split `[offset, offset+len)` into maximal contiguous runs that share
    /// one home node: `(home, run_offset, run_len)` in address order.
    pub fn split_by_home(
        &self,
        region: RegionId,
        offset: u64,
        len: usize,
    ) -> Result<Vec<(NodeId, u64, usize)>, GmError> {
        let regions = self.regions.lock();
        let r = Self::check(&regions, region, offset, len)?;
        if len == 0 {
            return Ok(Vec::new());
        }
        let mut runs: Vec<(NodeId, u64, usize)> = Vec::new();
        let mut cursor = offset;
        let end = offset + len as u64;
        while cursor < end {
            let home = Self::home_of_inner(r, self.nnodes, cursor);
            // Find where this home's span ends.
            let span_end = match r.dist {
                Distribution::OnNode(_) => end,
                Distribution::Blocked => {
                    let chunk = r.len.div_ceil(self.nnodes) as u64;
                    let boundary = (cursor / chunk + 1) * chunk;
                    // The final chunk extends to the region end.
                    if home.index() == self.nnodes - 1 {
                        end
                    } else {
                        boundary.min(end)
                    }
                }
                Distribution::BlockedBy { chunk } => {
                    let boundary = (cursor / chunk as u64 + 1) * chunk as u64;
                    if home.index() == self.nnodes - 1 {
                        end
                    } else {
                        boundary.min(end)
                    }
                }
                Distribution::Cyclic { block } => {
                    let boundary = (cursor / block as u64 + 1) * block as u64;
                    boundary.min(end)
                }
            };
            let run_len = (span_end - cursor) as usize;
            match runs.last_mut() {
                Some((h, _, l)) if *h == home => *l += run_len,
                _ => runs.push((home, cursor, run_len)),
            }
            cursor = span_end;
        }
        Ok(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let gs = GlobalStore::new(4);
        let r = gs.alloc(100, Distribution::Blocked);
        gs.write(r, 10, &[1, 2, 3]).unwrap();
        assert_eq!(gs.read(r, 10, 3).unwrap(), vec![1, 2, 3]);
        assert_eq!(gs.read(r, 9, 1).unwrap(), vec![0]);
    }

    #[test]
    fn read_into_matches_read() {
        let gs = GlobalStore::new(2);
        let r = gs.alloc(32, Distribution::Blocked);
        gs.write(r, 4, &[9, 8, 7, 6]).unwrap();
        let mut buf = [0u8; 6];
        gs.read_into(r, 3, &mut buf).unwrap();
        assert_eq!(buf.to_vec(), gs.read(r, 3, 6).unwrap());
        let mut over = [0u8; 4];
        assert!(matches!(
            gs.read_into(r, 30, &mut over),
            Err(GmError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let gs = GlobalStore::new(2);
        let r = gs.alloc(10, Distribution::Blocked);
        assert!(matches!(gs.read(r, 8, 3), Err(GmError::OutOfBounds { .. })));
        assert!(matches!(
            gs.write(r, 10, &[1]),
            Err(GmError::OutOfBounds { .. })
        ));
        // Offset overflow must not panic.
        assert!(gs.read(r, u64::MAX, 1).is_err());
    }

    #[test]
    fn unknown_region_rejected() {
        let gs = GlobalStore::new(2);
        assert_eq!(
            gs.read(RegionId(9), 0, 1),
            Err(GmError::NoSuchRegion(RegionId(9)))
        );
    }

    #[test]
    fn blocked_homes() {
        let gs = GlobalStore::new(4);
        let r = gs.alloc(100, Distribution::Blocked); // chunks of 25
        assert_eq!(gs.home_of(r, 0).unwrap(), NodeId(0));
        assert_eq!(gs.home_of(r, 24).unwrap(), NodeId(0));
        assert_eq!(gs.home_of(r, 25).unwrap(), NodeId(1));
        assert_eq!(gs.home_of(r, 99).unwrap(), NodeId(3));
    }

    #[test]
    fn blocked_homes_uneven() {
        let gs = GlobalStore::new(4);
        let r = gs.alloc(10, Distribution::Blocked); // ceil(10/4)=3: 3,3,3,1
        assert_eq!(gs.home_of(r, 9).unwrap(), NodeId(3));
        // Never exceeds node count even for the tail.
        let r2 = gs.alloc(5, Distribution::Blocked); // chunk 2: homes 0,0,1,1,2
        assert_eq!(gs.home_of(r2, 4).unwrap(), NodeId(2));
    }

    #[test]
    fn cyclic_homes() {
        let gs = GlobalStore::new(3);
        let r = gs.alloc(100, Distribution::Cyclic { block: 8 });
        assert_eq!(gs.home_of(r, 0).unwrap(), NodeId(0));
        assert_eq!(gs.home_of(r, 8).unwrap(), NodeId(1));
        assert_eq!(gs.home_of(r, 16).unwrap(), NodeId(2));
        assert_eq!(gs.home_of(r, 24).unwrap(), NodeId(0));
    }

    #[test]
    fn on_node_homes() {
        let gs = GlobalStore::new(3);
        let r = gs.alloc(64, Distribution::OnNode(NodeId(2)));
        assert_eq!(gs.home_of(r, 0).unwrap(), NodeId(2));
        assert_eq!(gs.home_of(r, 63).unwrap(), NodeId(2));
    }

    #[test]
    fn split_by_home_blocked() {
        let gs = GlobalStore::new(4);
        let r = gs.alloc(100, Distribution::Blocked);
        let runs = gs.split_by_home(r, 20, 40).unwrap();
        assert_eq!(
            runs,
            vec![(NodeId(0), 20, 5), (NodeId(1), 25, 25), (NodeId(2), 50, 10)]
        );
        // Runs cover the request exactly.
        let total: usize = runs.iter().map(|&(_, _, l)| l).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn split_by_home_cyclic_merges_adjacent() {
        let gs = GlobalStore::new(2);
        let r = gs.alloc(64, Distribution::Cyclic { block: 8 });
        let runs = gs.split_by_home(r, 0, 32).unwrap();
        assert_eq!(
            runs,
            vec![
                (NodeId(0), 0, 8),
                (NodeId(1), 8, 8),
                (NodeId(0), 16, 8),
                (NodeId(1), 24, 8)
            ]
        );
    }

    #[test]
    fn split_zero_len() {
        let gs = GlobalStore::new(2);
        let r = gs.alloc(10, Distribution::Blocked);
        assert!(gs.split_by_home(r, 5, 0).unwrap().is_empty());
    }

    #[test]
    fn fetch_add_semantics() {
        let gs = GlobalStore::new(2);
        let r = gs.alloc(16, Distribution::OnNode(NodeId(0)));
        assert_eq!(gs.fetch_add(r, 0, 5).unwrap(), 0);
        assert_eq!(gs.fetch_add(r, 0, -2).unwrap(), 5);
        assert_eq!(gs.fetch_add(r, 0, 0).unwrap(), 3);
        // The other cell is independent.
        assert_eq!(gs.fetch_add(r, 8, 7).unwrap(), 0);
    }

    #[test]
    fn fetch_add_alignment_enforced() {
        let gs = GlobalStore::new(2);
        let r = gs.alloc(16, Distribution::OnNode(NodeId(0)));
        assert!(matches!(
            gs.fetch_add(r, 3, 1),
            Err(GmError::BadAtomicCell { .. })
        ));
    }

    #[test]
    fn fetch_add_split_cell_rejected() {
        let gs = GlobalStore::new(2);
        // Cyclic block of 8 puts [8,16) on node 1; an 8-byte cell at 8 is
        // fine, but blocks of 4 would split any aligned cell.
        let r = gs.alloc(16, Distribution::Cyclic { block: 4 });
        assert!(matches!(
            gs.fetch_add(r, 0, 1),
            Err(GmError::BadAtomicCell { .. })
        ));
    }

    #[test]
    fn blocked_by_homes_and_split() {
        let gs = GlobalStore::new(3);
        let r = gs.alloc(100, Distribution::BlockedBy { chunk: 16 });
        assert_eq!(gs.home_of(r, 0).unwrap(), NodeId(0));
        assert_eq!(gs.home_of(r, 16).unwrap(), NodeId(1));
        assert_eq!(gs.home_of(r, 32).unwrap(), NodeId(2));
        // Tail beyond 3*16 stays on the last node.
        assert_eq!(gs.home_of(r, 99).unwrap(), NodeId(2));
        let runs = gs.split_by_home(r, 8, 32).unwrap();
        assert_eq!(
            runs,
            vec![(NodeId(0), 8, 8), (NodeId(1), 16, 16), (NodeId(2), 32, 8)]
        );
        // Run past the last boundary merges into the final node's span.
        let tail = gs.split_by_home(r, 40, 60).unwrap();
        assert_eq!(tail, vec![(NodeId(2), 40, 60)]);
    }

    #[test]
    fn fetch_add_wraps() {
        let gs = GlobalStore::new(1);
        let r = gs.alloc(8, Distribution::OnNode(NodeId(0)));
        gs.fetch_add(r, 0, i64::MAX).unwrap();
        // Wrapping add must not panic.
        let prev = gs.fetch_add(r, 0, 1).unwrap();
        assert_eq!(prev, i64::MAX);
    }
}
