//! Engine-neutral execution of global-memory request messages.
//!
//! The paper's kernel has one job on the serving side: take a decoded
//! request, touch the home partition of global memory, and produce the
//! response message. That data plane is identical whether the kernel is a
//! simulated process (charging virtual CPU time, maintaining the coherence
//! directory) or a live thread answering sockets — so it lives here, once.
//! Engine-specific accounting (cost charging, cache installs, invalidation
//! rounds, metrics) hangs off the [`GmServiceHooks`] callbacks, which fire
//! *after* the store operation they describe, in request order.

use dse_msg::{GmOp, Message, RegionId};

use crate::gmem::GlobalStore;

/// Engine-specific side effects of serving a GM request.
pub trait GmServiceHooks {
    /// A read of `data.len()` bytes at (`region`, `offset`) was executed.
    fn read_executed(&mut self, region: RegionId, offset: u64, data: &[u8]);
    /// A write of `len` bytes at (`region`, `offset`) was executed.
    fn write_executed(&mut self, region: RegionId, offset: u64, len: usize);
    /// A fetch-add on the cell at (`region`, `offset`) was executed.
    fn fetch_add_executed(&mut self, region: RegionId, offset: u64);
    /// A `GmInvalidate` over (`region`, `offset`, `len`) arrived: this node
    /// must drop its cached replicas of the range before the ack goes back.
    /// Default: nothing to drop (engines without a replica cache).
    fn invalidated(&mut self, region: RegionId, offset: u64, len: usize) {
        let _ = (region, offset, len);
    }
}

/// Hooks that do nothing; for callers with no engine accounting.
pub struct NoHooks;

impl GmServiceHooks for NoHooks {
    fn read_executed(&mut self, _: RegionId, _: u64, _: &[u8]) {}
    fn write_executed(&mut self, _: RegionId, _: u64, _: usize) {}
    fn fetch_add_executed(&mut self, _: RegionId, _: u64) {}
}

/// Outcome of offering a message to the GM service.
pub enum Served {
    /// The message was a GM request; here is the response to send back.
    Response(Message),
    /// Not a GM request — handed back untouched for the caller's dispatch.
    NotGm(Message),
}

/// Execute one GM request against `store`. Batch operations run in issue
/// order, so a read following a coalesced write inside the same batch
/// observes the written data. Panics on a malformed request (out-of-range
/// access): the requester and home disagree about the address space, which
/// is unrecoverable.
pub fn serve_gm(store: &GlobalStore, msg: Message, hooks: &mut impl GmServiceHooks) -> Served {
    match msg {
        Message::GmReadReq {
            req,
            region,
            offset,
            len,
        } => {
            let data = store
                .read(region, offset, len as usize)
                .unwrap_or_else(|e| panic!("gm service: remote read failed: {e}"));
            hooks.read_executed(region, offset, &data);
            Served::Response(Message::GmReadResp {
                req,
                data: data.into(),
            })
        }
        Message::GmWriteReq {
            req,
            region,
            offset,
            data,
        } => {
            store
                .write(region, offset, &data)
                .unwrap_or_else(|e| panic!("gm service: remote write failed: {e}"));
            hooks.write_executed(region, offset, data.len());
            Served::Response(Message::GmWriteAck { req })
        }
        Message::GmFetchAddReq {
            req,
            region,
            offset,
            delta,
        } => {
            let prev = store
                .fetch_add(region, offset, delta)
                .unwrap_or_else(|e| panic!("gm service: remote fetch-add failed: {e}"));
            hooks.fetch_add_executed(region, offset);
            Served::Response(Message::GmFetchAddResp { req, prev })
        }
        Message::GmBatchReq { req, ops } => {
            let mut reads = Vec::new();
            for op in ops {
                match op {
                    GmOp::Read {
                        region,
                        offset,
                        len,
                    } => {
                        let data = store
                            .read(region, offset, len as usize)
                            .unwrap_or_else(|e| panic!("gm service: batched read failed: {e}"));
                        hooks.read_executed(region, offset, &data);
                        reads.push(data.into());
                    }
                    GmOp::Write {
                        region,
                        offset,
                        data,
                    } => {
                        store
                            .write(region, offset, &data)
                            .unwrap_or_else(|e| panic!("gm service: batched write failed: {e}"));
                        hooks.write_executed(region, offset, data.len());
                    }
                }
            }
            Served::Response(Message::GmBatchResp { req, reads })
        }
        Message::GmInvalidate {
            req,
            region,
            offset,
            len,
        } => {
            hooks.invalidated(region, offset, len as usize);
            Served::Response(Message::GmInvalidateAck { req })
        }
        other => Served::NotGm(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_msg::ReqId;

    #[derive(Default)]
    struct CountingHooks {
        reads: usize,
        writes: usize,
        fadds: usize,
        invals: Vec<(RegionId, u64, usize)>,
    }

    impl GmServiceHooks for CountingHooks {
        fn read_executed(&mut self, _: RegionId, _: u64, _: &[u8]) {
            self.reads += 1;
        }
        fn write_executed(&mut self, _: RegionId, _: u64, _: usize) {
            self.writes += 1;
        }
        fn fetch_add_executed(&mut self, _: RegionId, _: u64) {
            self.fadds += 1;
        }
        fn invalidated(&mut self, region: RegionId, offset: u64, len: usize) {
            self.invals.push((region, offset, len));
        }
    }

    fn store_with_region(bytes: usize) -> (GlobalStore, RegionId) {
        let store = GlobalStore::new(1);
        let r = store.alloc(bytes, crate::gmem::Distribution::Blocked);
        (store, r)
    }

    #[test]
    fn read_write_roundtrip_through_service() {
        let (store, r) = store_with_region(64);
        let mut hooks = CountingHooks::default();
        let w = Message::GmWriteReq {
            req: ReqId(1),
            region: r,
            offset: 8,
            data: vec![5u8; 16].into(),
        };
        match serve_gm(&store, w, &mut hooks) {
            Served::Response(Message::GmWriteAck { req: ReqId(1) }) => {}
            _ => panic!("expected write ack"),
        }
        let rd = Message::GmReadReq {
            req: ReqId(2),
            region: r,
            offset: 8,
            len: 16,
        };
        match serve_gm(&store, rd, &mut hooks) {
            Served::Response(Message::GmReadResp {
                req: ReqId(2),
                data,
            }) => {
                assert_eq!(data, vec![5u8; 16]);
            }
            _ => panic!("expected read resp"),
        }
        assert_eq!((hooks.reads, hooks.writes), (1, 1));
    }

    #[test]
    fn batch_executes_in_issue_order() {
        let (store, r) = store_with_region(32);
        let mut hooks = CountingHooks::default();
        let batch = Message::GmBatchReq {
            req: ReqId(3),
            ops: vec![
                GmOp::Write {
                    region: r,
                    offset: 0,
                    data: vec![9u8; 8].into(),
                },
                GmOp::Read {
                    region: r,
                    offset: 0,
                    len: 8,
                },
            ],
        };
        match serve_gm(&store, batch, &mut hooks) {
            Served::Response(Message::GmBatchResp {
                req: ReqId(3),
                reads,
            }) => {
                assert_eq!(reads, vec![vec![9u8; 8]]);
            }
            _ => panic!("expected batch resp"),
        }
        assert_eq!((hooks.reads, hooks.writes, hooks.fadds), (1, 1, 0));
    }

    #[test]
    fn invalidate_fires_hook_and_acks() {
        let (store, r) = store_with_region(64);
        let mut hooks = CountingHooks::default();
        let inv = Message::GmInvalidate {
            req: ReqId(9),
            region: r,
            offset: 16,
            len: 32,
        };
        match serve_gm(&store, inv, &mut hooks) {
            Served::Response(Message::GmInvalidateAck { req: ReqId(9) }) => {}
            _ => panic!("expected invalidate ack"),
        }
        assert_eq!(hooks.invals, vec![(r, 16, 32)]);
        // The default hook implementation keeps engines without a cache
        // compiling and serving acks.
        let inv = Message::GmInvalidate {
            req: ReqId(10),
            region: r,
            offset: 0,
            len: 8,
        };
        assert!(matches!(
            serve_gm(&store, inv, &mut NoHooks),
            Served::Response(Message::GmInvalidateAck { req: ReqId(10) })
        ));
    }

    #[test]
    fn non_gm_messages_are_handed_back() {
        let (store, _) = store_with_region(8);
        match serve_gm(&store, Message::KernelShutdown, &mut NoHooks) {
            Served::NotGm(Message::KernelShutdown) => {}
            _ => panic!("expected message back"),
        }
    }
}
