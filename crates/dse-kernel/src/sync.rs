//! Cluster-wide synchronization: barriers and locks.
//!
//! Coordination is centralized on node 0's kernel (the DSE coordinator).
//! These types hold the *state machines*; the kernel loop and the API layer
//! drive them and pay the messaging costs. A barrier over `p` processes
//! costs `p-1` enter messages plus `p-1` release messages on the wire —
//! which is exactly why fine-grained synchronization hurts on the paper's
//! bus Ethernet.

use std::collections::{HashMap, VecDeque};

use parking_lot::Mutex;

use dse_msg::{GlobalPid, NodeId, ReqId};
use dse_sim::ProcId;

/// A party registered with the coordinator (where to send its wakeup).
///
/// Generic over the reply token `R`: the simulator addresses wakeups to a
/// simulation process ([`ProcId`], the default), while the live engine
/// addresses them to a PE rank (`u32`) on its transport. The coordination
/// state machines are identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Party<R = ProcId> {
    /// Cluster-wide pid.
    pub pid: GlobalPid,
    /// Node the process runs on (selects local vs LAN reply path).
    pub node: NodeId,
    /// Where to deliver the wakeup (engine-specific address).
    pub reply_to: R,
    /// Correlation id for request/grant pairs (unused by barriers).
    pub req: ReqId,
}

/// Result of entering a barrier.
#[derive(Debug)]
pub enum BarrierOutcome<R = ProcId> {
    /// Not everyone is here yet; the enterer must wait for a release.
    Wait,
    /// The enterer was last: it (or the coordinating kernel) must now send
    /// `BarrierRelease{epoch}` to every listed earlier waiter.
    Complete {
        /// The epoch that just completed.
        epoch: u32,
        /// Everyone who was waiting (the last enterer is *not* included).
        waiters: Vec<Party<R>>,
    },
}

struct BarrierState<R> {
    epoch: u32,
    waiters: Vec<Party<R>>,
}

/// Barrier coordination state (lives on node 0).
pub struct BarrierCenter<R = ProcId> {
    nprocs: usize,
    inner: Mutex<HashMap<u32, BarrierState<R>>>,
}

impl<R> BarrierCenter<R> {
    /// A center synchronizing `nprocs` parallel processes.
    pub fn new(nprocs: usize) -> BarrierCenter<R> {
        assert!(nprocs > 0);
        BarrierCenter {
            nprocs,
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Record `party` entering `barrier`.
    pub fn enter(&self, barrier: u32, party: Party<R>) -> BarrierOutcome<R> {
        let mut inner = self.inner.lock();
        let st = inner.entry(barrier).or_insert(BarrierState {
            epoch: 0,
            waiters: Vec::new(),
        });
        debug_assert!(
            !st.waiters.iter().any(|w| w.pid == party.pid),
            "{} entered barrier {barrier} twice in one epoch",
            party.pid
        );
        if st.waiters.len() + 1 == self.nprocs {
            let epoch = st.epoch;
            st.epoch += 1;
            let waiters = std::mem::take(&mut st.waiters);
            BarrierOutcome::Complete { epoch, waiters }
        } else {
            st.waiters.push(party);
            BarrierOutcome::Wait
        }
    }

    /// Current epoch of a barrier (how many times it has completed).
    pub fn epoch(&self, barrier: u32) -> u32 {
        self.inner.lock().get(&barrier).map_or(0, |s| s.epoch)
    }
}

/// Result of a lock acquisition attempt.
#[derive(Debug)]
pub enum LockOutcome {
    /// The lock was free; the requester now holds it.
    Granted,
    /// Someone holds it; the requester is queued and will get a
    /// `LockGrant` when its turn comes.
    Queued,
}

/// Result of a lock release.
#[derive(Debug)]
pub enum UnlockOutcome<R = ProcId> {
    /// No one was waiting; the lock is now free.
    Released,
    /// Ownership passes to this queued party; send it a `LockGrant`.
    Granted(Party<R>),
}

struct LockState<R> {
    holder: Option<GlobalPid>,
    queue: VecDeque<Party<R>>,
}

/// Lock coordination state (lives on node 0).
pub struct LockCenter<R = ProcId> {
    inner: Mutex<HashMap<u32, LockState<R>>>,
}

impl<R> Default for LockCenter<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R> LockCenter<R> {
    /// An empty lock table.
    pub fn new() -> LockCenter<R> {
        LockCenter {
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Try to acquire `lock` for `party`.
    pub fn acquire(&self, lock: u32, party: Party<R>) -> LockOutcome {
        let mut inner = self.inner.lock();
        let st = inner.entry(lock).or_insert(LockState {
            holder: None,
            queue: VecDeque::new(),
        });
        match st.holder {
            None => {
                st.holder = Some(party.pid);
                LockOutcome::Granted
            }
            Some(holder) => {
                assert_ne!(holder, party.pid, "{holder} re-acquired lock {lock}");
                st.queue.push_back(party);
                LockOutcome::Queued
            }
        }
    }

    /// Release `lock`, which `pid` must hold.
    pub fn release(&self, lock: u32, pid: GlobalPid) -> UnlockOutcome<R> {
        let mut inner = self.inner.lock();
        let st = inner
            .get_mut(&lock)
            .unwrap_or_else(|| panic!("release of unknown lock {lock}"));
        assert_eq!(
            st.holder,
            Some(pid),
            "{pid} released lock {lock} it does not hold"
        );
        match st.queue.pop_front() {
            Some(next) => {
                st.holder = Some(next.pid);
                UnlockOutcome::Granted(next)
            }
            None => {
                st.holder = None;
                UnlockOutcome::Released
            }
        }
    }

    /// Current holder of a lock, if any.
    pub fn holder(&self, lock: u32) -> Option<GlobalPid> {
        self.inner.lock().get(&lock).and_then(|s| s.holder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn party(n: u16) -> Party {
        Party {
            pid: GlobalPid::new(NodeId(n), 0),
            node: NodeId(n),
            reply_to: ProcId::from_index(n as usize),
            req: ReqId(n as u64),
        }
    }

    #[test]
    fn barrier_completes_on_last() {
        let b = BarrierCenter::new(3);
        assert!(matches!(b.enter(0, party(0)), BarrierOutcome::Wait));
        assert!(matches!(b.enter(0, party(1)), BarrierOutcome::Wait));
        match b.enter(0, party(2)) {
            BarrierOutcome::Complete { epoch, waiters } => {
                assert_eq!(epoch, 0);
                assert_eq!(waiters.len(), 2);
                assert!(waiters.iter().all(|w| w.pid != party(2).pid));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(b.epoch(0), 1);
    }

    #[test]
    fn barrier_epochs_advance() {
        let b = BarrierCenter::new(2);
        for epoch in 0..5 {
            assert!(matches!(b.enter(7, party(0)), BarrierOutcome::Wait));
            match b.enter(7, party(1)) {
                BarrierOutcome::Complete { epoch: e, .. } => assert_eq!(e, epoch),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(b.epoch(7), 5);
    }

    #[test]
    fn independent_barriers() {
        let b = BarrierCenter::new(2);
        assert!(matches!(b.enter(1, party(0)), BarrierOutcome::Wait));
        assert!(matches!(b.enter(2, party(1)), BarrierOutcome::Wait));
        assert!(matches!(
            b.enter(1, party(1)),
            BarrierOutcome::Complete { .. }
        ));
        assert!(matches!(
            b.enter(2, party(0)),
            BarrierOutcome::Complete { .. }
        ));
    }

    #[test]
    fn single_proc_barrier_always_completes() {
        let b = BarrierCenter::new(1);
        for _ in 0..3 {
            assert!(matches!(
                b.enter(0, party(0)),
                BarrierOutcome::Complete { .. }
            ));
        }
    }

    #[test]
    fn lock_grant_and_fifo_queue() {
        let l = LockCenter::new();
        assert!(matches!(l.acquire(1, party(0)), LockOutcome::Granted));
        assert!(matches!(l.acquire(1, party(1)), LockOutcome::Queued));
        assert!(matches!(l.acquire(1, party(2)), LockOutcome::Queued));
        assert_eq!(l.holder(1), Some(party(0).pid));
        match l.release(1, party(0).pid) {
            UnlockOutcome::Granted(p) => assert_eq!(p.pid, party(1).pid),
            other => panic!("unexpected {other:?}"),
        }
        match l.release(1, party(1).pid) {
            UnlockOutcome::Granted(p) => assert_eq!(p.pid, party(2).pid),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            l.release(1, party(2).pid),
            UnlockOutcome::Released
        ));
        assert_eq!(l.holder(1), None);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn release_by_non_holder_panics() {
        let l = LockCenter::new();
        let _ = l.acquire(1, party(0));
        let _ = l.release(1, party(1).pid);
    }

    #[test]
    fn locks_are_independent() {
        let l = LockCenter::new();
        assert!(matches!(l.acquire(1, party(0)), LockOutcome::Granted));
        assert!(matches!(l.acquire(2, party(1)), LockOutcome::Granted));
    }
}
