//! # dse-kernel — the DSE Parallel Processing Library
//!
//! This crate is the paper's **parallel processing library** (Fig. 2/3): the
//! DSE kernel implemented as a library that the parallel application links
//! against, comprising
//!
//! * the **parallel process management module** ([`kernel`] — invocation,
//!   termination, exit collection),
//! * the **global memory management module** ([`gmem`] — home-partitioned
//!   regions, reads/writes/atomics),
//! * the **message exchange mechanism** ([`netpath`] + [`simmsg`] — own-node
//!   fast path, same-machine loopback, LAN with protocol and bus costs),
//! * cluster-wide synchronization ([`sync`] — barriers and locks,
//!   coordinated by node 0),
//! * and the combined [`cost`] model (platform × protocol × organization),
//!   including the legacy separate-kernel-process organization for the
//!   paper's "substantial enhancement" comparison.
//!
//! The user-facing Parallel API lives in `dse-api`; this crate deliberately
//! knows nothing about it (the kernel receives application bodies through
//! the opaque [`kernel::AppFactory`]).

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod cost;
pub mod dedup;
pub mod directory;
pub mod gmem;
pub mod kernel;
pub mod netpath;
pub mod service;
pub mod shared;
pub mod simmsg;
pub mod stats;
pub mod sync;
pub mod task;
pub mod watchdog;

pub use cache::{CacheStore, CACHE_BLOCK};
pub use config::{
    DseConfig, GmMode, NetworkChoice, Organization, SchedulerKind, TelemetryConfig,
    DEFAULT_GM_WINDOW,
};
pub use cost::CostModel;
pub use dedup::{dedup_key, DedupCache};
pub use directory::{Directory, Sharers};
pub use gmem::{Distribution, GlobalStore, GmError};
pub use kernel::{kernel_main, AppBody, AppFactory};
pub use service::{serve_gm, GmServiceHooks, NoHooks, Served};
pub use shared::{ClusterShared, TelemetryHook};
pub use simmsg::SimMsg;
pub use stats::{KernelStats, StatsCell};
pub use sync::{BarrierCenter, BarrierOutcome, LockCenter, LockOutcome, Party, UnlockOutcome};
pub use task::{
    is_app_bound, KernelEnv, KernelEvent, KernelTask, Outbound, Progress, KERNEL_TXN_BASE,
};
pub use watchdog::{StallReport, StallWatchdog};
