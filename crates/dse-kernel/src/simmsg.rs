//! The payload type carried by the simulation engine between DSE entities.

use dse_msg::NodeId;
use dse_sim::ProcId;

/// One inter-entity message: encoded wire bytes plus simulation routing.
///
/// The `bytes` are a real [`dse_msg::Message`] encoding — every exchange in
/// the simulator round-trips through the production codec, so the wire
/// format is exercised by every experiment, and `bytes.len()` is exactly
/// what the network model charged for.
#[derive(Debug, Clone)]
pub struct SimMsg {
    /// Node whose kernel/process sent this.
    pub from_node: NodeId,
    /// Simulation process that should receive any *response*.
    pub reply_to: ProcId,
    /// Encoded [`dse_msg::Message`].
    pub bytes: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_msg::Message;

    #[test]
    fn carries_encoded_messages() {
        let m = Message::KernelShutdown;
        let sm = SimMsg {
            from_node: NodeId(1),
            reply_to: ProcId::from_index(0),
            bytes: m.encode(),
        };
        assert_eq!(Message::decode(&sm.bytes).unwrap(), m);
    }
}
