//! Runtime configuration: software organization, protocol, network, cache.

use std::time::Duration;

use dse_net::Protocol;
use dse_sim::SimDuration;

/// Which DSE software organization to model.
///
/// The 1999 paper's contribution is moving from the *separate kernel
/// process* organization (every API call crosses a UNIX IPC boundary) to the
/// *linked library* organization (DSE kernel + parallel API linked into the
/// application's single UNIX process, context-switched by async-I/O
/// signals). Keeping both lets the benches regenerate the improvement claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Organization {
    /// New organization: kernel as a statically linked library (Fig. 2/3).
    LinkedLibrary,
    /// Legacy organization: kernel as a separate UNIX process; each local
    /// API interaction pays an IPC rendezvous plus context switches.
    SeparateProcess,
}

/// Which physical interconnect the cluster uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetworkChoice {
    /// Shared-bus Ethernet (CSMA/CD) at the given bit rate. The paper's LAN
    /// is `SharedBus(10e6)`.
    SharedBus(f64),
    /// Switched full-duplex fabric at the given bit rate and switch latency.
    Switched(f64, SimDuration),
}

/// Coherence protocol of the global-memory cache.
///
/// Only consulted when `DseConfig::gm_cache` is on; without replicas there
/// is nothing to keep coherent and both modes degenerate to the baseline
/// request/response semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GmMode {
    /// Sequentially consistent write-invalidate: every write consults the
    /// home directory and stalls until every sharer has acknowledged an
    /// invalidation.
    #[default]
    WriteInvalidate,
    /// Release consistency: writes go straight to the home (which is always
    /// current) and *defer* invalidations; each node drops its own replicas
    /// at acquire points (barrier exit, lock grant, `gm_acquire`). Correct
    /// for data-race-free programs, and removes the invalidation round
    /// trips from the write path entirely.
    ReleaseConsistency,
}

impl GmMode {
    /// Parse a CLI/TOML spelling (`wi` | `rc`).
    pub fn parse(s: &str) -> Option<GmMode> {
        match s {
            "wi" | "write-invalidate" => Some(GmMode::WriteInvalidate),
            "rc" | "release-consistency" => Some(GmMode::ReleaseConsistency),
            _ => None,
        }
    }

    /// Canonical short spelling (round-trips through [`GmMode::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            GmMode::WriteInvalidate => "wi",
            GmMode::ReleaseConsistency => "rc",
        }
    }
}

/// How the live engine hosts its per-PE kernels.
///
/// The simulator is inherently event-driven (one virtual-time wheel drives
/// every PE), so this axis only matters to the live engine: `Threads` is
/// the reference implementation (one OS kernel thread per PE, blocking on
/// its transport), `Tasks` multiplexes every PE's resumable
/// [`crate::task::KernelTask`] on a small worker pool so one process can
/// host thousands of PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// One blocking kernel thread per PE (the reference implementation).
    #[default]
    Threads,
    /// Event-driven kernel tasks polled by a worker pool sized to the
    /// host's parallelism.
    Tasks,
}

impl SchedulerKind {
    /// Parse a CLI/TOML spelling (`threads` | `tasks`).
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s {
            "threads" | "thread" => Some(SchedulerKind::Threads),
            "tasks" | "task" => Some(SchedulerKind::Tasks),
            _ => None,
        }
    }

    /// Canonical spelling (round-trips through [`SchedulerKind::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Threads => "threads",
            SchedulerKind::Tasks => "tasks",
        }
    }
}

/// Telemetry-plane configuration (see `DseConfig::telemetry`).
///
/// When enabled, every kernel periodically ships its metric deltas in-band
/// (as `Message::Telemetry` traffic) to the aggregating kernel on node 0,
/// node 0 runs a stall watchdog over the open request spans, and a flight
/// recorder keeps the most recent bus/span events for post-mortem dumps.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// How often each kernel emits a metric delta.
    pub interval: SimDuration,
    /// A GM request with no response for longer than this trips the stall
    /// watchdog on node 0.
    pub watchdog_deadline: SimDuration,
    /// Flight-recorder ring capacity in events (0 disables the recorder).
    pub flight_capacity: usize,
    /// Escalate after this many distinct stalls have been flagged over the
    /// run: the kernel records a `kernel/stall_escalations` metric and
    /// captures the flight-recorder dump. `None` leaves escalation off.
    pub escalate_after: Option<u32>,
}

impl Default for TelemetryConfig {
    /// 200 ms emission interval, 250 ms watchdog deadline, 256-event ring.
    ///
    /// The interval keeps the telemetry plane's cost (wire bytes plus
    /// per-message protocol CPU on the paper-era platforms) under 3 % of
    /// execution time up to 8 PEs on the 10 Mbps shared bus — measured by
    /// `examples/telemetry_overhead.rs`. Interactive watching can shorten
    /// it (`dse-run --watch-ms`); the cost is paid in virtual time.
    fn default() -> Self {
        TelemetryConfig {
            interval: SimDuration::from_millis(200),
            watchdog_deadline: SimDuration::from_millis(250),
            flight_capacity: 256,
            escalate_after: None,
        }
    }
}

impl TelemetryConfig {
    /// Builder-style: set the emission interval.
    pub fn with_interval(mut self, interval: SimDuration) -> Self {
        self.interval = interval;
        self
    }

    /// Builder-style: set the stall-watchdog deadline.
    pub fn with_watchdog_deadline(mut self, deadline: SimDuration) -> Self {
        self.watchdog_deadline = deadline;
        self
    }

    /// Builder-style: set the flight-recorder capacity.
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity;
        self
    }

    /// Builder-style: arm stall escalation at `after` distinct stalls.
    pub fn with_escalation(mut self, after: Option<u32>) -> Self {
        self.escalate_after = after;
        self
    }
}

/// Full DSE runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DseConfig {
    /// Software organization (new vs legacy).
    pub organization: Organization,
    /// Protocol stack carrying DSE messages.
    pub protocol: Protocol,
    /// Physical interconnect.
    pub network: NetworkChoice,
    /// Enable the read-replicating, directory-tracked global-memory cache
    /// (an extension beyond the paper's request/response semantics).
    pub gm_cache: bool,
    /// Coherence protocol for the GM cache (ignored when `gm_cache` is
    /// off).
    pub gm_mode: GmMode,
    /// Seed for all model randomness (Ethernet backoff).
    pub seed: u64,
    /// In-band telemetry plane (`None` = off; the default, so telemetry
    /// traffic never perturbs experiments that did not ask for it).
    pub telemetry: Option<TelemetryConfig>,
    /// Maximum split-phase GM requests a PE may have in flight before a
    /// further issue blocks until one completes (the pipelining window).
    pub gm_window: usize,
    /// Record message-level spans and bus activity during the run (the
    /// canonical home of what `DseProgram::with_tracing` used to toggle).
    pub tracing: bool,
    /// Physical machines backing the cluster (`None` = the paper's
    /// machine count; the canonical home of `DseProgram::with_machines`).
    pub machines: Option<usize>,
    /// How the live engine hosts its kernels (ignored by the simulator,
    /// whose event wheel is already a scheduler).
    pub scheduler: SchedulerKind,
    /// Bound on a live kernel's idle wait between housekeeping ticks
    /// (abort-latch checks, telemetry emission). `None` picks the
    /// scheduler's default: 50 ms under `Threads`, 5 ms under `Tasks`,
    /// where thousands of idle PEs would otherwise stretch shutdown by
    /// seconds.
    pub kernel_tick: Option<Duration>,
}

impl Default for DseConfig {
    /// The paper's configuration: linked-library organization, TCP/IP over
    /// 10 Mbps shared-bus Ethernet, no GM cache, telemetry off.
    fn default() -> Self {
        DseConfig {
            organization: Organization::LinkedLibrary,
            protocol: Protocol::TcpIp,
            network: NetworkChoice::SharedBus(10_000_000.0),
            gm_cache: false,
            gm_mode: GmMode::WriteInvalidate,
            seed: 0x05E_1999,
            telemetry: None,
            gm_window: DEFAULT_GM_WINDOW,
            tracing: false,
            machines: None,
            scheduler: SchedulerKind::Threads,
            kernel_tick: None,
        }
    }
}

/// Default bound on in-flight split-phase GM requests per PE. Large enough
/// that the blocking `gm_read`/`gm_write` compatibility path (at most one
/// request per home node in flight) never trips backpressure.
pub const DEFAULT_GM_WINDOW: usize = 32;

impl DseConfig {
    /// The paper's configuration (alias of `Default`).
    pub fn paper() -> DseConfig {
        DseConfig::default()
    }

    /// Same but with the legacy separate-process organization.
    pub fn legacy() -> DseConfig {
        DseConfig {
            organization: Organization::SeparateProcess,
            ..DseConfig::default()
        }
    }

    /// Builder-style: set the protocol.
    pub fn with_protocol(mut self, p: Protocol) -> Self {
        self.protocol = p;
        self
    }

    /// Builder-style: set the network.
    pub fn with_network(mut self, n: NetworkChoice) -> Self {
        self.network = n;
        self
    }

    /// Builder-style: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: enable/disable the GM cache.
    pub fn with_gm_cache(mut self, on: bool) -> Self {
        self.gm_cache = on;
        self
    }

    /// Builder-style: set the GM cache coherence protocol.
    pub fn with_gm_mode(mut self, mode: GmMode) -> Self {
        self.gm_mode = mode;
        self
    }

    /// Builder-style: enable the in-band telemetry plane.
    pub fn with_telemetry(mut self, t: TelemetryConfig) -> Self {
        self.telemetry = Some(t);
        self
    }

    /// Builder-style: set the split-phase GM pipelining window (minimum 1).
    pub fn with_gm_window(mut self, window: usize) -> Self {
        self.gm_window = window.max(1);
        self
    }

    /// Builder-style: record message spans and bus activity.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Builder-style: set the physical machine count backing the cluster.
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = Some(machines);
        self
    }

    /// Builder-style: choose the live engine's kernel scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Builder-style: bound the live kernels' idle housekeeping tick.
    pub fn with_kernel_tick(mut self, tick: Duration) -> Self {
        self.kernel_tick = Some(tick);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = DseConfig::default();
        assert_eq!(c.organization, Organization::LinkedLibrary);
        assert_eq!(c.protocol, Protocol::TcpIp);
        assert!(matches!(c.network, NetworkChoice::SharedBus(b) if b == 10_000_000.0));
        assert!(!c.gm_cache);
        assert_eq!(c.gm_mode, GmMode::WriteInvalidate);
    }

    #[test]
    fn gm_mode_parses_and_roundtrips() {
        assert_eq!(GmMode::parse("wi"), Some(GmMode::WriteInvalidate));
        assert_eq!(GmMode::parse("rc"), Some(GmMode::ReleaseConsistency));
        assert_eq!(
            GmMode::parse("release-consistency"),
            Some(GmMode::ReleaseConsistency)
        );
        assert_eq!(GmMode::parse("sc"), None);
        for m in [GmMode::WriteInvalidate, GmMode::ReleaseConsistency] {
            assert_eq!(GmMode::parse(m.name()), Some(m));
        }
    }

    #[test]
    fn builders_compose() {
        let c = DseConfig::paper()
            .with_protocol(Protocol::RawEthernet)
            .with_seed(42)
            .with_gm_cache(true)
            .with_gm_mode(GmMode::ReleaseConsistency)
            .with_gm_window(4)
            .with_tracing(true)
            .with_machines(3);
        assert_eq!(c.protocol, Protocol::RawEthernet);
        assert_eq!(c.seed, 42);
        assert!(c.gm_cache);
        assert_eq!(c.gm_mode, GmMode::ReleaseConsistency);
        assert_eq!(c.gm_window, 4);
        assert!(c.tracing);
        assert_eq!(c.machines, Some(3));
    }

    #[test]
    fn gm_window_defaults_and_clamps() {
        assert_eq!(DseConfig::default().gm_window, DEFAULT_GM_WINDOW);
        assert!(!DseConfig::default().tracing);
        assert_eq!(DseConfig::default().machines, None);
        assert_eq!(DseConfig::paper().with_gm_window(0).gm_window, 1);
    }

    #[test]
    fn legacy_differs_only_in_organization() {
        let l = DseConfig::legacy();
        assert_eq!(l.organization, Organization::SeparateProcess);
        assert_eq!(l.protocol, DseConfig::default().protocol);
    }

    #[test]
    fn scheduler_parses_and_roundtrips() {
        assert_eq!(
            SchedulerKind::parse("threads"),
            Some(SchedulerKind::Threads)
        );
        assert_eq!(SchedulerKind::parse("tasks"), Some(SchedulerKind::Tasks));
        assert_eq!(SchedulerKind::parse("fibers"), None);
        for k in [SchedulerKind::Threads, SchedulerKind::Tasks] {
            assert_eq!(SchedulerKind::parse(k.name()), Some(k));
        }
    }

    #[test]
    fn scheduler_and_tick_default_and_compose() {
        let c = DseConfig::default();
        assert_eq!(c.scheduler, SchedulerKind::Threads);
        assert_eq!(c.kernel_tick, None);
        let c = DseConfig::paper()
            .with_scheduler(SchedulerKind::Tasks)
            .with_kernel_tick(Duration::from_millis(2));
        assert_eq!(c.scheduler, SchedulerKind::Tasks);
        assert_eq!(c.kernel_tick, Some(Duration::from_millis(2)));
    }

    #[test]
    fn telemetry_defaults_off_and_composes() {
        assert!(DseConfig::default().telemetry.is_none());
        let t = TelemetryConfig::default()
            .with_interval(SimDuration::from_millis(5))
            .with_watchdog_deadline(SimDuration::from_millis(20))
            .with_flight_capacity(64);
        let c = DseConfig::paper().with_telemetry(t.clone());
        assert_eq!(c.telemetry, Some(t));
        assert_eq!(
            TelemetryConfig::default().interval,
            SimDuration::from_millis(200)
        );
    }
}
