//! Abstract computation amounts.
//!
//! Applications describe *how much* computation a step performs in
//! machine-independent units; a [`crate::Platform`] converts the description
//! into virtual time. Keeping the two separated is what lets one application
//! binary be "run" on all three of the paper's platforms.

use std::ops::{Add, AddAssign, Mul};

/// A machine-independent description of a chunk of computation.
///
/// `flops` counts floating-point operations (multiply-add counted as two),
/// `iops` counts simple integer/logic operations, and `mem_bytes` counts
/// bytes that must stream through the memory system (copies, scans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Work {
    /// Floating-point operations.
    pub flops: u64,
    /// Simple integer/branch operations.
    pub iops: u64,
    /// Bytes moved through memory (copies, streaming reads/writes).
    pub mem_bytes: u64,
}

impl Work {
    /// No work at all.
    pub const ZERO: Work = Work {
        flops: 0,
        iops: 0,
        mem_bytes: 0,
    };

    /// Pure floating-point work.
    pub const fn flops(n: u64) -> Work {
        Work {
            flops: n,
            iops: 0,
            mem_bytes: 0,
        }
    }

    /// Pure integer/branch work.
    pub const fn iops(n: u64) -> Work {
        Work {
            flops: 0,
            iops: n,
            mem_bytes: 0,
        }
    }

    /// Pure memory-streaming work.
    pub const fn mem_bytes(n: u64) -> Work {
        Work {
            flops: 0,
            iops: 0,
            mem_bytes: n,
        }
    }

    /// True if no component is nonzero.
    pub const fn is_zero(&self) -> bool {
        self.flops == 0 && self.iops == 0 && self.mem_bytes == 0
    }
}

impl Add for Work {
    type Output = Work;
    fn add(self, rhs: Work) -> Work {
        Work {
            flops: self.flops.saturating_add(rhs.flops),
            iops: self.iops.saturating_add(rhs.iops),
            mem_bytes: self.mem_bytes.saturating_add(rhs.mem_bytes),
        }
    }
}

impl AddAssign for Work {
    fn add_assign(&mut self, rhs: Work) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for Work {
    type Output = Work;
    fn mul(self, rhs: u64) -> Work {
        Work {
            flops: self.flops.saturating_mul(rhs),
            iops: self.iops.saturating_mul(rhs),
            mem_bytes: self.mem_bytes.saturating_mul(rhs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let w = Work::flops(10) + Work::iops(20) + Work::mem_bytes(30);
        assert_eq!(w.flops, 10);
        assert_eq!(w.iops, 20);
        assert_eq!(w.mem_bytes, 30);
        let w2 = w * 3;
        assert_eq!(w2.flops, 30);
        assert_eq!(w2.mem_bytes, 90);
    }

    #[test]
    fn zero_detection() {
        assert!(Work::ZERO.is_zero());
        assert!(!Work::flops(1).is_zero());
    }
}
