//! Cluster composition and the paper's "virtual cluster" rule (Table 2).
//!
//! The original testbed had **six** physical workstations. To run more than
//! six DSE kernels, the authors started two or more kernels per machine —
//! which time-shares the machine's CPU and is exactly why the speedup curves
//! bend down past six processors. [`ClusterSpec::place`] reproduces that
//! placement rule and the bench harness regenerates Table 2 from it.

use crate::platform::Platform;

/// Default number of physical machines in the paper's laboratory cluster.
pub const PAPER_MACHINES: usize = 6;

/// Describes a concrete cluster: a homogeneous set of physical machines of
/// one [`Platform`], onto which some number of DSE kernels (one per
/// requested processor) are placed.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The default platform (the paper's clusters are homogeneous per
    /// experiment; heterogeneous clusters override per machine below).
    pub platform: Platform,
    /// Number of physical machines available.
    pub machines: usize,
    /// Number of DSE kernels, i.e. requested processors.
    pub processors: usize,
    /// Per-machine platform overrides for heterogeneous clusters (the
    /// paper's stated future work: "experiments on other UNIX-based
    /// platforms"). `None` = every machine runs `platform`.
    pub machine_platforms: Option<Vec<Platform>>,
}

impl ClusterSpec {
    /// A cluster of `processors` kernels on the paper's 6-machine laboratory.
    pub fn paper(platform: Platform, processors: usize) -> ClusterSpec {
        ClusterSpec {
            platform,
            machines: PAPER_MACHINES,
            processors,
            machine_platforms: None,
        }
    }

    /// A cluster with an explicit machine count.
    pub fn with_machines(platform: Platform, machines: usize, processors: usize) -> ClusterSpec {
        assert!(machines > 0, "cluster needs at least one machine");
        assert!(processors > 0, "cluster needs at least one processor");
        ClusterSpec {
            platform,
            machines,
            processors,
            machine_platforms: None,
        }
    }

    /// A heterogeneous cluster: machine `m` runs `platforms[m % len]`.
    /// The first machine's platform doubles as the default.
    pub fn heterogeneous(platforms: Vec<Platform>, processors: usize) -> ClusterSpec {
        assert!(!platforms.is_empty(), "need at least one platform");
        assert!(processors > 0, "cluster needs at least one processor");
        let machines = platforms.len();
        ClusterSpec {
            platform: platforms[0].clone(),
            machines,
            processors,
            machine_platforms: Some(platforms),
        }
    }

    /// The platform a physical machine runs.
    pub fn platform_of_machine(&self, machine: usize) -> &Platform {
        match &self.machine_platforms {
            Some(ps) => &ps[machine % ps.len()],
            None => &self.platform,
        }
    }

    /// True if any two machines run different platforms.
    pub fn is_heterogeneous(&self) -> bool {
        self.machine_platforms
            .as_ref()
            .is_some_and(|ps| ps.iter().any(|p| p.id != ps[0].id))
    }

    /// Machine hosting each kernel: kernel `k` lands on machine
    /// `k % machines_used()`. With `p ≤ machines` every kernel gets its own
    /// machine; beyond that, kernels wrap around (the virtual cluster).
    pub fn place(&self) -> Vec<usize> {
        let used = self.machines_used();
        (0..self.processors).map(|k| k % used).collect()
    }

    /// Number of distinct physical machines actually used.
    pub fn machines_used(&self) -> usize {
        self.processors.min(self.machines)
    }

    /// Number of kernels resident on the given machine.
    pub fn kernels_on(&self, machine: usize) -> usize {
        self.place().iter().filter(|&&m| m == machine).count()
    }

    /// The largest number of kernels sharing one machine (1 while
    /// `processors ≤ machines`; grows past that).
    pub fn max_colocation(&self) -> usize {
        let used = self.machines_used();
        self.processors.div_ceil(used)
    }

    /// True if two kernels are on the same physical machine (their traffic
    /// takes the own-node/loopback path, not the LAN).
    pub fn colocated(&self, a: usize, b: usize) -> bool {
        let p = self.place();
        p[a] == p[b]
    }

    /// Rows of the paper's Table 2: (processors, machines used,
    /// max kernels per machine) for p in `1..=max_p`.
    pub fn table2_rows(machines: usize, max_p: usize) -> Vec<(usize, usize, usize)> {
        (1..=max_p)
            .map(|p| {
                let spec = ClusterSpec::with_machines(Platform::sunos_sparc(), machines, p);
                (p, spec.machines_used(), spec.max_colocation())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(p: usize) -> ClusterSpec {
        ClusterSpec::paper(Platform::sunos_sparc(), p)
    }

    #[test]
    fn small_clusters_one_kernel_per_machine() {
        for p in 1..=6 {
            let s = spec(p);
            assert_eq!(s.machines_used(), p);
            assert_eq!(s.max_colocation(), 1);
            let place = s.place();
            assert_eq!(place.len(), p);
            // All distinct machines.
            let mut seen = place.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), p);
        }
    }

    #[test]
    fn virtual_cluster_wraps_round_robin() {
        let s = spec(8);
        assert_eq!(s.machines_used(), 6);
        assert_eq!(s.place(), vec![0, 1, 2, 3, 4, 5, 0, 1]);
        assert_eq!(s.max_colocation(), 2);
        assert_eq!(s.kernels_on(0), 2);
        assert_eq!(s.kernels_on(2), 1);
    }

    #[test]
    fn twelve_processors_two_kernels_everywhere() {
        let s = spec(12);
        assert_eq!(s.max_colocation(), 2);
        for m in 0..6 {
            assert_eq!(s.kernels_on(m), 2);
        }
    }

    #[test]
    fn colocation_matches_placement() {
        let s = spec(8);
        assert!(s.colocated(0, 6)); // both on machine 0
        assert!(!s.colocated(0, 1));
    }

    #[test]
    fn table2_shape() {
        let rows = ClusterSpec::table2_rows(6, 12);
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[5], (6, 6, 1));
        assert_eq!(rows[6], (7, 6, 2));
        assert_eq!(rows[11], (12, 6, 2));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let _ = ClusterSpec::with_machines(Platform::sunos_sparc(), 0, 1);
    }

    #[test]
    fn heterogeneous_platform_mapping() {
        let specs = ClusterSpec::heterogeneous(
            vec![Platform::sunos_sparc(), Platform::linux_pentium2()],
            4,
        );
        assert_eq!(specs.machines, 2);
        assert!(specs.is_heterogeneous());
        assert_eq!(specs.platform_of_machine(0).id, "sunos");
        assert_eq!(specs.platform_of_machine(1).id, "linux");
        // Nodes 2,3 wrap onto machines 0,1.
        assert_eq!(specs.place(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn homogeneous_is_not_heterogeneous() {
        let s = ClusterSpec::paper(Platform::aix_rs6000(), 4);
        assert!(!s.is_heterogeneous());
        assert_eq!(s.platform_of_machine(3).id, "aix");
    }
}
