//! Platform cost models: the paper's Table 1 environments.
//!
//! A [`Platform`] prices computation ([`Work`] → seconds) and the host-side
//! software costs of communication (system calls, protocol processing,
//! signal-driven I/O, context switches). The three presets correspond to the
//! paper's experiment environments:
//!
//! | Machine | OS |
//! |---|---|
//! | Sun SparcStation 5 (85 MHz microSPARC-II) | SunOS 4.1.x |
//! | IBM RS/6000 (PowerPC 604, 112 MHz) | AIX 4.x |
//! | PC-AT (Pentium II 266 MHz) | GNU/Linux 2.0 |
//!
//! Absolute values are plausible mid-1990s figures assembled from vendor
//! data sheets and contemporary micro-benchmark literature (lmbench-style
//! numbers); the reproduction targets relative *shapes*, not the original
//! testbed's absolute milliseconds.

use crate::work::Work;

/// CPU throughput parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuParams {
    /// Millions of floating-point operations per second.
    pub mflops: f64,
    /// Millions of simple integer operations per second.
    pub mips: f64,
    /// Sustainable memory streaming bandwidth, MB/s.
    pub mem_mb_s: f64,
}

/// Operating-system software cost parameters (per-event, in microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsParams {
    /// A trivial system call (getpid-style) in µs.
    pub syscall_us: f64,
    /// A process context switch in µs.
    pub context_switch_us: f64,
    /// Delivering a signal to a user handler (SIGIO async-I/O path) in µs.
    pub signal_us: f64,
    /// Protocol (TCP/IP) per-message send processing in µs, excluding wire.
    pub proto_send_us: f64,
    /// Protocol (TCP/IP) per-message receive processing in µs.
    pub proto_recv_us: f64,
    /// Per-byte software cost (copy + checksum) in ns/byte.
    pub proto_byte_ns: f64,
    /// One local IPC rendezvous (pipe/socketpair round) in µs — the cost the
    /// *legacy* separate-kernel-process organization pays per API call.
    pub ipc_round_us: f64,
}

/// A complete platform: machine + OS cost model (one row of Table 1).
///
/// ```
/// use dse_platform::{Platform, Work};
///
/// let p = Platform::sunos_sparc();
/// // 1 MFLOP at 10 MFLOPS = 0.1 s on the SparcStation.
/// let secs = p.compute_secs(Work::flops(1_000_000));
/// assert!((secs - 0.1).abs() < 1e-9);
/// // Sending a small message costs hundreds of microseconds of software.
/// assert!(p.send_overhead_secs(64) > 300e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Short identifier used in reports, e.g. `"sunos"`.
    pub id: &'static str,
    /// Machine description as in the paper's Table 1.
    pub machine: &'static str,
    /// OS description as in the paper's Table 1.
    pub os: &'static str,
    /// CPU throughput parameters.
    pub cpu: CpuParams,
    /// OS software-cost parameters.
    pub os_params: OsParams,
}

impl Platform {
    /// Sun SparcStation (SunOS 4.1.x) — the original DSE platform.
    pub fn sunos_sparc() -> Platform {
        Platform {
            id: "sunos",
            machine: "Sun SparcStation 5 (microSPARC-II 85MHz)",
            os: "SunOS 4.1.4-JL",
            cpu: CpuParams {
                mflops: 10.0,
                mips: 64.0,
                mem_mb_s: 38.0,
            },
            os_params: OsParams {
                syscall_us: 16.0,
                context_switch_us: 55.0,
                signal_us: 70.0,
                proto_send_us: 420.0,
                proto_recv_us: 460.0,
                proto_byte_ns: 95.0,
                ipc_round_us: 210.0,
            },
        }
    }

    /// IBM RS/6000 (AIX 4.x).
    pub fn aix_rs6000() -> Platform {
        Platform {
            id: "aix",
            machine: "IBM RS/6000 43P (PowerPC 604e 112MHz)",
            os: "AIX 4.2",
            cpu: CpuParams {
                mflops: 38.0,
                mips: 130.0,
                mem_mb_s: 80.0,
            },
            os_params: OsParams {
                syscall_us: 9.0,
                context_switch_us: 40.0,
                signal_us: 48.0,
                proto_send_us: 260.0,
                proto_recv_us: 290.0,
                proto_byte_ns: 60.0,
                ipc_round_us: 140.0,
            },
        }
    }

    /// PC-AT Pentium II 266 MHz (GNU/Linux 2.0).
    pub fn linux_pentium2() -> Platform {
        Platform {
            id: "linux",
            machine: "PC-AT (Pentium II 266MHz)",
            os: "GNU/Linux (kernel 2.0.x)",
            cpu: CpuParams {
                mflops: 70.0,
                mips: 230.0,
                mem_mb_s: 110.0,
            },
            os_params: OsParams {
                syscall_us: 4.0,
                context_switch_us: 18.0,
                signal_us: 22.0,
                proto_send_us: 140.0,
                proto_recv_us: 160.0,
                proto_byte_ns: 35.0,
                ipc_round_us: 75.0,
            },
        }
    }

    /// All three Table 1 platforms, in the paper's order.
    pub fn all() -> Vec<Platform> {
        vec![
            Platform::sunos_sparc(),
            Platform::aix_rs6000(),
            Platform::linux_pentium2(),
        ]
    }

    /// Look up a platform preset by id (`"sunos"`, `"aix"`, `"linux"`).
    pub fn by_id(id: &str) -> Option<Platform> {
        Platform::all().into_iter().find(|p| p.id == id)
    }

    /// Time to execute `work` on this CPU, in seconds.
    pub fn compute_secs(&self, work: Work) -> f64 {
        work.flops as f64 / (self.cpu.mflops * 1e6)
            + work.iops as f64 / (self.cpu.mips * 1e6)
            + work.mem_bytes as f64 / (self.cpu.mem_mb_s * 1e6)
    }

    /// Host software time to *send* one protocol message of `bytes` payload
    /// (syscall entry + protocol processing + per-byte copy/checksum), in
    /// seconds. Wire time is the network's business, not the platform's.
    pub fn send_overhead_secs(&self, bytes: usize) -> f64 {
        (self.os_params.syscall_us + self.os_params.proto_send_us) * 1e-6
            + bytes as f64 * self.os_params.proto_byte_ns * 1e-9
    }

    /// Host software time to *receive* one protocol message of `bytes`
    /// payload, including the async-I/O signal delivery and the context
    /// switch into the DSE kernel duty (the paper's SIGIO mechanism).
    pub fn recv_overhead_secs(&self, bytes: usize) -> f64 {
        (self.os_params.proto_recv_us + self.os_params.signal_us + self.os_params.context_switch_us)
            * 1e-6
            + bytes as f64 * self.os_params.proto_byte_ns * 1e-9
    }

    /// Extra cost per local API call under the legacy organization where the
    /// DSE kernel is a *separate* UNIX process (an IPC rendezvous plus two
    /// context switches, paid on request and on response).
    pub fn legacy_ipc_secs(&self) -> f64 {
        (self.os_params.ipc_round_us + 2.0 * self.os_params.context_switch_us) * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_complete() {
        let all = Platform::all();
        assert_eq!(all.len(), 3);
        let ids: Vec<_> = all.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec!["sunos", "aix", "linux"]);
    }

    #[test]
    fn by_id_roundtrip() {
        for p in Platform::all() {
            assert_eq!(Platform::by_id(p.id).unwrap(), p);
        }
        assert!(Platform::by_id("vms").is_none());
    }

    #[test]
    fn faster_cpu_means_less_compute_time() {
        let w = Work::flops(1_000_000);
        let s = Platform::sunos_sparc().compute_secs(w);
        let a = Platform::aix_rs6000().compute_secs(w);
        let l = Platform::linux_pentium2().compute_secs(w);
        assert!(s > a && a > l, "expected sparc {s} > rs6000 {a} > pII {l}");
    }

    #[test]
    fn overheads_ranked_by_platform_generation() {
        let s = Platform::sunos_sparc().send_overhead_secs(64);
        let a = Platform::aix_rs6000().send_overhead_secs(64);
        let l = Platform::linux_pentium2().send_overhead_secs(64);
        assert!(s > a && a > l);
    }

    #[test]
    fn per_byte_cost_scales() {
        let p = Platform::linux_pentium2();
        let small = p.send_overhead_secs(10);
        let large = p.send_overhead_secs(10_000);
        assert!(large > small);
        let delta = large - small;
        let expect = 9_990.0 * p.os_params.proto_byte_ns * 1e-9;
        assert!((delta - expect).abs() < 1e-12);
    }

    #[test]
    fn compute_secs_adds_components() {
        let p = Platform::sunos_sparc();
        let combined = p.compute_secs(Work {
            flops: 100,
            iops: 200,
            mem_bytes: 300,
        });
        let parts = p.compute_secs(Work::flops(100))
            + p.compute_secs(Work::iops(200))
            + p.compute_secs(Work::mem_bytes(300));
        assert!((combined - parts).abs() < 1e-15);
    }

    #[test]
    fn legacy_ipc_is_substantial() {
        for p in Platform::all() {
            assert!(p.legacy_ipc_secs() > 1e-4 / 2.0); // at least ~50µs
        }
    }
}
