//! # dse-platform — platform cost models and cluster composition
//!
//! The paper evaluates DSE on three UNIX platforms (Table 1) and constructs
//! *virtual clusters* by running several DSE kernels per machine when more
//! than six processors are requested (Table 2). This crate captures both:
//!
//! * [`Platform`] — machine + OS cost parameters (compute rate, syscall,
//!   context switch, signal delivery, TCP/IP protocol processing), with the
//!   three presets [`Platform::sunos_sparc`], [`Platform::aix_rs6000`] and
//!   [`Platform::linux_pentium2`];
//! * [`Work`] — machine-independent computation descriptions that
//!   applications emit and platforms price;
//! * [`ClusterSpec`] — machine counts and kernel placement, reproducing the
//!   round-robin virtual-cluster rule.

#![warn(missing_docs)]

mod cluster;
mod platform;
mod work;

pub use cluster::{ClusterSpec, PAPER_MACHINES};
pub use platform::{CpuParams, OsParams, Platform};
pub use work::Work;
