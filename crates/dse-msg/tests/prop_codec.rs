//! Property tests: any structurally valid message survives an encode/decode
//! roundtrip, and arbitrary byte soup never panics the decoder.

use dse_msg::{
    encode_bye, encode_frame, encode_frame_ctx, FrameDecoder, FrameEvent, GlobalPid, GmOp, Message,
    NodeId, RegionId, ReqId, TraceCtx,
};
use proptest::prelude::*;

fn arb_pid() -> impl Strategy<Value = GlobalPid> {
    (any::<u16>(), any::<u16>()).prop_map(|(n, l)| GlobalPid::new(NodeId(n), l))
}

fn arb_gm_op() -> impl Strategy<Value = GmOp> {
    let data = proptest::collection::vec(any::<u8>(), 0..256);
    prop_oneof![
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(g, o, l)| GmOp::Read {
            region: RegionId(g),
            offset: o,
            len: l,
        }),
        (any::<u32>(), any::<u64>(), data).prop_map(|(g, o, d)| GmOp::Write {
            region: RegionId(g),
            offset: o,
            data: d.into(),
        }),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    let data = proptest::collection::vec(any::<u8>(), 0..2048);
    let ops = proptest::collection::vec(arb_gm_op(), 0..8);
    let reads = proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..256), 0..8);
    prop_oneof![
        (any::<u64>(), ops).prop_map(|(r, ops)| Message::GmBatchReq { req: ReqId(r), ops }),
        (any::<u64>(), reads).prop_map(|(r, reads)| Message::GmBatchResp {
            req: ReqId(r),
            reads: reads.into_iter().map(Into::into).collect(),
        }),
        (any::<u64>(), any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(r, g, o, l)| {
            Message::GmReadReq {
                req: ReqId(r),
                region: RegionId(g),
                offset: o,
                len: l,
            }
        }),
        (any::<u64>(), data.clone()).prop_map(|(r, d)| Message::GmReadResp {
            req: ReqId(r),
            data: d.into()
        }),
        (any::<u64>(), any::<u32>(), any::<u64>(), data.clone()).prop_map(|(r, g, o, d)| {
            Message::GmWriteReq {
                req: ReqId(r),
                region: RegionId(g),
                offset: o,
                data: d.into(),
            }
        }),
        any::<u64>().prop_map(|r| Message::GmWriteAck { req: ReqId(r) }),
        (any::<u64>(), any::<u32>(), any::<u64>(), any::<i64>()).prop_map(|(r, g, o, d)| {
            Message::GmFetchAddReq {
                req: ReqId(r),
                region: RegionId(g),
                offset: o,
                delta: d,
            }
        }),
        (any::<u64>(), any::<i64>()).prop_map(|(r, p)| Message::GmFetchAddResp {
            req: ReqId(r),
            prev: p
        }),
        (any::<u64>(), any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(r, g, o, l)| {
            Message::GmInvalidate {
                req: ReqId(r),
                region: RegionId(g),
                offset: o,
                len: l,
            }
        }),
        any::<u64>().prop_map(|r| Message::GmInvalidateAck { req: ReqId(r) }),
        (any::<u64>(), any::<u32>(), data.clone()).prop_map(|(r, k, a)| Message::InvokeReq {
            req: ReqId(r),
            rank: k,
            args: a
        }),
        (any::<u64>(), arb_pid()).prop_map(|(r, p)| Message::InvokeAck {
            req: ReqId(r),
            pid: p
        }),
        (arb_pid(), any::<i32>()).prop_map(|(p, s)| Message::ExitNotice { pid: p, status: s }),
        (any::<u64>(), arb_pid()).prop_map(|(r, p)| Message::TerminateReq {
            req: ReqId(r),
            pid: p
        }),
        any::<u64>().prop_map(|r| Message::TerminateAck { req: ReqId(r) }),
        (any::<u32>(), arb_pid()).prop_map(|(b, p)| Message::BarrierEnter { barrier: b, pid: p }),
        (any::<u32>(), any::<u32>()).prop_map(|(b, e)| Message::BarrierRelease {
            barrier: b,
            epoch: e
        }),
        (any::<u64>(), any::<u32>(), arb_pid()).prop_map(|(r, l, p)| Message::LockReq {
            req: ReqId(r),
            lock: l,
            pid: p
        }),
        (any::<u64>(), any::<u32>()).prop_map(|(r, l)| Message::LockGrant {
            req: ReqId(r),
            lock: l
        }),
        (any::<u32>(), arb_pid()).prop_map(|(l, p)| Message::UnlockReq { lock: l, pid: p }),
        (arb_pid(), any::<u32>(), data.clone()).prop_map(|(f, t, d)| Message::UserData {
            from: f,
            tag: t,
            data: d
        }),
        (any::<u32>(), any::<u32>(), data).prop_map(|(pe, s, p)| Message::Telemetry {
            pe,
            seq: s,
            payload: p
        }),
        Just(Message::KernelShutdown),
    ]
}

proptest! {
    #[test]
    fn roundtrip(msg in arb_message()) {
        let buf = msg.encode();
        prop_assert_eq!(buf.len(), msg.wire_len());
        let back = Message::decode(&buf).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn truncation_always_detected(msg in arb_message(), cut in 1usize..32) {
        let buf = msg.encode();
        if cut < buf.len() {
            let short = &buf[..buf.len() - cut];
            // Either a decode error, or (if the prefix happens to parse as a
            // shorter valid message) a different message — never equal bytes.
            if let Ok(back) = Message::decode(short) {
                prop_assert_ne!(back.encode(), buf);
            }
        }
    }

    #[test]
    fn decode_prefix_walks_concatenated_messages(
        msgs in proptest::collection::vec(arb_message(), 1..6)
    ) {
        let mut buf = Vec::new();
        for m in &msgs {
            buf.extend_from_slice(&m.encode());
        }
        let mut at = 0usize;
        for m in &msgs {
            let (back, used) = Message::decode_prefix(&buf[at..]).unwrap();
            prop_assert_eq!(&back, m);
            prop_assert_eq!(used, m.wire_len());
            at += used;
        }
        prop_assert_eq!(at, buf.len());
    }

    #[test]
    fn framed_stream_survives_arbitrary_chunking(
        msgs in proptest::collection::vec(arb_message(), 1..6),
        chunk in 1usize..64
    ) {
        let mut stream = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            stream.extend_from_slice(&encode_frame(i as u64, m));
        }
        stream.extend_from_slice(&encode_bye(msgs.len() as u64));

        let mut dec = FrameDecoder::new();
        let mut events = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
            while let Some(ev) = dec.next_frame().unwrap() {
                events.push(ev);
            }
        }
        prop_assert_eq!(events.len(), msgs.len() + 1);
        for (i, m) in msgs.iter().enumerate() {
            prop_assert_eq!(
                &events[i],
                &FrameEvent::Msg { seq: i as u64, msg: m.clone(), ctx: None }
            );
        }
        prop_assert_eq!(&events[msgs.len()], &FrameEvent::Bye { seq: msgs.len() as u64 });
        prop_assert!(!dec.has_partial());
    }

    /// Zero-copy equivalence: frames decoded through the shared reassembly
    /// buffer (payload views borrow the decoder's storage) must be
    /// byte-identical to an owned decode of the same payloads, for any
    /// message mix and any chunk boundary. Events are held across
    /// subsequent pushes so live views force the decoder's copy-on-shared
    /// path as well as the in-place path.
    #[test]
    fn shared_buffer_decode_matches_owned_decode(
        msgs in proptest::collection::vec(arb_message(), 1..6),
        chunk in 1usize..64
    ) {
        let mut stream = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            stream.extend_from_slice(&encode_frame(i as u64, m));
        }
        let mut dec = FrameDecoder::new();
        let mut shared = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
            while let Some(ev) = dec.next_frame().unwrap() {
                shared.push(ev);
            }
        }
        let owned: Vec<Message> = msgs
            .iter()
            .map(|m| Message::decode(&m.encode()).unwrap())
            .collect();
        prop_assert_eq!(shared.len(), owned.len());
        for (ev, want) in shared.iter().zip(&owned) {
            match ev {
                FrameEvent::Msg { msg, .. } => {
                    prop_assert_eq!(msg, want);
                    prop_assert_eq!(msg.encode(), want.encode());
                }
                other => prop_assert!(false, "expected Msg frame, got {:?}", other),
            }
        }
    }

    /// Traced frames round-trip the context for any message and any id
    /// pair, under arbitrary stream chunking, interleaved with untraced
    /// frames — and an untraced frame never grows a context.
    #[test]
    fn traced_frames_roundtrip_ctx_under_chunking(
        msgs in proptest::collection::vec(
            (arb_message(), any::<bool>(), any::<u64>(), any::<u64>()),
            1..6
        ),
        chunk in 1usize..64
    ) {
        let msgs: Vec<(Message, Option<(u64, u64)>)> = msgs
            .into_iter()
            .map(|(m, traced, t, p)| (m, traced.then_some((t, p))))
            .collect();
        let mut stream = Vec::new();
        for (i, (m, ctx)) in msgs.iter().enumerate() {
            let ctx = ctx.map(|(trace, parent)| TraceCtx { trace, parent });
            stream.extend_from_slice(&encode_frame_ctx(i as u64, m, ctx));
        }
        let mut dec = FrameDecoder::new();
        let mut events = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
            while let Some(ev) = dec.next_frame().unwrap() {
                events.push(ev);
            }
        }
        prop_assert_eq!(events.len(), msgs.len());
        for (i, (m, ctx)) in msgs.iter().enumerate() {
            let want_ctx = ctx.map(|(trace, parent)| TraceCtx { trace, parent });
            prop_assert_eq!(
                &events[i],
                &FrameEvent::Msg { seq: i as u64, msg: m.clone(), ctx: want_ctx }
            );
        }
        prop_assert_eq!(dec.dropped_trace_ctx(), 0);
        prop_assert!(!dec.has_partial());
    }
}
