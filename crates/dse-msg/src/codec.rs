//! Byte-level reader/writer helpers for the hand-rolled wire format.
//!
//! DSE predates ubiquitous serialization frameworks; the paper's "global
//! memory access request message create module" and "response message
//! analyze module" construct and parse explicit message buffers. We mirror
//! that with a small little-endian codec. The encoded length is also what
//! the network model charges for, so encoding must be stable.

use std::fmt;

use crate::bytes::Bytes;

/// Errors produced while decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the announced content.
    Truncated {
        /// How many bytes the decoder needed.
        needed: usize,
        /// How many bytes remained.
        had: usize,
    },
    /// Unknown message tag byte.
    BadTag(u8),
    /// The buffer had trailing bytes after a complete message.
    TrailingBytes(usize),
    /// A length field exceeded sanity bounds.
    BadLength(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, had } => {
                write!(f, "truncated buffer: needed {needed} bytes, had {had}")
            }
            CodecError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            CodecError::BadLength(n) => write!(f, "implausible length field {n}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Maximum payload length the decoder will accept (sanity bound).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Writer with preallocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(n),
        }
    }

    /// Writer that appends to an existing buffer (pooled encode paths
    /// reuse one buffer across messages instead of allocating per frame).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Writer { buf }
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed byte string (u32 length).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append an unsigned LEB128 varint (1 byte for values < 128, up to
    /// 10 bytes for the full u64 range). Used by size-sensitive payloads
    /// like telemetry deltas where most values are small.
    pub fn uvar(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Consume the writer, yielding the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Little-endian byte reader over a borrowed buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Truncated {
                needed: n,
                had: self.buf.len() - self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        if len > MAX_PAYLOAD {
            return Err(CodecError::BadLength(len as u64));
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Read a length-prefixed byte string as a [`Bytes`] view.
    ///
    /// When `share` is the shared storage this reader's buffer is a view
    /// of (the caller guarantees `share[..] == buf`), the field becomes a
    /// zero-copy slice of that storage — a refcount bump instead of an
    /// allocation. Without `share` the bytes are copied out, matching
    /// [`Reader::bytes`].
    pub fn bytes_shared(&mut self, share: Option<&Bytes>) -> Result<Bytes, CodecError> {
        let len = self.u32()? as usize;
        if len > MAX_PAYLOAD {
            return Err(CodecError::BadLength(len as u64));
        }
        let at = self.pos;
        let s = self.take(len)?;
        Ok(match share {
            Some(b) => b.slice(at, len),
            None => Bytes::copy_from_slice(s),
        })
    }

    /// Read an unsigned LEB128 varint written by [`Writer::uvar`].
    pub fn uvar(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                // The 10th byte may only contribute the final bit.
                return Err(CodecError::BadLength(u64::from(b)));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::BadLength(v));
            }
        }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Number of bytes consumed so far (the read cursor).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Error unless the buffer is fully consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        r.expect_end().unwrap();
    }

    #[test]
    fn bytes_roundtrip() {
        let mut w = Writer::new();
        w.bytes(b"hello");
        w.bytes(b"");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.bytes().unwrap(), b"");
        r.expect_end().unwrap();
    }

    #[test]
    fn uvar_roundtrip_and_width() {
        let cases = [
            (0u64, 1usize),
            (1, 1),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u64::from(u32::MAX), 5),
            (u64::MAX, 10),
        ];
        for (v, width) in cases {
            let mut w = Writer::new();
            w.uvar(v);
            let buf = w.finish();
            assert_eq!(buf.len(), width, "width of {v}");
            let mut r = Reader::new(&buf);
            assert_eq!(r.uvar().unwrap(), v);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn uvar_rejects_truncation_and_overflow() {
        let mut r = Reader::new(&[0x80]);
        assert!(matches!(r.uvar(), Err(CodecError::Truncated { .. })));
        // 11 continuation bytes: more than a u64 can hold.
        let overlong = [0xffu8; 11];
        let mut r = Reader::new(&overlong);
        assert!(matches!(r.uvar(), Err(CodecError::BadLength(_))));
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.u64(1);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..5]);
        match r.u64() {
            Err(CodecError::Truncated { needed: 8, had: 5 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        let _ = r.u8().unwrap();
        assert_eq!(r.expect_end(), Err(CodecError::TrailingBytes(2)));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        match r.bytes() {
            Err(CodecError::BadLength(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
