//! # dse-msg — the DSE message exchange wire format
//!
//! The paper's software organization (Fig. 3) names two API-side modules —
//! the *global memory access request message create module* and the
//! *response message analyze module* — plus the kernel-side *message
//! exchange mechanism* that moves those buffers between nodes. This crate
//! is their common vocabulary:
//!
//! * [`Message`] — every runtime message (global-memory access, process
//!   invocation/termination, barriers/locks, user data), with a hand-rolled
//!   little-endian encoding whose size is exactly what the network model
//!   charges for;
//! * identifier types ([`NodeId`], [`GlobalPid`], [`RegionId`], [`ReqId`])
//!   shared by every layer;
//! * stream framing ([`encode_frame`], [`FrameDecoder`]) so the same
//!   messages travel over byte streams (TCP/Unix sockets) with explicit
//!   boundaries, per-peer sequence numbers, and a clean-shutdown frame.

#![warn(missing_docs)]

mod bytes;
mod codec;
mod frame;
mod ids;
mod message;

pub use bytes::Bytes;
pub use codec::{CodecError, Reader, Writer, MAX_PAYLOAD};
pub use frame::{
    encode_bye, encode_bye_into, encode_frame, encode_frame_ctx, encode_frame_ctx_into,
    encode_frame_into, FrameDecoder, FrameEvent, TraceCtx, DECODER_HIGH_WATER, FRAME_BYE,
    FRAME_HEADER_LEN, FRAME_MSG, FRAME_MSG_TRACED, TRACE_EXT_LEN, TRACE_EXT_VERSION,
};
pub use ids::{GlobalPid, NodeId, RegionId, ReqId, ReqIdGen};
pub use message::{GmOp, Message};
